# Empty compiler generated dependencies file for gecko_cc.
# This may be replaced when dependencies are built.
