file(REMOVE_RECURSE
  "CMakeFiles/gecko_cc.dir/gecko_cc.cpp.o"
  "CMakeFiles/gecko_cc.dir/gecko_cc.cpp.o.d"
  "gecko_cc"
  "gecko_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gecko_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
