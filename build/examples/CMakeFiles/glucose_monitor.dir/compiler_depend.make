# Empty compiler generated dependencies file for glucose_monitor.
# This may be replaced when dependencies are built.
