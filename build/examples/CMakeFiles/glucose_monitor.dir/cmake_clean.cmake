file(REMOVE_RECURSE
  "CMakeFiles/glucose_monitor.dir/glucose_monitor.cpp.o"
  "CMakeFiles/glucose_monitor.dir/glucose_monitor.cpp.o.d"
  "glucose_monitor"
  "glucose_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glucose_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
