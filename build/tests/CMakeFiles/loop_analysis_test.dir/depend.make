# Empty dependencies file for loop_analysis_test.
# This may be replaced when dependencies are built.
