file(REMOVE_RECURSE
  "CMakeFiles/loop_analysis_test.dir/loop_analysis_test.cpp.o"
  "CMakeFiles/loop_analysis_test.dir/loop_analysis_test.cpp.o.d"
  "loop_analysis_test"
  "loop_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
