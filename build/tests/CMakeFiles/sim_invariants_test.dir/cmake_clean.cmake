file(REMOVE_RECURSE
  "CMakeFiles/sim_invariants_test.dir/sim_invariants_test.cpp.o"
  "CMakeFiles/sim_invariants_test.dir/sim_invariants_test.cpp.o.d"
  "sim_invariants_test"
  "sim_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
