file(REMOVE_RECURSE
  "CMakeFiles/device_attack_test.dir/device_attack_test.cpp.o"
  "CMakeFiles/device_attack_test.dir/device_attack_test.cpp.o.d"
  "device_attack_test"
  "device_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
