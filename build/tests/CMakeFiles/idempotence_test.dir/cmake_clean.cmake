file(REMOVE_RECURSE
  "CMakeFiles/idempotence_test.dir/idempotence_test.cpp.o"
  "CMakeFiles/idempotence_test.dir/idempotence_test.cpp.o.d"
  "idempotence_test"
  "idempotence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idempotence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
