# Empty compiler generated dependencies file for idempotence_test.
# This may be replaced when dependencies are built.
