file(REMOVE_RECURSE
  "CMakeFiles/analog_test.dir/analog_test.cpp.o"
  "CMakeFiles/analog_test.dir/analog_test.cpp.o.d"
  "analog_test"
  "analog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
