# Empty dependencies file for attack_surface_test.
# This may be replaced when dependencies are built.
