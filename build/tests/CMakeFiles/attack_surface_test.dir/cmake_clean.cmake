file(REMOVE_RECURSE
  "CMakeFiles/attack_surface_test.dir/attack_surface_test.cpp.o"
  "CMakeFiles/attack_surface_test.dir/attack_surface_test.cpp.o.d"
  "attack_surface_test"
  "attack_surface_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
