# Empty compiler generated dependencies file for gecko.
# This may be replaced when dependencies are built.
