src/CMakeFiles/gecko.dir/energy/power_model.cpp.o: \
 /root/repo/src/energy/power_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/energy/power_model.hpp
