file(REMOVE_RECURSE
  "libgecko.a"
)
