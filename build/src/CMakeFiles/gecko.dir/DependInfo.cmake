
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/adc.cpp" "src/CMakeFiles/gecko.dir/analog/adc.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/analog/adc.cpp.o.d"
  "/root/repo/src/analog/comparator.cpp" "src/CMakeFiles/gecko.dir/analog/comparator.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/analog/comparator.cpp.o.d"
  "/root/repo/src/analog/emi_coupling.cpp" "src/CMakeFiles/gecko.dir/analog/emi_coupling.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/analog/emi_coupling.cpp.o.d"
  "/root/repo/src/analog/resonance.cpp" "src/CMakeFiles/gecko.dir/analog/resonance.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/analog/resonance.cpp.o.d"
  "/root/repo/src/analog/voltage_monitor.cpp" "src/CMakeFiles/gecko.dir/analog/voltage_monitor.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/analog/voltage_monitor.cpp.o.d"
  "/root/repo/src/attack/attack_schedule.cpp" "src/CMakeFiles/gecko.dir/attack/attack_schedule.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/attack/attack_schedule.cpp.o.d"
  "/root/repo/src/attack/emi_source.cpp" "src/CMakeFiles/gecko.dir/attack/emi_source.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/attack/emi_source.cpp.o.d"
  "/root/repo/src/attack/rigs.cpp" "src/CMakeFiles/gecko.dir/attack/rigs.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/attack/rigs.cpp.o.d"
  "/root/repo/src/compiler/alias_analysis.cpp" "src/CMakeFiles/gecko.dir/compiler/alias_analysis.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/alias_analysis.cpp.o.d"
  "/root/repo/src/compiler/cfg.cpp" "src/CMakeFiles/gecko.dir/compiler/cfg.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/cfg.cpp.o.d"
  "/root/repo/src/compiler/checkpoint_insertion.cpp" "src/CMakeFiles/gecko.dir/compiler/checkpoint_insertion.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/checkpoint_insertion.cpp.o.d"
  "/root/repo/src/compiler/checkpoint_pruning.cpp" "src/CMakeFiles/gecko.dir/compiler/checkpoint_pruning.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/checkpoint_pruning.cpp.o.d"
  "/root/repo/src/compiler/dominators.cpp" "src/CMakeFiles/gecko.dir/compiler/dominators.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/dominators.cpp.o.d"
  "/root/repo/src/compiler/liveness.cpp" "src/CMakeFiles/gecko.dir/compiler/liveness.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/liveness.cpp.o.d"
  "/root/repo/src/compiler/loop_analysis.cpp" "src/CMakeFiles/gecko.dir/compiler/loop_analysis.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/loop_analysis.cpp.o.d"
  "/root/repo/src/compiler/pipeline.cpp" "src/CMakeFiles/gecko.dir/compiler/pipeline.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/pipeline.cpp.o.d"
  "/root/repo/src/compiler/recovery_block.cpp" "src/CMakeFiles/gecko.dir/compiler/recovery_block.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/recovery_block.cpp.o.d"
  "/root/repo/src/compiler/region_formation.cpp" "src/CMakeFiles/gecko.dir/compiler/region_formation.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/region_formation.cpp.o.d"
  "/root/repo/src/compiler/slot_coloring.cpp" "src/CMakeFiles/gecko.dir/compiler/slot_coloring.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/slot_coloring.cpp.o.d"
  "/root/repo/src/compiler/wcet.cpp" "src/CMakeFiles/gecko.dir/compiler/wcet.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/compiler/wcet.cpp.o.d"
  "/root/repo/src/device/device_db.cpp" "src/CMakeFiles/gecko.dir/device/device_db.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/device/device_db.cpp.o.d"
  "/root/repo/src/device/device_profile.cpp" "src/CMakeFiles/gecko.dir/device/device_profile.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/device/device_profile.cpp.o.d"
  "/root/repo/src/energy/capacitor.cpp" "src/CMakeFiles/gecko.dir/energy/capacitor.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/energy/capacitor.cpp.o.d"
  "/root/repo/src/energy/harvester.cpp" "src/CMakeFiles/gecko.dir/energy/harvester.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/energy/harvester.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "src/CMakeFiles/gecko.dir/energy/power_model.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/energy/power_model.cpp.o.d"
  "/root/repo/src/ir/assembler.cpp" "src/CMakeFiles/gecko.dir/ir/assembler.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/ir/assembler.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/gecko.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/disassembler.cpp" "src/CMakeFiles/gecko.dir/ir/disassembler.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/ir/disassembler.cpp.o.d"
  "/root/repo/src/ir/instr.cpp" "src/CMakeFiles/gecko.dir/ir/instr.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/ir/instr.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/CMakeFiles/gecko.dir/ir/program.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/ir/program.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/CMakeFiles/gecko.dir/metrics/stats.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/metrics/stats.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/CMakeFiles/gecko.dir/metrics/table.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/metrics/table.cpp.o.d"
  "/root/repo/src/runtime/gecko_runtime.cpp" "src/CMakeFiles/gecko.dir/runtime/gecko_runtime.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/runtime/gecko_runtime.cpp.o.d"
  "/root/repo/src/sim/intermittent_sim.cpp" "src/CMakeFiles/gecko.dir/sim/intermittent_sim.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/sim/intermittent_sim.cpp.o.d"
  "/root/repo/src/sim/io_devices.cpp" "src/CMakeFiles/gecko.dir/sim/io_devices.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/sim/io_devices.cpp.o.d"
  "/root/repo/src/sim/jit_checkpoint.cpp" "src/CMakeFiles/gecko.dir/sim/jit_checkpoint.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/sim/jit_checkpoint.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/gecko.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/nvm.cpp" "src/CMakeFiles/gecko.dir/sim/nvm.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/sim/nvm.cpp.o.d"
  "/root/repo/src/workloads/basicmath.cpp" "src/CMakeFiles/gecko.dir/workloads/basicmath.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/basicmath.cpp.o.d"
  "/root/repo/src/workloads/bitcnt.cpp" "src/CMakeFiles/gecko.dir/workloads/bitcnt.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/bitcnt.cpp.o.d"
  "/root/repo/src/workloads/blink.cpp" "src/CMakeFiles/gecko.dir/workloads/blink.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/blink.cpp.o.d"
  "/root/repo/src/workloads/crc.cpp" "src/CMakeFiles/gecko.dir/workloads/crc.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/crc.cpp.o.d"
  "/root/repo/src/workloads/dhrystone.cpp" "src/CMakeFiles/gecko.dir/workloads/dhrystone.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/dhrystone.cpp.o.d"
  "/root/repo/src/workloads/dijkstra.cpp" "src/CMakeFiles/gecko.dir/workloads/dijkstra.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/CMakeFiles/gecko.dir/workloads/fft.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/fft.cpp.o.d"
  "/root/repo/src/workloads/fir.cpp" "src/CMakeFiles/gecko.dir/workloads/fir.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/fir.cpp.o.d"
  "/root/repo/src/workloads/qsort.cpp" "src/CMakeFiles/gecko.dir/workloads/qsort.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/qsort.cpp.o.d"
  "/root/repo/src/workloads/sensor_loop.cpp" "src/CMakeFiles/gecko.dir/workloads/sensor_loop.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/sensor_loop.cpp.o.d"
  "/root/repo/src/workloads/stringsearch.cpp" "src/CMakeFiles/gecko.dir/workloads/stringsearch.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/stringsearch.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/gecko.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/workloads.cpp.o.d"
  "/root/repo/src/workloads/xtea.cpp" "src/CMakeFiles/gecko.dir/workloads/xtea.cpp.o" "gcc" "src/CMakeFiles/gecko.dir/workloads/xtea.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
