src/CMakeFiles/gecko.dir/analog/comparator.cpp.o: \
 /root/repo/src/analog/comparator.cpp /usr/include/stdc-predef.h \
 /root/repo/src/analog/comparator.hpp
