# Empty dependencies file for fig07_remote_comp.
# This may be replaced when dependencies are built.
