file(REMOVE_RECURSE
  "CMakeFiles/fig07_remote_comp.dir/fig07_remote_comp.cpp.o"
  "CMakeFiles/fig07_remote_comp.dir/fig07_remote_comp.cpp.o.d"
  "fig07_remote_comp"
  "fig07_remote_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_remote_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
