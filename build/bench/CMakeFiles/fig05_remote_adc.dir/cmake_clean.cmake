file(REMOVE_RECURSE
  "CMakeFiles/fig05_remote_adc.dir/fig05_remote_adc.cpp.o"
  "CMakeFiles/fig05_remote_adc.dir/fig05_remote_adc.cpp.o.d"
  "fig05_remote_adc"
  "fig05_remote_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_remote_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
