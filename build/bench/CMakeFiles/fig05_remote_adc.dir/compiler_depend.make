# Empty compiler generated dependencies file for fig05_remote_adc.
# This may be replaced when dependencies are built.
