# Empty dependencies file for ablation_wcet.
# This may be replaced when dependencies are built.
