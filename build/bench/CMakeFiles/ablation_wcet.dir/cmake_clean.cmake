file(REMOVE_RECURSE
  "CMakeFiles/ablation_wcet.dir/ablation_wcet.cpp.o"
  "CMakeFiles/ablation_wcet.dir/ablation_wcet.cpp.o.d"
  "ablation_wcet"
  "ablation_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
