file(REMOVE_RECURSE
  "CMakeFiles/fig09_realtime.dir/fig09_realtime.cpp.o"
  "CMakeFiles/fig09_realtime.dir/fig09_realtime.cpp.o.d"
  "fig09_realtime"
  "fig09_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
