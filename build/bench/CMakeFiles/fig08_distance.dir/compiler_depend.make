# Empty compiler generated dependencies file for fig08_distance.
# This may be replaced when dependencies are built.
