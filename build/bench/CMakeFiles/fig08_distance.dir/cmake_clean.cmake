file(REMOVE_RECURSE
  "CMakeFiles/fig08_distance.dir/fig08_distance.cpp.o"
  "CMakeFiles/fig08_distance.dir/fig08_distance.cpp.o.d"
  "fig08_distance"
  "fig08_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
