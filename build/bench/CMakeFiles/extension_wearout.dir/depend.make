# Empty dependencies file for extension_wearout.
# This may be replaced when dependencies are built.
