file(REMOVE_RECURSE
  "CMakeFiles/extension_wearout.dir/extension_wearout.cpp.o"
  "CMakeFiles/extension_wearout.dir/extension_wearout.cpp.o.d"
  "extension_wearout"
  "extension_wearout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_wearout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
