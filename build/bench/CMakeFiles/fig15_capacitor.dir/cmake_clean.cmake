file(REMOVE_RECURSE
  "CMakeFiles/fig15_capacitor.dir/fig15_capacitor.cpp.o"
  "CMakeFiles/fig15_capacitor.dir/fig15_capacitor.cpp.o.d"
  "fig15_capacitor"
  "fig15_capacitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_capacitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
