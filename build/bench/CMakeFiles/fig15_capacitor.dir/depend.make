# Empty dependencies file for fig15_capacitor.
# This may be replaced when dependencies are built.
