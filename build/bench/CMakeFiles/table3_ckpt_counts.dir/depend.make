# Empty dependencies file for table3_ckpt_counts.
# This may be replaced when dependencies are built.
