file(REMOVE_RECURSE
  "CMakeFiles/table3_ckpt_counts.dir/table3_ckpt_counts.cpp.o"
  "CMakeFiles/table3_ckpt_counts.dir/table3_ckpt_counts.cpp.o.d"
  "table3_ckpt_counts"
  "table3_ckpt_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ckpt_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
