file(REMOVE_RECURSE
  "CMakeFiles/fig12_pruning.dir/fig12_pruning.cpp.o"
  "CMakeFiles/fig12_pruning.dir/fig12_pruning.cpp.o.d"
  "fig12_pruning"
  "fig12_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
