# Empty compiler generated dependencies file for fig14_harvesting.
# This may be replaced when dependencies are built.
