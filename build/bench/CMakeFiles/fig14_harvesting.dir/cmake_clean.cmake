file(REMOVE_RECURSE
  "CMakeFiles/fig14_harvesting.dir/fig14_harvesting.cpp.o"
  "CMakeFiles/fig14_harvesting.dir/fig14_harvesting.cpp.o.d"
  "fig14_harvesting"
  "fig14_harvesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_harvesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
