# Empty dependencies file for fig13_detection.
# This may be replaced when dependencies are built.
