file(REMOVE_RECURSE
  "CMakeFiles/fig13_detection.dir/fig13_detection.cpp.o"
  "CMakeFiles/fig13_detection.dir/fig13_detection.cpp.o.d"
  "fig13_detection"
  "fig13_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
