#include "bench_util.hpp"

/**
 * @file
 * Figure 9: real-time attack analysis on the MSP430FR5994.
 *
 * The attacker retunes the carrier over time to control how aggressive
 * the DoS is (stealthiness).  We replay a schedule of tones against
 * both monitor types and report forward progress per window.  Each
 * variant is one continuous simulation (windows depend on each other),
 * so the sweep parallelises across variants, not windows.
 */

namespace {

struct Window {
    double startS, endS;
    double freqMhz;  // 0 = attacker idle
};

}  // namespace

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 9: real-time attack control "
                 "(MSP430FR5994) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();

    struct Variant {
        analog::MonitorKind kind;
        std::vector<Window> windows;
        const char* label;
    };
    std::vector<Variant> variants = {
        {analog::MonitorKind::kAdc,
         {{0.00, 0.05, 0}, {0.05, 0.10, 27}, {0.10, 0.15, 24},
          {0.15, 0.20, 27}, {0.20, 0.25, 0}, {0.25, 0.30, 30}},
         "(a) ADC-based monitor"},
        {analog::MonitorKind::kComparator,
         {{0.00, 0.05, 0}, {0.05, 0.10, 5}, {0.10, 0.15, 8},
          {0.15, 0.20, 6}, {0.20, 0.25, 0}, {0.25, 0.30, 5}},
         "(b) comparator-based monitor"},
    };

    // One table's rows per variant (the in-variant windows are a
    // single continuous simulation).
    auto tables = runSweep(
        "realtime", variants,
        [&](const Variant& variant) -> std::vector<std::vector<std::string>> {
            auto compiled = compiler::compile(
                workloads::build("sensor_loop"), compiler::Scheme::kNvp);
            sim::IoHub io;
            workloads::setupIo("sensor_loop", io);
            energy::ConstantHarvester supply(3.3, 5.0);
            sim::SimConfig config;
            config.monitorKind = variant.kind;
            config.cap.capacitanceF = 1e-3;

            attack::AttackSchedule schedule;
            for (const Window& w : variant.windows)
                if (w.freqMhz > 0)
                    schedule.add({w.startS, w.endS, w.freqMhz * 1e6, 35.0});

            attack::RemoteRig rig(dev, variant.kind, 0.5);
            attack::EmiSource source(rig, 27e6, 35.0);
            sim::IntermittentSim simulation(compiled, dev, config, supply,
                                            io);
            simulation.setEmiSource(&source);
            simulation.setAttackSchedule(&schedule);

            // Reference cycle rate from the first clean window.
            std::vector<std::vector<std::string>> rows;
            std::uint64_t prev_cycles = 0;
            double clean_rate = 0.0;
            for (std::size_t i = 0; i < variant.windows.size(); ++i) {
                const Window& w = variant.windows[i];
                simulation.run(w.endS - w.startS);
                std::uint64_t cycles =
                    simulation.machine().stats.cycles - prev_cycles;
                prev_cycles = simulation.machine().stats.cycles;
                double rate =
                    static_cast<double>(cycles) / (w.endS - w.startS);
                if (i == 0)
                    clean_rate = rate;
                std::string tone = w.freqMhz > 0
                                       ? metrics::fmt(w.freqMhz, 0) + " MHz"
                                       : "idle";
                rows.push_back(
                    {metrics::fmt(w.startS, 2) + "-" +
                         metrics::fmt(w.endS, 2) + " s",
                     tone,
                     metrics::fmtPercent(
                         clean_rate > 0 ? rate / clean_rate : 0.0, 1)});
            }
            noteSimRun(simulation);
            return rows;
        });

    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::cout << variants[v].label << "\n";
        metrics::TextTable table;
        table.header({"window", "tone", "progress rate"});
        for (const auto& row : tables[v])
            table.row(row);
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper shape: retuning the carrier modulates the victim's "
                 "forward progress at will — detuned tones throttle "
                 "without fully stopping (stealthy), resonant tones cause "
                 "full DoS.\n";
    return bench::writeBenchReport("fig09_realtime");
}
