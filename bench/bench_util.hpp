#ifndef GECKO_BENCH_BENCH_UTIL_HPP_
#define GECKO_BENCH_BENCH_UTIL_HPP_

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/compile_cache.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "exp/parallel.hpp"
#include "exp/rng.hpp"
#include "exp/thread_pool.hpp"
#include "metrics/bench_json.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Shared helpers for the per-figure/per-table benchmark binaries.
 *
 * Sweeps run on the exp::ThreadPool via runSweep(): every sweep point
 * is an independent task owning its own simulator, and results come
 * back in input order, so stdout is byte-identical no matter how many
 * threads run (`GECKO_THREADS=1` vs `=8`).  Telemetry (wall time per
 * sweep, simulated cycles, thread count) accumulates process-wide and
 * is written as JSON by writeBenchReport() when `GECKO_BENCH_JSON`
 * names an output file — see bench_all and BENCH_sweeps.json.
 */

namespace gecko::bench {

/** Frequency grid: dense near the sub-50 MHz band, coarse above. */
inline std::vector<double>
attackFrequencyGrid(double lowHz, double highHz)
{
    std::vector<double> freqs;
    for (double f = lowHz; f <= highHz;) {
        freqs.push_back(f);
        if (f < 60e6)
            f += 1e6;
        else if (f < 200e6)
            f += 10e6;
        else
            f += 50e6;
    }
    return freqs;
}

/** One attacked simulation run's outcome. */
struct AttackOutcome {
    /// Executed machine cycles (forward-progress proxy for NVP).
    std::uint64_t cycles = 0;
    std::uint64_t completions = 0;
    double checkpointFailureRate = 0.0;
    std::uint64_t backupSignals = 0;
};

/** Common victim-under-attack configuration. */
struct VictimConfig {
    const device::DeviceProfile* device = nullptr;
    analog::MonitorKind monitor = analog::MonitorKind::kAdc;
    compiler::Scheme scheme = compiler::Scheme::kNvp;
    std::string workload = "sensor_loop";
    double simSeconds = 0.05;
    /// DC bench supply by default (DPI experimental setting, Fig. 3).
    bool squareWaveSupply = false;
};

/** Process-wide telemetry shared by runVictim/runSweep. */
struct Telemetry {
    std::mutex mutex;
    std::vector<metrics::SweepRecord> sweeps;
    std::atomic<std::uint64_t> simCycles{0};
    /// Quantum-loop telemetry (schema v5): monitor-sample quanta
    /// simulated, and the subset the coalescing fast path absorbed.
    std::atomic<std::uint64_t> quanta{0};
    std::atomic<std::uint64_t> coalescedQuanta{0};
    /// Checkpoint-integrity defence counters (runtime::RuntimeStats)
    /// accumulated across every victim run of the process.
    std::atomic<std::uint64_t> corruptedRestores{0};
    std::atomic<std::uint64_t> crcRejects{0};
    std::atomic<std::uint64_t> retriesExhausted{0};
    /// Event-trace sink, non-null when `--trace=PATH` or
    /// `GECKO_TRACE_OUT` requested one; every runSweep point records
    /// into its own per-point buffer.
    std::unique_ptr<trace::Collector> collector;
    /// Destination of the merged trace ("" = tracing off).
    std::string traceOut;
    /// Defense configuration of the bench's victims, recorded into the
    /// JSON report: "static" (paper default) or "adaptive" (a bench
    /// that arms the online controller sets this).
    std::string defenseMode = "static";
    /// Raw per-figure JSON payload, copied verbatim into the report's
    /// `figure_data` key (schema v6); "" = none.
    std::string figureData;
    std::chrono::steady_clock::time_point processStart =
        std::chrono::steady_clock::now();
};

inline Telemetry&
telemetry()
{
    static Telemetry t;
    return t;
}

/**
 * Bench entry hook: parse the shared CLI flags before the global pool
 * exists.  Supported: `--threads=N` (overrides `GECKO_THREADS`),
 * `--seed=N` (overrides `GECKO_SEED`; see exp/rng.hpp), and
 * `--trace=PATH` (overrides `GECKO_TRACE_OUT`) to write a merged event
 * trace of every sweep point — `.json` gets Chrome-trace/Perfetto
 * format, anything else JSONL (see trace/export.hpp).
 */
inline void
init(int argc, char** argv)
{
    std::string traceOut;
    if (const char* env = std::getenv("GECKO_TRACE_OUT"); env && *env)
        traceOut = env;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0) {
            int n = std::atoi(arg.c_str() + 10);
            if (n >= 1)
                exp::ThreadPool::setGlobalThreads(n);
        } else if (arg.rfind("--seed=", 0) == 0) {
            exp::setGlobalSeed(std::strtoull(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--trace=", 0) == 0) {
            traceOut = arg.substr(8);
        }
    }
    if (!traceOut.empty()) {
        if (trace::compiledIn()) {
            telemetry().traceOut = traceOut;
            telemetry().collector = std::make_unique<trace::Collector>();
        } else {
            std::cerr << "[bench] --trace requested but tracing is "
                         "compiled out (GECKO_TRACE=0); ignoring\n";
        }
    }
    telemetry();  // pin the process start time
}

/**
 * Execute `fn` over `points` on the global pool, results in input
 * order, recording sweep telemetry under `label`.
 */
template <class Point, class Fn>
auto
runSweep(const std::string& label, const std::vector<Point>& points, Fn fn)
{
    auto& pool = exp::ThreadPool::global();
    std::vector<double> taskSeconds;
    auto t0 = std::chrono::steady_clock::now();
    // Each point records into its own trace buffer keyed by
    // (sweep label, point ordinal); parallelMap hands `fn` references
    // into `points`, so the ordinal is recoverable by address.
    auto traced = [&](const Point& p) {
        trace::CaseScope scope(
            telemetry().collector.get(), label,
            static_cast<std::uint64_t>(&p - points.data()));
        return fn(p);
    };
    auto results = exp::parallelMap(pool, points, traced, &taskSeconds);
    auto t1 = std::chrono::steady_clock::now();

    metrics::SweepRecord record;
    record.label = label;
    record.tasks = points.size();
    record.threads = pool.threadCount();
    record.wallS = std::chrono::duration<double>(t1 - t0).count();
    for (double s : taskSeconds)
        record.taskS += s;
    {
        std::lock_guard<std::mutex> lock(telemetry().mutex);
        telemetry().sweeps.push_back(std::move(record));
    }
    return results;
}

/** Accumulate a victim run's defence counters into the telemetry. */
inline void
noteRuntimeStats(const runtime::RuntimeStats& stats)
{
    telemetry().corruptedRestores.fetch_add(stats.corruptedRestores,
                                            std::memory_order_relaxed);
    telemetry().crcRejects.fetch_add(stats.crcRejects,
                                     std::memory_order_relaxed);
    telemetry().retriesExhausted.fetch_add(stats.retriesExhausted,
                                           std::memory_order_relaxed);
}

/**
 * Emit the figure's JSON telemetry when `GECKO_BENCH_JSON` names an
 * output path.  Call as the bench's exit value: `return
 * bench::writeBenchReport("fig04");` — stdout stays untouched so
 * series output remains byte-comparable across thread counts.
 * `status` ("pass"/"fail") is for benches with a verdict; empty means
 * "no pass/fail semantics".  Also flushes the event trace when
 * `--trace=`/`GECKO_TRACE_OUT` armed one — independent of
 * GECKO_BENCH_JSON.
 */
inline int
writeBenchReport(const std::string& figure, const std::string& status = "")
{
    int rc = 0;
    if (telemetry().collector) {
        if (!trace::writeTraceFile(*telemetry().collector,
                                   telemetry().traceOut)) {
            std::cerr << "[bench] cannot write trace "
                      << telemetry().traceOut << "\n";
            rc = 1;
        }
    }
    const char* path = std::getenv("GECKO_BENCH_JSON");
    if (!path || !*path)
        return rc;
    metrics::BenchReport report;
    report.figure = figure;
    report.status = status;
    report.traceOut = telemetry().traceOut;
    report.corruptedRestores =
        telemetry().corruptedRestores.load(std::memory_order_relaxed);
    report.crcRejects =
        telemetry().crcRejects.load(std::memory_order_relaxed);
    report.retriesExhausted =
        telemetry().retriesExhausted.load(std::memory_order_relaxed);
    report.seed = exp::globalSeed();
    report.defenseMode = telemetry().defenseMode;
    report.execBackend =
        sim::execBackendName(sim::defaultExecBackend());
    report.threads = exp::ThreadPool::global().threadCount();
    unsigned hw = std::thread::hardware_concurrency();
    report.hostCores = hw >= 1 ? hw : 1;
    report.wallS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() -
                       telemetry().processStart)
                       .count();
    report.simCycles =
        telemetry().simCycles.load(std::memory_order_relaxed);
    report.quanta = telemetry().quanta.load(std::memory_order_relaxed);
    report.coalescedQuanta =
        telemetry().coalescedQuanta.load(std::memory_order_relaxed);
    report.figureData = telemetry().figureData;
    {
        std::lock_guard<std::mutex> lock(telemetry().mutex);
        report.sweeps = telemetry().sweeps;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench] cannot write " << path << "\n";
        return 1;
    }
    out << report.toJson() << "\n";
    return rc;
}

/**
 * Latched id of the first SIGINT/SIGTERM delivered after
 * installSignalStop() (0 = none).  Drivers poll this as their
 * cooperative stop flag.
 */
inline std::atomic<int>&
stopSignal()
{
    static std::atomic<int> sig{0};
    return sig;
}

namespace detail {

/**
 * Block SIGINT/SIGTERM in the calling thread and every thread it
 * spawns afterwards, then hand them to `onSignal` on a dedicated
 * sigwait watcher.  Must run before the global pool's first use so
 * workers inherit the mask; only the watcher ever sees the signals,
 * which keeps the handler path free of async-signal-safety limits
 * (it may take locks and do file I/O, unlike a real signal handler).
 */
inline void
watchSignals(std::function<void(int)> onSignal)
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread([set, onSignal = std::move(onSignal)] {
        int sig = 0;
        if (sigwait(&set, &sig) == 0)
            onSignal(sig);
    }).detach();
}

}  // namespace detail

/**
 * Graceful-stop wiring for long drivers (campaign_runner): the first
 * SIGINT/SIGTERM latches stopSignal() so the driver drains and
 * journals its progress; a second one force-exits for impatient ^C^C.
 */
inline void
installSignalStop()
{
    detail::watchSignals([](int sig) {
        stopSignal().store(sig);
        sigset_t set;
        sigemptyset(&set);
        sigaddset(&set, SIGINT);
        sigaddset(&set, SIGTERM);
        int again = 0;
        if (sigwait(&set, &again) == 0)
            std::_Exit(128 + again);
    });
}

/**
 * Flush-and-exit wiring for the figure benches (fault_campaign):
 * SIGINT/SIGTERM writes the partial JSON telemetry (status
 * "interrupted") and the merged trace, then exits 128+sig.  Partial
 * telemetry beats none: an interrupted multi-hour campaign still
 * reports what it measured.
 */
inline void
installSignalFlush(const std::string& figure)
{
    detail::watchSignals([figure](int sig) {
        writeBenchReport(figure, "interrupted");
        std::_Exit(128 + sig);
    });
}

/**
 * Run the victim once with the given (possibly null) injection setup.
 * Thread-safe: every call owns its simulator, I/O hub, and source; the
 * compiled program is shared through the global CompileCache.
 */
inline AttackOutcome
runVictim(const VictimConfig& vc, const attack::InjectionRig* rig,
          double freqHz, double powerDbm)
{
    std::string key = compiler::CompileCache::makeKey(
        vc.workload, vc.scheme, vc.device ? vc.device->name : "");
    std::shared_ptr<const compiler::CompiledProgram> compiled =
        compiler::CompileCache::global().getOrCompile(key, [&] {
            return compiler::compile(workloads::build(vc.workload),
                                     vc.scheme);
        });

    sim::IoHub io;
    workloads::setupIo(vc.workload, io);
    sim::SimConfig config;
    config.cap.capacitanceF = 1e-3;
    config.cap.initialV = 3.3;
    config.monitorKind = vc.monitor;

    std::unique_ptr<energy::Harvester> harvester;
    if (vc.squareWaveSupply)
        harvester =
            std::make_unique<energy::SquareWaveHarvester>(3.3, 5.0, 0.5,
                                                          0.5);
    else
        harvester = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);

    sim::IntermittentSim simulation(*compiled, *vc.device, config,
                                    *harvester, io);
    std::unique_ptr<attack::EmiSource> source;
    if (rig) {
        source = std::make_unique<attack::EmiSource>(*rig, freqHz,
                                                     powerDbm);
        simulation.setEmiSource(source.get());
    }
    simulation.run(vc.simSeconds);

    AttackOutcome out;
    out.cycles = simulation.machine().stats.cycles;
    out.completions = simulation.machine().stats.completions;
    out.checkpointFailureRate = simulation.checkpointFailureRate();
    out.backupSignals = simulation.stats.backupSignals;
    telemetry().simCycles.fetch_add(out.cycles,
                                    std::memory_order_relaxed);
    telemetry().quanta.fetch_add(simulation.stats.quanta,
                                 std::memory_order_relaxed);
    telemetry().coalescedQuanta.fetch_add(
        simulation.stats.coalescedQuanta, std::memory_order_relaxed);
    noteRuntimeStats(simulation.geckoRuntime().stats);
    return out;
}

/** Record simulated cycles from benches that drive the sim directly. */
inline void
noteSimCycles(std::uint64_t cycles)
{
    telemetry().simCycles.fetch_add(cycles, std::memory_order_relaxed);
}

/**
 * Record cycles plus the quantum-loop telemetry (schema v5) of one
 * directly-driven simulation.  Preferred over noteSimCycles for
 * benches holding an IntermittentSim: the coalesced-quantum counters
 * feed the recorded `coalesced_quanta` effectiveness metric.
 */
inline void
noteSimRun(sim::IntermittentSim& simulation)
{
    telemetry().simCycles.fetch_add(simulation.machine().stats.cycles,
                                    std::memory_order_relaxed);
    telemetry().quanta.fetch_add(simulation.stats.quanta,
                                 std::memory_order_relaxed);
    telemetry().coalescedQuanta.fetch_add(
        simulation.stats.coalescedQuanta, std::memory_order_relaxed);
}

/**
 * Forward-progress rate R = T_forward / T_guarantee (§IV-A2): executed
 * cycles under attack over executed cycles of the unattacked run.
 */
inline double
progressRate(const AttackOutcome& attacked, const AttackOutcome& clean)
{
    if (clean.cycles == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(attacked.cycles) /
                             static_cast<double>(clean.cycles));
}

/** Print a named series as "x y" rows. */
inline void
printSeries(const metrics::Series& series, const std::string& xlabel,
            const std::string& ylabel)
{
    std::cout << "# series: " << series.name << "  (" << xlabel << " vs "
              << ylabel << ")\n";
    for (std::size_t i = 0; i < series.x.size(); ++i)
        std::cout << "  " << series.x[i] << "\t" << series.y[i] << "\n";
}

}  // namespace gecko::bench

#endif  // GECKO_BENCH_BENCH_UTIL_HPP_
