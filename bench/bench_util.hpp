#ifndef GECKO_BENCH_BENCH_UTIL_HPP_
#define GECKO_BENCH_BENCH_UTIL_HPP_

#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Shared helpers for the per-figure/per-table benchmark binaries.
 */

namespace gecko::bench {

/** Frequency grid: dense near the sub-50 MHz band, coarse above. */
inline std::vector<double>
attackFrequencyGrid(double lowHz, double highHz)
{
    std::vector<double> freqs;
    for (double f = lowHz; f <= highHz;) {
        freqs.push_back(f);
        if (f < 60e6)
            f += 1e6;
        else if (f < 200e6)
            f += 10e6;
        else
            f += 50e6;
    }
    return freqs;
}

/** One attacked simulation run's outcome. */
struct AttackOutcome {
    /// Executed machine cycles (forward-progress proxy for NVP).
    std::uint64_t cycles = 0;
    std::uint64_t completions = 0;
    double checkpointFailureRate = 0.0;
    std::uint64_t backupSignals = 0;
};

/** Common victim-under-attack configuration. */
struct VictimConfig {
    const device::DeviceProfile* device = nullptr;
    analog::MonitorKind monitor = analog::MonitorKind::kAdc;
    compiler::Scheme scheme = compiler::Scheme::kNvp;
    std::string workload = "sensor_loop";
    double simSeconds = 0.05;
    /// DC bench supply by default (DPI experimental setting, Fig. 3).
    bool squareWaveSupply = false;
};

/**
 * Run the victim once with the given (possibly null) injection setup.
 */
inline AttackOutcome
runVictim(const VictimConfig& vc, const attack::InjectionRig* rig,
          double freqHz, double powerDbm)
{
    static std::map<std::pair<std::string, int>,
                    std::shared_ptr<compiler::CompiledProgram>>
        cache;
    auto key = std::make_pair(vc.workload, static_cast<int>(vc.scheme));
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto compiled = std::make_shared<compiler::CompiledProgram>(
            compiler::compile(workloads::build(vc.workload), vc.scheme));
        it = cache.emplace(key, std::move(compiled)).first;
    }

    sim::IoHub io;
    workloads::setupIo(vc.workload, io);
    sim::SimConfig config;
    config.cap.capacitanceF = 1e-3;
    config.cap.initialV = 3.3;
    config.monitorKind = vc.monitor;

    std::unique_ptr<energy::Harvester> harvester;
    if (vc.squareWaveSupply)
        harvester =
            std::make_unique<energy::SquareWaveHarvester>(3.3, 5.0, 0.5,
                                                          0.5);
    else
        harvester = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);

    sim::IntermittentSim simulation(*it->second, *vc.device, config,
                                    *harvester, io);
    std::unique_ptr<attack::EmiSource> source;
    if (rig) {
        source = std::make_unique<attack::EmiSource>(*rig, freqHz,
                                                     powerDbm);
        simulation.setEmiSource(source.get());
    }
    simulation.run(vc.simSeconds);

    AttackOutcome out;
    out.cycles = simulation.machine().stats.cycles;
    out.completions = simulation.machine().stats.completions;
    out.checkpointFailureRate = simulation.checkpointFailureRate();
    out.backupSignals = simulation.stats.backupSignals;
    return out;
}

/**
 * Forward-progress rate R = T_forward / T_guarantee (§IV-A2): executed
 * cycles under attack over executed cycles of the unattacked run.
 */
inline double
progressRate(const AttackOutcome& attacked, const AttackOutcome& clean)
{
    if (clean.cycles == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(attacked.cycles) /
                             static_cast<double>(clean.cycles));
}

/** Print a named series as "x y" rows. */
inline void
printSeries(const metrics::Series& series, const std::string& xlabel,
            const std::string& ylabel)
{
    std::cout << "# series: " << series.name << "  (" << xlabel << " vs "
              << ylabel << ")\n";
    for (std::size_t i = 0; i < series.x.size(); ++i)
        std::cout << "  " << series.x[i] << "\t" << series.y[i] << "\n";
}

}  // namespace gecko::bench

#endif  // GECKO_BENCH_BENCH_UTIL_HPP_
