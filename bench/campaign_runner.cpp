#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/engine.hpp"
#include "campaign/manifest.hpp"
#include "device/device_db.hpp"
#include "fault/spec.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Crash-tolerant campaign driver (DESIGN.md §13).
 *
 * Runs (or resumes) a campaign over workload × scheme × scenario ×
 * seed in a durable directory.  Kill it — SIGINT, SIGTERM, even
 * `kill -9` — and rerunning the same command continues exactly where
 * it stopped; the final `aggregate.json` and the stdout aggregate line
 * are byte-identical to an uninterrupted run (the kill-and-resume
 * oracle in tests/campaign_kill_resume.sh enforces this).
 *
 * Usage: campaign_runner [--dir=PATH] [--fresh] [--quick] [--status]
 *                        [--workloads=a,b] [--schemes=a,b]
 *                        [--devices=a,b] [--defenses=a,b] [--seeds=N]
 *                        [--sim=S] [--slice=S] [--max-jobs=N]
 *                        [--threads=N] [--seed=N] [--spec=FILE]
 *
 * The default job space is the full workload × device matrix: every
 * workloads::build() benchmark on every Table-I board.  --quick (and
 * the spec engine section) narrows it.  Changing the space changes its
 * configHash, so a directory journaled under the old single-board
 * default refuses to resume under the new one — that refusal is the
 * identity guard working, not a bug; finish old dirs with the explicit
 * flags that describe their space.
 *
 * --spec=FILE loads a declarative scenario spec (src/fault/spec.hpp):
 * its `engine` section sets devices/seeds/sim/slice, its `scenario`
 * section replaces the default scenario list (clean is always kept as
 * the baseline), and a spec `seed` overrides GECKO_SEED / --seed.
 * Explicit flags after --spec still win over the spec's values.
 *
 * Exit status: 0 only when the campaign is complete (every job done or
 * quarantined), so `until campaign_runner ...; do :; done` is a valid
 * resume loop.
 */

namespace {

using namespace gecko;

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

compiler::Scheme
schemeByName(const std::string& name)
{
    for (compiler::Scheme s :
         {compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
          compiler::Scheme::kGeckoNoPrune, compiler::Scheme::kGecko}) {
        if (name == compiler::schemeName(s))
            return s;
    }
    throw std::runtime_error("unknown scheme: " + name);
}

/** Sum every `"key":N` occurrence in `json` (per-group counters). */
std::uint64_t
sumAll(const std::string& json, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    std::uint64_t total = 0;
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        total += std::strtoull(json.c_str() + pos, nullptr, 10);
    }
    return total;
}

void
printStatus(const std::string& dir)
{
    campaign::ManifestRecovery rec =
        campaign::readManifest(dir + "/manifest.jsonl");
    if (!rec.hasHeader) {
        std::cout << "no campaign in " << dir << "\n";
        return;
    }
    std::uint64_t done = 0, failed = 0, running = 0, quarantined = 0;
    for (const auto& [job, r] : rec.latest) {
        switch (r.state) {
            case campaign::JobState::kDone: ++done; break;
            case campaign::JobState::kFailed: ++failed; break;
            case campaign::JobState::kRunning: ++running; break;
            case campaign::JobState::kQuarantined: ++quarantined; break;
            case campaign::JobState::kPending: break;
        }
    }
    std::cout << "campaign " << dir << ": jobs=" << rec.totalJobs
              << " done=" << done << " running=" << running
              << " failed=" << failed << " quarantined=" << quarantined
              << " torn_lines=" << rec.tornLines << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    // First ^C/SIGTERM latches the cooperative stop flag: shards
    // snapshot their in-flight jobs and the journal is flushed before
    // exit.  A second one force-quits.
    bench::installSignalStop();

    std::string dir = "campaign_out";
    bool fresh = false;
    bool quick = false;
    bool statusOnly = false;

    campaign::EngineConfig config;
    campaign::CampaignSpace& space = config.space;
    // Full workload × device matrix by default (ROADMAP item 2): every
    // buildable benchmark plus the app workloads, on every Table-I
    // board.  Each job is cheap (tens of simulated milliseconds), so
    // the full matrix stays interactive; --quick narrows it.
    space.workloads = workloads::benchmarkNames();
    space.workloads.push_back("sensor_loop");
    space.workloads.push_back("sensor_app");
    space.workloads.push_back("xtea");
    space.devices.clear();
    for (const device::DeviceProfile& d : device::DeviceDb::all())
        space.devices.push_back(d.name);
    space.schemes = {compiler::Scheme::kNvp, compiler::Scheme::kGecko};
    {
        campaign::Scenario clean;
        clean.kind = campaign::ScenarioKind::kClean;
        clean.freqHz = 0.0;
        clean.powerDbm = 0.0;
        campaign::Scenario tone;
        tone.kind = campaign::ScenarioKind::kTone;
        campaign::Scenario burst;
        burst.kind = campaign::ScenarioKind::kBurst;
        space.scenarios = {clean, tone, burst};
    }
    int seedCount = 4;
    space.simSeconds = 0.02;
    space.sliceSimSeconds = 0.005;
    fault::FaultSpec spec;
    std::string specPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--dir=", 0) == 0) {
            dir = arg.substr(6);
        } else if (arg == "--fresh") {
            fresh = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--status") {
            statusOnly = true;
        } else if (arg.rfind("--workloads=", 0) == 0) {
            space.workloads = splitList(arg.substr(12));
        } else if (arg.rfind("--schemes=", 0) == 0) {
            space.schemes.clear();
            for (const std::string& name : splitList(arg.substr(10)))
                space.schemes.push_back(schemeByName(name));
        } else if (arg.rfind("--devices=", 0) == 0) {
            space.devices = splitList(arg.substr(10));
        } else if (arg.rfind("--defenses=", 0) == 0) {
            space.defenses = splitList(arg.substr(11));
        } else if (arg.rfind("--seeds=", 0) == 0) {
            seedCount = std::max(1, std::atoi(arg.c_str() + 8));
        } else if (arg.rfind("--sim=", 0) == 0) {
            space.simSeconds = std::atof(arg.c_str() + 6);
        } else if (arg.rfind("--slice=", 0) == 0) {
            space.sliceSimSeconds = std::atof(arg.c_str() + 8);
        } else if (arg.rfind("--max-jobs=", 0) == 0) {
            config.maxJobsThisRun = std::strtoull(
                arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--spec=", 0) == 0) {
            specPath = arg.substr(7);
            std::string error;
            if (!fault::loadSpecFile(specPath, &spec, &error)) {
                std::cerr << error << "\n";
                return 2;
            }
            // Engine section: job-space knobs (later flags still win).
            if (!spec.devices.empty())
                space.devices = spec.devices;
            if (spec.seeds > 0)
                seedCount = spec.seeds;
            if (spec.simS > 0.0)
                space.simSeconds = spec.simS;
            if (spec.sliceS > 0.0)
                space.sliceSimSeconds = spec.sliceS;
            if (!spec.workloads.empty())
                space.workloads = spec.workloads;
            if (!spec.schemes.empty())
                space.schemes = spec.schemes;
            // Scenario section: the spec's scenario replaces the
            // default attack list; clean stays as the baseline arm.
            if (spec.hasScenario) {
                campaign::Scenario sc;
                sc.freqHz = spec.scenario.freqHz;
                sc.powerDbm = spec.scenario.powerDbm;
                sc.gridRows = spec.scenario.gridRows;
                sc.gridCols = spec.scenario.gridCols;
                sc.gridRow = spec.scenario.gridRow;
                sc.gridCol = spec.scenario.gridCol;
                sc.burstCount = spec.scenario.burstCount;
                sc.burstOnS = spec.scenario.burstOnS;
                sc.burstGapS = spec.scenario.burstGapS;
                // Schema v2 attack-schedule scripting.
                sc.dutyPeriodS = spec.scenario.dutyPeriodS;
                sc.dutyOnFrac = spec.scenario.dutyOnFrac;
                sc.phaseS = spec.scenario.phaseS;
                sc.envelopeDbm = spec.scenario.envelopeDbm;
                sc.outagePeriodS = spec.scenario.outagePeriodS;
                sc.outageOnFrac = spec.scenario.outageOnFrac;
                campaign::Scenario clean;
                clean.kind = campaign::ScenarioKind::kClean;
                clean.freqHz = 0.0;
                clean.powerDbm = 0.0;
                // Outage is environment, not attack: the clean baseline
                // arm shares it so the attack delta isolates the EMI.
                clean.outagePeriodS = spec.scenario.outagePeriodS;
                clean.outageOnFrac = spec.scenario.outageOnFrac;
                space.scenarios = {clean};
                if (spec.scenario.kind == "tone") {
                    sc.kind = campaign::ScenarioKind::kTone;
                    space.scenarios.push_back(sc);
                } else if (spec.scenario.kind == "burst") {
                    sc.kind = campaign::ScenarioKind::kBurst;
                    space.scenarios.push_back(sc);
                }
            }
        } else if (arg.rfind("--threads=", 0) == 0 ||
                   arg.rfind("--seed=", 0) == 0 ||
                   arg.rfind("--trace=", 0) == 0) {
            // handled by bench::init
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }
    if (quick) {
        space.workloads = {"sensor_loop"};
        space.devices = {"MSP430FR5994"};
        space.scenarios.resize(2);  // clean + tone
        seedCount = 2;
        space.simSeconds = 0.01;
        space.sliceSimSeconds = 0.0025;
    }
    for (int s = 1; s <= seedCount; ++s)
        space.seeds.push_back(static_cast<std::uint64_t>(s));

    if (statusOnly) {
        printStatus(dir);
        return 0;
    }

    std::error_code ec;
    if (fresh)
        std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);

    config.dir = dir;
    // Spec seed > GECKO_SEED / --seed > 1 (fault::resolveSeed).
    config.seed = specPath.empty()
                      ? (exp::globalSeed() != 0 ? exp::globalSeed() : 1)
                      : fault::resolveSeed(spec);
    config.specPath = specPath;
    config.stopRequested = [] { return bench::stopSignal().load() != 0; };

    campaign::EngineReport report;
    try {
        report = campaign::runCampaign(config, exp::ThreadPool::global());
    } catch (const std::exception& e) {
        std::cerr << "campaign_runner: " << e.what() << "\n";
        return 1;
    }

    // Run-dependent telemetry (varies across kill/resume) goes to
    // stderr; stdout carries only the deterministic aggregate.
    std::cerr << "[campaign] jobs=" << report.jobsTotal << " done="
              << report.jobsDone << " quarantined="
              << report.jobsQuarantined << " requeued="
              << report.jobsRequeued << " resumed_snapshots="
              << report.resumedFromSnapshot << " failed_attempts="
              << report.attemptsFailed << " shard_deaths="
              << report.shardDeaths << " torn_lines="
              << report.tornManifestLines + report.tornResultLines
              << (report.complete ? " COMPLETE" : " INCOMPLETE") << "\n";
    if (report.complete)
        std::cout << report.aggregateJson << "\n";

    bench::telemetry().simCycles.fetch_add(
        sumAll(report.aggregateJson, "cycles"));
    const std::string status = report.complete
                                   ? (report.jobsQuarantined == 0
                                          ? "pass"
                                          : "fail")
                                   : "interrupted";
    int jsonRc = bench::writeBenchReport("campaign_runner", status);
    if (!report.complete)
        return bench::stopSignal().load() != 0 ? 3 : 4;
    return report.jobsQuarantined == 0 ? jsonRc : 1;
}
