#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/optimizer.hpp"
#include "bench_util.hpp"
#include "metrics/bench_json.hpp"

/**
 * @file
 * Defense-vs-best-attack matrix (DESIGN.md §16).
 *
 * For each defense preset the seeded adversarial optimizer searches the
 * attack-knob space (frequency, amplitude, duty cycle, outage phase,
 * envelope, grid cell) for the schedule that maximizes
 * denial-of-progress, then re-evaluates the winner standalone from its
 * serialized schema-v2 spec — the bit-identical replay contract.  The
 * matrix row per defense reports the best attack's score, its knobs and
 * the clean/attacked progress counters; the raw rows ride in the bench
 * report's `figure_data` (schema v7).
 *
 * The search state is durable: every round is a crash-tolerant campaign
 * under --dir, so SIGKILL + rerun resumes mid-search and converges to
 * the byte-identical matrix (tests/adversary_kill_resume.sh).
 *
 * Self-checks (exit status):
 *  - every best attack replays to exactly its journaled score;
 *  - the clean arm never escalates the controller (zero false
 *    positives) under every defense;
 *  - the search finds a nonzero-denial attack against the static
 *    (undefended) configuration.
 *
 * Usage: fig_adversarial [--dir=PATH] [--fresh] [--quick]
 *                        [--defenses=a,b] [--rounds=N] [--restarts=N]
 *                        [--seeds=N] [--sim=S] [--threads=N] [--seed=N]
 */

namespace {

using namespace gecko;

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::installSignalStop();

    std::string dir = "adversarial_out";
    bool fresh = false;
    bool quick = false;
    std::vector<std::string> defenses = {"static", "adaptive", "strict"};

    adversary::SearchConfig base;
    base.rounds = 4;
    base.restarts = 2;
    base.seedsPerCandidate = 2;
    base.simSeconds = 0.02;
    base.sliceSimSeconds = 0.005;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--dir=", 0) == 0) {
            dir = arg.substr(6);
        } else if (arg == "--fresh") {
            fresh = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--defenses=", 0) == 0) {
            defenses = splitList(arg.substr(11));
        } else if (arg.rfind("--rounds=", 0) == 0) {
            base.rounds = std::max(0, std::atoi(arg.c_str() + 9));
        } else if (arg.rfind("--restarts=", 0) == 0) {
            base.restarts = std::max(0, std::atoi(arg.c_str() + 11));
        } else if (arg.rfind("--seeds=", 0) == 0) {
            base.seedsPerCandidate =
                std::max(1, std::atoi(arg.c_str() + 8));
        } else if (arg.rfind("--sim=", 0) == 0) {
            base.simSeconds = std::atof(arg.c_str() + 6);
        } else if (arg.rfind("--workload=", 0) == 0) {
            base.workload = arg.substr(11);
        } else if (arg.rfind("--threads=", 0) == 0 ||
                   arg.rfind("--seed=", 0) == 0 ||
                   arg.rfind("--trace=", 0) == 0) {
            // handled by bench::init
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }
    if (quick) {
        base.rounds = 1;
        base.restarts = 1;
        base.seedsPerCandidate = 1;
        base.simSeconds = 0.01;
        base.sliceSimSeconds = 0.0025;
        if (defenses.size() > 2)
            defenses = {"static", "adaptive"};
    }
    base.seed = exp::globalSeed() != 0 ? exp::globalSeed() : 1;
    base.stopRequested = [] {
        return bench::stopSignal().load() != 0;
    };

    std::error_code ec;
    if (fresh)
        std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);

    std::vector<adversary::SearchReport> rows;
    for (const std::string& defense : defenses) {
        adversary::SearchConfig sc = base;
        sc.defense = defense;
        sc.dir = dir + "/" + defense;
        adversary::SearchReport rep;
        try {
            rep = adversary::runSearch(sc, exp::ThreadPool::global());
        } catch (const std::exception& e) {
            std::cerr << "fig_adversarial: " << e.what() << "\n";
            return 1;
        }
        if (!rep.complete) {
            std::cerr << "[adversarial] stopped mid-search ("
                      << defense << ", rounds_done=" << rep.roundsDone
                      << "); rerun to resume\n";
            bench::writeBenchReport("fig_adversarial", "interrupted");
            return bench::stopSignal().load() != 0 ? 3 : 4;
        }
        rows.push_back(rep);
    }

    // ---- deterministic matrix (stdout; diffed by the kill-resume
    // oracle) ----
    std::cout << "=== Adversarial search: defense vs best attack ("
              << base.workload << "/"
              << compiler::schemeName(base.scheme) << ") ===\n\n";
    std::cout << "defense    score      clean→attacked commits   "
                 "rollbacks retries deaths escal  replay\n";
    std::string figRows = "[";
    bool ok = true;
    auto check = [&](bool cond, const std::string& what) {
        if (!cond) {
            std::cout << "CHECK FAILED: " << what << "\n";
            ok = false;
        }
    };
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const adversary::SearchReport& r = rows[i];
        const std::string& defense = defenses[i];
        std::ostringstream line;
        line << defense;
        line << std::string(defense.size() < 11 ? 11 - defense.size() : 1,
                            ' ');
        line << r.best.score << "  " << r.cleanTotals.commits << "→"
             << r.bestTotals.commits << "  rb=" << r.bestTotals.rollbacks
             << " re=" << r.bestTotals.retriesExhausted
             << " hd=" << r.bestTotals.hardDeaths
             << " es=" << r.bestTotals.escalations
             << (r.replayMatches ? "  replay-ok" : "  REPLAY-MISMATCH");
        std::cout << line.str() << "\n";
        std::cout << "  knobs: " << adversary::knobsJson(r.best.knobs)
                  << "\n";

        if (figRows.size() > 1)
            figRows += ",";
        figRows += "{\"defense\":\"" + metrics::jsonEscape(defense) +
                   "\",\"score\":" + std::to_string(r.best.score) +
                   ",\"clean_commits\":" +
                   std::to_string(r.cleanTotals.commits) +
                   ",\"attacked_commits\":" +
                   std::to_string(r.bestTotals.commits) +
                   ",\"rollbacks\":" +
                   std::to_string(r.bestTotals.rollbacks) +
                   ",\"retries_exhausted\":" +
                   std::to_string(r.bestTotals.retriesExhausted) +
                   ",\"hard_deaths\":" +
                   std::to_string(r.bestTotals.hardDeaths) +
                   ",\"escalations\":" +
                   std::to_string(r.bestTotals.escalations) +
                   ",\"clean_escalations\":" +
                   std::to_string(r.cleanTotals.escalations) +
                   ",\"rounds\":" + std::to_string(r.roundsDone) +
                   ",\"replay_ok\":" +
                   (r.replayMatches ? "true" : "false") +
                   ",\"knobs\":" + adversary::knobsJson(r.best.knobs) +
                   "}";

        check(r.replayMatches, defense + ": best attack did not replay "
                                         "to its journaled score");
        check(r.cleanTotals.escalations == 0,
              defense + ": clean-run false positives (escalations=" +
                  std::to_string(r.cleanTotals.escalations) + ")");
        if (defense == "static")
            check(r.best.score > 0,
                  "search found no denial against the static config");
    }
    figRows += "]";
    bench::telemetry().figureData =
        "{\"workload\":\"" + metrics::jsonEscape(base.workload) +
        "\",\"scheme\":\"" + compiler::schemeName(base.scheme) +
        "\",\"seed\":" + std::to_string(base.seed) +
        ",\"sim_s\":" + num(base.simSeconds) +
        ",\"outage_period_s\":" + num(base.outagePeriodS) +
        ",\"outage_on_frac\":" + num(base.outageOnFrac) +
        ",\"rows\":" + figRows + "}";

    std::cout << "\nEach best attack is serialized to "
              << "<dir>/<defense>/best_spec.json; replay with\n  "
              << "campaign_runner --fresh --dir=out "
              << "--spec=.../best_spec.json --workloads=" << base.workload
              << " --schemes=" << compiler::schemeName(base.scheme)
              << " --defenses=<defense>\n";
    std::cout << (ok ? "# adversarial checks passed\n"
                     : "# adversarial checks FAILED\n");
    int rc = bench::writeBenchReport("fig_adversarial",
                                     ok ? "pass" : "fail");
    return ok ? rc : 1;
}
