#include <cstdio>

#include "attack/spatial.hpp"
#include "bench_util.hpp"

/**
 * @file
 * Spatial susceptibility heatmap: a near-field scan of the victim board.
 *
 * An 8x8 grid of injection positions (attack::SpatialGrid) over the
 * first Table I board, single tone at the board's resonant band
 * (27 MHz, 35 dBm) from each cell via a GridRig-decorated remote rig.
 * Each cell runs an NVP victim and a GECKO victim; susceptibility is
 * 1 - forward-progress of the NVP victim relative to a clean run.
 *
 * Stdout renders the map as ASCII shading; the per-cell numbers
 * (coupling dB, local resonance, progress per scheme) are emitted as
 * the report's `figure_data` object (bench schema v6), one record per
 * cell, so plots can be regenerated without re-running the scan.
 */

namespace {

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    constexpr int kRows = 8;
    constexpr int kCols = 8;
    constexpr double kFreqHz = 27e6;
    constexpr double kPowerDbm = 35.0;

    const auto& dev = device::DeviceDb::all()[0];
    attack::SpatialGrid grid(kRows, kCols);

    std::cout << "=== Spatial map: " << kRows << "x" << kCols
              << " injection grid, " << dev.name << ", "
              << num(kFreqHz / 1e6) << " MHz @ " << num(kPowerDbm)
              << " dBm ===\n\n";

    auto victim = [&](compiler::Scheme scheme) {
        VictimConfig vc;
        vc.device = &dev;
        vc.scheme = scheme;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.02;
        return vc;
    };

    auto cleans =
        runSweep("clean",
                 std::vector<compiler::Scheme>{compiler::Scheme::kNvp,
                                               compiler::Scheme::kGecko},
                 [&](compiler::Scheme s) {
                     return runVictim(victim(s), nullptr, 0, 0);
                 });

    struct Cell {
        int row;
        int col;
        compiler::Scheme scheme;
    };
    std::vector<Cell> points;
    for (int r = 0; r < kRows; ++r)
        for (int c = 0; c < kCols; ++c)
            for (compiler::Scheme s :
                 {compiler::Scheme::kNvp, compiler::Scheme::kGecko})
                points.push_back({r, c, s});

    auto outcomes = runSweep("grid-scan", points, [&](const Cell& p) {
        attack::RemoteRig base(dev, analog::MonitorKind::kAdc, 0.1);
        attack::GridRig rig(base, grid, p.row, p.col);
        return runVictim(victim(p.scheme), &rig, kFreqHz, kPowerDbm);
    });

    // Render + collect per-cell telemetry.
    static const char kShade[] = " .:-=+*#%@";
    std::string cells = "[";
    std::size_t idx = 0;
    std::cout << "susceptibility (1 - NVP forward progress; '@' = dead)\n";
    for (int r = 0; r < kRows; ++r) {
        std::cout << "  ";
        for (int c = 0; c < kCols; ++c) {
            double pNvp = progressRate(outcomes[idx], cleans[0]);
            double pGecko = progressRate(outcomes[idx + 1], cleans[1]);
            idx += 2;
            double susceptibility = 1.0 - pNvp;
            if (susceptibility < 0.0)
                susceptibility = 0.0;
            int shade = static_cast<int>(susceptibility * 9.0 + 0.5);
            std::cout << kShade[shade < 0 ? 0 : (shade > 9 ? 9 : shade)];
            if (cells.size() > 1)
                cells += ",";
            cells += "{\"r\":" + std::to_string(r) +
                     ",\"c\":" + std::to_string(c) +
                     ",\"coupling_db\":" + num(grid.couplingDb(r, c)) +
                     ",\"resonance_hz\":" + num(grid.resonanceHz(r, c)) +
                     ",\"q\":" + num(grid.resonanceQ(r, c)) +
                     ",\"progress_nvp\":" + num(pNvp) +
                     ",\"progress_gecko\":" + num(pGecko) +
                     ",\"susceptibility\":" + num(susceptibility) + "}";
        }
        std::cout << "\n";
    }
    cells += "]";

    telemetry().figureData =
        "{\"rows\":" + std::to_string(kRows) +
        ",\"cols\":" + std::to_string(kCols) +
        ",\"seed\":" + std::to_string(grid.seed()) +
        ",\"freq_hz\":" + num(kFreqHz) +
        ",\"power_dbm\":" + num(kPowerDbm) +
        ",\"device\":\"" + metrics::jsonEscape(dev.name) +
        "\",\"cells\":" + cells + "}";

    std::cout << "\nPaper shape: susceptibility concentrates around the "
                 "monitor front end's trace area and falls off with "
                 "distance; GECKO's progress stays near clean even in "
                 "the hottest cells.\n";
    return bench::writeBenchReport("fig_spatial_map");
}
