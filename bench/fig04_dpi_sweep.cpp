#include "bench_util.hpp"

/**
 * @file
 * Figure 4: direct power injection (DPI) attack analysis.
 *
 * Single-tone EMI injected at P1 (power line) and P2 (capacitor node) of
 * Fig. 3 at 20 dBm, frequency swept 1 MHz–1 GHz, on four representative
 * commodity MCUs with ADC-based monitors.  Reports the forward-progress
 * rate per frequency and the minimum per injection point.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 4: DPI attack analysis (20 dBm, 1 MHz - 1 GHz, "
                 "P1 vs P2) ===\n\n";

    const std::vector<std::string> boards = {
        "MSP430FR2311", "MSP430F5529", "MSP430FR5994", "STM32L552ZE"};
    auto freqs = attackFrequencyGrid(1e6, 1e9);

    // Unattacked reference runs, one per board.
    auto cleans = runSweep("clean", boards, [](const std::string& name) {
        VictimConfig vc;
        vc.device = &device::DeviceDb::byName(name);
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        return runVictim(vc, nullptr, 0, 0);
    });

    // The full (board x injection point x frequency) grid as one sweep.
    struct Point {
        std::size_t board;
        attack::DpiPoint point;
        double freqHz;
    };
    std::vector<Point> points;
    for (std::size_t b = 0; b < boards.size(); ++b)
        for (attack::DpiPoint point :
             {attack::DpiPoint::kP1, attack::DpiPoint::kP2})
            for (double f : freqs)
                points.push_back({b, point, f});

    auto outcomes = runSweep("dpi", points, [&](const Point& p) {
        const auto& dev = device::DeviceDb::byName(boards[p.board]);
        VictimConfig vc;
        vc.device = &dev;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        attack::DpiRig rig(dev, p.point);
        return runVictim(vc, &rig, p.freqHz, 20.0);
    });

    metrics::TextTable summary;
    summary.header({"device", "point", "R_min", "@freq", "quiet >50MHz?"});

    std::size_t idx = 0;
    for (std::size_t b = 0; b < boards.size(); ++b) {
        for (attack::DpiPoint point :
             {attack::DpiPoint::kP1, attack::DpiPoint::kP2}) {
            metrics::Series series;
            series.name = boards[b] +
                          (point == attack::DpiPoint::kP1 ? "/P1" : "/P2");
            bool quiet_high = true;
            for (double f : freqs) {
                double r = progressRate(outcomes[idx++], cleans[b]);
                series.x.push_back(f / 1e6);
                series.y.push_back(r);
                if (f > 50e6 && r < 0.9)
                    quiet_high = false;
            }
            std::size_t lo = metrics::argminY(series);
            summary.row({series.name,
                         point == attack::DpiPoint::kP1 ? "P1" : "P2",
                         metrics::fmtPercent(series.y[lo]),
                         metrics::fmt(series.x[lo], 0) + " MHz",
                         quiet_high ? "yes" : "NO"});
            printSeries(series, "freq [MHz]", "forward progress rate");
            std::cout << "\n";
        }
    }
    std::cout << "--- Fig. 4 summary ---\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: resonance-limited disruption below "
                 "~50 MHz; P2 disrupts a wider band than P1.\n";
    return bench::writeBenchReport("fig04_dpi_sweep");
}
