#include "bench_util.hpp"

/**
 * @file
 * Ablation: the region budget (worst-case power-on period) knob.
 *
 * Smaller budgets mean more region splits — denser entry sequences and
 * more overhead — but tolerate shorter power-on periods (stronger
 * forward-progress guarantee under aggressive attacks).  This bench
 * sweeps maxRegionCycles and reports mean failure-free overhead, mean
 * region count, and the largest region WCET actually produced.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Ablation: WCET region budget vs overhead ===\n\n";

    const std::vector<long> budgets = {2000L, 5000L, 10000L, 20000L,
                                       50000L};

    struct Point {
        long budget;
        std::string name;
    };
    std::vector<Point> points;
    for (long budget : budgets)
        for (const std::string& name : workloads::benchmarkNames())
            points.push_back({budget, name});

    struct Cell {
        double overhead, regions, ckpts;
        long maxWcet;
    };
    auto cells = runSweep("wcet-budget", points, [](const Point& p) {
        ir::Program prog = workloads::build(p.name);
        sim::Nvm base_nvm(16384);
        sim::IoHub base_io;
        workloads::setupIo(p.name, base_io);
        std::uint64_t base = sim::runToCompletion(
            compiler::compile(prog, compiler::Scheme::kNvp), base_nvm,
            base_io);
        noteSimCycles(base);

        compiler::PipelineConfig config;
        config.maxRegionCycles = p.budget;
        auto compiled =
            compiler::compile(prog, compiler::Scheme::kGecko, config);
        sim::Nvm nvm(16384);
        sim::IoHub io;
        workloads::setupIo(p.name, io);
        std::uint64_t cycles = sim::runToCompletion(compiled, nvm, io);
        noteSimCycles(cycles);

        Cell cell{static_cast<double>(cycles) / base,
                  static_cast<double>(compiled.regions.size()),
                  static_cast<double>(compiled.stats.ckptsAfterPruning),
                  0};
        for (const auto& r : compiled.regions)
            cell.maxWcet = std::max(cell.maxWcet, r.wcetCycles);
        return cell;
    });

    metrics::TextTable table;
    table.header({"maxRegionCycles", "mean overhead", "mean #regions",
                  "max region WCET", "mean #ckpts"});

    std::size_t idx = 0;
    for (long budget : budgets) {
        std::vector<double> overheads, regions, ckpts;
        long max_wcet = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            (void)name;
            const Cell& cell = cells[idx++];
            overheads.push_back(cell.overhead);
            regions.push_back(cell.regions);
            ckpts.push_back(cell.ckpts);
            max_wcet = std::max(max_wcet, cell.maxWcet);
        }
        table.row({std::to_string(budget),
                   metrics::fmt(metrics::mean(overheads), 3) + "x",
                   metrics::fmt(metrics::mean(regions), 1),
                   std::to_string(max_wcet),
                   metrics::fmt(metrics::mean(ckpts), 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe budget trades instrumentation density against "
                 "the shortest power-on period the system survives with "
                 "guaranteed progress.  (Single I/O transactions set a "
                 "floor on the max region WCET.)\n";
    return bench::writeBenchReport("ablation_wcet");
}
