#include "bench_util.hpp"

/**
 * @file
 * Ablation: the region budget (worst-case power-on period) knob.
 *
 * Smaller budgets mean more region splits — denser entry sequences and
 * more overhead — but tolerate shorter power-on periods (stronger
 * forward-progress guarantee under aggressive attacks).  This bench
 * sweeps maxRegionCycles and reports mean failure-free overhead, mean
 * region count, and the largest region WCET actually produced.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Ablation: WCET region budget vs overhead ===\n\n";

    metrics::TextTable table;
    table.header({"maxRegionCycles", "mean overhead", "mean #regions",
                  "max region WCET", "mean #ckpts"});

    for (long budget : {2000L, 5000L, 10000L, 20000L, 50000L}) {
        std::vector<double> overheads, regions, ckpts;
        long max_wcet = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            ir::Program prog = workloads::build(name);
            sim::Nvm base_nvm(16384);
            sim::IoHub base_io;
            workloads::setupIo(name, base_io);
            std::uint64_t base = sim::runToCompletion(
                compiler::compile(prog, compiler::Scheme::kNvp), base_nvm,
                base_io);

            compiler::PipelineConfig config;
            config.maxRegionCycles = budget;
            auto compiled =
                compiler::compile(prog, compiler::Scheme::kGecko, config);
            sim::Nvm nvm(16384);
            sim::IoHub io;
            workloads::setupIo(name, io);
            std::uint64_t cycles =
                sim::runToCompletion(compiled, nvm, io);
            overheads.push_back(static_cast<double>(cycles) / base);
            regions.push_back(
                static_cast<double>(compiled.regions.size()));
            ckpts.push_back(
                static_cast<double>(compiled.stats.ckptsAfterPruning));
            for (const auto& r : compiled.regions)
                max_wcet = std::max(max_wcet, r.wcetCycles);
        }
        table.row({std::to_string(budget),
                   metrics::fmt(metrics::mean(overheads), 3) + "x",
                   metrics::fmt(metrics::mean(regions), 1),
                   std::to_string(max_wcet),
                   metrics::fmt(metrics::mean(ckpts), 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe budget trades instrumentation density against "
                 "the shortest power-on period the system survives with "
                 "guaranteed progress.  (Single I/O transactions set a "
                 "floor on the max region WCET.)\n";
    return 0;
}
