#include <benchmark/benchmark.h>

#include "analog/voltage_monitor.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/capacitor.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * google-benchmark micro-suite: throughput of the simulator primitives
 * and the compiler passes (useful when tuning the experiment harness).
 */

namespace {

using namespace gecko;

void
BM_InterpreterThroughput(benchmark::State& state)
{
    auto compiled = compiler::compile(workloads::build("bitcnt"),
                                      compiler::Scheme::kNvp);
    sim::Nvm nvm(16384);
    sim::IoHub io;
    sim::Machine machine(compiled, nvm, io);
    machine.setContinuous(true);
    std::uint64_t consumed = 0;
    for (auto _ : state) {
        machine.run(10000, &consumed);
        benchmark::DoNotOptimize(consumed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        machine.stats.instrs));
}
BENCHMARK(BM_InterpreterThroughput);

void
BM_CompileGecko(benchmark::State& state)
{
    ir::Program prog = workloads::build("dijkstra");
    for (auto _ : state) {
        auto compiled = compiler::compile(prog, compiler::Scheme::kGecko);
        benchmark::DoNotOptimize(compiled.regions.size());
    }
}
BENCHMARK(BM_CompileGecko);

void
BM_CapacitorChargeStep(benchmark::State& state)
{
    energy::CapacitorConfig config;
    energy::Capacitor cap(config);
    cap.setVoltage(2.0);
    for (auto _ : state) {
        cap.chargeFrom(3.3, 10.0, 1e-5);
        benchmark::DoNotOptimize(cap.energy());
        if (cap.voltage() > 3.2)
            cap.setVoltage(2.0);
    }
}
BENCHMARK(BM_CapacitorChargeStep);

void
BM_AdcMonitorObserve(benchmark::State& state)
{
    analog::AdcMonitor monitor(12, 3.3, 2.2, 3.0, 100e3);
    monitor.reset(3.3);
    double v = 3.3;
    for (auto _ : state) {
        v = (v < 2.0) ? 3.3 : v - 0.001;
        benchmark::DoNotOptimize(monitor.observe(v));
    }
}
BENCHMARK(BM_AdcMonitorObserve);

void
BM_EmiAmplitude(benchmark::State& state)
{
    const auto& dev = device::DeviceDb::msp430fr5994();
    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 5.0);
    double f = 5e6;
    for (auto _ : state) {
        f = (f > 500e6) ? 5e6 : f + 1e6;
        benchmark::DoNotOptimize(rig.amplitude(f, 35.0));
    }
}
BENCHMARK(BM_EmiAmplitude);

void
BM_GeckoRollback(benchmark::State& state)
{
    auto compiled = compiler::compile(workloads::build("dijkstra"),
                                      compiler::Scheme::kGecko);
    sim::Nvm nvm(16384);
    sim::IoHub io;
    sim::Machine machine(compiled, nvm, io);
    machine.setStagedIo(true);
    runtime::GeckoRuntime rt(compiled, machine, nvm);
    rt.onBoot();
    std::uint64_t consumed = 0;
    machine.run(3000, &consumed);
    for (auto _ : state) {
        machine.powerCycle();
        benchmark::DoNotOptimize(rt.onBoot());
    }
}
BENCHMARK(BM_GeckoRollback);

void
BM_IntermittentSimSecond(benchmark::State& state)
{
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      compiler::Scheme::kGecko);
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    sim::SimConfig config;
    sim::IntermittentSim simulation(compiled, dev, config, supply, io);
    for (auto _ : state)
        simulation.run(0.01);
}
BENCHMARK(BM_IntermittentSimSecond);

}  // namespace

BENCHMARK_MAIN();
