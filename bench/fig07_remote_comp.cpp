#include "bench_util.hpp"

/**
 * @file
 * Figure 7: remote EMI attack analysis on comparator-based voltage
 * monitors (the boards that have one: MSP430FR5994 / MSP430FR6989 per
 * Table I, plus the cortex-M boards).  35 dBm from 5 m.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 7: remote attack, comparator monitors "
                 "(35 dBm @ 5 m) ===\n\n";

    auto freqs = attackFrequencyGrid(2e6, 100e6);

    std::vector<const device::DeviceProfile*> boards;
    for (const auto& dev : device::DeviceDb::all())
        if (dev.hasComparatorMonitor)
            boards.push_back(&dev);

    auto cleans =
        runSweep("clean", boards, [](const device::DeviceProfile* dev) {
            VictimConfig vc;
            vc.device = dev;
            vc.monitor = analog::MonitorKind::kComparator;
            vc.workload = "sensor_loop";
            vc.simSeconds = 0.04;
            return runVictim(vc, nullptr, 0, 0);
        });

    struct Point {
        std::size_t board;
        double freqHz;
    };
    std::vector<Point> points;
    for (std::size_t b = 0; b < boards.size(); ++b)
        for (double f : freqs)
            points.push_back({b, f});

    auto outcomes = runSweep("remote-comp", points, [&](const Point& p) {
        const auto& dev = *boards[p.board];
        VictimConfig vc;
        vc.device = &dev;
        vc.monitor = analog::MonitorKind::kComparator;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        attack::RemoteRig rig(dev, analog::MonitorKind::kComparator, 5.0);
        return runVictim(vc, &rig, p.freqHz, 35.0);
    });

    metrics::TextTable summary;
    summary.header({"device", "R_min", "@freq"});

    std::size_t idx = 0;
    for (std::size_t b = 0; b < boards.size(); ++b) {
        metrics::Series series;
        series.name = boards[b]->name;
        for (double f : freqs) {
            series.x.push_back(f / 1e6);
            series.y.push_back(progressRate(outcomes[idx++], cleans[b]));
        }
        std::size_t lo = metrics::argminY(series);
        summary.row({boards[b]->name,
                     metrics::fmtPercent(series.y[lo], 3),
                     metrics::fmt(series.x[lo], 0) + " MHz"});
        printSeries(series, "freq [MHz]", "forward progress rate");
        std::cout << "\n";
    }

    std::cout << "--- Fig. 7 summary (compare Table I Comp-Rmin) ---\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: the FR5994's comparator path resonates "
                 "at 5/6 MHz and its continuous trigger drives forward "
                 "progress orders of magnitude below the ADC case.\n";
    return bench::writeBenchReport("fig07_remote_comp");
}
