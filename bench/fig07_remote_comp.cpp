#include "bench_util.hpp"

/**
 * @file
 * Figure 7: remote EMI attack analysis on comparator-based voltage
 * monitors (the boards that have one: MSP430FR5994 / MSP430FR6989 per
 * Table I, plus the cortex-M boards).  35 dBm from 5 m.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Fig. 7: remote attack, comparator monitors "
                 "(35 dBm @ 5 m) ===\n\n";

    auto freqs = attackFrequencyGrid(2e6, 100e6);
    metrics::TextTable summary;
    summary.header({"device", "R_min", "@freq"});

    for (const auto& dev : device::DeviceDb::all()) {
        if (!dev.hasComparatorMonitor)
            continue;
        VictimConfig vc;
        vc.device = &dev;
        vc.monitor = analog::MonitorKind::kComparator;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        AttackOutcome clean = runVictim(vc, nullptr, 0, 0);

        attack::RemoteRig rig(dev, analog::MonitorKind::kComparator, 5.0);
        metrics::Series series;
        series.name = dev.name;
        for (double f : freqs) {
            AttackOutcome out = runVictim(vc, &rig, f, 35.0);
            series.x.push_back(f / 1e6);
            series.y.push_back(progressRate(out, clean));
        }
        std::size_t lo = metrics::argminY(series);
        summary.row({dev.name, metrics::fmtPercent(series.y[lo], 3),
                     metrics::fmt(series.x[lo], 0) + " MHz"});
        printSeries(series, "freq [MHz]", "forward progress rate");
        std::cout << "\n";
    }

    std::cout << "--- Fig. 7 summary (compare Table I Comp-Rmin) ---\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: the FR5994's comparator path resonates "
                 "at 5/6 MHz and its continuous trigger drives forward "
                 "progress orders of magnitude below the ADC case.\n";
    return 0;
}
