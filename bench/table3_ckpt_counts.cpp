#include "bench_util.hpp"

/**
 * @file
 * Table III + §VII-C: static code metrics of the GECKO compiler output.
 *
 * Checkpoint stores per application after pruning, recovery-block
 * inventory (count / average size), lookup-table size, and binary-size
 * overhead.  The paper reports on average ~81 stores, ~7 recovery
 * blocks of ~6 instructions, a ~130-instruction lookup table and ~6 %
 * binary overhead.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Table III: GECKO static checkpoint/code metrics "
                 "===\n\n";

    auto stats = runSweep(
        "static-metrics", workloads::benchmarkNames(),
        [](const std::string& name) {
            auto compiled = compiler::compile(workloads::build(name),
                                              compiler::Scheme::kGecko);
            return compiled.stats;
        });

    metrics::TextTable table;
    table.header({"benchmark", "# ckpt stores", "# recovery blocks",
                  "avg block len", "lookup words", "code-size overhead"});

    std::vector<double> ckpts, blocks, sizes;
    std::size_t idx = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        const auto& st = stats[idx++];
        double avg_len =
            st.recoveryBlocks > 0
                ? static_cast<double>(st.recoveryInstrs) / st.recoveryBlocks
                : 0.0;
        ckpts.push_back(st.ckptsAfterPruning);
        blocks.push_back(st.recoveryBlocks);
        sizes.push_back(st.codeSizeOverhead());
        table.row({name, std::to_string(st.ckptsAfterPruning),
                   std::to_string(st.recoveryBlocks),
                   metrics::fmt(avg_len, 1),
                   std::to_string(st.lookupTableWords),
                   metrics::fmtPercent(st.codeSizeOverhead(), 1)});
    }
    table.row({"average", metrics::fmt(metrics::mean(ckpts), 0),
               metrics::fmt(metrics::mean(blocks), 1), "", "",
               metrics::fmtPercent(metrics::mean(sizes), 1)});
    table.print(std::cout);

    std::cout << "\nPaper reference: ~81 checkpoint stores and ~7 "
                 "recovery blocks (~6 instructions each) per app, ~130 "
                 "lookup-table instructions, ~6% binary overhead.  Note "
                 "our loop-collapsing WCET keeps static counts lower "
                 "than the paper's LLVM build (see EXPERIMENTS.md).\n";
    return bench::writeBenchReport("table3_ckpt_counts");
}
