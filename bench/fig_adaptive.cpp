#include "bench_util.hpp"

#include "defense/controller.hpp"

/**
 * @file
 * Adaptive-defense figure (DESIGN.md §11, beyond the paper): the online
 * DefenseController vs. the paper's static detector configuration under
 * a *sustained* EMI tone.
 *
 * The paper evaluates burst attacks (Fig. 13); its static response —
 * detect at boot, disable JIT, probe, re-enable — assumes the tone goes
 * away.  Under a sustained tone the static configuration keeps paying
 * forged-wake boot energy and torn-checkpoint retries, so throughput
 * collapses.  The adaptive controller cross-validates the redundant
 * monitor views, scores dV/dt against the RC physics bound, escalates
 * to rollback-only operation, and gates wake signals on a physics-timed
 * recharge dwell so forward progress survives the tone.
 *
 * Grid: {ADC, comparator} monitor x {clean, sustained attack} x
 * {static, adaptive}.  Reported per cell: completions, reboots,
 * detection latency (first escalation minus attack onset), escalation /
 * de-escalation / ratchet counters, deferred wakes, and the final mode.
 * Self-checks (exit status):
 *  - clean adaptive runs never escalate (zero false positives),
 *  - attacked adaptive runs detect (escalations > 0) with non-negative
 *    latency and complete at least as much work as static,
 *  - attacked adaptive runs de-escalate back to nominal after the tone
 *    ends (hysteresis round trip).
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);
    bench::telemetry().defenseMode = "adaptive";

    const double kTotalS = 8.0;
    const double kAttackStartS = 1.0;
    const double kAttackEndS = 6.0;

    std::cout << "=== Adaptive defense vs sustained EMI "
                 "(sensor app, tone " << kAttackStartS << "-"
              << kAttackEndS << " s of " << kTotalS << " s) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();

    struct Point {
        analog::MonitorKind monitor;
        bool attacked;
        bool adaptive;
    };
    std::vector<Point> points;
    for (auto kind :
         {analog::MonitorKind::kAdc, analog::MonitorKind::kComparator})
        for (bool attacked : {false, true})
            for (bool adaptive : {false, true})
                points.push_back({kind, attacked, adaptive});

    struct Cell {
        std::uint64_t completions = 0;
        std::uint64_t reboots = 0;
        defense::DefenseStats defense;
        defense::Mode finalMode = defense::Mode::kNominal;
        bool hadController = false;
    };
    auto cells = runSweep("adaptive", points, [&](const Point& p) {
        compiler::PipelineConfig pconfig;
        pconfig.maxRegionCycles = 60000;
        auto compiled = compiler::compile(workloads::build("sensor_app"),
                                          compiler::Scheme::kGecko,
                                          pconfig);
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester wave(3.3, 600.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        config.monitorKind = p.monitor;
        config.defense.enabled = p.adaptive;
        // Tighter energy-debt SLA than the 8-buffer default: a forged
        // wake burns a failed boot (~48 uJ) per lockout release, so one
        // buffered-energy's worth (~2.3 mJ here) bounds the waste to
        // ~1 s before the ratchet trips to the recharge-dwell mode.
        config.defense.energyDebtBudgetJ = 2.5e-3;

        // Tone on the attacked path's resonance (Table I): ADC path at
        // 27 MHz, FR5994 comparator path at 5 MHz.
        const double toneHz =
            p.monitor == analog::MonitorKind::kAdc ? 27e6 : 5e6;
        attack::RemoteRig rig(dev, p.monitor, 0.5);
        attack::EmiSource source(rig, toneHz, 38.0);
        std::vector<attack::AttackWindow> windows;
        if (p.attacked)
            windows.push_back({kAttackStartS, kAttackEndS, toneHz, 38.0});
        attack::AttackSchedule schedule(windows);

        sim::IntermittentSim simulation(compiled, dev, config, wave, io);
        simulation.setEmiSource(&source);
        simulation.setAttackSchedule(&schedule);
        simulation.run(kTotalS);

        Cell cell;
        cell.completions = simulation.machine().stats.completions;
        cell.reboots = simulation.stats.reboots;
        if (const defense::DefenseController* dc =
                simulation.defenseController()) {
            cell.defense = dc->stats();
            cell.finalMode = dc->mode();
            cell.hadController = true;
        }
        noteSimRun(simulation);
        return cell;
    });

    bool ok = true;
    auto check = [&](bool cond, const std::string& what) {
        if (!cond) {
            std::cout << "# FAIL: " << what << "\n";
            ok = false;
        }
    };

    metrics::TextTable table;
    table.header({"monitor", "attack", "defense", "done", "reboots",
                  "detectS", "esc", "deesc", "ratchet", "wakeDefer",
                  "peakDebtJ", "finalMode"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        const Cell& c = cells[i];
        double latency = -1.0;
        if (c.hadController && c.defense.firstEscalationT >= 0)
            latency = c.defense.firstEscalationT - kAttackStartS;
        table.row({analog::monitorKindName(p.monitor),
                   p.attacked ? "sustained" : "none",
                   p.adaptive ? "adaptive" : "static",
                   std::to_string(c.completions),
                   std::to_string(c.reboots),
                   latency >= 0 ? metrics::fmt(latency, 4) : "-",
                   std::to_string(c.defense.escalations),
                   std::to_string(c.defense.deEscalations),
                   std::to_string(c.defense.ratchetTrips),
                   std::to_string(c.defense.wakesDeferred),
                   metrics::fmt(c.defense.peakEnergyDebtJ, 5),
                   c.hadController ? defense::modeName(c.finalMode)
                                   : "-"});
    }
    table.print(std::cout);
    std::cout << "\n";

    // Pair up (static, adaptive) cells per (monitor, attack) for the
    // self-checks; the sweep order interleaves them adjacently.
    for (std::size_t i = 0; i < points.size(); i += 2) {
        const Point& p = points[i + 1];
        const Cell& st = cells[i];
        const Cell& ad = cells[i + 1];
        std::string label =
            std::string(analog::monitorKindName(p.monitor)) +
            (p.attacked ? "/attacked" : "/clean");
        check(ad.hadController, label + ": controller armed");
        if (!p.attacked) {
            check(ad.defense.escalations == 0,
                  label + ": false positives (escalations=" +
                      std::to_string(ad.defense.escalations) + ")");
            check(ad.completions == st.completions,
                  label + ": clean adaptive throughput diverged");
        } else {
            check(ad.defense.escalations > 0, label + ": no detection");
            check(ad.defense.firstEscalationT >= kAttackStartS,
                  label + ": detected before attack onset");
            check(ad.completions >= st.completions,
                  label + ": adaptive (" + std::to_string(ad.completions) +
                      ") below static (" + std::to_string(st.completions) +
                      ")");
            check(ad.completions > 0, label + ": adaptive made no progress");
            check(ad.finalMode == defense::Mode::kNominal,
                  label + ": did not de-escalate to nominal");
        }
    }

    std::cout << (ok ? "# adaptive-defense checks passed\n"
                     : "# adaptive-defense checks FAILED\n");
    int rc = bench::writeBenchReport("fig_adaptive",
                                     ok ? "pass" : "fail");
    return ok ? rc : 1;
}
