#include <iostream>

#include "metrics/table.hpp"

/**
 * @file
 * Table II: comparison of prior EMI-mitigation work against GECKO.
 *
 * A qualitative table (reproduced from the paper's related-work
 * analysis): prior countermeasures target sensors, often need hardware,
 * and none provides power-failure recovery — the property intermittent
 * systems cannot live without.
 */

int
main()
{
    using namespace gecko;

    std::cout << "=== Table II: prior EMI countermeasures vs GECKO ===\n\n";

    metrics::TextTable table;
    table.header({"Prior work", "Target", "HW/SW", "Energy eff.",
                  "Power-failure recovery", "Intermittent applicable"});
    table.row({"Ghost Talk [44]", "Microphones", "Hybrid", "Low", "No",
               "N/A"});
    table.row({"Rocking Drones [77]", "Drones", "Hybrid", "Low", "No",
               "N/A"});
    table.row({"Trick or Heat [84]", "Incubators", "Hardware", "Low",
               "No", "N/A"});
    table.row({"SoK [90]", "Analog sensors", "Hybrid", "Low", "No",
               "N/A"});
    table.row({"Detection of EMI [100]", "Temp. sensors, microphones",
               "Software", "High", "No", "N/A"});
    table.row({"Transduction Shield [85]", "Pressure sensors, mics",
               "Hybrid", "Low", "No", "N/A"});
    table.row({"Detection of Weak EMI [28]", "IIoT sensors", "Software",
               "Low", "No", "N/A"});
    table.row({"GECKO (this repo)", "Voltage monitor", "Software", "High",
               "Yes", "Applicable"});
    table.print(std::cout);

    std::cout << "\nGECKO is the only software-only scheme that keeps "
                 "crash consistency across power failures, which is what "
                 "makes it deployable on intermittent systems.\n";
    return 0;
}
