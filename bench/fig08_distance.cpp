#include "bench_util.hpp"

/**
 * @file
 * Figure 8: attack distance analysis.
 *
 * Remote attack on the MSP430FR5994 at its 27 MHz resonance, sweeping
 * the transmit power 0–35 dBm and the distance 0.25–5 m, with and
 * without a wall (closed door) in the path.  Reports the forward-
 * progress rate per (power, distance) and the maximum effective attack
 * range per power level.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 8: attack distance vs transmit power "
                 "(MSP430FR5994, 27 MHz) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    VictimConfig vc;
    vc.device = &dev;
    vc.workload = "sensor_loop";
    vc.simSeconds = 0.04;
    AttackOutcome clean = runVictim(vc, nullptr, 0, 0);

    const std::vector<double> distances = {0.25, 0.5, 1.0, 2.0,
                                           3.0,  4.0, 5.0};
    const std::vector<double> powers = {15.0, 20.0, 25.0, 30.0, 35.0};
    const std::vector<double> walls = {0.0, 6.0};

    struct Point {
        double wallDb;
        double powerDbm;
        double distanceM;
    };
    std::vector<Point> points;
    for (double wall_db : walls)
        for (double p : powers)
            for (double d : distances)
                points.push_back({wall_db, p, d});

    auto outcomes = runSweep("distance", points, [&](const Point& p) {
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, p.distanceM,
                              p.wallDb);
        return runVictim(vc, &rig, 27e6, p.powerDbm);
    });

    std::size_t idx = 0;
    for (double wall_db : walls) {
        std::cout << (wall_db == 0.0 ? "--- open path ---\n"
                                     : "--- through a wall (6 dB) ---\n");
        metrics::TextTable table;
        std::vector<std::string> header = {"power \\ dist"};
        for (double d : distances)
            header.push_back(metrics::fmt(d, 2) + " m");
        header.push_back("effective range");
        table.header(header);

        for (double p : powers) {
            std::vector<std::string> row = {metrics::fmt(p, 0) + " dBm"};
            double max_effective = 0.0;
            for (double d : distances) {
                double r = progressRate(outcomes[idx++], clean);
                row.push_back(metrics::fmtPercent(r, 0));
                if (r < 0.5)
                    max_effective = std::max(max_effective, d);
            }
            row.push_back(max_effective > 0
                              ? metrics::fmt(max_effective, 2) + " m"
                              : "-");
            table.row(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper shape: the attack works 0-5 m away, even through "
                 "a closed door, and the effective distance grows with "
                 "transmit power.\n";
    return bench::writeBenchReport("fig08_distance");
}
