#include "bench_util.hpp"

/**
 * @file
 * Figure 12: checkpoint-reduction analysis.
 *
 * Static checkpoint-store counts of GECKO with pruning disabled vs
 * enabled (recovery-block pruning + clean elimination), per benchmark.
 * The paper reports ~80 % of checkpoint stores removed.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 12: checkpoint stores, unpruned vs pruned "
                 "===\n\n";

    struct Counts {
        int before, after, recoveryBlocks, cleanEliminated;
    };
    auto counts = runSweep(
        "pruning", workloads::benchmarkNames(),
        [](const std::string& name) {
            ir::Program prog = workloads::build(name);
            auto unpruned =
                compiler::compile(prog, compiler::Scheme::kGeckoNoPrune);
            auto pruned = compiler::compile(prog, compiler::Scheme::kGecko);
            return Counts{unpruned.stats.ckptsAfterPruning,
                          pruned.stats.ckptsAfterPruning,
                          pruned.stats.recoveryBlocks,
                          pruned.stats.cleanEliminated};
        });

    metrics::TextTable table;
    table.header({"benchmark", "w/o pruning", "with pruning",
                  "recovery blocks", "clean-eliminated", "reduction"});

    std::vector<double> reductions;
    std::size_t idx = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        const Counts& c = counts[idx++];
        double reduction =
            c.before > 0 ? 1.0 - static_cast<double>(c.after) / c.before
                         : 0.0;
        reductions.push_back(reduction);
        table.row({name, std::to_string(c.before), std::to_string(c.after),
                   std::to_string(c.recoveryBlocks),
                   std::to_string(c.cleanEliminated),
                   metrics::fmtPercent(reduction, 0)});
    }
    table.row({"average", "", "", "", "",
               metrics::fmtPercent(metrics::mean(reductions), 0)});
    table.print(std::cout);

    std::cout << "\nPaper shape: pruning removes the large majority "
                 "(~80%) of the checkpoint stores the unpruned compiler "
                 "emits.\n";
    return bench::writeBenchReport("fig12_pruning");
}
