#include "bench_util.hpp"

/**
 * @file
 * Figure 12: checkpoint-reduction analysis.
 *
 * Static checkpoint-store counts of GECKO with pruning disabled vs
 * enabled (recovery-block pruning + clean elimination), per benchmark.
 * The paper reports ~80 % of checkpoint stores removed.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Fig. 12: checkpoint stores, unpruned vs pruned "
                 "===\n\n";

    metrics::TextTable table;
    table.header({"benchmark", "w/o pruning", "with pruning",
                  "recovery blocks", "clean-eliminated", "reduction"});

    std::vector<double> reductions;
    for (const std::string& name : workloads::benchmarkNames()) {
        ir::Program prog = workloads::build(name);
        auto unpruned =
            compiler::compile(prog, compiler::Scheme::kGeckoNoPrune);
        auto pruned = compiler::compile(prog, compiler::Scheme::kGecko);
        int before = unpruned.stats.ckptsAfterPruning;
        int after = pruned.stats.ckptsAfterPruning;
        double reduction =
            before > 0 ? 1.0 - static_cast<double>(after) / before : 0.0;
        reductions.push_back(reduction);
        table.row({name, std::to_string(before), std::to_string(after),
                   std::to_string(pruned.stats.recoveryBlocks),
                   std::to_string(pruned.stats.cleanEliminated),
                   metrics::fmtPercent(reduction, 0)});
    }
    table.row({"average", "", "", "", "",
               metrics::fmtPercent(metrics::mean(reductions), 0)});
    table.print(std::cout);

    std::cout << "\nPaper shape: pruning removes the large majority "
                 "(~80%) of the checkpoint stores the unpruned compiler "
                 "emits.\n";
    return 0;
}
