#include "bench_util.hpp"

/**
 * @file
 * Figure 11: normalized execution-time overhead without power outages.
 *
 * Every benchmark compiled for NVP (baseline), Ratchet, GECKO without
 * pruning, and full GECKO, executed to completion with no failures.
 * The paper reports GECKO ≈ 6 % on average, GECKO-without-pruning
 * ≈ 30 %, Ratchet ≈ 2.4×.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 11: normalized execution time (no outages, "
                 "baseline = NVP) ===\n\n";

    struct Row {
        std::uint64_t cycles[4];
    };
    auto rows = runSweep(
        "overhead", workloads::benchmarkNames(),
        [](const std::string& name) {
            ir::Program prog = workloads::build(name);
            Row row{};
            int i = 0;
            for (auto scheme :
                 {compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
                  compiler::Scheme::kGeckoNoPrune,
                  compiler::Scheme::kGecko}) {
                auto compiled = compiler::compile(prog, scheme);
                sim::Nvm nvm(16384);
                sim::IoHub io;
                workloads::setupIo(name, io);
                row.cycles[i] = sim::runToCompletion(compiled, nvm, io);
                noteSimCycles(row.cycles[i]);
                ++i;
            }
            return row;
        });

    metrics::TextTable table;
    table.header({"benchmark", "NVP [cyc]", "Ratchet", "GECKO w/o prune",
                  "GECKO"});

    std::vector<double> ratchet, noprune, full;
    std::size_t idx = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        const std::uint64_t* cycles = rows[idx++].cycles;
        double r = static_cast<double>(cycles[1]) / cycles[0];
        double g0 = static_cast<double>(cycles[2]) / cycles[0];
        double g = static_cast<double>(cycles[3]) / cycles[0];
        ratchet.push_back(r);
        noprune.push_back(g0);
        full.push_back(g);
        table.row({name, std::to_string(cycles[0]),
                   metrics::fmt(r, 2) + "x", metrics::fmt(g0, 2) + "x",
                   metrics::fmt(g, 2) + "x"});
    }
    table.row({"average", "", metrics::fmt(metrics::mean(ratchet), 2) + "x",
               metrics::fmt(metrics::mean(noprune), 2) + "x",
               metrics::fmt(metrics::mean(full), 2) + "x"});
    table.print(std::cout);

    std::cout << "\nPaper numbers: Ratchet ~2.4x, GECKO w/o pruning "
                 "~1.30x, GECKO ~1.06x.  The ordering GECKO < w/o-prune "
                 "< Ratchet and the pruning win are the reproduced "
                 "shape.\n";
    return bench::writeBenchReport("fig11_overhead");
}
