#include <cmath>

#include "bench_util.hpp"

/**
 * @file
 * Figure 15: capacitor-size sensitivity.
 *
 * NVP and GECKO run the sensing application to a fixed completion
 * target with energy buffers of 1/2/5/10 mF.  Following §VII-D, the
 * checkpoint threshold is adjusted so every capacitor buffers the same
 * energy; supercap leakage scales with capacitance, so charging a big
 * buffer from the weak harvester takes disproportionately longer and
 * total execution time rises sharply with size.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 15: total execution time vs capacitor size "
                 "===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    const std::uint64_t kTargetCompletions = 600;
    const double kVOn = 3.0;
    // Reference buffered energy: the 1 mF window of the main setup.
    const double kEnergy =
        energy::bufferedEnergy(1e-3, kVOn, dev.vBackup);

    struct Point {
        double capacitanceF;
        compiler::Scheme scheme;
    };
    std::vector<Point> points;
    for (double c : {1e-3, 2e-3, 5e-3, 10e-3})
        for (auto scheme :
             {compiler::Scheme::kNvp, compiler::Scheme::kGecko})
            points.push_back({c, scheme});

    auto times = runSweep("capacitor", points, [&](const Point& p) {
        double v_backup =
            std::sqrt(kVOn * kVOn - 2.0 * kEnergy / p.capacitanceF);
        auto compiled =
            compiler::compile(workloads::build("sensor_loop"), p.scheme);
        sim::IoHub io;
        workloads::setupIo("sensor_loop", io);
        // Weak harvester: cannot sustain the active draw, so the
        // node duty-cycles between computing (V_on -> V_backup) and
        // recharging.
        energy::ConstantHarvester weak(3.35, 100.0);
        sim::SimConfig config;
        config.cap.capacitanceF = p.capacitanceF;
        config.cap.initialV = kVOn;
        config.cap.maxV = 3.35;
        config.cap.leakageS = 0.05 * p.capacitanceF;  // supercap leak ~ C
        config.vBackupOverride = v_backup;
        sim::IntermittentSim simulation(compiled, dev, config, weak, io);
        simulation.runUntilCompletions(kTargetCompletions, 300.0);
        noteSimRun(simulation);
        return simulation.now();
    });

    metrics::TextTable table;
    table.header({"capacitor", "V_backup", "NVP time [s]",
                  "GECKO time [s]"});

    std::size_t idx = 0;
    for (double c : {1e-3, 2e-3, 5e-3, 10e-3}) {
        double v_backup = std::sqrt(kVOn * kVOn - 2.0 * kEnergy / c);
        double nvp_time = times[idx++];
        double gecko_time = times[idx++];
        table.row({metrics::fmt(c * 1e3, 0) + " mF",
                   metrics::fmt(v_backup, 2) + " V",
                   metrics::fmt(nvp_time, 2), metrics::fmt(gecko_time, 2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: GECKO tracks NVP at every size; both "
                 "are fastest at 1 mF and slow sharply as the capacitor "
                 "grows (charging dominates).\n";
    return bench::writeBenchReport("fig15_capacitor");
}
