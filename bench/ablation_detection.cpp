#include "bench_util.hpp"

/**
 * @file
 * Ablation: GECKO's two attack detectors (§VI-A).
 *
 * The ACK detector catches checkpoint *failures* (torn/missed images);
 * the timer detector catches checkpoint *churn* (power cycles shorter
 * than one region's worth of execution).  This bench runs the sensing
 * application under a continuous resonant attack with each detector
 * configuration and reports detections, throughput kept, and corruption
 * evidence.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Ablation: ACK vs timer detection ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();

    struct Variant {
        const char* label;
        bool attacked;
        bool ack, timer;
    };
    // First entry is the unattacked reference run.
    const std::vector<Variant> variants = {
        {"clean", false, true, true},
        {"no detection", true, false, false},
        {"ACK only", true, true, false},
        {"timer only", true, false, true},
        {"ACK + timer (GECKO)", true, true, true},
    };

    struct Cell {
        std::uint64_t done, detections, rollbacks, conflicts;
    };
    auto cells = runSweep("detection", variants, [&](const Variant& v) {
        compiler::PipelineConfig pconfig;
        pconfig.maxRegionCycles = 6000;
        auto compiled = compiler::compile(workloads::build("sensor_app"),
                                          compiler::Scheme::kGecko,
                                          pconfig);
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester weak(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
        attack::EmiSource source(rig, 27e6, 35.0);
        sim::IntermittentSim simulation(compiled, dev, config, weak, io);
        simulation.geckoRuntime().setDetectors(v.ack, v.timer);
        if (v.attacked)
            simulation.setEmiSource(&source);
        simulation.run(2.0);
        noteSimRun(simulation);
        const auto& rt = simulation.geckoRuntime().stats;
        return Cell{simulation.machine().stats.completions,
                    rt.attackDetections, rt.rollbacks,
                    io.output(0).conflicts()};
    });

    std::uint64_t clean = cells[0].done;

    metrics::TextTable table;
    table.header({"detectors", "completions", "vs clean", "detections",
                  "rollbacks", "output conflicts"});

    for (std::size_t i = 1; i < variants.size(); ++i) {
        const Cell& c = cells[i];
        table.row({variants[i].label, std::to_string(c.done),
                   metrics::fmtPercent(
                       clean ? static_cast<double>(c.done) / clean : 0.0,
                       0),
                   std::to_string(c.detections),
                   std::to_string(c.rollbacks),
                   std::to_string(c.conflicts)});
    }
    table.print(std::cout);

    std::cout << "\nWithout detection the hybrid stays on the JIT path "
                 "and inherits NVP's DoS.  The ACK detector only fires "
                 "on torn/missed images, so it misses a pure "
                 "checkpoint-churn attack (completed checkpoints keep "
                 "toggling the ACK); the timer detector is what catches "
                 "churn.  The paper's combination covers both failure "
                 "modes.\n";
    return bench::writeBenchReport("ablation_detection");
}
