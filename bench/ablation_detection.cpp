#include "bench_util.hpp"

/**
 * @file
 * Ablation: GECKO's two attack detectors (§VI-A).
 *
 * The ACK detector catches checkpoint *failures* (torn/missed images);
 * the timer detector catches checkpoint *churn* (power cycles shorter
 * than one region's worth of execution).  This bench runs the sensing
 * application under a continuous resonant attack with each detector
 * configuration and reports detections, throughput kept, and corruption
 * evidence.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Ablation: ACK vs timer detection ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    compiler::PipelineConfig pconfig;
    pconfig.maxRegionCycles = 6000;
    auto compiled = compiler::compile(workloads::build("sensor_app"),
                                      compiler::Scheme::kGecko, pconfig);

    struct Variant {
        const char* label;
        bool ack, timer;
    };
    const Variant variants[] = {
        {"no detection", false, false},
        {"ACK only", true, false},
        {"timer only", false, true},
        {"ACK + timer (GECKO)", true, true},
    };

    // Clean reference.
    std::uint64_t clean = 0;
    {
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester weak(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        sim::IntermittentSim simulation(compiled, dev, config, weak, io);
        simulation.run(2.0);
        clean = simulation.machine().stats.completions;
    }

    metrics::TextTable table;
    table.header({"detectors", "completions", "vs clean", "detections",
                  "rollbacks", "output conflicts"});

    for (const Variant& variant : variants) {
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester weak(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
        attack::EmiSource source(rig, 27e6, 35.0);
        sim::IntermittentSim simulation(compiled, dev, config, weak, io);
        simulation.geckoRuntime().setDetectors(variant.ack, variant.timer);
        simulation.setEmiSource(&source);
        simulation.run(2.0);

        const auto& rt = simulation.geckoRuntime().stats;
        std::uint64_t done = simulation.machine().stats.completions;
        table.row({variant.label, std::to_string(done),
                   metrics::fmtPercent(
                       clean ? static_cast<double>(done) / clean : 0.0, 0),
                   std::to_string(rt.attackDetections),
                   std::to_string(rt.rollbacks),
                   std::to_string(io.output(0).conflicts())});
    }
    table.print(std::cout);

    std::cout << "\nWithout detection the hybrid stays on the JIT path "
                 "and inherits NVP's DoS.  The ACK detector only fires "
                 "on torn/missed images, so it misses a pure "
                 "checkpoint-churn attack (completed checkpoints keep "
                 "toggling the ACK); the timer detector is what catches "
                 "churn.  The paper's combination covers both failure "
                 "modes.\n";
    return 0;
}
