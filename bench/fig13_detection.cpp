#include "bench_util.hpp"

/**
 * @file
 * Figure 13 (+ §VII-B3): attack detection and recovery over time.
 *
 * The sensing application runs on intermittent (1 Hz outage) power for
 * fifty scaled "minutes" while EMI attack bursts hit according to the
 * paper's six scenarios: (a) none, (b) at 40 min, (c) at 30 min,
 * (d) 20/40 min, (e) 15/30/35 min, (f) 10/25/40 min.  Throughput
 * (completions per minute) is reported per 5-minute bin for NVP,
 * Ratchet, and GECKO.
 *
 * Expected shape: NVP's throughput collapses at the first burst and —
 * once a torn checkpoint poisons its state — often never recovers;
 * Ratchet cannot finish its long compute region inside attack-shortened
 * power cycles (DoS); GECKO detects each burst (ACK/timer), switches to
 * rollback mode, keeps a substantial fraction of its throughput, and
 * re-arms JIT after the burst.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    // One paper-"minute" is scaled to this many simulated seconds.
    const double kMinuteS = 0.2;
    const double kTotalMin = 50.0;
    const double kBinMin = 5.0;

    std::cout << "=== Fig. 13: attack detection & recovery "
                 "(sensor app, 1 Hz outages, minute = " << kMinuteS
              << " s) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();

    const std::vector<char> scenarios = {'a', 'b', 'c', 'd', 'e', 'f'};
    const std::vector<compiler::Scheme> schemes = {
        compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
        compiler::Scheme::kGecko};

    // Each (scenario, scheme) cell is an independent simulation: the
    // whole figure parallelises as one 18-task sweep.
    struct Point {
        char scenario;
        compiler::Scheme scheme;
    };
    std::vector<Point> points;
    for (char scenario : scenarios)
        for (auto scheme : schemes)
            points.push_back({scenario, scheme});

    struct Cell {
        std::vector<std::uint64_t> bins;
        std::uint64_t total = 0;
        std::uint64_t corruption = 0;
    };
    auto cells = runSweep("detection", points, [&](const Point& p) {
        // Regions sized for the shortest legitimate power-on period
        // of this energy environment.
        compiler::PipelineConfig pconfig;
        pconfig.maxRegionCycles = 6000;
        auto compiled = compiler::compile(workloads::build("sensor_app"),
                                          p.scheme, pconfig);
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        // Charge-run duty cycling: the harvester cannot sustain the
        // active draw, so the node periodically computes off the
        // capacitor and recharges — the classic intermittent regime
        // where forged wake signals shorten the power-on periods.
        energy::ConstantHarvester wave(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;

        attack::AttackSchedule schedule = attack::AttackSchedule::scenario(
            p.scenario, kMinuteS, 5.0, 27e6, 35.0);
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
        attack::EmiSource source(rig, 27e6, 35.0);

        sim::IntermittentSim simulation(compiled, dev, config, wave, io);
        simulation.setEmiSource(&source);
        simulation.setAttackSchedule(&schedule);

        Cell cell;
        std::uint64_t prev = 0;
        for (double m = 0; m < kTotalMin; m += kBinMin) {
            simulation.run(kBinMin * kMinuteS);
            std::uint64_t done =
                simulation.machine().stats.completions - prev;
            prev = simulation.machine().stats.completions;
            cell.total += done;
            cell.bins.push_back(done);
        }
        cell.corruption = io.output(0).conflicts() +
                          simulation.geckoRuntime().stats.corruptedRestores;
        noteSimRun(simulation);
        return cell;
    });

    // Clean NVP reference throughput (for the §VII-B3 41 % claim).
    double nvp_clean_rate = 0.0;

    std::size_t idx = 0;
    for (char scenario : scenarios) {
        std::cout << "--- scenario (" << scenario << "): "
                  << attack::AttackSchedule::scenarioDescription(scenario)
                  << " ---\n";
        metrics::TextTable table;
        std::vector<std::string> header = {"scheme"};
        for (double m = 0; m < kTotalMin; m += kBinMin)
            header.push_back(metrics::fmt(m, 0) + "-" +
                             metrics::fmt(m + kBinMin, 0) + "m");
        header.push_back("total");
        table.header(header);

        for (auto scheme : schemes) {
            const Cell& cell = cells[idx++];
            std::vector<std::string> row = {compiler::schemeName(scheme)};
            for (std::uint64_t done : cell.bins)
                row.push_back(std::to_string(done));
            row.push_back(
                std::to_string(cell.total) +
                (cell.corruption
                     ? " (corrupt:" + std::to_string(cell.corruption) + ")"
                     : ""));
            table.row(row);

            if (scenario == 'a' && scheme == compiler::Scheme::kNvp)
                nvp_clean_rate = static_cast<double>(cell.total);
            if (scenario == 'f' && scheme == compiler::Scheme::kGecko &&
                nvp_clean_rate > 0) {
                std::cout << "  [GECKO throughput under scenario (f): "
                          << metrics::fmtPercent(
                                 cell.total / nvp_clean_rate, 0)
                          << " of unattacked NVP — paper reports ~41%]\n";
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return bench::writeBenchReport("fig13_detection");
}
