#include "bench_util.hpp"

/**
 * @file
 * Table I: EMI attack results on all nine real-world energy-harvesting
 * MCUs.
 *
 * Per board: minimum forward-progress rate under attack through the
 * ADC monitor path (and the comparator path where one exists) with the
 * tone at 0.1 m / 35 dBm, and the maximum checkpoint-failure rate
 * F = N_fail / N_checkpoints while the board runs on intermittent
 * (square-wave) power under the same attack.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Table I: EMI attack results on commodity MCUs "
                 "(35 dBm @ 0.1 m) ===\n\n";

    auto freqs = attackFrequencyGrid(3e6, 60e6);
    const auto& devices = device::DeviceDb::all();

    auto baseConfig = [](const device::DeviceProfile& dev) {
        VictimConfig vc;
        vc.device = &dev;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        return vc;
    };

    std::vector<std::size_t> boardIdx(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        boardIdx[i] = i;
    auto cleans = runSweep("clean", boardIdx, [&](std::size_t b) {
        return runVictim(baseConfig(devices[b]), nullptr, 0, 0);
    });

    struct Point {
        std::size_t board;
        double freqHz;
    };

    // ADC R_min sweep: every board x frequency.
    std::vector<Point> adcPoints;
    for (std::size_t b = 0; b < devices.size(); ++b)
        for (double f : freqs)
            adcPoints.push_back({b, f});
    auto adcOutcomes = runSweep("adc-rmin", adcPoints, [&](const Point& p) {
        const auto& dev = devices[p.board];
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
        return runVictim(baseConfig(dev), &rig, p.freqHz, 35.0);
    });

    // Comparator R_min sweep (boards that have one).
    std::vector<std::size_t> compBoards;
    for (std::size_t b = 0; b < devices.size(); ++b)
        if (devices[b].hasComparatorMonitor)
            compBoards.push_back(b);
    auto compCleans = runSweep("comp-clean", compBoards, [&](std::size_t b) {
        VictimConfig cc = baseConfig(devices[b]);
        cc.monitor = analog::MonitorKind::kComparator;
        return runVictim(cc, nullptr, 0, 0);
    });
    std::vector<Point> compPoints;
    for (std::size_t b : compBoards)
        for (double f : freqs)
            compPoints.push_back({b, f});
    auto compOutcomes =
        runSweep("comp-rmin", compPoints, [&](const Point& p) {
            const auto& dev = devices[p.board];
            VictimConfig cc = baseConfig(dev);
            cc.monitor = analog::MonitorKind::kComparator;
            attack::RemoteRig rig(dev, analog::MonitorKind::kComparator,
                                  0.1);
            return runVictim(cc, &rig, p.freqHz, 35.0);
        });

    // ADC F_max sweep: intermittent supply, count torn/missed
    // checkpoints.  Frequencies with no coupling are skipped up front
    // (no real effect, and the 2 s runs are the expensive ones).
    std::vector<Point> fmaxPoints;
    for (std::size_t b = 0; b < devices.size(); ++b)
        for (double f : freqs)
            if (devices[b].adcRemote.gainAt(f) >= 0.02)
                fmaxPoints.push_back({b, f});
    auto fmaxOutcomes =
        runSweep("adc-fmax", fmaxPoints, [&](const Point& p) {
            const auto& dev = devices[p.board];
            VictimConfig fc = baseConfig(dev);
            fc.squareWaveSupply = true;
            fc.simSeconds = 2.0;
            attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
            return runVictim(fc, &rig, p.freqHz, 35.0);
        });

    metrics::TextTable table;
    table.header({"Model", "Monitor", "ADC-Rmin", "@freq", "Comp-Rmin",
                  "@freq", "ADC-Fmax", "@freq"});

    std::size_t adc_idx = 0, comp_idx = 0, comp_clean_idx = 0,
                fmax_idx = 0;
    for (std::size_t b = 0; b < devices.size(); ++b) {
        const auto& dev = devices[b];
        const AttackOutcome& clean = cleans[b];

        double adc_rmin = 1.0, adc_rmin_f = 0.0;
        for (double f : freqs) {
            double r = progressRate(adcOutcomes[adc_idx++], clean);
            if (r < adc_rmin) {
                adc_rmin = r;
                adc_rmin_f = f;
            }
        }

        std::string comp_rmin = "N/A", comp_rmin_f = "";
        if (dev.hasComparatorMonitor) {
            const AttackOutcome& comp_clean = compCleans[comp_clean_idx++];
            double best = 1.0, best_f = 0.0;
            for (double f : freqs) {
                double r =
                    progressRate(compOutcomes[comp_idx++], comp_clean);
                if (r < best) {
                    best = r;
                    best_f = f;
                }
            }
            // Comparator paths on some boards barely couple (Table I
            // lists N/A); report N/A when the attack has no real effect.
            if (best < 0.9) {
                comp_rmin = metrics::fmtPercent(best, 3);
                comp_rmin_f = metrics::fmt(best_f / 1e6, 0) + " MHz";
            }
        }

        double fmax = 0.0, fmax_f = 0.0;
        for (double f : freqs) {
            if (dev.adcRemote.gainAt(f) < 0.02)
                continue;  // no coupling: skipped above
            const AttackOutcome& out = fmaxOutcomes[fmax_idx++];
            if (out.checkpointFailureRate > fmax) {
                fmax = out.checkpointFailureRate;
                fmax_f = f;
            }
        }

        table.row({dev.name,
                   dev.hasComparatorMonitor ? "ADC & Comp." : "ADC",
                   metrics::fmtPercent(adc_rmin, 1),
                   metrics::fmt(adc_rmin_f / 1e6, 0) + " MHz", comp_rmin,
                   comp_rmin_f, metrics::fmtPercent(fmax, 0),
                   metrics::fmt(fmax_f / 1e6, 0) + " MHz"});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: all nine boards are vulnerable; ADC "
                 "R_min in the low percent range at the 27 MHz (17 MHz "
                 "for STM32) resonance; comparator paths (FR5994 at "
                 "5/6 MHz) orders of magnitude lower; checkpoint-failure "
                 "rates of tens of percent at the resonance.\n";
    return bench::writeBenchReport("table1_devices");
}
