#include "bench_util.hpp"

/**
 * @file
 * Table I: EMI attack results on all nine real-world energy-harvesting
 * MCUs.
 *
 * Per board: minimum forward-progress rate under attack through the
 * ADC monitor path (and the comparator path where one exists) with the
 * tone at 0.1 m / 35 dBm, and the maximum checkpoint-failure rate
 * F = N_fail / N_checkpoints while the board runs on intermittent
 * (square-wave) power under the same attack.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Table I: EMI attack results on commodity MCUs "
                 "(35 dBm @ 0.1 m) ===\n\n";

    auto freqs = attackFrequencyGrid(3e6, 60e6);

    metrics::TextTable table;
    table.header({"Model", "Monitor", "ADC-Rmin", "@freq", "Comp-Rmin",
                  "@freq", "ADC-Fmax", "@freq"});

    for (const auto& dev : device::DeviceDb::all()) {
        VictimConfig vc;
        vc.device = &dev;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        AttackOutcome clean = runVictim(vc, nullptr, 0, 0);

        // ADC R_min sweep.
        attack::RemoteRig adc_rig(dev, analog::MonitorKind::kAdc, 0.1);
        double adc_rmin = 1.0, adc_rmin_f = 0.0;
        for (double f : freqs) {
            double r = progressRate(runVictim(vc, &adc_rig, f, 35.0),
                                    clean);
            if (r < adc_rmin) {
                adc_rmin = r;
                adc_rmin_f = f;
            }
        }

        // Comparator R_min sweep (when present).
        std::string comp_rmin = "N/A", comp_rmin_f = "";
        if (dev.hasComparatorMonitor) {
            VictimConfig cc = vc;
            cc.monitor = analog::MonitorKind::kComparator;
            AttackOutcome comp_clean = runVictim(cc, nullptr, 0, 0);
            attack::RemoteRig comp_rig(dev,
                                       analog::MonitorKind::kComparator,
                                       0.1);
            double best = 1.0, best_f = 0.0;
            for (double f : freqs) {
                double r = progressRate(
                    runVictim(cc, &comp_rig, f, 35.0), comp_clean);
                if (r < best) {
                    best = r;
                    best_f = f;
                }
            }
            // Comparator paths on some boards barely couple (Table I
            // lists N/A); report N/A when the attack has no real effect.
            if (best < 0.9) {
                comp_rmin = metrics::fmtPercent(best, 3);
                comp_rmin_f = metrics::fmt(best_f / 1e6, 0) + " MHz";
            }
        }

        // ADC F_max sweep: intermittent supply, count torn/missed
        // checkpoints.
        VictimConfig fc = vc;
        fc.squareWaveSupply = true;
        fc.simSeconds = 2.0;
        double fmax = 0.0, fmax_f = 0.0;
        for (double f : freqs) {
            if (dev.adcRemote.gainAt(f) < 0.02)
                continue;  // no coupling: skip the expensive run
            AttackOutcome out = runVictim(fc, &adc_rig, f, 35.0);
            if (out.checkpointFailureRate > fmax) {
                fmax = out.checkpointFailureRate;
                fmax_f = f;
            }
        }

        table.row({dev.name,
                   dev.hasComparatorMonitor ? "ADC & Comp." : "ADC",
                   metrics::fmtPercent(adc_rmin, 1),
                   metrics::fmt(adc_rmin_f / 1e6, 0) + " MHz", comp_rmin,
                   comp_rmin_f, metrics::fmtPercent(fmax, 0),
                   metrics::fmt(fmax_f / 1e6, 0) + " MHz"});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: all nine boards are vulnerable; ADC "
                 "R_min in the low percent range at the 27 MHz (17 MHz "
                 "for STM32) resonance; comparator paths (FR5994 at "
                 "5/6 MHz) orders of magnitude lower; checkpoint-failure "
                 "rates of tens of percent at the resonance.\n";
    return 0;
}
