#include "bench_util.hpp"

/**
 * @file
 * Figure 14: performance in a real energy-harvesting environment.
 *
 * Every benchmark runs continuously on a Powercast-like RF harvesting
 * trace (~1 Hz outages); completions over a fixed simulated duration
 * give each scheme's throughput, reported as execution time normalized
 * to NVP.  The paper reports Ratchet worst (many checkpoint stores) and
 * GECKO ≈ 6 % over NVP.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 14: performance under RF energy harvesting "
                 "(1 Hz outages) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    const double kSimSeconds = 4.0;

    const std::vector<compiler::Scheme> schemes = {
        compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
        compiler::Scheme::kGecko};

    struct Point {
        std::string name;
        compiler::Scheme scheme;
    };
    std::vector<Point> points;
    for (const std::string& name : workloads::benchmarkNames())
        for (auto scheme : schemes)
            points.push_back({name, scheme});

    auto completions = runSweep("harvesting", points, [&](const Point& p) {
        auto compiled =
            compiler::compile(workloads::build(p.name), p.scheme);
        sim::IoHub io;
        workloads::setupIo(p.name, io);
        energy::TraceHarvester trace =
            energy::makeRfTrace(3.3, 5.0, 1.0, 0.55, kSimSeconds, 7);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        sim::IntermittentSim simulation(compiled, dev, config, trace, io);
        simulation.run(kSimSeconds);
        noteSimRun(simulation);
        return simulation.machine().stats.completions;
    });

    metrics::TextTable table;
    table.header({"benchmark", "NVP compl.", "Ratchet", "GECKO"});

    std::vector<double> ratchet_norm, gecko_norm;
    std::size_t idx = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        std::uint64_t done[3] = {};
        for (int i = 0; i < 3; ++i)
            done[i] = completions[idx++];
        double r = done[1] ? static_cast<double>(done[0]) / done[1] : 0.0;
        double g = done[2] ? static_cast<double>(done[0]) / done[2] : 0.0;
        ratchet_norm.push_back(r);
        gecko_norm.push_back(g);
        table.row({name, std::to_string(done[0]),
                   metrics::fmt(r, 2) + "x", metrics::fmt(g, 2) + "x"});
    }
    table.row({"average", "",
               metrics::fmt(metrics::mean(ratchet_norm), 2) + "x",
               metrics::fmt(metrics::mean(gecko_norm), 2) + "x"});
    table.print(std::cout);

    std::cout << "\nPaper shape: Ratchet slowest (checkpoint-store "
                 "volume and long-region re-execution), GECKO within a "
                 "few percent of NVP.\n";
    return bench::writeBenchReport("fig14_harvesting");
}
