#include "bench_util.hpp"

/**
 * @file
 * Figure 14: performance in a real energy-harvesting environment.
 *
 * Every benchmark runs continuously on a Powercast-like RF harvesting
 * trace (~1 Hz outages); completions over a fixed simulated duration
 * give each scheme's throughput, reported as execution time normalized
 * to NVP.  The paper reports Ratchet worst (many checkpoint stores) and
 * GECKO ≈ 6 % over NVP.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Fig. 14: performance under RF energy harvesting "
                 "(1 Hz outages) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    const double kSimSeconds = 4.0;

    metrics::TextTable table;
    table.header({"benchmark", "NVP compl.", "Ratchet", "GECKO"});

    std::vector<double> ratchet_norm, gecko_norm;
    for (const std::string& name : workloads::benchmarkNames()) {
        std::uint64_t done[3] = {};
        int i = 0;
        for (auto scheme :
             {compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
              compiler::Scheme::kGecko}) {
            auto compiled =
                compiler::compile(workloads::build(name), scheme);
            sim::IoHub io;
            workloads::setupIo(name, io);
            energy::TraceHarvester trace =
                energy::makeRfTrace(3.3, 5.0, 1.0, 0.55, kSimSeconds, 7);
            sim::SimConfig config;
            config.cap.capacitanceF = 1e-3;
            sim::IntermittentSim simulation(compiled, dev, config, trace,
                                            io);
            simulation.run(kSimSeconds);
            done[i++] = simulation.machine().stats.completions;
        }
        double r = done[1] ? static_cast<double>(done[0]) / done[1] : 0.0;
        double g = done[2] ? static_cast<double>(done[0]) / done[2] : 0.0;
        ratchet_norm.push_back(r);
        gecko_norm.push_back(g);
        table.row({name, std::to_string(done[0]),
                   metrics::fmt(r, 2) + "x", metrics::fmt(g, 2) + "x"});
    }
    table.row({"average", "",
               metrics::fmt(metrics::mean(ratchet_norm), 2) + "x",
               metrics::fmt(metrics::mean(gecko_norm), 2) + "x"});
    table.print(std::cout);

    std::cout << "\nPaper shape: Ratchet slowest (checkpoint-store "
                 "volume and long-region re-execution), GECKO within a "
                 "few percent of NVP.\n";
    return 0;
}
