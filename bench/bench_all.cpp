#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>

#include "exp/thread_pool.hpp"
#include "metrics/bench_json.hpp"
#include "metrics/table.hpp"

/**
 * @file
 * Driver that runs every figure/table binary, collects the per-figure
 * JSON telemetry (`GECKO_BENCH_JSON`), and aggregates it into a single
 * `BENCH_sweeps.json` with wall times, simulated-cycle throughput, and
 * speedup vs a serial baseline.
 *
 * Usage:  bench_all [--baseline] [--quick] [--threads=N] [--out=FILE]
 *                   [figure...]
 *   --baseline   also run each figure with GECKO_THREADS=1 and record
 *                the serial wall time (the speedup denominator)
 *   --quick      single-pass telemetry sweep: run every figure once,
 *                skip the serial-baseline pass even if requested, and
 *                warn if the pass exceeds the 30 s quick budget
 *   --threads=N  thread count for the parallel pass (default: the
 *                GECKO_THREADS env, else all host cores)
 *   --out=FILE   aggregate output path (default: BENCH_sweeps.json)
 *   figure...    subset of figures to run (default: all)
 */

namespace {

const std::vector<std::string> kFigures = {
    "fig04_dpi_sweep",  "fig05_remote_adc", "fig07_remote_comp",
    "fig08_distance",   "fig09_realtime",   "fig11_overhead",
    "fig12_pruning",    "fig13_detection",  "fig14_harvesting",
    "fig15_capacitor",  "fig_spatial_map",  "table1_devices",
    "table2_comparison", "table3_ckpt_counts", "ablation_detection",
    "ablation_pruning", "ablation_wcet",    "extension_wearout",
    "fault_campaign",   "campaign_runner",  "fig_adversarial"};

struct FigureResult {
    std::string figure;
    /// Child telemetry schema version; records predating the
    /// `schema_version` key are version 1.
    int schemaVersion = 1;
    double wallS = 0.0;
    double serialWallS = 0.0;
    double simCycles = 0.0;
    /// "pass" or "fail": exit status combined with the bench's own
    /// verdict from its JSON telemetry (benches without a verdict
    /// report "pass" when they exit 0).
    std::string status = "fail";
    /// Execution tier the child reported ("step"/"fast"/"block";
    /// "unknown" for records predating schema v4).
    std::string execBackend = "unknown";
    double corruptedRestores = 0.0;
    double crcRejects = 0.0;
    double retriesExhausted = 0.0;
    /// Quantum-loop telemetry (schema v5; 0 for older records).
    double quanta = 0.0;
    double coalescedQuanta = 0.0;
    bool ok = false;
};

std::string
dirName(const std::string& path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Run one figure binary with telemetry redirected to `jsonPath`.
 * Returns the child's wall time in seconds, or a negative value when
 * the child failed.
 */
double
runFigure(const std::string& binary, const std::string& jsonPath,
          int threads, const std::string& extraArgs = "")
{
    std::string cmd = "GECKO_THREADS=" + std::to_string(threads) +
                      " GECKO_BENCH_JSON='" + jsonPath + "' '" + binary +
                      "'" + extraArgs + " > /dev/null";
    auto t0 = std::chrono::steady_clock::now();
    int rc = std::system(cmd.c_str());
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();
    return rc == 0 ? wall : -wall;
}

/**
 * Render the suite aggregate from the figures finished so far.
 * `forceStatus` overrides the pass/fail verdict (the signal-flush
 * path stamps "interrupted" so a partial aggregate is never mistaken
 * for a completed run).
 */
std::string
renderSuiteJson(const std::vector<FigureResult>& results, int threads,
                const std::string& forceStatus)
{
    double totalWall = 0.0, totalSerial = 0.0, totalCycles = 0.0;
    double totalCorrupted = 0.0, totalCrcRejects = 0.0,
           totalRetriesExhausted = 0.0;
    double totalQuanta = 0.0, totalCoalesced = 0.0;
    int failures = 0;
    for (const FigureResult& r : results) {
        if (r.status != "pass")
            ++failures;
        totalWall += r.wallS;
        totalSerial += r.serialWallS;
        totalCycles += r.simCycles;
        totalCorrupted += r.corruptedRestores;
        totalCrcRejects += r.crcRejects;
        totalRetriesExhausted += r.retriesExhausted;
        totalQuanta += r.quanta;
        totalCoalesced += r.coalescedQuanta;
    }

    // One backend name for the whole suite when every child agrees
    // (the usual case: children inherit GECKO_EXEC); "mixed" otherwise.
    // Children without telemetry ("unknown" — static tables that never
    // simulate) don't break uniformity.
    std::string suiteBackend = "unknown";
    for (const FigureResult& r : results) {
        if (r.execBackend == "unknown")
            continue;
        if (suiteBackend == "unknown")
            suiteBackend = r.execBackend;
        else if (r.execBackend != suiteBackend)
            suiteBackend = "mixed";
    }

    unsigned hw = std::thread::hardware_concurrency();
    std::ostringstream os;
    os << "{\"schema_version\":" << gecko::metrics::kBenchSchemaVersion
       << ",\"suite\":\"gecko-bench\",\"exec_backend\":\""
       << gecko::metrics::jsonEscape(suiteBackend)
       << "\",\"threads\":" << threads
       << ",\"host_cores\":" << (hw >= 1 ? hw : 1)
       << ",\"total_wall_s\":" << gecko::metrics::fmt(totalWall, 3);
    if (totalSerial > 0)
        os << ",\"total_serial_wall_s\":"
           << gecko::metrics::fmt(totalSerial, 3) << ",\"speedup\":"
           << gecko::metrics::fmt(totalSerial / totalWall, 3);
    os << ",\"total_sim_cycles\":"
       << static_cast<std::uint64_t>(totalCycles)
       << ",\"sim_cycles_per_s\":"
       << gecko::metrics::fmt(
              totalWall > 0 ? totalCycles / totalWall : 0.0, 0)
       << ",\"total_quanta\":" << static_cast<std::uint64_t>(totalQuanta)
       << ",\"total_coalesced_quanta\":"
       << static_cast<std::uint64_t>(totalCoalesced)
       << ",\"quanta_per_s\":"
       << gecko::metrics::fmt(
              totalWall > 0 ? totalQuanta / totalWall : 0.0, 0)
       << ",\"failures\":" << failures << ",\"status\":\""
       << (forceStatus.empty() ? (failures == 0 ? "pass" : "fail")
                               : forceStatus.c_str())
       << "\",\"corrupted_restores\":"
       << static_cast<std::uint64_t>(totalCorrupted)
       << ",\"crc_rejects\":"
       << static_cast<std::uint64_t>(totalCrcRejects)
       << ",\"retries_exhausted\":"
       << static_cast<std::uint64_t>(totalRetriesExhausted)
       << ",\"figures\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const FigureResult& r = results[i];
        if (i)
            os << ",";
        os << "{\"figure\":\"" << gecko::metrics::jsonEscape(r.figure)
           << "\",\"schema_version\":" << r.schemaVersion
           << ",\"ok\":" << (r.ok ? "true" : "false") << ",\"status\":\""
           << gecko::metrics::jsonEscape(r.status)
           << "\",\"wall_s\":" << gecko::metrics::fmt(r.wallS, 3);
        if (r.serialWallS > 0)
            os << ",\"serial_wall_s\":"
               << gecko::metrics::fmt(r.serialWallS, 3) << ",\"speedup\":"
               << gecko::metrics::fmt(
                      r.wallS > 0 ? r.serialWallS / r.wallS : 0.0, 3);
        os << ",\"sim_cycles\":"
           << static_cast<std::uint64_t>(r.simCycles)
           << ",\"sim_cycles_per_s\":"
           << gecko::metrics::fmt(
                  r.wallS > 0 ? r.simCycles / r.wallS : 0.0, 0)
           << ",\"quanta\":" << static_cast<std::uint64_t>(r.quanta)
           << ",\"coalesced_quanta\":"
           << static_cast<std::uint64_t>(r.coalescedQuanta)
           << ",\"exec_backend\":\""
           << gecko::metrics::jsonEscape(r.execBackend)
           << "\",\"corrupted_restores\":"
           << static_cast<std::uint64_t>(r.corruptedRestores)
           << ",\"crc_rejects\":"
           << static_cast<std::uint64_t>(r.crcRejects)
           << ",\"retries_exhausted\":"
           << static_cast<std::uint64_t>(r.retriesExhausted) << "}";
    }
    os << "]}";
    return os.str();
}

/** Shared with the signal watcher (guarded by `mutex`). */
struct SuiteState {
    std::mutex mutex;
    std::vector<FigureResult> results;
    std::string outPath = "BENCH_sweeps.json";
    int threads = 1;
};

SuiteState&
suiteState()
{
    static SuiteState s;
    return s;
}

/**
 * SIGINT/SIGTERM → write the aggregate of whatever figures completed,
 * stamped "interrupted", then die with the conventional 128+sig.
 * Runs on a sigwait watcher thread (signals blocked everywhere else),
 * so taking the mutex and doing file I/O here is safe.
 */
void
installSuiteSignalFlush()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread([set] {
        int sig = 0;
        if (sigwait(&set, &sig) != 0)
            return;
        SuiteState& st = suiteState();
        std::lock_guard<std::mutex> lock(st.mutex);
        std::ofstream out(st.outPath);
        if (out) {
            out << renderSuiteJson(st.results, st.threads, "interrupted")
                << "\n";
            // _Exit skips destructors: flush the stream by hand or the
            // partial aggregate dies in the ofstream buffer.
            out.close();
        }
        std::_Exit(128 + sig);
    }).detach();
}

}  // namespace

int
main(int argc, char** argv)
{
    using gecko::metrics::jsonNumber;

    bool baseline = false;
    bool quick = false;
    std::string outPath = "BENCH_sweeps.json";
    int threads = gecko::exp::ThreadPool::defaultThreads();
    std::vector<std::string> figures;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline") {
            baseline = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::max(1, std::atoi(arg.c_str() + 10));
        } else if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        } else {
            figures.push_back(arg);
        }
    }
    if (figures.empty())
        figures = kFigures;
    if (quick)
        baseline = false;

    const std::string binDir = dirName(argv[0]);
    const std::string tmpDir = binDir + "/bench_json";
    std::system(("mkdir -p '" + tmpDir + "'").c_str());

    suiteState().outPath = outPath;
    suiteState().threads = threads;
    installSuiteSignalFlush();

    std::vector<FigureResult> results;
    double totalWall = 0.0, totalSerial = 0.0, totalCycles = 0.0;
    double totalCorrupted = 0.0, totalCrcRejects = 0.0,
           totalRetriesExhausted = 0.0;
    int failures = 0;

    for (const std::string& fig : figures) {
        const std::string binary = binDir + "/" + fig;
        const std::string jsonPath = tmpDir + "/" + fig + ".json";

        FigureResult r;
        r.figure = fig;
        // Drop any stale record so a child that writes no telemetry
        // (or dies before writing) can't inherit a previous run's.
        std::remove(jsonPath.c_str());
        std::cerr << "[bench_all] " << fig << " (threads=" << threads
                  << ") ... " << std::flush;
        // The campaign driver writes a durable work directory; keep it
        // inside the suite scratch area and start it clean (resume
        // semantics are the kill-resume oracle's job, not the suite's).
        std::string extraArgs;
        // The quick pass doubles as a freshness check on the example
        // scenario spec: the fault campaign is driven from the file the
        // docs point at, so a stale spec fails the suite, not a user.
        if (fig == "fault_campaign" && quick)
            extraArgs =
                " --spec='" GECKO_EXAMPLES_DIR "/emi_grid_spec.json'";
        if (fig == "campaign_runner") {
            extraArgs = " --fresh --dir='" + tmpDir + "/campaign_out'";
            if (quick)
                extraArgs += " --quick";
        }
        if (fig == "fig_adversarial") {
            extraArgs =
                " --fresh --dir='" + tmpDir + "/adversarial_out'";
            if (quick)
                extraArgs += " --quick";
        }
        double wall = runFigure(binary, jsonPath, threads, extraArgs);
        r.ok = wall >= 0;
        r.wallS = std::abs(wall);
        std::cerr << gecko::metrics::fmt(r.wallS, 2) << "s"
                  << (r.ok ? "" : " FAILED") << "\n";

        std::string childJson = readFile(jsonPath);
        // Tolerant read: unknown keys are skipped by the find-based
        // extractors, so newer child records still aggregate here.
        r.schemaVersion = static_cast<int>(
            jsonNumber(childJson, "schema_version").value_or(1.0));
        r.simCycles = jsonNumber(childJson, "sim_cycles").value_or(0.0);
        r.status = gecko::metrics::jsonString(childJson, "status")
                       .value_or(r.ok ? "pass" : "fail");
        r.execBackend =
            gecko::metrics::jsonString(childJson, "exec_backend")
                .value_or("unknown");
        if (!r.ok)
            r.status = "fail";
        r.corruptedRestores =
            jsonNumber(childJson, "corrupted_restores").value_or(0.0);
        r.crcRejects = jsonNumber(childJson, "crc_rejects").value_or(0.0);
        r.retriesExhausted =
            jsonNumber(childJson, "retries_exhausted").value_or(0.0);
        r.quanta = jsonNumber(childJson, "quanta").value_or(0.0);
        r.coalescedQuanta =
            jsonNumber(childJson, "coalesced_quanta").value_or(0.0);

        if (baseline && r.ok) {
            std::cerr << "[bench_all] " << fig << " (serial) ... "
                      << std::flush;
            double serial = runFigure(binary, jsonPath, 1);
            r.serialWallS = std::abs(serial);
            std::cerr << gecko::metrics::fmt(r.serialWallS, 2) << "s\n";
        }

        if (r.status != "pass")
            ++failures;
        totalWall += r.wallS;
        totalSerial += r.serialWallS;
        totalCycles += r.simCycles;
        totalCorrupted += r.corruptedRestores;
        totalCrcRejects += r.crcRejects;
        totalRetriesExhausted += r.retriesExhausted;
        results.push_back(r);
        {
            // Mirror progress into the watcher-visible state so an
            // interrupt flushes every completed figure.
            std::lock_guard<std::mutex> lock(suiteState().mutex);
            suiteState().results = results;
        }
    }

    std::string suiteJson;
    {
        std::lock_guard<std::mutex> lock(suiteState().mutex);
        suiteJson = renderSuiteJson(results, threads, "");
    }
    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "[bench_all] cannot write " << outPath << "\n";
        return 1;
    }
    out << suiteJson << "\n";

    std::cerr << "[bench_all] " << results.size() << " figures, "
              << gecko::metrics::fmt(totalWall, 1) << "s wall";
    if (totalSerial > 0)
        std::cerr << ", " << gecko::metrics::fmt(totalSerial, 1)
                  << "s serial -> "
                  << gecko::metrics::fmt(totalSerial / totalWall, 2)
                  << "x speedup";
    std::cerr << " -> " << outPath << "\n";
    if (quick && totalWall > 30.0)
        std::cerr << "[bench_all] WARNING: --quick pass took "
                  << gecko::metrics::fmt(totalWall, 1)
                  << "s (budget 30s)\n";
    return failures == 0 ? 0 : 1;
}
