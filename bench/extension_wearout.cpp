#include "bench_util.hpp"

/**
 * @file
 * Extension: EMI checkpoint churn as a wear-out attack.
 *
 * The paper's related work (§VIII, Cronin et al. [19]) shows frequent
 * checkpointing wears out non-volatile checkpoint storage.  An EMI
 * attacker forging backup signals gets that for free: every forged
 * checkpoint rewrites the whole CTPL image.  This bench measures NVM
 * word-writes into the checkpoint areas per simulated second, clean vs
 * attacked, for NVP and GECKO — GECKO's detection caps the write
 * amplification by closing the protocol.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Extension: checkpoint-churn wear-out "
                 "(MSP430FR5994, 27 MHz @ 0.1 m) ===\n\n";

    const auto& dev = device::DeviceDb::msp430fr5994();
    const double kSeconds = 1.0;

    struct Point {
        compiler::Scheme scheme;
        bool attacked;
    };
    std::vector<Point> points;
    for (auto scheme : {compiler::Scheme::kNvp, compiler::Scheme::kGecko})
        for (bool attacked : {false, true})
            points.push_back({scheme, attacked});

    struct Rates {
        double jit, slot;
    };
    auto rates = runSweep("wearout", points, [&](const Point& p) {
        auto compiled =
            compiler::compile(workloads::build("sensor_loop"), p.scheme);
        sim::IoHub io;
        workloads::setupIo("sensor_loop", io);
        // 1 Hz outages: one legitimate checkpoint per second.
        energy::SquareWaveHarvester wave(3.3, 5.0, 0.5, 0.5);
        sim::SimConfig config;
        sim::IntermittentSim simulation(compiled, dev, config, wave, io);
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
        attack::EmiSource source(rig, 27e6, 35.0);
        if (p.attacked)
            simulation.setEmiSource(&source);
        simulation.run(kSeconds);
        noteSimRun(simulation);
        return Rates{simulation.nvm().jitAreaWrites / kSeconds,
                     simulation.nvm().slotWrites / kSeconds};
    });

    metrics::TextTable table;
    table.header({"scheme", "attack", "JIT-area writes/s",
                  "slot writes/s", "amplification"});

    std::size_t idx = 0;
    for (auto scheme : {compiler::Scheme::kNvp, compiler::Scheme::kGecko}) {
        double clean_rate = 0.0;
        for (bool attacked : {false, true}) {
            const Rates& r = rates[idx++];
            if (!attacked)
                clean_rate = r.jit + r.slot;
            double amp =
                clean_rate > 0 ? (r.jit + r.slot) / clean_rate : 0.0;
            table.row({compiler::schemeName(scheme),
                       attacked ? "YES" : "no", metrics::fmt(r.jit, 0),
                       metrics::fmt(r.slot, 0),
                       attacked ? metrics::fmt(amp, 1) + "x" : "1.0x"});
        }
    }
    table.print(std::cout);

    std::cout << "\nFRAM endures ~1e15 writes, but MRAM/RRAM checkpoint "
                 "storage (1e9..1e12) would be consumed orders of "
                 "magnitude faster under forged-checkpoint churn; GECKO "
                 "bounds the amplification by disabling the protocol "
                 "once the attack is detected.\n";
    return bench::writeBenchReport("extension_wearout");
}
