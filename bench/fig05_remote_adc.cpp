#include "bench_util.hpp"

/**
 * @file
 * Figure 5: remote EMI attack analysis on ADC-based voltage monitors.
 *
 * Single-tone signals radiated from 5 m at 35 dBm, swept 5–500 MHz,
 * against all nine commodity boards (Table I inventory).  Reports
 * forward-progress rate per frequency per device.
 */

int
main()
{
    using namespace gecko;
    using namespace gecko::bench;

    std::cout << "=== Fig. 5: remote attack, ADC monitors (35 dBm @ 5 m, "
                 "5-500 MHz) ===\n\n";

    auto freqs = attackFrequencyGrid(5e6, 500e6);
    metrics::TextTable summary;
    summary.header({"device", "R_min", "@freq"});

    for (const auto& dev : device::DeviceDb::all()) {
        VictimConfig vc;
        vc.device = &dev;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        AttackOutcome clean = runVictim(vc, nullptr, 0, 0);

        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 5.0);
        metrics::Series series;
        series.name = dev.name;
        for (double f : freqs) {
            AttackOutcome out = runVictim(vc, &rig, f, 35.0);
            series.x.push_back(f / 1e6);
            series.y.push_back(progressRate(out, clean));
        }
        std::size_t lo = metrics::argminY(series);
        summary.row({dev.name, metrics::fmtPercent(series.y[lo]),
                     metrics::fmt(series.x[lo], 0) + " MHz"});
        printSeries(series, "freq [MHz]", "forward progress rate");
        std::cout << "\n";
    }

    std::cout << "--- Fig. 5 summary (compare Table I ADC-Rmin) ---\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: every board suffers DoS at its resonance "
                 "(27 MHz for the MSP430 family, 17-18 MHz for the "
                 "STM32L552); nothing above ~50 MHz.\n";
    return 0;
}
