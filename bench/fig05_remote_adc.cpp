#include "bench_util.hpp"

/**
 * @file
 * Figure 5: remote EMI attack analysis on ADC-based voltage monitors.
 *
 * Single-tone signals radiated from 5 m at 35 dBm, swept 5–500 MHz,
 * against all nine commodity boards (Table I inventory).  Reports
 * forward-progress rate per frequency per device.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Fig. 5: remote attack, ADC monitors (35 dBm @ 5 m, "
                 "5-500 MHz) ===\n\n";

    auto freqs = attackFrequencyGrid(5e6, 500e6);
    const auto& devices = device::DeviceDb::all();

    std::vector<std::size_t> boardIdx(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        boardIdx[i] = i;
    auto cleans = runSweep("clean", boardIdx, [&](std::size_t b) {
        VictimConfig vc;
        vc.device = &devices[b];
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        return runVictim(vc, nullptr, 0, 0);
    });

    struct Point {
        std::size_t board;
        double freqHz;
    };
    std::vector<Point> points;
    for (std::size_t b = 0; b < devices.size(); ++b)
        for (double f : freqs)
            points.push_back({b, f});

    auto outcomes = runSweep("remote-adc", points, [&](const Point& p) {
        const auto& dev = devices[p.board];
        VictimConfig vc;
        vc.device = &dev;
        vc.workload = "sensor_loop";
        vc.simSeconds = 0.04;
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 5.0);
        return runVictim(vc, &rig, p.freqHz, 35.0);
    });

    metrics::TextTable summary;
    summary.header({"device", "R_min", "@freq"});

    std::size_t idx = 0;
    for (std::size_t b = 0; b < devices.size(); ++b) {
        metrics::Series series;
        series.name = devices[b].name;
        for (double f : freqs) {
            series.x.push_back(f / 1e6);
            series.y.push_back(progressRate(outcomes[idx++], cleans[b]));
        }
        std::size_t lo = metrics::argminY(series);
        summary.row({devices[b].name, metrics::fmtPercent(series.y[lo]),
                     metrics::fmt(series.x[lo], 0) + " MHz"});
        printSeries(series, "freq [MHz]", "forward progress rate");
        std::cout << "\n";
    }

    std::cout << "--- Fig. 5 summary (compare Table I ADC-Rmin) ---\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: every board suffers DoS at its resonance "
                 "(27 MHz for the MSP430 family, 17-18 MHz for the "
                 "STM32L552); nothing above ~50 MHz.\n";
    return bench::writeBenchReport("fig05_remote_adc");
}
