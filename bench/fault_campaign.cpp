#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "fault/campaign.hpp"
#include "fault/corpus.hpp"
#include "fault/injectors.hpp"
#include "fault/spec.hpp"

/**
 * Deterministic fault-injection campaign driver (see src/fault/).
 *
 * Fans (workload x scheme x injector x seed) cases across the thread
 * pool, checks each against its golden fault-free oracle, minimises the
 * failures into a replayable corpus, and prints the per scheme x
 * injector outcome table.  The report and corpus are pure functions of
 * the seed: `GECKO_THREADS=1` and `=8` produce byte-identical bytes.
 *
 * Flags:
 *   --cases=N      grid size (default 5000)
 *   --seed=N       campaign seed (default GECKO_SEED, else 1)
 *   --spec=FILE    declarative scenario spec (src/fault/spec.hpp): its
 *                  `campaign` section overrides cases/workloads/schemes/
 *                  injector mix/budgets.  Seed precedence: a `seed` in
 *                  the spec file wins over GECKO_SEED / --seed; without
 *                  one the ambient seed applies, falling back to 1.
 *   --watchdog=N   machine-level livelock budget in run-loop iterations
 *                  (default GECKO_WATCHDOG, else 400000)
 *   --threads=N    pool width (default GECKO_THREADS / host cores)
 *   --out=DIR      write DIR/fault_corpus.txt and DIR/fault_report.txt
 *   --replay=FILE  replay a corpus file case-by-case instead of
 *                  running a campaign
 *   --trace=FILE   record per-case event traces (campaign and replay
 *                  alike) and write the merged trace to FILE
 *   --expect-nvp-corruption  exit nonzero unless NVP showed corruption
 *                  (guards the campaign's discriminating power)
 *
 * Exit status: 0 unless a GECKO scheme corrupted, a replayed corpus
 * case no longer fails, or --expect-nvp-corruption was violated.
 */

namespace {

using namespace gecko;

int
replayCorpus(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot read corpus: " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::uint64_t campaignSeed = 0;
    std::vector<fault::CorpusEntry> entries;
    try {
        entries = fault::parseCorpus(buf.str(), &campaignSeed);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cout << "# replaying " << entries.size() << " cases from " << path
              << " (campaign seed " << campaignSeed << ")\n";
    int mismatches = 0;
    for (const fault::CorpusEntry& entry : entries) {
        // Same buffer label scheme as the campaign, so a replayed
        // case's events diff cleanly against the campaign trace.
        const std::uint64_t ordinal = static_cast<std::uint64_t>(
            &entry - entries.data());
        trace::CaseScope scope(
            bench::telemetry().collector.get(),
            entry.spec.workload + "|" +
                compiler::schemeName(entry.spec.scheme) + "|" +
                fault::injectorName(entry.spec.injector) + "|" +
                std::to_string(entry.spec.seed),
            ordinal);
        fault::CaseResult res = fault::runCase(entry.spec);
        bool match = res.outcome == entry.outcome;
        if (!match)
            ++mismatches;
        std::cout << fault::formatCorpusLine(res)
                  << (match ? "  [reproduced]" : "  [MISMATCH]") << "\n";
    }
    std::cout << "# replay mismatches=" << mismatches << "\n";
    int rc = bench::writeBenchReport("fault_campaign_replay",
                                     mismatches == 0 ? "pass" : "fail");
    return mismatches == 0 ? rc : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    // ^C / SIGTERM still lands the partial JSON telemetry on disk
    // before the process dies (status "interrupted").
    bench::installSignalFlush("fault_campaign");

    fault::CampaignConfig config;
    config.collector = bench::telemetry().collector.get();
    if (exp::globalSeed() != 0)
        config.seed = exp::globalSeed();
    std::string outDir;
    std::string replayPath;
    std::string specPath;
    bool expectNvpCorruption = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--cases=", 0) == 0)
            config.cases = std::atoi(arg.c_str() + 8);
        else if (arg.rfind("--watchdog=", 0) == 0)
            config.watchdogBudget = std::strtoull(arg.c_str() + 11,
                                                  nullptr, 10);
        else if (arg.rfind("--out=", 0) == 0)
            outDir = arg.substr(6);
        else if (arg.rfind("--replay=", 0) == 0)
            replayPath = arg.substr(9);
        else if (arg.rfind("--spec=", 0) == 0)
            specPath = arg.substr(7);
        else if (arg == "--expect-nvp-corruption")
            expectNvpCorruption = true;
    }
    if (!specPath.empty()) {
        fault::FaultSpec spec;
        std::string error;
        if (!fault::loadSpecFile(specPath, &spec, &error)) {
            std::cerr << error << "\n";
            return 1;
        }
        // Spec seed > GECKO_SEED / --seed > 1 (see resolveSeed).
        fault::applyToCampaign(spec, &config);
        std::cout << "# spec " << specPath << " (seed " << config.seed
                  << ")\n";
    }

    if (!replayPath.empty())
        return replayCorpus(replayPath);

    std::vector<int> one{0};
    fault::CampaignResult result =
        bench::runSweep("fault_campaign", one, [&](int) {
            return fault::runCampaign(config);
        })[0];

    runtime::RuntimeStats agg;
    agg.corruptedRestores = result.corruptedRestores;
    agg.crcRejects = result.crcRejects;
    agg.retriesExhausted = result.retriesExhausted;
    bench::noteRuntimeStats(agg);

    std::cout << result.report;

    bool ok = result.geckoClean;
    if (expectNvpCorruption && result.nvpCorruptions == 0) {
        std::cout << "# FAIL: expected NVP corruption, found none\n";
        ok = false;
    }
    if (!result.geckoClean)
        std::cout << "# FAIL: GECKO corruption cases="
                  << result.geckoCorruptions << "\n";

    if (!outDir.empty()) {
        std::ofstream corpus(outDir + "/fault_corpus.txt");
        corpus << result.corpus;
        std::ofstream report(outDir + "/fault_report.txt");
        report << result.report;
        if (!corpus || !report) {
            std::cerr << "cannot write artifacts under " << outDir << "\n";
            ok = false;
        }
    }

    int jsonRc = bench::writeBenchReport("fault_campaign",
                                         ok ? "pass" : "fail");
    return ok ? jsonRc : 1;
}
