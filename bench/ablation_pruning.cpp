#include "bench_util.hpp"

/**
 * @file
 * Ablation: which half of checkpoint minimisation buys what?
 *
 * GECKO's pruning has two parts: recovery-block pruning (§VI-C/E,
 * reconstruct the value at recovery time) and clean-checkpoint
 * elimination (§VI-D corollary: the slot already holds the value).
 * This bench compiles every benchmark four ways and reports static
 * checkpoint stores and failure-free runtime overhead for each.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;
    using namespace gecko::bench;
    bench::init(argc, argv);

    std::cout << "=== Ablation: checkpoint-minimisation components ===\n\n";

    struct Variant {
        const char* label;
        bool pruning;
        bool cleanElim;
    };
    const Variant variants[] = {
        {"none", false, false},
        {"recovery-blocks only", true, false},
        {"full (recovery + clean-elim)", true, true},
    };

    struct Row {
        int ckpts[3];
        double overhead[3];
    };
    auto rows = runSweep(
        "pruning-ablation", workloads::benchmarkNames(),
        [&](const std::string& name) {
            ir::Program prog = workloads::build(name);
            sim::Nvm base_nvm(16384);
            sim::IoHub base_io;
            workloads::setupIo(name, base_io);
            std::uint64_t base = sim::runToCompletion(
                compiler::compile(prog, compiler::Scheme::kNvp), base_nvm,
                base_io);
            noteSimCycles(base);

            Row row{};
            int v = 0;
            for (const Variant& variant : variants) {
                compiler::PipelineConfig config;
                config.enablePruning = variant.pruning;
                config.enableCleanElim = variant.cleanElim;
                auto compiled = compiler::compile(
                    prog, compiler::Scheme::kGecko, config);
                sim::Nvm nvm(16384);
                sim::IoHub io;
                workloads::setupIo(name, io);
                std::uint64_t cycles =
                    sim::runToCompletion(compiled, nvm, io);
                noteSimCycles(cycles);
                row.ckpts[v] = compiled.stats.ckptsAfterPruning;
                row.overhead[v] = static_cast<double>(cycles) / base;
                ++v;
            }
            return row;
        });

    metrics::TextTable table;
    table.header({"benchmark", "none [ckpt/ovh]", "recovery-only",
                  "full"});

    std::vector<double> sums[3];
    std::size_t idx = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        const Row& r = rows[idx++];
        std::vector<std::string> row = {name};
        for (int v = 0; v < 3; ++v) {
            sums[v].push_back(r.overhead[v]);
            row.push_back(std::to_string(r.ckpts[v]) + " / " +
                          metrics::fmt(r.overhead[v], 2) + "x");
        }
        table.row(row);
    }
    table.row({"avg overhead",
               metrics::fmt(metrics::mean(sums[0]), 2) + "x",
               metrics::fmt(metrics::mean(sums[1]), 2) + "x",
               metrics::fmt(metrics::mean(sums[2]), 2) + "x"});
    table.print(std::cout);

    std::cout << "\nBoth halves contribute: recovery blocks remove the "
                 "reconstructible checkpoints, clean elimination removes "
                 "the redundant re-stores of unchanged registers.\n";
    return bench::writeBenchReport("ablation_pruning");
}
