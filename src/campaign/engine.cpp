#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "attack/spatial.hpp"
#include "campaign/archive.hpp"
#include "campaign/manifest.hpp"
#include "campaign/snapshot.hpp"
#include "compiler/compile_cache.hpp"
#include "defense/defense.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "exp/rng.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/io_devices.hpp"
#include "workloads/workloads.hpp"

namespace gecko::campaign {

const char*
scenarioName(ScenarioKind kind)
{
    switch (kind) {
        case ScenarioKind::kClean: return "clean";
        case ScenarioKind::kTone: return "tone";
        case ScenarioKind::kBurst: return "burst";
    }
    return "unknown";
}

std::uint64_t
CampaignSpace::jobCount() const
{
    std::uint64_t n = 1;
    n *= workloads.size();
    n *= schemes.size();
    n *= devices.size();
    n *= scenarios.size();
    n *= defenses.size();
    n *= seeds.size();
    return n;
}

namespace {

std::uint64_t
fnv1a(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
numText(double x)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

}  // namespace

std::uint64_t
CampaignSpace::configHash() const
{
    // Canonical textual description; any knob that changes job
    // semantics must appear here so a stale journal can't silently
    // resume a *different* campaign.
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& w : workloads)
        h = fnv1a(h, "w:" + w + ";");
    for (auto s : schemes)
        h = fnv1a(h, std::string("s:") + compiler::schemeName(s) + ";");
    for (const auto& d : devices)
        h = fnv1a(h, "d:" + d + ";");
    for (const auto& sc : scenarios) {
        h = fnv1a(h, std::string("a:") + scenarioName(sc.kind) + "," +
                         numText(sc.freqHz) + "," + numText(sc.powerDbm) +
                         ";");
        // New axes hash only when engaged, so pre-spatial journals keep
        // their hashes and stay resumable.
        if (sc.gridRows > 0)
            h = fnv1a(h, "g:" + std::to_string(sc.gridRows) + "," +
                             std::to_string(sc.gridCols) + "," +
                             std::to_string(sc.gridRow) + "," +
                             std::to_string(sc.gridCol) + ";");
        if (sc.burstCount > 0)
            h = fnv1a(h, "b:" + std::to_string(sc.burstCount) + "," +
                             numText(sc.burstOnS) + "," +
                             numText(sc.burstGapS) + ";");
        if (!sc.name.empty())
            h = fnv1a(h, "n:" + sc.name + ";");
        if (sc.dutyPeriodS > 0)
            h = fnv1a(h, "y:" + numText(sc.dutyPeriodS) + "," +
                             numText(sc.dutyOnFrac) + ";");
        if (sc.phaseS > 0)
            h = fnv1a(h, "p:" + numText(sc.phaseS) + ";");
        if (!sc.envelopeDbm.empty()) {
            std::string env = "e:";
            for (double dbm : sc.envelopeDbm)
                env += numText(dbm) + ",";
            h = fnv1a(h, env + ";");
        }
        if (sc.outagePeriodS > 0)
            h = fnv1a(h, "o:" + numText(sc.outagePeriodS) + "," +
                             numText(sc.outageOnFrac) + ";");
    }
    // The defense axis hashes only when engaged (anything beyond the
    // single historical "static" arm), like the scenario axes above.
    if (defenses.size() != 1 || defenses[0] != "static")
        for (const auto& d : defenses)
            h = fnv1a(h, "f:" + d + ";");
    for (auto s : seeds)
        h = fnv1a(h, "r:" + std::to_string(s) + ";");
    h = fnv1a(h, "t:" + numText(simSeconds) + ";");
    h = fnv1a(h, "q:" + numText(sliceSimSeconds) + ";");
    return h;
}

std::string
JobSpec::groupKey() const
{
    // Seeds are the replication axis: they aggregate *into* a group,
    // never split one.
    std::string key = workload;
    key += '/';
    key += compiler::schemeName(scheme);
    key += '/';
    key += scenario.name.empty() ? scenarioName(scenario.kind)
                                 : scenario.name.c_str();
    // The historical single-arm "static" defense stays keyless so old
    // aggregates keep their group names byte-for-byte.
    if (defense != "static") {
        key += '/';
        key += defense;
    }
    return key;
}

JobSpec
jobAt(const CampaignSpace& space, std::uint64_t id)
{
    JobSpec spec;
    spec.job = id;
    std::uint64_t i = id;
    auto take = [&i](std::size_t radix) {
        std::size_t v = static_cast<std::size_t>(i % radix);
        i /= radix;
        return v;
    };
    spec.seed = space.seeds[take(space.seeds.size())];
    spec.defense = space.defenses[take(space.defenses.size())];
    spec.scenario = space.scenarios[take(space.scenarios.size())];
    spec.device = space.devices[take(space.devices.size())];
    spec.scheme = space.schemes[take(space.schemes.size())];
    spec.workload = space.workloads[take(space.workloads.size())];
    return spec;
}

namespace {

/** Slice plan: count and per-slice duration (deterministic). */
struct SlicePlan {
    std::uint64_t count = 1;
    double sliceS = 0.0;  // all slices but the last
    double lastS = 0.0;
};

SlicePlan
planSlices(const CampaignSpace& space)
{
    SlicePlan plan;
    if (space.sliceSimSeconds <= 0.0 ||
        space.sliceSimSeconds >= space.simSeconds) {
        plan.count = 1;
        plan.sliceS = plan.lastS = space.simSeconds;
        return plan;
    }
    plan.sliceS = space.sliceSimSeconds;
    plan.count = static_cast<std::uint64_t>(
        std::ceil(space.simSeconds / space.sliceSimSeconds - 1e-9));
    if (plan.count < 1)
        plan.count = 1;
    plan.lastS = space.simSeconds -
                 static_cast<double>(plan.count - 1) * plan.sliceS;
    return plan;
}

std::string
snapshotPath(const std::string& dir, std::uint64_t job)
{
    return dir + "/snap_" + std::to_string(job) + ".bin";
}

/** Outcome of one job attempt (exceptions signal failure). */
struct AttemptOutcome {
    bool interrupted = false;   ///< stop flag observed mid-job
    std::uint64_t slicesDone = 0;
    bool resumedFromSnapshot = false;
    JobResult result;           ///< valid when !interrupted
};

/**
 * Execute one job attempt, resuming from its snapshot if one exists.
 * Jobs always run slice-by-slice with the identical slice plan whether
 * or not anything interrupts them, so the quantum boundaries — and
 * therefore every counter — match an uninterrupted execution exactly.
 */
AttemptOutcome
runJobOnce(const EngineConfig& config, const JobSpec& spec,
           const SlicePlan& plan)
{
    AttemptOutcome out;

    auto compiled = compiler::CompileCache::global().getOrCompile(
        compiler::CompileCache::makeKey(spec.workload, spec.scheme,
                                        spec.device),
        [&] {
            return compiler::compile(workloads::build(spec.workload),
                                     spec.scheme);
        });
    const device::DeviceProfile& dev = device::DeviceDb::byName(spec.device);

    sim::SimConfig simCfg;
    simCfg.continuous = true;
    simCfg.memWords = 4096;
    simCfg.jitRamWords = 64;
    simCfg.bootOverheadCycles = 1000;
    simCfg.cap.capacitanceF = 20e-6;
    simCfg.cap.initialV = 3.3;
    simCfg.monitorSeed = exp::mixSeed(config.seed, spec.seed);
    if (!defense::presetByName(spec.defense, &simCfg.defense))
        throw std::runtime_error("campaign: unknown defense preset \"" +
                                 spec.defense + "\"");

    sim::IoHub io;
    workloads::setupIo(spec.workload, io);
    const Scenario& sc = spec.scenario;
    // Environment: the historical constant supply, or a square-wave
    // outage cycle when the scenario scripts one (so attacks can phase-
    // lock their bursts to harvester outages).
    energy::ConstantHarvester constantSupply(3.3, 5.0);
    energy::SquareWaveHarvester outageSupply(
        3.3, 5.0, sc.outagePeriodS * sc.outageOnFrac,
        sc.outagePeriodS * (1.0 - sc.outageOnFrac));
    energy::Harvester& supply =
        sc.outagePeriodS > 0 ? static_cast<energy::Harvester&>(outageSupply)
                             : constantSupply;
    sim::IntermittentSim simulation(*compiled, dev, simCfg, supply, io);

    // Attack rig lifetime must span the whole run.  A spatial scenario
    // decorates the base rig with its grid cell's coupling and tags the
    // source so carrier-on edges trace the position (kSpatialHit).
    attack::RemoteRig baseRig(dev, simCfg.monitorKind, 0.5);
    const bool spatial = sc.gridRows > 0;
    attack::SpatialGrid grid(spatial ? sc.gridRows : 1,
                             spatial ? sc.gridCols : 1);
    attack::GridRig gridRig(baseRig, grid, spatial ? sc.gridRow : 0,
                            spatial ? sc.gridCol : 0);
    const attack::InjectionRig& rig =
        spatial ? static_cast<const attack::InjectionRig&>(gridRig)
                : baseRig;
    attack::EmiSource source(rig, sc.freqHz, sc.powerDbm);
    if (spatial)
        source.setGridTag(gridRig.cell(), gridRig.couplingMilli(sc.freqHz));
    attack::AttackSchedule schedule{std::vector<attack::AttackWindow>{}};
    if (sc.kind != ScenarioKind::kClean)
        simulation.setEmiSource(&source);
    // Per-window power: the piecewise amplitude envelope cycles over
    // the attack windows; empty = flat powerDbm.
    auto windowPower = [&sc](int w) {
        return sc.envelopeDbm.empty()
                   ? sc.powerDbm
                   : sc.envelopeDbm[static_cast<std::size_t>(w) %
                                    sc.envelopeDbm.size()];
    };
    if (sc.dutyPeriodS > 0 && sc.kind != ScenarioKind::kClean) {
        // Duty-cycled carrier (v2 attack-schedule scripting): on for
        // dutyOnFrac of every period, first window at phaseS.
        const double onS = sc.dutyPeriodS * sc.dutyOnFrac;
        int w = 0;
        for (double t = sc.phaseS; t < config.space.simSeconds;
             t += sc.dutyPeriodS, ++w)
            schedule.add({t, t + onS, sc.freqHz, windowPower(w)});
        simulation.setAttackSchedule(&schedule);
    } else if (sc.kind == ScenarioKind::kBurst) {
        if (sc.burstCount > 0) {
            // Explicit spec-declared windows; phaseS offsets the first
            // (0 keeps the historical gap-led start).
            double t = sc.phaseS > 0
                           ? sc.phaseS
                           : (sc.burstGapS > 0 ? sc.burstGapS : 0.001);
            for (int w = 0; w < sc.burstCount; ++w) {
                schedule.add({t, t + sc.burstOnS, sc.freqHz,
                              windowPower(w)});
                t += sc.burstOnS + sc.burstGapS;
            }
        } else {
            // Seed-derived tone windows (same flavour as the fuzz tier).
            exp::Rng rng(exp::mixSeed(spec.seed, 0xb0057ull));
            double t = 0.0005 * (1 + rng.pick(4));
            int nWindows = 2 + static_cast<int>(rng.pick(3));
            for (int w = 0; w < nWindows; ++w) {
                double on = 0.001 * (1 + rng.pick(5));
                schedule.add({t, t + on, sc.freqHz, sc.powerDbm});
                t += on + 0.001 * (1 + rng.pick(4));
            }
        }
        simulation.setAttackSchedule(&schedule);
    }

    const std::string snapPath = snapshotPath(config.dir, spec.job);
    std::vector<std::uint8_t> blob = readSnapshotFile(snapPath);
    std::uint64_t firstSlice = 0;
    if (!blob.empty()) {
        try {
            Archive ar =
                Archive::loader(openContainer(blob, kSnapshotVersion));
            ar.check(spec.job, "snapshot job id");
            ar.u64(firstSlice);
            simulation.archiveState(ar);
            io.archiveState(ar);
            ar.finishLoad();
            if (firstSlice > plan.count)
                throw SnapshotError("snapshot slice count out of range");
            out.resumedFromSnapshot = true;
        } catch (const SnapshotError&) {
            // Corrupt/foreign snapshot: drop it and start clean — the
            // job is deterministic, so restarting is always safe.
            std::remove(snapPath.c_str());
            firstSlice = 0;
            out.resumedFromSnapshot = false;
            // Rebuild pristine state by re-running the constructor
            // path: the cheapest correct way is to signal the caller
            // to retry this attempt from scratch.
            throw;
        }
    }

    for (std::uint64_t k = firstSlice; k < plan.count; ++k) {
        if (config.stopRequested && config.stopRequested() &&
            plan.count > 1) {
            Archive ar = Archive::saver();
            ar.check(spec.job, "snapshot job id");
            ar.u64(k);
            simulation.archiveState(ar);
            io.archiveState(ar);
            writeSnapshotFile(
                snapPath, sealContainer(kSnapshotVersion, ar.takePayload()));
            out.interrupted = true;
            out.slicesDone = k;
            return out;
        }
        simulation.run(k + 1 == plan.count ? plan.lastS : plan.sliceS);
    }

    JobResult& r = out.result;
    r.job = spec.job;
    r.group = spec.groupKey();
    r.slices = plan.count;
    const sim::ExecStats& ms = simulation.machine().stats;
    r.instrs = ms.instrs;
    r.cycles = ms.cycles;
    r.completions = ms.completions;
    const sim::SimStats& ss = simulation.stats;
    r.reboots = ss.reboots;
    r.hardDeaths = ss.hardDeaths;
    r.backupSignals = ss.backupSignals;
    r.ckptAttempts = ss.jitCheckpointAttempts;
    r.ckptComplete = ss.jitCheckpointsComplete;
    r.ckptTorn = ss.jitCheckpointsTorn;
    r.missedCkpts = ss.missedCheckpoints;
    const runtime::RuntimeStats& rs = simulation.geckoRuntime().stats;
    r.rollbacks = rs.rollbacks;
    r.corruptedRestores = rs.corruptedRestores;
    r.crcRejects = rs.crcRejects;
    r.retriesExhausted = rs.retriesExhausted;
    if (const defense::DefenseController* dc =
            simulation.defenseController()) {
        r.escalations = dc->stats().escalations;
        r.deEscalations = dc->stats().deEscalations;
    }
    r.commits = simulation.nvm().commitCount;
    out.slicesDone = plan.count;
    if (!config.keepSnapshots)
        std::remove(snapPath.c_str());
    return out;
}

/** Everything the shards share. */
struct Shared {
    const EngineConfig* config = nullptr;
    SlicePlan plan;
    std::uint64_t jobsTotal = 0;
    std::uint64_t queueTotal = 0;
    std::uint64_t frontier = 0;
    std::vector<std::uint64_t> requeued;              // const after build
    std::unordered_map<std::uint64_t, std::uint32_t> attemptBase;  // const

    std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> started{0};
    std::atomic<bool> capReached{false};

    // Work a dead shard spilled; drained before fresh chunks.
    std::mutex overflowMutex;
    std::vector<std::uint64_t> overflow;

    // The journal lock serializes manifest/results/aggregate updates.
    std::mutex journalMutex;
    ManifestWriter* manifest = nullptr;
    metrics::JsonlWriter* results = nullptr;
    Aggregator* agg = nullptr;
    std::uint64_t resultsSinceCompact = 0;
    std::uint64_t quarantinedTotal = 0;

    std::atomic<std::uint64_t> attemptsFailed{0};
    std::atomic<std::uint64_t> quarantinedThisRun{0};
    std::atomic<std::uint64_t> resumedFromSnapshot{0};
    std::atomic<std::uint64_t> shardDeaths{0};

    bool stop() const
    {
        return config->stopRequested && config->stopRequested();
    }

    std::uint64_t jobIdAt(std::uint64_t i) const
    {
        if (i < requeued.size())
            return requeued[i];
        return frontier + (i - requeued.size());
    }

    void compactLocked()
    {
        resultsSinceCompact = 0;
        const std::string json = agg->toJson(
            jobsTotal, config->space.configHash(), config->seed);
        std::vector<std::uint8_t> bytes(json.begin(), json.end());
        writeSnapshotFile(config->dir + "/aggregate.json", bytes);
    }
};

/** @return false when the worker should stop claiming work. */
bool
processJob(Shared& sh, std::uint64_t id)
{
    const EngineConfig& config = *sh.config;
    if (config.maxJobsThisRun != 0) {
        if (sh.started.fetch_add(1) >= config.maxJobsThisRun) {
            sh.capReached.store(true);
            return false;
        }
    }
    // Deliberately OUTSIDE per-attempt containment: a throw here is a
    // shard-infrastructure failure, not a job failure (see
    // EngineConfig::beforeJob).
    if (config.beforeJob)
        config.beforeJob(id);

    const JobSpec spec = jobAt(config.space, id);
    std::uint32_t attempt = 0;
    if (auto it = sh.attemptBase.find(id); it != sh.attemptBase.end())
        attempt = it->second;

    while (true) {
        {
            std::lock_guard<std::mutex> lock(sh.journalMutex);
            sh.manifest->append({id, JobState::kRunning, attempt, 0, ""});
        }
        try {
            AttemptOutcome out = runJobOnce(config, spec, sh.plan);
            if (out.resumedFromSnapshot)
                ++sh.resumedFromSnapshot;
            if (out.interrupted) {
                std::lock_guard<std::mutex> lock(sh.journalMutex);
                sh.manifest->append({id, JobState::kRunning, attempt,
                                     out.slicesDone, "interrupted"});
                sh.manifest->sync();
                return false;
            }
            std::lock_guard<std::mutex> lock(sh.journalMutex);
            // Result line FIRST, manifest `done` second: recovery
            // treats the result record as the done-definition, so this
            // order can at worst repeat a job (deduplicated), never
            // lose one.
            sh.results->append(out.result.toJsonl());
            sh.agg->add(out.result);
            sh.manifest->append(
                {id, JobState::kDone, attempt, out.slicesDone, ""});
            if (++sh.resultsSinceCompact >= config.compactEvery) {
                sh.results->sync();
                sh.manifest->sync();
                sh.compactLocked();
            }
            return true;
        } catch (const std::exception& e) {
            ++sh.attemptsFailed;
            std::string note = e.what();
            if (note.size() > 120)
                note.resize(120);
            const bool exhausted =
                attempt + 1 >= static_cast<std::uint32_t>(
                                   std::max(1, config.maxAttempts));
            {
                std::lock_guard<std::mutex> lock(sh.journalMutex);
                sh.manifest->append(
                    {id, JobState::kFailed, attempt, 0, note});
                if (exhausted) {
                    std::string why = "attempts exhausted";
                    if (!config.specPath.empty())
                        why += "; spec=" + config.specPath;
                    sh.manifest->append({id, JobState::kQuarantined,
                                         attempt, 0, why});
                    ++sh.quarantinedTotal;
                }
            }
            if (exhausted) {
                ++sh.quarantinedThisRun;
                std::remove(snapshotPath(config.dir, id).c_str());
                return true;
            }
            ++attempt;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                config.retryBackoffMs * static_cast<int>(attempt)));
        }
    }
}

void
shardWorker(Shared& sh)
{
    const std::uint64_t shardSize = std::max<std::uint64_t>(
        1, sh.config->shardSize);
    // Claimed-but-unprocessed job ids; lives outside the try so the
    // handler can spill it when this shard dies.
    std::vector<std::uint64_t> claimed;
    try {
        while (true) {
            if (sh.stop() || sh.capReached.load())
                return;
            claimed.clear();
            // Drain spilled work from dead shards first.
            {
                std::lock_guard<std::mutex> lock(sh.overflowMutex);
                if (!sh.overflow.empty()) {
                    claimed.push_back(sh.overflow.back());
                    sh.overflow.pop_back();
                }
            }
            if (claimed.empty()) {
                std::uint64_t c = sh.cursor.fetch_add(shardSize);
                if (c >= sh.queueTotal)
                    return;
                std::uint64_t end = std::min(c + shardSize, sh.queueTotal);
                for (std::uint64_t i = c; i < end; ++i)
                    claimed.push_back(sh.jobIdAt(i));
            }
            while (!claimed.empty()) {
                if (sh.stop() || sh.capReached.load())
                    return;
                // The in-flight job stays in `claimed` until it either
                // finishes or is contained, so a shard-killing throw
                // spills it along with the rest.
                bool keepGoing = processJob(sh, claimed.front());
                claimed.erase(claimed.begin());
                if (!keepGoing)
                    return;
            }
        }
    } catch (...) {
        // Shard death: spill the claimed-but-unprocessed remainder so
        // surviving shards pick it up (graceful degradation).  The
        // killer job is spilled too — if it reliably kills shards it
        // will take them all down, and the run ends incomplete rather
        // than wrong.
        ++sh.shardDeaths;
        std::lock_guard<std::mutex> lock(sh.overflowMutex);
        for (std::uint64_t id : claimed)
            sh.overflow.push_back(id);
    }
}

}  // namespace

EngineReport
runCampaign(const EngineConfig& config, exp::ThreadPool& pool)
{
    const CampaignSpace& space = config.space;
    const std::uint64_t total = space.jobCount();
    if (total == 0)
        throw std::runtime_error("campaign: empty job space");

    const std::string manifestPath = config.dir + "/manifest.jsonl";
    const std::string resultsPath = config.dir + "/results.jsonl";

    // ---- Recovery: replay the journal and the result stream. ----
    ManifestRecovery rec = readManifest(manifestPath);
    if (rec.hasHeader) {
        if (rec.totalJobs != total ||
            rec.configHash != space.configHash() || rec.seed != config.seed)
            throw std::runtime_error(
                "campaign: manifest in " + config.dir +
                " belongs to a different campaign (config/seed/job-count "
                "mismatch); refusing to resume");
    }

    Aggregator agg(total);
    std::uint64_t maxResultJob = 0;
    bool sawResult = false;
    std::uint64_t tornResults = 0;
    {
        std::ifstream in(resultsPath, std::ios::binary);
        if (in) {
            std::ostringstream all;
            all << in.rdbuf();
            const std::string text = all.str();
            std::size_t pos = 0;
            while (pos < text.size()) {
                std::size_t nl = text.find('\n', pos);
                if (nl == std::string::npos) {
                    ++tornResults;  // crash-torn tail
                    break;
                }
                std::string line = text.substr(pos, nl - pos);
                pos = nl + 1;
                if (line.empty())
                    continue;
                auto r = JobResult::fromJsonl(line);
                if (!r) {
                    ++tornResults;
                    continue;
                }
                agg.add(*r);
                maxResultJob = std::max(maxResultJob, r->job);
                sawResult = true;
            }
        }
    }

    // Fresh-work frontier: nothing above it was ever touched.
    std::uint64_t frontier = 0;
    if (rec.sawAnyJob)
        frontier = std::max(frontier, rec.maxJob + 1);
    if (sawResult)
        frontier = std::max(frontier, maxResultJob + 1);
    frontier = std::min(frontier, total);

    Shared sh;
    sh.config = &config;
    sh.plan = planSlices(space);
    sh.jobsTotal = total;
    sh.frontier = frontier;
    for (std::uint64_t id = 0; id < frontier; ++id) {
        if (agg.seen(id))
            continue;
        if (rec.stateOf(id) == JobState::kQuarantined) {
            ++sh.quarantinedTotal;
            continue;
        }
        sh.requeued.push_back(id);
        if (auto it = rec.latest.find(id); it != rec.latest.end()) {
            std::uint32_t base = it->second.attempt;
            if (it->second.state == JobState::kFailed)
                ++base;
            if (base > 0)
                sh.attemptBase[id] = base;
        }
    }
    sh.queueTotal =
        static_cast<std::uint64_t>(sh.requeued.size()) + (total - frontier);

    ManifestWriter manifest(manifestPath, config.manifestSyncEvery);
    metrics::JsonlWriter results(resultsPath, /*append=*/true,
                                 config.manifestSyncEvery);
    if (!manifest.ok() || !results.ok())
        throw std::runtime_error("campaign: cannot open journal files in " +
                                 config.dir);
    if (!rec.hasHeader)
        manifest.header(total, space.configHash(), config.seed);
    sh.manifest = &manifest;
    sh.results = &results;
    sh.agg = &agg;

    // ---- Shards: pool workers + the calling thread. ----
    const int extraShards = std::max(0, pool.threadCount() - 1);
    std::atomic<int> liveShards{extraShards};
    std::mutex doneMutex;
    std::condition_variable doneCv;
    for (int i = 0; i < extraShards; ++i) {
        pool.submit([&sh, &liveShards, &doneMutex, &doneCv] {
            shardWorker(sh);
            // Notify under the mutex: the waiter owns the condvar's
            // storage and destroys it right after its predicate turns
            // true, so the broadcast must complete before the waiter
            // can reacquire the lock and return from wait().
            std::lock_guard<std::mutex> lock(doneMutex);
            --liveShards;
            doneCv.notify_all();
        });
    }
    shardWorker(sh);
    {
        std::unique_lock<std::mutex> lock(doneMutex);
        doneCv.wait(lock, [&] { return liveShards.load() <= 0; });
    }

    // ---- Final compaction + report. ----
    EngineReport report;
    {
        std::lock_guard<std::mutex> lock(sh.journalMutex);
        results.sync();
        manifest.sync();
        sh.compactLocked();
        report.aggregateJson =
            agg.toJson(total, space.configHash(), config.seed);
    }
    report.jobsTotal = total;
    report.jobsDone = agg.jobCount();
    report.attemptsFailed = sh.attemptsFailed.load();
    report.jobsQuarantined = sh.quarantinedTotal;
    report.jobsRequeued = static_cast<std::uint64_t>(sh.requeued.size());
    report.resumedFromSnapshot = sh.resumedFromSnapshot.load();
    report.shardDeaths = sh.shardDeaths.load();
    report.tornManifestLines = rec.tornLines;
    report.tornResultLines = tornResults;
    report.complete = report.jobsDone + report.jobsQuarantined >= total;
    return report;
}

}  // namespace gecko::campaign
