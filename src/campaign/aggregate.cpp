#include "campaign/aggregate.hpp"

#include <sstream>

#include "metrics/bench_json.hpp"

namespace gecko::campaign {

namespace {

// Field table: one row per streamed counter keeps toJsonl/fromJsonl/
// add/toJson in lockstep (a missed field here is a silent aggregate
// hole, so there is exactly one place to list them).
struct Field {
    const char* key;
    std::uint64_t JobResult::* result;
    std::uint64_t GroupTotals::* total;
    /// Added after the first deployment: absent in old results.jsonl
    /// lines, which parse as 0 instead of reading as torn records.
    bool optional = false;
};

constexpr Field kFields[] = {
    {"slices", &JobResult::slices, &GroupTotals::slices},
    {"instrs", &JobResult::instrs, &GroupTotals::instrs},
    {"cycles", &JobResult::cycles, &GroupTotals::cycles},
    {"completions", &JobResult::completions, &GroupTotals::completions},
    {"reboots", &JobResult::reboots, &GroupTotals::reboots},
    {"hard_deaths", &JobResult::hardDeaths, &GroupTotals::hardDeaths},
    {"backup_signals", &JobResult::backupSignals,
     &GroupTotals::backupSignals},
    {"ckpt_attempts", &JobResult::ckptAttempts,
     &GroupTotals::ckptAttempts},
    {"ckpt_complete", &JobResult::ckptComplete,
     &GroupTotals::ckptComplete},
    {"ckpt_torn", &JobResult::ckptTorn, &GroupTotals::ckptTorn},
    {"missed_ckpts", &JobResult::missedCkpts, &GroupTotals::missedCkpts},
    {"rollbacks", &JobResult::rollbacks, &GroupTotals::rollbacks},
    {"corrupted_restores", &JobResult::corruptedRestores,
     &GroupTotals::corruptedRestores},
    {"crc_rejects", &JobResult::crcRejects, &GroupTotals::crcRejects},
    {"retries_exhausted", &JobResult::retriesExhausted,
     &GroupTotals::retriesExhausted},
    {"escalations", &JobResult::escalations, &GroupTotals::escalations},
    {"de_escalations", &JobResult::deEscalations,
     &GroupTotals::deEscalations},
    {"commits", &JobResult::commits, &GroupTotals::commits, true},
};

}  // namespace

std::string
JobResult::toJsonl() const
{
    std::ostringstream os;
    os << "{\"job\":" << job << ",\"group\":\""
       << metrics::jsonEscape(group) << "\"";
    for (const Field& f : kFields)
        os << ",\"" << f.key << "\":" << this->*f.result;
    os << "}";
    return os.str();
}

std::optional<JobResult>
JobResult::fromJsonl(const std::string& line)
{
    auto job = metrics::jsonNumber(line, "job");
    auto group = metrics::jsonString(line, "group");
    if (!job || !group)
        return std::nullopt;
    JobResult r;
    r.job = static_cast<std::uint64_t>(*job);
    r.group = *group;
    for (const Field& f : kFields) {
        auto v = metrics::jsonNumber(line, f.key);
        if (!v) {
            if (f.optional) {
                r.*f.result = 0;
                continue;
            }
            return std::nullopt;  // torn mid-record
        }
        r.*f.result = static_cast<std::uint64_t>(*v);
    }
    return r;
}

Aggregator::Aggregator(std::uint64_t totalJobs)
    : seen_(static_cast<std::size_t>(totalJobs), false)
{
}

bool
Aggregator::add(const JobResult& r)
{
    if (r.job < seen_.size()) {
        if (seen_[r.job])
            return false;
        seen_[r.job] = true;
    }
    ++jobCount_;
    GroupTotals& g = groups_[r.group];
    ++g.jobs;
    for (const Field& f : kFields)
        g.*f.total += r.*f.result;
    return true;
}

std::string
Aggregator::toJson(std::uint64_t totalJobs, std::uint64_t configHash,
                   std::uint64_t seed) const
{
    std::ostringstream os;
    // config/seed quoted: full-u64 values survive the double-based
    // jsonNumber extractor (see manifest header rationale).
    // v5: per-group `commits` (committed-region progress counter).
    os << "{\"schema_version\":" << 5
       << ",\"figure\":\"campaign\",\"jobs_total\":" << totalJobs
       << ",\"jobs_done\":" << jobCount_ << ",\"config\":\"" << configHash
       << "\",\"seed\":\"" << seed << "\",\"groups\":[";
    bool first = true;
    for (const auto& [key, g] : groups_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"group\":\"" << metrics::jsonEscape(key)
           << "\",\"jobs\":" << g.jobs;
        for (const Field& f : kFields)
            os << ",\"" << f.key << "\":" << g.*f.total;
        os << "}";
    }
    os << "]}";
    return os.str();
}

}  // namespace gecko::campaign
