#ifndef GECKO_CAMPAIGN_AGGREGATE_HPP_
#define GECKO_CAMPAIGN_AGGREGATE_HPP_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

/**
 * @file
 * Streaming campaign result aggregation (DESIGN.md §13).
 *
 * Each finished job appends one `JobResult` line to `results.jsonl`;
 * the `Aggregator` folds those lines into per-group integer sums with
 * memory bounded by the number of *groups* (workload × scheme ×
 * scenario), not the number of jobs.  Everything that reaches the
 * aggregate is an integer counter summed in job-id-independent fashion
 * (addition over u64 is commutative), so the rendered JSON is
 * byte-identical no matter how jobs interleaved across shards, threads,
 * or kill/resume cycles — that property is what the campaign's
 * kill-and-resume differential oracle checks.  Wall-clock times and
 * journal-damage counters are deliberately excluded: they are real but
 * not deterministic, and live in the bench report instead.
 */

namespace gecko::campaign {

/** Telemetry of one completed job, as streamed to results.jsonl. */
struct JobResult {
    std::uint64_t job = 0;
    /// Aggregation key: "workload/scheme/scenario" (device omitted
    /// while the space has one device; the key is free-form).
    std::string group;
    /// Simulation slices the job ran as (resume granularity).
    std::uint64_t slices = 0;
    // --- machine (sim::ExecStats) ---
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    std::uint64_t completions = 0;
    // --- simulation (sim::SimStats) ---
    std::uint64_t reboots = 0;
    std::uint64_t hardDeaths = 0;
    std::uint64_t backupSignals = 0;
    std::uint64_t ckptAttempts = 0;
    std::uint64_t ckptComplete = 0;
    std::uint64_t ckptTorn = 0;
    std::uint64_t missedCkpts = 0;
    // --- runtime integrity (runtime::RuntimeStats) ---
    std::uint64_t rollbacks = 0;
    std::uint64_t corruptedRestores = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t retriesExhausted = 0;
    // --- defense (defense::DefenseStats; 0 when disabled) ---
    std::uint64_t escalations = 0;
    std::uint64_t deEscalations = 0;
    // --- forward progress (sim::Nvm): committed region boundaries.
    // Optional on the wire (absent in pre-adversarial results.jsonl
    // lines, which parse as 0) — the denial-of-progress objective's
    // numerator.
    std::uint64_t commits = 0;

    std::string toJsonl() const;

    /** Parse a results.jsonl line; nullopt if torn/foreign. */
    static std::optional<JobResult> fromJsonl(const std::string& line);
};

/** Per-group integer sums. */
struct GroupTotals {
    std::uint64_t jobs = 0;
    std::uint64_t slices = 0;
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    std::uint64_t completions = 0;
    std::uint64_t reboots = 0;
    std::uint64_t hardDeaths = 0;
    std::uint64_t backupSignals = 0;
    std::uint64_t ckptAttempts = 0;
    std::uint64_t ckptComplete = 0;
    std::uint64_t ckptTorn = 0;
    std::uint64_t missedCkpts = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t corruptedRestores = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t escalations = 0;
    std::uint64_t deEscalations = 0;
    std::uint64_t commits = 0;
};

/**
 * Folds JobResults into per-group totals.  Duplicate job ids are
 * dropped (a job can legitimately appear twice in results.jsonl when
 * a crash lands between the result write and the manifest `done`
 * record — the re-run appends an identical line).
 */
class Aggregator
{
  public:
    /** @param totalJobs job-space size (bounds the dedup bitmap). */
    explicit Aggregator(std::uint64_t totalJobs);

    /** @return true if the result was new (not a duplicate id). */
    bool add(const JobResult& r);

    /** Jobs folded in (dedup'd). */
    std::uint64_t jobCount() const { return jobCount_; }

    bool seen(std::uint64_t job) const
    {
        return job < seen_.size() && seen_[job];
    }

    const std::map<std::string, GroupTotals>& groups() const
    {
        return groups_;
    }

    /**
     * Render the deterministic aggregate (bench JSON v4 flavoured):
     * groups in key order, integer counters only.  Byte-identical for
     * any execution interleaving of the same completed job set.
     */
    std::string toJson(std::uint64_t totalJobs, std::uint64_t configHash,
                       std::uint64_t seed) const;

  private:
    std::vector<bool> seen_;
    std::uint64_t jobCount_ = 0;
    // std::map: deterministic key-ordered iteration for rendering.
    std::map<std::string, GroupTotals> groups_;
};

}  // namespace gecko::campaign

#endif  // GECKO_CAMPAIGN_AGGREGATE_HPP_
