#ifndef GECKO_CAMPAIGN_MANIFEST_HPP_
#define GECKO_CAMPAIGN_MANIFEST_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/bench_json.hpp"

/**
 * @file
 * The resumable campaign manifest: an append-only JSONL journal of job
 * state transitions (DESIGN.md §13).
 *
 * State machine per job:
 *
 *     pending ──▶ running ──▶ done
 *                   │  ▲
 *                   ▼  │ (retry, attempt+1)
 *                 failed ──▶ quarantined   (attempts exhausted)
 *
 * The journal is the *only* recovery input: a SIGKILL'd campaign
 * restarts by replaying it.  Records are fsync'd at a bounded cadence
 * through metrics::JsonlWriter, and the reader tolerates exactly the
 * damage a crash can cause — a torn final line (no trailing '\n' or
 * unparseable) is dropped and counted, never fatal.  Jobs themselves
 * are never materialized here; the journal only names ids, so memory
 * stays bounded by *touched* jobs, not the job-space size.
 */

namespace gecko::campaign {

/** Journal job states. */
enum class JobState : std::uint8_t {
    kPending = 0,
    kRunning = 1,
    kDone = 2,
    kFailed = 3,
    kQuarantined = 4,
};

/** Stable lowercase name ("pending", "running", ...). */
const char* jobStateName(JobState s);

/** One journal line. */
struct ManifestRecord {
    std::uint64_t job = 0;
    JobState state = JobState::kPending;
    /// 0-based execution attempt this transition belongs to.
    std::uint32_t attempt = 0;
    /// Simulation slices completed (mid-job checkpoint progress).
    std::uint64_t slices = 0;
    /// Free-text diagnostic (failure reason); kept short.
    std::string note;

    std::string toJsonl() const;
};

/** Appends journal lines; one instance per campaign run. */
class ManifestWriter
{
  public:
    /**
     * @param path      journal file, opened in append mode
     * @param syncEvery fsync cadence in records (bounded-loss window)
     */
    explicit ManifestWriter(const std::string& path,
                            std::size_t syncEvery = 32);

    bool ok() const { return out_.ok(); }

    /** Write the campaign header (once, on a fresh journal). */
    bool header(std::uint64_t totalJobs, std::uint64_t configHash,
                std::uint64_t seed);

    bool append(const ManifestRecord& rec);

    /** Flush + fsync now (shutdown path). */
    bool sync() { return out_.sync(); }

  private:
    metrics::JsonlWriter out_;
};

/** Replay result of a journal. */
struct ManifestRecovery {
    bool hasHeader = false;
    std::uint64_t totalJobs = 0;
    std::uint64_t configHash = 0;
    std::uint64_t seed = 0;
    /// Latest observed record per touched job.
    std::unordered_map<std::uint64_t, ManifestRecord> latest;
    /// Highest job id any record named (+1 = the fresh-work frontier
    /// lower bound).
    std::uint64_t maxJob = 0;
    bool sawAnyJob = false;
    /// Torn/unparseable lines dropped (crash damage, bounded to the
    /// file tail by the writer's guarantees; >1 means external damage).
    std::uint64_t tornLines = 0;

    JobState stateOf(std::uint64_t job) const
    {
        auto it = latest.find(job);
        return it == latest.end() ? JobState::kPending : it->second.state;
    }
};

/**
 * Replay a journal file.  A missing file yields a default recovery
 * (fresh campaign).  Never throws on content: damage is counted in
 * `tornLines` and the affected transitions are simply lost — the
 * engine re-queues such jobs, which is always safe (job execution is
 * deterministic and results are deduplicated by id).
 */
ManifestRecovery readManifest(const std::string& path);

}  // namespace gecko::campaign

#endif  // GECKO_CAMPAIGN_MANIFEST_HPP_
