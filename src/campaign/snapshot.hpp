#ifndef GECKO_CAMPAIGN_SNAPSHOT_HPP_
#define GECKO_CAMPAIGN_SNAPSHOT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/archive.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/io_devices.hpp"
#include "trace/trace.hpp"

/**
 * @file
 * Whole-simulation snapshots (DESIGN.md §13).
 *
 * A snapshot captures everything a resumed run needs to be *bit
 * identical* to an uninterrupted one, taken at a `run()` boundary: the
 * simulator (NVM, machine, runtime, capacitor, monitors, defense
 * controller, EMI source), the I/O hub's output sinks, and optionally
 * the case's trace ring buffer.  What it deliberately does not capture
 * — the compiled program, device profile, harvester, fault hooks,
 * attack schedule — is a pure function of the job spec and is
 * reconstructed before restore; configuration fingerprints embedded in
 * the payload reject a snapshot forced into a mismatched
 * reconstruction.
 *
 * The blob is framed by the GSNP container (campaign/archive.hpp):
 * magic, version, length, payload, CRC-32 — a torn or bit-flipped file
 * throws `SnapshotError` before any field is decoded.
 */

namespace gecko::campaign {

/** Snapshot wire-format version (bump on any layout change).
 *  v3: defense controller gained relapse-hysteresis, redo-commit gate
 *  and edge-skew reconciliation state. */
inline constexpr std::uint32_t kSnapshotVersion = 3;

/**
 * Serialize `sim` + `io` (+ the trace ring, when given) into a sealed
 * container blob.  Call only at a `run()` boundary.
 */
std::vector<std::uint8_t> saveSimSnapshot(sim::IntermittentSim& sim,
                                          sim::IoHub& io,
                                          trace::Buffer* traceBuf = nullptr);

/**
 * Restore a blob produced by saveSimSnapshot into a freshly
 * reconstructed simulator/hub (same program, device, config, hooks).
 * @throws SnapshotError on framing, CRC, version, or configuration
 *         mismatch.
 */
void restoreSimSnapshot(sim::IntermittentSim& sim, sim::IoHub& io,
                        const std::vector<std::uint8_t>& blob,
                        trace::Buffer* traceBuf = nullptr);

/**
 * Atomically persist a blob: write `path.tmp`, fsync, rename over
 * `path`.  A crash mid-write leaves either the old file or none — the
 * CRC guard catches anything else.  @return false on I/O failure.
 */
bool writeSnapshotFile(const std::string& path,
                       const std::vector<std::uint8_t>& blob);

/**
 * Read a snapshot file.  Missing file → empty vector (not an error:
 * "no snapshot yet" is a normal campaign state); read failure on an
 * existing file throws SnapshotError.  Content validation happens at
 * restore.
 */
std::vector<std::uint8_t> readSnapshotFile(const std::string& path);

}  // namespace gecko::campaign

#endif  // GECKO_CAMPAIGN_SNAPSHOT_HPP_
