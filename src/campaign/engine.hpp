#ifndef GECKO_CAMPAIGN_ENGINE_HPP_
#define GECKO_CAMPAIGN_ENGINE_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/aggregate.hpp"
#include "compiler/pipeline.hpp"
#include "exp/thread_pool.hpp"

/**
 * @file
 * The crash-tolerant campaign engine (DESIGN.md §13).
 *
 * A campaign is a cartesian job space — workload × scheme × attack
 * scenario × seed — executed as independent deterministic simulations.
 * The engine provides the durability layer around that space:
 *
 *  - a resumable manifest (campaign/manifest) journals every job state
 *    transition, so a SIGKILL'd campaign restarts exactly where it
 *    stopped, re-queuing in-flight jobs;
 *  - per-job simulator snapshots (campaign/snapshot) let long jobs
 *    resume mid-simulation at slice granularity;
 *  - work-stealing shards over exp::ThreadPool execute jobs with
 *    retry-with-backoff, poison-job quarantine, and shard-death
 *    degradation (a dead shard's claimed work spills to the others);
 *  - results stream to `results.jsonl` and fold into a deterministic
 *    aggregate (campaign/aggregate) compacted periodically to
 *    `aggregate.json`.
 *
 * Everything that survives into `aggregate.json` is an integer counter
 * summed commutatively, so a killed-and-resumed campaign produces the
 * byte-identical aggregate of an uninterrupted run — the property the
 * kill-and-resume oracle (tests/campaign_kill_resume.sh) enforces.
 */

namespace gecko::campaign {

/** Attack scenario applied to a job's victim. */
enum class ScenarioKind : std::uint8_t {
    kClean = 0,   ///< No attacker.
    kTone = 1,    ///< Continuous tone for the whole run.
    kBurst = 2,   ///< Seed-derived windows of tone (AttackSchedule).
};

const char* scenarioName(ScenarioKind kind);

struct Scenario {
    ScenarioKind kind = ScenarioKind::kClean;
    double freqHz = 27e6;
    double powerDbm = 35.0;
    /// Optional stable label: a named scenario aggregates under (and
    /// hashes as) its name instead of its kind, so many same-kind
    /// variants (e.g. adversarial-search candidates) stay distinct
    /// groups.  "" = historical kind-keyed behaviour.
    std::string name;
    /// Spatial injection position (attack::SpatialGrid): gridRows > 0
    /// places the attacker at cell (gridRow, gridCol) of a rows x cols
    /// map and scales the rig's coupling accordingly.  0 = the
    /// historical position-free rig (and the historical configHash).
    int gridRows = 0;
    int gridCols = 0;
    int gridRow = 0;
    int gridCol = 0;
    /// Explicit burst schedule: burstCount > 0 replaces the
    /// seed-derived windows of kBurst with `burstCount` windows of
    /// `burstOnS` seconds separated by `burstGapS` gaps.
    int burstCount = 0;
    double burstOnS = 0.0;
    double burstGapS = 0.0;
    // --- spec schema v2 attack-schedule scripting ---
    /// Duty cycling (dutyPeriodS > 0 enables): the carrier is on for
    /// `dutyOnFrac` of every `dutyPeriodS` period, expressed as an
    /// explicit AttackSchedule over the whole job.  Applies to kTone
    /// (windowed tone) and kBurst.
    double dutyPeriodS = 0.0;
    double dutyOnFrac = 0.0;
    /// Offset of the first attack window (duty or explicit burst).
    double phaseS = 0.0;
    /// Piecewise amplitude envelope: per-window carrier power (dBm),
    /// cycling over the windows.  Empty = flat powerDbm.
    std::vector<double> envelopeDbm;
    /// Harvester outage environment (outagePeriodS > 0 enables): the
    /// supply is up for `outageOnFrac` of every period and collapses
    /// for the rest (SquareWaveHarvester), so burst phase can lock to
    /// harvester outages.  0 = the historical constant supply.
    double outagePeriodS = 0.0;
    double outageOnFrac = 0.0;
};

/** The cartesian job space. */
struct CampaignSpace {
    std::vector<std::string> workloads;
    std::vector<compiler::Scheme> schemes;
    std::vector<std::string> devices = {"MSP430FR5994"};
    std::vector<Scenario> scenarios;
    /// Defense-configuration axis (preset names resolved by
    /// defense::presetByName): "static" = controller off (historical
    /// behaviour), "adaptive" = controller defaults, "strict" =
    /// tightened degraded-entry thresholds.  The default single
    /// "static" entry hashes exactly like the pre-axis space, so old
    /// journals stay resumable.
    std::vector<std::string> defenses = {"static"};
    std::vector<std::uint64_t> seeds;
    /// Simulated seconds per job.
    double simSeconds = 0.05;
    /// Snapshot/stop granularity; <= 0 runs each job as one slice.
    /// Jobs ALWAYS execute slice-by-slice (whether or not a stop or
    /// kill happens) so a resumed job replays the identical quantum
    /// boundaries of an uninterrupted one.
    double sliceSimSeconds = 0.0;

    std::uint64_t jobCount() const;

    /** FNV-1a over the canonical space description (identity guard). */
    std::uint64_t configHash() const;
};

/** One decoded job. */
struct JobSpec {
    std::uint64_t job = 0;
    std::string workload;
    compiler::Scheme scheme = compiler::Scheme::kGecko;
    std::string device;
    Scenario scenario;
    /// Defense preset name ("static" = controller off).
    std::string defense = "static";
    std::uint64_t seed = 0;

    /** Aggregation key: "workload/scheme/scenario[/defense]". */
    std::string groupKey() const;
};

/** Decode job `id` from the space (mixed-radix; id < jobCount()). */
JobSpec jobAt(const CampaignSpace& space, std::uint64_t id);

/** Engine knobs. */
struct EngineConfig {
    /// Campaign directory: manifest.jsonl, results.jsonl,
    /// aggregate.json, snap_<job>.bin all live here.  Must exist.
    std::string dir;
    CampaignSpace space;
    /// Campaign identity seed (recorded in the manifest header and
    /// mixed into job seeds).
    std::uint64_t seed = 1;
    /// Path of the spec file this campaign was launched from ("" =
    /// flag-driven).  Recorded in quarantine notes so a poisoned
    /// spec-driven job names its spec in the manifest.
    std::string specPath;
    /// Total attempts per job before quarantine.
    int maxAttempts = 3;
    /// Linear retry backoff unit (attempt n sleeps n * this).
    int retryBackoffMs = 1;
    /// Jobs a shard claims per cursor bump (work-stealing granule).
    std::uint64_t shardSize = 16;
    /// Cap on jobs *started* this run (0 = no cap); the rest stay
    /// pending for a later resume.  Lets tests/drivers make bounded
    /// progress deliberately.
    std::uint64_t maxJobsThisRun = 0;
    /// Manifest fsync cadence (records).
    std::size_t manifestSyncEvery = 8;
    /// Rewrite aggregate.json every N new results (and at run end).
    std::uint64_t compactEvery = 64;
    /// Keep per-job snapshots after completion (debugging).
    bool keepSnapshots = false;
    /// Cooperative stop (signal flag): checked between jobs and
    /// between slices.  A mid-job stop snapshots and journals progress
    /// without consuming an attempt.
    std::function<bool()> stopRequested;
    /// Test hook: runs on the shard thread before each job's attempt
    /// loop.  A throw here is OUTSIDE per-job containment and kills
    /// the shard — exercised by the shard-death degradation test.
    std::function<void(std::uint64_t job)> beforeJob;
};

/** What one run() accomplished. */
struct EngineReport {
    std::uint64_t jobsTotal = 0;
    /// Jobs with a result record after this run (includes prior runs).
    std::uint64_t jobsDone = 0;
    /// Failed attempts observed this run.
    std::uint64_t attemptsFailed = 0;
    std::uint64_t jobsQuarantined = 0;
    /// In-flight/failed jobs re-queued during recovery.
    std::uint64_t jobsRequeued = 0;
    /// Requeued jobs that resumed from a mid-job snapshot.
    std::uint64_t resumedFromSnapshot = 0;
    /// Shards that died; their claimed work spilled to the others.
    std::uint64_t shardDeaths = 0;
    /// Torn journal lines dropped during recovery.
    std::uint64_t tornManifestLines = 0;
    std::uint64_t tornResultLines = 0;
    /// Every job done or quarantined.
    bool complete = false;
    /// The deterministic aggregate (also compacted to aggregate.json).
    std::string aggregateJson;
};

/**
 * Run (or resume) the campaign in `config.dir` on `pool`.  The calling
 * thread participates as a shard.  Throws std::runtime_error when the
 * directory holds a manifest for a *different* campaign (config-hash /
 * seed / job-count mismatch) — resuming someone else's journal would
 * silently corrupt the aggregate.
 */
EngineReport runCampaign(const EngineConfig& config, exp::ThreadPool& pool);

}  // namespace gecko::campaign

#endif  // GECKO_CAMPAIGN_ENGINE_HPP_
