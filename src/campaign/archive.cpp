#include "campaign/archive.hpp"

namespace gecko::campaign {

namespace {

constexpr char kMagic[4] = {'G', 'S', 'N', 'P'};

const std::uint32_t*
crcTable()
{
    static const auto table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
putU32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

}  // namespace

std::uint32_t
crc32Bytes(const std::uint8_t* data, std::size_t n, std::uint32_t crc)
{
    const std::uint32_t* table = crcTable();
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return crc;
}

std::vector<std::uint8_t>
sealContainer(std::uint32_t version, const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(4 + 4 + 8 + payload.size() + 4);
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, version);
    putU64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    putU32(out, crc32Bytes(payload.data(), payload.size()));
    return out;
}

std::vector<std::uint8_t>
openContainer(const std::vector<std::uint8_t>& bytes,
              std::uint32_t expectVersion)
{
    constexpr std::size_t kHeader = 4 + 4 + 8;
    if (bytes.size() < kHeader + 4)
        throw SnapshotError("snapshot: container too short");
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        throw SnapshotError("snapshot: bad magic");
    std::uint32_t version = getU32(bytes.data() + 4);
    if (version != expectVersion)
        throw SnapshotError("snapshot: version " + std::to_string(version) +
                            " (expected " + std::to_string(expectVersion) +
                            ")");
    std::uint64_t len = getU64(bytes.data() + 8);
    if (len != bytes.size() - kHeader - 4)
        throw SnapshotError("snapshot: payload length mismatch");
    std::uint32_t want = getU32(bytes.data() + kHeader + len);
    std::uint32_t got =
        crc32Bytes(bytes.data() + kHeader, static_cast<std::size_t>(len));
    if (want != got)
        throw SnapshotError("snapshot: CRC mismatch");
    return std::vector<std::uint8_t>(bytes.begin() + kHeader,
                                     bytes.begin() + kHeader +
                                         static_cast<std::ptrdiff_t>(len));
}

}  // namespace gecko::campaign
