#ifndef GECKO_CAMPAIGN_ARCHIVE_HPP_
#define GECKO_CAMPAIGN_ARCHIVE_HPP_

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

/**
 * @file
 * Bidirectional byte-stream archive for simulator snapshots.
 *
 * One `archiveState(Archive&)` method per component lists its fields
 * once; the same list runs in save and load mode, so the two directions
 * cannot drift apart (the classic save/load asymmetry bug).  The
 * archive is little-endian, fixed-width, and deliberately free of any
 * simulator dependency so `sim/` and `energy/` translation units can
 * include it without a layering cycle.
 *
 * Container framing (snapshot files / blobs):
 *
 *     "GSNP" | u32 version | u64 payload length | payload | u32 CRC-32
 *
 * `sealContainer` wraps a payload; `openContainer` validates magic,
 * version, length, and CRC before a single field is decoded, throwing
 * `SnapshotError` on any mismatch.  Load-mode reads are bounds-checked:
 * a truncated or oversized payload can never read past its buffer.
 */

namespace gecko::campaign {

/** Any snapshot decode/validation failure. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Byte-wise CRC-32 (reflected 0xEDB88320, init 0, no final xor). */
std::uint32_t crc32Bytes(const std::uint8_t* data, std::size_t n,
                         std::uint32_t crc = 0);

/** Field-list serializer; see file comment. */
class Archive
{
  public:
    /** Fresh archive in save mode. */
    static Archive saver() { return Archive(true, {}); }

    /** Archive in load mode over a raw (container-free) payload. */
    static Archive loader(std::vector<std::uint8_t> payload)
    {
        return Archive(false, std::move(payload));
    }

    bool saving() const { return saving_; }

    // ------------------------------------------------------------------
    // Scalar fields.
    // ------------------------------------------------------------------
    void u8(std::uint8_t& v) { bytes(&v, 1); }

    void u16(std::uint16_t& v) { fixed(v); }
    void u32(std::uint32_t& v) { fixed(v); }
    void u64(std::uint64_t& v) { fixed(v); }

    void i32(std::int32_t& v)
    {
        std::uint32_t u = static_cast<std::uint32_t>(v);
        fixed(u);
        v = static_cast<std::int32_t>(u);
    }

    void i64(std::int64_t& v)
    {
        std::uint64_t u = static_cast<std::uint64_t>(v);
        fixed(u);
        v = static_cast<std::int64_t>(u);
    }

    /**
     * Doubles travel as their IEEE-754 bit pattern, so a restored value
     * is the *identical* double (including -0.0 and NaN payloads) — a
     * textual round-trip would not be, and the bit-identical oracle
     * would catch it.
     */
    void f64(double& v)
    {
        std::uint64_t bits = 0;
        if (saving_)
            std::memcpy(&bits, &v, sizeof bits);
        fixed(bits);
        if (!saving_)
            std::memcpy(&v, &bits, sizeof v);
    }

    void boolean(bool& v)
    {
        std::uint8_t b = v ? 1 : 0;
        u8(b);
        if (!saving_) {
            if (b > 1)
                throw SnapshotError("archive: bad boolean encoding");
            v = b != 0;
        }
    }

    /** size_t via u64 (portable across word sizes). */
    void sizeValue(std::size_t& v)
    {
        std::uint64_t u = v;
        fixed(u);
        if (!saving_) {
            if (u > SIZE_MAX)
                throw SnapshotError("archive: size overflows size_t");
            v = static_cast<std::size_t>(u);
        }
    }

    // ------------------------------------------------------------------
    // Aggregates.
    // ------------------------------------------------------------------
    /** Fixed-length word span: length is structural, not encoded. */
    void u32Span(std::uint32_t* p, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            u32(p[i]);
    }

    template <std::size_t N>
    void u32Array(std::array<std::uint32_t, N>& a)
    {
        u32Span(a.data(), N);
    }

    /**
     * Fixed-capacity word vector: the length is validated, never
     * resized — component buffers (NVM data, trace rings) are sized by
     * configuration, and a snapshot for a different configuration must
     * be rejected, not adapted.
     */
    void u32FixedVector(std::vector<std::uint32_t>& v, const char* what)
    {
        std::uint64_t n = v.size();
        fixed(n);
        if (!saving_ && n != v.size())
            throw SnapshotError(std::string("archive: ") + what +
                                " length mismatch");
        u32Span(v.data(), v.size());
    }

    /** Structural tag: save writes it, load verifies it. */
    void section(const char* name)
    {
        std::uint32_t tag = 0x811c9dc5u;  // FNV-1a over the name
        for (const char* p = name; *p; ++p)
            tag = (tag ^ static_cast<std::uint8_t>(*p)) * 0x01000193u;
        std::uint32_t seen = tag;
        fixed(seen);
        if (!saving_ && seen != tag)
            throw SnapshotError(
                std::string("archive: section mismatch at ") + name);
    }

    /**
     * Configuration guard: the saver records `value`; the loader
     * compares it against the restoring simulator's own value and
     * throws when a snapshot is being forced into a differently
     * configured instance.
     */
    void check(std::uint64_t value, const char* what)
    {
        std::uint64_t seen = value;
        fixed(seen);
        if (!saving_ && seen != value)
            throw SnapshotError(std::string("archive: ") + what +
                                " mismatch (snapshot " +
                                std::to_string(seen) + ", instance " +
                                std::to_string(value) + ")");
    }

    // ------------------------------------------------------------------
    // Termination.
    // ------------------------------------------------------------------
    /** Save mode: surrender the accumulated payload. */
    std::vector<std::uint8_t> takePayload()
    {
        return std::move(buf_);
    }

    /** Load mode: all payload bytes must have been consumed. */
    void finishLoad() const
    {
        if (pos_ != buf_.size())
            throw SnapshotError("archive: trailing bytes in payload");
    }

  private:
    Archive(bool saving, std::vector<std::uint8_t> buf)
        : saving_(saving), buf_(std::move(buf))
    {
    }

    void bytes(std::uint8_t* p, std::size_t n)
    {
        if (saving_) {
            buf_.insert(buf_.end(), p, p + n);
        } else {
            if (buf_.size() - pos_ < n)
                throw SnapshotError("archive: payload truncated");
            std::memcpy(p, buf_.data() + pos_, n);
            pos_ += n;
        }
    }

    template <class T>
    void fixed(T& v)
    {
        static_assert(std::is_unsigned_v<T>);
        std::uint8_t raw[sizeof(T)];
        if (saving_) {
            for (std::size_t i = 0; i < sizeof(T); ++i)
                raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
        bytes(raw, sizeof(T));
        if (!saving_) {
            v = 0;
            for (std::size_t i = 0; i < sizeof(T); ++i)
                v |= static_cast<T>(raw[i]) << (8 * i);
        }
    }

    bool saving_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

/** Wrap `payload` in the versioned, CRC-guarded container. */
std::vector<std::uint8_t> sealContainer(std::uint32_t version,
                                        const std::vector<std::uint8_t>& payload);

/**
 * Validate a container (magic, version, length, CRC) and return its
 * payload.  @throws SnapshotError on any mismatch.
 */
std::vector<std::uint8_t> openContainer(const std::vector<std::uint8_t>& bytes,
                                        std::uint32_t expectVersion);

}  // namespace gecko::campaign

#endif  // GECKO_CAMPAIGN_ARCHIVE_HPP_
