#include "campaign/manifest.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gecko::campaign {

const char*
jobStateName(JobState s)
{
    switch (s) {
        case JobState::kPending: return "pending";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kFailed: return "failed";
        case JobState::kQuarantined: return "quarantined";
    }
    return "unknown";
}

std::string
ManifestRecord::toJsonl() const
{
    std::ostringstream os;
    os << "{\"job\":" << job << ",\"state\":\"" << jobStateName(state)
       << "\",\"attempt\":" << attempt << ",\"slices\":" << slices;
    if (!note.empty())
        os << ",\"note\":\"" << metrics::jsonEscape(note) << "\"";
    os << "}";
    return os.str();
}

ManifestWriter::ManifestWriter(const std::string& path,
                               std::size_t syncEvery)
    : out_(path, /*append=*/true, syncEvery)
{
}

bool
ManifestWriter::header(std::uint64_t totalJobs, std::uint64_t configHash,
                       std::uint64_t seed)
{
    std::ostringstream os;
    // config/seed are full u64s; quoted so the double-based jsonNumber
    // extractor's 2^53 precision limit can't corrupt the comparison.
    os << "{\"manifest\":\"gecko-campaign\",\"version\":1,\"jobs\":"
       << totalJobs << ",\"config\":\"" << configHash << "\",\"seed\":\""
       << seed << "\"}";
    // The header is the journal's identity: land it durably before any
    // job record can reference it.
    return out_.append(os.str()) && out_.sync();
}

bool
ManifestWriter::append(const ManifestRecord& rec)
{
    return out_.append(rec.toJsonl());
}

namespace {

JobState
parseState(const std::string& name, bool* ok)
{
    *ok = true;
    for (JobState s : {JobState::kPending, JobState::kRunning,
                       JobState::kDone, JobState::kFailed,
                       JobState::kQuarantined}) {
        if (name == jobStateName(s))
            return s;
    }
    *ok = false;
    return JobState::kPending;
}

}  // namespace

ManifestRecovery
readManifest(const std::string& path)
{
    ManifestRecovery rec;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return rec;

    // Read raw so a torn tail is detectable: only lines terminated by
    // '\n' are candidates; a trailing fragment is crash damage.
    std::ostringstream all;
    all << in.rdbuf();
    const std::string text = all.str();

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            // Unterminated tail: the record the crash interrupted.
            ++rec.tornLines;
            break;
        }
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;

        if (metrics::jsonString(line, "manifest").has_value()) {
            auto jobs = metrics::jsonNumber(line, "jobs");
            auto config = metrics::jsonString(line, "config");
            auto seed = metrics::jsonString(line, "seed");
            if (!jobs || !config || !seed) {
                ++rec.tornLines;
                continue;
            }
            rec.hasHeader = true;
            rec.totalJobs = static_cast<std::uint64_t>(*jobs);
            rec.configHash =
                std::strtoull(config->c_str(), nullptr, 10);
            rec.seed = std::strtoull(seed->c_str(), nullptr, 10);
            continue;
        }

        auto job = metrics::jsonNumber(line, "job");
        auto state = metrics::jsonString(line, "state");
        auto attempt = metrics::jsonNumber(line, "attempt");
        auto slices = metrics::jsonNumber(line, "slices");
        bool stateOk = false;
        JobState parsed =
            state ? parseState(*state, &stateOk) : JobState::kPending;
        if (!job || !state || !attempt || !slices || !stateOk) {
            ++rec.tornLines;
            continue;
        }
        ManifestRecord r;
        r.job = static_cast<std::uint64_t>(*job);
        r.state = parsed;
        r.attempt = static_cast<std::uint32_t>(*attempt);
        r.slices = static_cast<std::uint64_t>(*slices);
        rec.latest[r.job] = r;
        rec.maxJob = std::max(rec.maxJob, r.job);
        rec.sawAnyJob = true;
    }
    return rec;
}

}  // namespace gecko::campaign
