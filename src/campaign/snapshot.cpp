#include "campaign/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace gecko::campaign {

namespace {

void
archiveAll(Archive& ar, sim::IntermittentSim& sim, sim::IoHub& io,
           trace::Buffer* traceBuf)
{
    sim.archiveState(ar);
    io.archiveState(ar);
    ar.check(traceBuf != nullptr ? 1 : 0, "trace buffer attached");
    if (traceBuf != nullptr)
        traceBuf->archiveState(ar);
}

}  // namespace

std::vector<std::uint8_t>
saveSimSnapshot(sim::IntermittentSim& sim, sim::IoHub& io,
                trace::Buffer* traceBuf)
{
    Archive ar = Archive::saver();
    archiveAll(ar, sim, io, traceBuf);
    return sealContainer(kSnapshotVersion, ar.takePayload());
}

void
restoreSimSnapshot(sim::IntermittentSim& sim, sim::IoHub& io,
                   const std::vector<std::uint8_t>& blob,
                   trace::Buffer* traceBuf)
{
    Archive ar = Archive::loader(openContainer(blob, kSnapshotVersion));
    archiveAll(ar, sim, io, traceBuf);
    ar.finishLoad();
}

bool
writeSnapshotFile(const std::string& path,
                  const std::vector<std::uint8_t>& blob)
{
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    const std::uint8_t* p = blob.data();
    std::size_t left = blob.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string& path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT)
            return {};
        throw SnapshotError("snapshot: cannot open " + path + ": " +
                            std::strerror(errno));
    }
    std::vector<std::uint8_t> out;
    std::uint8_t buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            throw SnapshotError("snapshot: read failed on " + path + ": " +
                                std::strerror(err));
        }
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return out;
}

}  // namespace gecko::campaign
