#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * dhrystone: the classic synthetic integer mix — record copies, array
 * assignments, word-string comparison and branchy procedure logic over
 * two 50-word "records" (A at 512, B at 600), 40 iterations.
 */
ir::Program
buildDhrystone()
{
    constexpr int kA = 512;
    constexpr int kB = 600;
    constexpr int kRec = 50;

    ir::ProgramBuilder b("dhrystone");
    b.movi(0, 0)
        // --- initialise record A ---
        .movi(1, 0)
        .movi(2, kRec)
        .movi(3, 31)  // LCG
        .movi(4, kA)
        .label("init")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .shri(5, 3, 20)
        .add(6, 4, 1)
        .store(6, 0, 5)
        .addi(1, 1, 1)
        .blt(1, 2, "init")
        // --- main loop: 40 iterations ---
        .movi(7, 0)   // iter
        .movi(8, 40)  // iterations
        .movi(14, 0)  // checksum
        .label("main")
        // Proc1: copy record A -> B with per-field adjustment.
        .movi(1, 0)
        .label("copy")
        .add(6, 4, 1)
        .load(5, 6, 0)
        .add(5, 5, 7)       // fields get the iteration mixed in
        .movi(9, kB)
        .add(9, 9, 1)
        .store(9, 0, 5)
        .addi(1, 1, 1)
        .blt(1, 2, "copy")
        // Proc2: branchy identifier logic.
        .andi(10, 7, 3)
        .beq(10, 0, "ident1")
        .movi(11, 2)
        .jmp("proc3")
        .label("ident1")
        .movi(11, 1)
        .label("proc3")
        // Proc3: B[5] = B[iter % 25] + identifier
        .remui(12, 7, 25)
        .movi(9, kB)
        .add(9, 9, 12)
        .load(5, 9, 0)
        .add(5, 5, 11)
        .movi(9, kB)
        .store(9, 5, 5)
        // Func2: word-string comparison of A[0..7] vs B[0..7].
        .movi(1, 0)
        .movi(13, 0)  // mismatch count
        .label("cmp")
        .add(6, 4, 1)
        .load(5, 6, 0)
        .movi(9, kB)
        .add(9, 9, 1)
        .load(10, 9, 0)
        .beq(5, 10, "cmp_eq")
        .addi(13, 13, 1)
        .label("cmp_eq")
        .addi(1, 1, 1)
        .movi(9, 8)
        .blt(1, 9, "cmp")
        .add(14, 14, 13)
        // Fold in B[5].
        .movi(9, kB)
        .load(5, 9, 5)
        .add(14, 14, 5)
        .addi(7, 7, 1)
        .blt(7, 8, "main")
        .out(0, 14)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
