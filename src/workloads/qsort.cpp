#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * qsort: iterative quicksort (Lomuto partition, explicit range stack in
 * NVM) over a 64-word LCG array at 1600; stack at 1700.  Emits a
 * position-weighted checksum of the sorted array.
 */
ir::Program
buildQsort()
{
    constexpr int kArr = 1600;
    constexpr int kStack = 1700;
    constexpr int kN = 64;

    ir::ProgramBuilder b("qsort");
    b.movi(0, 0)
        // --- init array ---
        .movi(1, 0)
        .movi(2, kN)
        .movi(3, 4242)
        .label("init")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .shri(4, 3, 8)
        .andi(4, 4, 1023)
        .movi(5, kArr)
        .add(5, 5, 1)
        .store(5, 0, 4)
        .addi(1, 1, 1)
        .blt(1, 2, "init")
        // --- push initial range (0, N-1); r13 = stack pointer ---
        .movi(13, 0)
        .movi(5, kStack)
        .store(5, 0, 0)  // lo = 0
        .movi(4, kN - 1)
        .store(5, 1, 4)  // hi = N-1
        .movi(13, 2)
        .label("work")
        .beq(13, 0, "done")
        // pop hi, lo
        .subi(13, 13, 1)
        .movi(5, kStack)
        .add(5, 5, 13)
        .load(2, 5, 0)  // hi
        .subi(13, 13, 1)
        .movi(5, kStack)
        .add(5, 5, 13)
        .load(1, 5, 0)  // lo
        .bge(1, 2, "work")  // empty range
        // pivot = arr[hi]
        .movi(5, kArr)
        .add(5, 5, 2)
        .load(6, 5, 0)  // pivot
        .mov(7, 1)      // i = lo
        .mov(8, 1)      // j = lo
        .label("part")
        .bge(8, 2, "part_done")
        .movi(5, kArr)
        .add(5, 5, 8)
        .load(9, 5, 0)  // arr[j]
        .bge(9, 6, "no_swap")
        // swap arr[i], arr[j]
        .movi(5, kArr)
        .add(5, 5, 7)
        .load(10, 5, 0)
        .store(5, 0, 9)
        .movi(5, kArr)
        .add(5, 5, 8)
        .store(5, 0, 10)
        .addi(7, 7, 1)
        .label("no_swap")
        .addi(8, 8, 1)
        .jmp("part")
        .label("part_done")
        // swap arr[i], arr[hi]
        .movi(5, kArr)
        .add(5, 5, 7)
        .load(10, 5, 0)
        .movi(5, kArr)
        .add(5, 5, 2)
        .load(9, 5, 0)
        .store(5, 0, 10)
        .movi(5, kArr)
        .add(5, 5, 7)
        .store(5, 0, 9)
        // push (lo, i-1), (i+1, hi)
        .movi(5, kStack)
        .add(5, 5, 13)
        .store(5, 0, 1)
        .subi(9, 7, 1)
        .store(5, 1, 9)
        .addi(9, 7, 1)
        .store(5, 2, 9)
        .store(5, 3, 2)
        .addi(13, 13, 4)
        .jmp("work")
        .label("done")
        // --- checksum Σ arr[i] * (i+1) ---
        .movi(1, 0)
        .movi(2, kN)
        .movi(4, 0)
        .label("sum")
        .movi(5, kArr)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .addi(10, 1, 1)
        .mul(9, 9, 10)
        .add(4, 4, 9)
        .addi(1, 1, 1)
        .blt(1, 2, "sum")
        .out(0, 4)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
