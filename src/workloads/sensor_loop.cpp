#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * sensor_loop: the continuously-sensing application of the threat model
 * (§III) — read a sensor sample, exponentially smooth it, raise an
 * alarm output when the sample jumps above the smoothed baseline, and
 * report the baseline.  16 samples per completion so throughput
 * (completions per minute, Fig. 13) is a responsive metric.
 */
ir::Program
buildSensorLoop()
{
    constexpr int kEwmaAddr = 2300;  // persistent baseline across runs

    ir::ProgramBuilder b("sensor_loop");
    b.movi(0, 0)
        .movi(1, 16)  // samples per completion
        .movi(6, kEwmaAddr)
        .load(2, 6, 0)  // baseline persists in NVM across completions
        .label("loop")
        .in(3, 1)  // sensor sample
        // ewma = (3*ewma + x) / 4
        .muli(4, 2, 3)
        .add(4, 4, 3)
        .shri(2, 4, 2)
        // alarm when x > ewma + 24
        .addi(5, 2, 24)
        .bgeu(5, 3, "no_alarm")
        .out(2, 3)  // alarm port carries the offending sample
        .label("no_alarm")
        .out(0, 2)  // report the baseline
        .subi(1, 1, 1)
        .bne(1, 0, "loop")
        .movi(6, kEwmaAddr)
        .store(6, 0, 2)
        .halt();
    return b.take();
}

/**
 * sensor_app: the Fig. 13 evaluation application — sense a batch of
 * samples, then run a substantial register-only feature-extraction stage
 * (~60 k cycles) before reporting.  The compute stage has no memory
 * anti-dependence, so Ratchet keeps it in a single region that cannot
 * complete inside the short power-on windows an EMI attack leaves —
 * the paper's Ratchet DoS — while GECKO's WCET pass splits it.
 */
ir::Program
buildSensorApp()
{
    ir::ProgramBuilder b("sensor_app");
    b.movi(0, 0)
        .movi(1, 4)  // samples per completion
        .movi(2, 0)  // accumulated feature
        .label("sample")
        .in(3, 1)
        // Feature extraction: 64 x 64 rounds of register mixing (~50 k
        // cycles), nested counted loops so the WCET pass can split at
        // the outer level (one region per ~1 k-cycle chunk) while
        // Ratchet keeps the whole thing in a single region — too long
        // for the short power cycles a forged-wake attack leaves.
        .movi(4, 0)
        .movi(5, 64)
        .mov(6, 3)
        .label("mix_outer")
        .movi(8, 0)
        .movi(9, 64)
        .label("mix")
        .muli(6, 6, 1103515245)
        .addi(6, 6, 12345)
        .shri(7, 6, 13)
        .xor_(6, 6, 7)
        .add(2, 2, 6)
        .addi(8, 8, 1)
        .blt(8, 9, "mix")
        .addi(4, 4, 1)
        .blt(4, 5, "mix_outer")
        .subi(1, 1, 1)
        .bne(1, 0, "sample")
        .andi(2, 2, 0xffff)
        .out(0, 2)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
