#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * fft: 16-point integer Fourier transform (direct O(N²) form with a
 * quarter-scaled integer twiddle table).  Input at 1400, sine table at
 * 1360; emits a checksum over the spectrum.
 */
ir::Program
buildFft()
{
    constexpr int kSin = 1360;
    constexpr int kIn = 1400;
    constexpr int kN = 16;
    // round(127 * sin(2πk/16)) for k = 0..15.
    constexpr int kTab[kN] = {0,   49,  90,   117,  127,  117,  90,  49,
                              0,   -49, -90,  -117, -127, -117, -90, -49};

    ir::ProgramBuilder b("fft");
    b.movi(0, 0);
    // --- twiddle table ---
    b.movi(4, kSin);
    for (int k = 0; k < kN; ++k) {
        b.movi(5, kTab[k]);
        b.store(4, k, 5);
    }
    // --- input signal: LCG in [-128, 127] ---
    b.movi(1, 0)
        .movi(2, kN)
        .movi(3, 2024)
        .label("init")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .shri(5, 3, 16)
        .andi(5, 5, 255)
        .subi(5, 5, 128)
        .movi(6, kIn)
        .add(6, 6, 1)
        .store(6, 0, 5)
        .addi(1, 1, 1)
        .blt(1, 2, "init")
        // --- DFT ---
        .movi(7, 0)   // k
        .movi(14, 0)  // checksum
        .label("kloop")
        .movi(8, 0)  // re
        .movi(9, 0)  // im
        .movi(1, 0)  // n
        .label("nloop")
        .mul(10, 7, 1)
        .andi(10, 10, kN - 1)  // twiddle index
        // x[n]
        .movi(6, kIn)
        .add(6, 6, 1)
        .load(5, 6, 0)
        // cos = sin[(idx+4) & 15]
        .addi(11, 10, 4)
        .andi(11, 11, kN - 1)
        .movi(6, kSin)
        .add(6, 6, 11)
        .load(12, 6, 0)
        .mul(12, 12, 5)
        .add(8, 8, 12)
        // im -= x[n] * sin[idx]
        .movi(6, kSin)
        .add(6, 6, 10)
        .load(12, 6, 0)
        .mul(12, 12, 5)
        .sub(9, 9, 12)
        .addi(1, 1, 1)
        .blt(1, 2, "nloop")
        // checksum += (re >> 7) + (im >> 7)  (logical shifts; determinism
        // is all that matters here)
        .shri(8, 8, 7)
        .shri(9, 9, 7)
        .add(14, 14, 8)
        .add(14, 14, 9)
        .addi(7, 7, 1)
        .blt(7, 2, "kloop")
        .out(0, 14)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
