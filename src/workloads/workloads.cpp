#include "workloads/workloads.hpp"

#include <stdexcept>

namespace gecko::workloads {

const std::vector<std::string>&
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "basicmath", "bitcnt", "blink",  "crc16", "crc32",       "dhrystone",
        "dijkstra",  "fft",    "fir",    "qsort", "stringsearch",
    };
    return names;
}

ir::Program
build(const std::string& name)
{
    if (name == "basicmath")
        return buildBasicmath();
    if (name == "bitcnt")
        return buildBitcnt();
    if (name == "blink")
        return buildBlink();
    if (name == "crc16")
        return buildCrc16();
    if (name == "crc32")
        return buildCrc32();
    if (name == "dhrystone")
        return buildDhrystone();
    if (name == "dijkstra")
        return buildDijkstra();
    if (name == "fft")
        return buildFft();
    if (name == "fir")
        return buildFir();
    if (name == "qsort")
        return buildQsort();
    if (name == "stringsearch")
        return buildStringsearch();
    if (name == "sensor_loop")
        return buildSensorLoop();
    if (name == "sensor_app")
        return buildSensorApp();
    if (name == "xtea")
        return buildXtea();
    throw std::out_of_range("unknown workload: " + name);
}

void
setupIo(const std::string& name, sim::IoHub& io)
{
    if (name == "fir" || name == "sensor_loop" || name == "sensor_app") {
        // Deterministic pseudo-sensor: a slow triangle wave with a
        // pseudo-random ripple, the kind of signal a glucose monitor or
        // temperature node would smooth.
        io.setInput(1, std::make_shared<sim::FunctionInput>(
                           [](std::uint64_t i) -> std::uint32_t {
                               std::uint32_t tri =
                                   static_cast<std::uint32_t>(i % 64);
                               if (tri >= 32)
                                   tri = 64 - tri;
                               std::uint32_t noise =
                                   static_cast<std::uint32_t>(
                                       (i * 2654435761u) >> 28);
                               return 100 + tri * 4 + noise;
                           }));
    }
}

}  // namespace gecko::workloads
