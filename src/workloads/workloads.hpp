#ifndef GECKO_WORKLOADS_WORKLOADS_HPP_
#define GECKO_WORKLOADS_WORKLOADS_HPP_

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "sim/io_devices.hpp"

/**
 * @file
 * The benchmark suite of the paper's evaluation (Table III):
 * basicmath, bitcnt, blink, crc16, crc32, dhrystone, dijkstra, fft,
 * fir, qsort, stringsearch — MiBench-style kernels hand-written in the
 * mini-ISA — plus `sensor_loop`, the continuously-sensing application
 * used for the attack experiments (§III "Applications").
 *
 * Conventions: every workload initialises its own input data in NVM
 * (deterministic LCG patterns), keeps r0 == 0 throughout, and emits its
 * results on output port 0.  fir and sensor_loop additionally read
 * samples from input port 1.
 */

namespace gecko::workloads {

/** Names of the 11 paper benchmarks, in Table III order. */
const std::vector<std::string>& benchmarkNames();

/**
 * Build a workload program by name (a benchmark or "sensor_loop").
 * @throws std::out_of_range for unknown names.
 */
ir::Program build(const std::string& name);

/**
 * Install the input devices a workload expects on `io` (no-op for the
 * pure-compute benchmarks).
 */
void setupIo(const std::string& name, sim::IoHub& io);

// Individual builders.
ir::Program buildBasicmath();
ir::Program buildBitcnt();
ir::Program buildBlink();
ir::Program buildCrc16();
ir::Program buildCrc32();
ir::Program buildDhrystone();
ir::Program buildDijkstra();
ir::Program buildFft();
ir::Program buildFir();
ir::Program buildQsort();
ir::Program buildStringsearch();
ir::Program buildSensorLoop();
ir::Program buildSensorApp();
ir::Program buildXtea();

}  // namespace gecko::workloads

#endif  // GECKO_WORKLOADS_WORKLOADS_HPP_
