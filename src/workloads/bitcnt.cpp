#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * bitcnt: population count of 256 LCG-generated words by shift-and-mask,
 * accumulating the total.
 */
ir::Program
buildBitcnt()
{
    ir::ProgramBuilder b("bitcnt");
    b.movi(0, 0)
        .movi(1, 0)      // i
        .movi(2, 256)    // N
        .movi(3, 12345)  // LCG state
        .movi(4, 0)      // total bits
        .label("outer")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .mov(5, 3)   // v
        .movi(6, 0)  // bits in v
        .movi(8, 0)  // bit index (counted loop: WCET-analysable)
        .movi(9, 32)
        .label("inner")
        .andi(7, 5, 1)
        .add(6, 6, 7)
        .shri(5, 5, 1)
        .addi(8, 8, 1)
        .blt(8, 9, "inner")
        .add(4, 4, 6)
        .addi(1, 1, 1)
        .blt(1, 2, "outer")
        .out(0, 4)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
