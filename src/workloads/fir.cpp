#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * fir: 8-tap FIR filter over 64 sensor samples read from input port 1,
 * emitting every filtered value on port 0 — the I/O-heavy benchmark.
 * Taps at 1500, ring buffer at 1520.
 */
ir::Program
buildFir()
{
    constexpr int kTaps = 1500;
    constexpr int kRing = 1520;
    constexpr int kNTaps = 8;
    constexpr int kSamples = 64;
    // A small symmetric low-pass kernel.
    constexpr int kKernel[kNTaps] = {1, 3, 7, 13, 13, 7, 3, 1};

    ir::ProgramBuilder b("fir");
    b.movi(0, 0);
    b.movi(4, kTaps);
    for (int i = 0; i < kNTaps; ++i) {
        b.movi(5, kKernel[i]);
        b.store(4, i, 5);
    }
    // Zero the ring buffer.
    b.movi(4, kRing);
    for (int i = 0; i < kNTaps; ++i)
        b.store(4, i, 0);

    b.movi(1, 0)         // sample index
        .movi(2, kSamples)
        .label("sample")
        .in(3, 1)  // read sensor
        // ring[i % 8] = x
        .andi(5, 1, kNTaps - 1)
        .movi(4, kRing)
        .add(4, 4, 5)
        .store(4, 0, 3)
        // y = Σ taps[t] * ring[(i - t) % 8]
        .movi(6, 0)  // t
        .movi(7, 0)  // acc
        .movi(8, kNTaps)
        .label("mac")
        .sub(9, 1, 6)
        .andi(9, 9, kNTaps - 1)
        .movi(4, kRing)
        .add(4, 4, 9)
        .load(10, 4, 0)
        .movi(4, kTaps)
        .add(4, 4, 6)
        .load(11, 4, 0)
        .mul(10, 10, 11)
        .add(7, 7, 10)
        .addi(6, 6, 1)
        .blt(6, 8, "mac")
        .shri(7, 7, 6)  // normalise by 64 (not exact gain; deterministic)
        .out(0, 7)
        .addi(1, 1, 1)
        .blt(1, 2, "sample")
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
