#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * blink: toggle an output "LED" 64 times.  The smallest benchmark —
 * the paper reports only 6 checkpoint stores for it (Table III).
 */
ir::Program
buildBlink()
{
    ir::ProgramBuilder b("blink");
    b.movi(0, 0)
        .movi(1, 64)  // iterations
        .movi(2, 0)   // led state
        .label("loop")
        .xori(2, 2, 1)
        .out(0, 2)
        .subi(1, 1, 1)
        .bne(1, 0, "loop")
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
