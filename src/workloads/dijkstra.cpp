#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * dijkstra: single-source shortest paths on a dense 12-node graph
 * (O(N²) scan, no heap), LCG-generated edge weights.  Layout: adjacency
 * matrix at 1024 (row-major), dist[] at 1200, visited[] at 1220.
 */
ir::Program
buildDijkstra()
{
    constexpr int kN = 12;
    constexpr int kAdj = 1024;
    constexpr int kDist = 1200;
    constexpr int kVis = 1220;
    constexpr int kInf = 0x3fffffff;

    ir::ProgramBuilder b("dijkstra");
    b.movi(0, 0)
        // --- init adjacency matrix: weights 1..16 ---
        .movi(1, 0)            // flat index
        .movi(2, kN * kN)
        .movi(3, 555)          // LCG
        .label("init_adj")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .shri(4, 3, 12)
        .andi(4, 4, 15)
        .addi(4, 4, 1)
        .movi(5, kAdj)
        .add(5, 5, 1)
        .store(5, 0, 4)
        .addi(1, 1, 1)
        .blt(1, 2, "init_adj")
        // --- init dist/visited ---
        .movi(1, 0)
        .movi(2, kN)
        .movi(4, kInf)
        .label("init_dv")
        .movi(5, kDist)
        .add(5, 5, 1)
        .store(5, 0, 4)
        .movi(5, kVis)
        .add(5, 5, 1)
        .store(5, 0, 0)
        .addi(1, 1, 1)
        .blt(1, 2, "init_dv")
        .movi(5, kDist)
        .store(5, 0, 0)  // dist[0] = 0
        // --- N rounds ---
        .movi(6, 0)  // round
        .label("round")
        // find unvisited u with minimal dist
        .movi(7, -1)        // u
        .movi(8, kInf + 1)  // best
        .movi(1, 0)
        .label("scan")
        .movi(5, kVis)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .bne(9, 0, "scan_next")
        .movi(5, kDist)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .bgeu(9, 8, "scan_next")
        .mov(8, 9)
        .mov(7, 1)
        .label("scan_next")
        .addi(1, 1, 1)
        .blt(1, 2, "scan")
        // visited[u] = 1
        .movi(5, kVis)
        .add(5, 5, 7)
        .movi(9, 1)
        .store(5, 0, 9)
        // relax all v
        .movi(1, 0)
        .label("relax")
        .movi(5, kVis)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .bne(9, 0, "relax_next")
        // cand = dist[u] + adj[u][v]
        .muli(10, 7, kN)
        .add(10, 10, 1)
        .movi(5, kAdj)
        .add(5, 5, 10)
        .load(10, 5, 0)
        .add(10, 10, 8)
        // compare to dist[v]
        .movi(5, kDist)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .bgeu(10, 9, "relax_next")
        .store(5, 0, 10)
        .label("relax_next")
        .addi(1, 1, 1)
        .blt(1, 2, "relax")
        .addi(6, 6, 1)
        .blt(6, 2, "round")
        // --- output: sum of distances ---
        .movi(1, 0)
        .movi(4, 0)
        .label("sum")
        .movi(5, kDist)
        .add(5, 5, 1)
        .load(9, 5, 0)
        .add(4, 4, 9)
        .addi(1, 1, 1)
        .blt(1, 2, "sum")
        .out(0, 4)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
