#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * xtea: XTEA block encryption of 16 sensor words (8 blocks of 64 bits,
 * 32 rounds each) with a fixed 128-bit key — the "encrypt readings
 * before transmitting" stage of a secure sensing node.  Not part of the
 * paper's Table III set; used by the examples and the ablation benches.
 *
 * Layout: plaintext at 2400 (16 words, LCG), ciphertext at 2420,
 * key in registers.
 *
 * Register use: r1=block index, r2=#blocks, r3=v0, r4=v1, r5=sum,
 * r6=round, r7=tmp, r8=tmp2, r9=addr/tmp, r10..r13=key, r14=checksum.
 */
ir::Program
buildXtea()
{
    constexpr int kPlain = 2400;
    constexpr int kCipher = 2420;
    constexpr int kBlocks = 8;
    constexpr std::int32_t kDelta =
        static_cast<std::int32_t>(0x9E3779B9u);

    ir::ProgramBuilder b("xtea");
    b.movi(0, 0)
        // --- plaintext: LCG words ---
        .movi(1, 0)
        .movi(2, kBlocks * 2)
        .movi(3, 90210)
        .label("init")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .movi(9, kPlain)
        .add(9, 9, 1)
        .store(9, 0, 3)
        .addi(1, 1, 1)
        .blt(1, 2, "init")
        // --- key schedule (constants in registers) ---
        .movi(10, static_cast<std::int32_t>(0xA56BABCDu))
        .movi(11, 0x00000000)
        .movi(12, static_cast<std::int32_t>(0xFFFFFFFFu))
        .movi(13, static_cast<std::int32_t>(0xABCDEF01u))
        .movi(14, 0)  // checksum
        // --- per block ---
        .movi(1, 0)
        .movi(2, kBlocks)
        .label("block")
        .shli(9, 1, 1)
        .addi(9, 9, kPlain)
        .load(3, 9, 0)  // v0
        .load(4, 9, 1)  // v1
        .movi(5, 0)     // sum
        .movi(6, 0)     // round
        .movi(7, 32)
        .label("round")
        // v0 += (((v1<<4) ^ (v1>>5)) + v1) ^ (sum + key[sum & 3])
        .shli(8, 4, 4)
        .shri(9, 4, 5)
        .xor_(8, 8, 9)
        .add(8, 8, 4)
        .andi(9, 5, 3)
        // select key[sum&3] via compare chain
        .mov(15, 10)
        .movi(0, 1)
        .bne(9, 0, "k_not1")
        .mov(15, 11)
        .label("k_not1")
        .movi(0, 2)
        .bne(9, 0, "k_not2")
        .mov(15, 12)
        .label("k_not2")
        .movi(0, 3)
        .bne(9, 0, "k_not3")
        .mov(15, 13)
        .label("k_not3")
        .movi(0, 0)
        .add(9, 5, 15)
        .xor_(8, 8, 9)
        .add(3, 3, 8)
        // sum += delta
        .addi(5, 5, kDelta)
        // v1 += (((v0<<4) ^ (v0>>5)) + v0) ^ (sum + key[(sum>>11) & 3])
        .shli(8, 3, 4)
        .shri(9, 3, 5)
        .xor_(8, 8, 9)
        .add(8, 8, 3)
        .shri(9, 5, 11)
        .andi(9, 9, 3)
        .mov(15, 10)
        .movi(0, 1)
        .bne(9, 0, "k2_not1")
        .mov(15, 11)
        .label("k2_not1")
        .movi(0, 2)
        .bne(9, 0, "k2_not2")
        .mov(15, 12)
        .label("k2_not2")
        .movi(0, 3)
        .bne(9, 0, "k2_not3")
        .mov(15, 13)
        .label("k2_not3")
        .movi(0, 0)
        .add(9, 5, 15)
        .xor_(8, 8, 9)
        .add(4, 4, 8)
        .addi(6, 6, 1)
        .blt(6, 7, "round")
        // store ciphertext, fold checksum
        .shli(9, 1, 1)
        .addi(9, 9, kCipher)
        .store(9, 0, 3)
        .store(9, 1, 4)
        .add(14, 14, 3)
        .xor_(14, 14, 4)
        .addi(1, 1, 1)
        .blt(1, 2, "block")
        .out(0, 14)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
