#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * basicmath: integer square roots (Newton's method) and GCDs (Euclid)
 * over 64 LCG-generated inputs, accumulating all results.
 */
ir::Program
buildBasicmath()
{
    ir::ProgramBuilder b("basicmath");
    b.movi(0, 0)
        .movi(1, 0)   // i
        .movi(2, 64)  // N
        .movi(3, 0)   // accumulator
        .movi(4, 99)  // LCG state
        .label("outer")
        .muli(4, 4, 1664525)
        .addi(4, 4, 1013904223)
        .shri(5, 4, 16)  // n in [0, 65535]
        // --- isqrt(n): Newton iteration, counted with early exit ---
        .mov(6, 5)  // result defaults to n (covers n == 0)
        .beq(5, 0, "sq_done")
        .mov(8, 5)    // x0 = n
        .movi(11, 0)  // iteration counter
        .movi(12, 16)
        .label("newton")
        .divu(9, 5, 8)
        .add(9, 9, 8)
        .shri(9, 9, 1)  // x1 = (x0 + n/x0) / 2
        .bgeu(9, 8, "newton_done")  // converged: early exit
        .mov(8, 9)
        .addi(11, 11, 1)
        .blt(11, 12, "newton")
        .label("newton_done")
        .mov(6, 8)
        .label("sq_done")
        .add(3, 3, 6)
        // --- gcd(1 + (lcg & 1023), 840): Euclid, counted w/ early exit ---
        .andi(10, 4, 1023)
        .addi(10, 10, 1)
        .movi(11, 840)
        .movi(12, 0)  // iteration counter
        .movi(13, 48)
        .label("gcd")
        .beq(11, 0, "gcd_done")  // done: early exit
        .remu(14, 10, 11)
        .mov(10, 11)
        .mov(11, 14)
        .addi(12, 12, 1)
        .blt(12, 13, "gcd")
        .label("gcd_done")
        .add(3, 3, 10)
        .addi(1, 1, 1)
        .blt(1, 2, "outer")
        .out(0, 3)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
