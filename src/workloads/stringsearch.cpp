#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

/**
 * stringsearch: naive substring search of four 6-"character" patterns in
 * a 256-word text over an 8-symbol alphabet.  Patterns are copied from
 * text positions, guaranteeing matches.  Text at 1800, patterns at 2100.
 * The densest benchmark (highest checkpoint count in Table III).
 */
ir::Program
buildStringsearch()
{
    constexpr int kText = 1800;
    constexpr int kPat = 2100;
    constexpr int kTextLen = 256;
    constexpr int kPatLen = 6;
    constexpr int kNumPats = 4;

    ir::ProgramBuilder b("stringsearch");
    b.movi(0, 0)
        // --- text: LCG symbols 0..7 ---
        .movi(1, 0)
        .movi(2, kTextLen)
        .movi(3, 31337)
        .label("init_text")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .shri(4, 3, 13)
        .andi(4, 4, 7)
        .movi(5, kText)
        .add(5, 5, 1)
        .store(5, 0, 4)
        .addi(1, 1, 1)
        .blt(1, 2, "init_text")
        // --- patterns: copies of text[17p + 3 .. +8] ---
        .movi(6, 0)  // p
        .movi(7, kNumPats)
        .label("init_pat")
        .movi(1, 0)
        .movi(2, kPatLen)
        .label("copy_pat")
        .muli(8, 6, 17)
        .addi(8, 8, 3)
        .add(8, 8, 1)
        .movi(5, kText)
        .add(5, 5, 8)
        .load(4, 5, 0)
        .muli(8, 6, kPatLen)
        .add(8, 8, 1)
        .movi(5, kPat)
        .add(5, 5, 8)
        .store(5, 0, 4)
        .addi(1, 1, 1)
        .blt(1, 2, "copy_pat")
        .addi(6, 6, 1)
        .blt(6, 7, "init_pat")
        // --- search each pattern ---
        .movi(14, 0)  // total matches
        .movi(6, 0)   // p
        .label("search_pat")
        .movi(9, 0)  // text position
        .movi(10, kTextLen - kPatLen)
        .label("slide")
        .movi(1, 0)  // offset in pattern
        .label("cmp")
        .add(8, 9, 1)
        .movi(5, kText)
        .add(5, 5, 8)
        .load(4, 5, 0)
        .muli(8, 6, kPatLen)
        .add(8, 8, 1)
        .movi(5, kPat)
        .add(5, 5, 8)
        .load(11, 5, 0)
        .bne(4, 11, "mismatch")
        .addi(1, 1, 1)
        .movi(12, kPatLen)
        .blt(1, 12, "cmp")
        .addi(14, 14, 1)  // full match
        .label("mismatch")
        .addi(9, 9, 1)
        .bltu(9, 10, "slide")
        .addi(6, 6, 1)
        .movi(7, kNumPats)
        .blt(6, 7, "search_pat")
        .out(0, 14)
        .halt();
    return b.take();
}

}  // namespace gecko::workloads
