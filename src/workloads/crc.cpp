#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::workloads {

namespace {

/**
 * Shared structure of the two CRC kernels: initialise a 64-word buffer
 * at NVM address 256 from an LCG, then run a bitwise CRC over the low
 * byte of every word.
 */
ir::Program
buildCrc(const char* name, std::int32_t init, std::int32_t poly,
         bool thirtyTwoBit)
{
    ir::ProgramBuilder b(name);
    b.movi(0, 0)
        // --- data initialisation ---
        .movi(1, 0)    // i
        .movi(2, 64)   // N
        .movi(3, 777)  // LCG state
        .movi(4, 256)  // buffer base
        .label("init")
        .muli(3, 3, 1103515245)
        .addi(3, 3, 12345)
        .add(6, 4, 1)
        .store(6, 0, 3)
        .addi(1, 1, 1)
        .blt(1, 2, "init")
        // --- CRC ---
        .movi(7, init)  // crc
        .movi(1, 0)
        .label("crcloop")
        .add(6, 4, 1)
        .load(5, 6, 0)
        .andi(5, 5, 255)
        .xor_(7, 7, 5)
        .movi(8, 8)  // bits per byte
        .label("bitloop")
        .andi(9, 7, 1)
        .shri(7, 7, 1)
        .beq(9, 0, "skip")
        .xori(7, 7, poly)
        .label("skip")
        .subi(8, 8, 1)
        .bne(8, 0, "bitloop")
        .addi(1, 1, 1)
        .blt(1, 2, "crcloop");
    if (thirtyTwoBit)
        b.not_(7, 7);  // final inversion of CRC-32
    b.out(0, 7).halt();
    return b.take();
}

}  // namespace

/** crc16: CRC-16/ARC (reflected polynomial 0xA001). */
ir::Program
buildCrc16()
{
    return buildCrc("crc16", 0xFFFF, 0xA001, false);
}

/** crc32: CRC-32 (reflected polynomial 0xEDB88320). */
ir::Program
buildCrc32()
{
    return buildCrc("crc32", static_cast<std::int32_t>(0xFFFFFFFFu),
                    static_cast<std::int32_t>(0xEDB88320u), true);
}

}  // namespace gecko::workloads
