#include "exp/rng.hpp"

#include <cstdlib>
#include <mutex>

namespace gecko::exp {

namespace {

std::uint64_t g_staged_seed = 0;
bool g_staged = false;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
resolveSeed()
{
    if (g_staged)
        return g_staged_seed;
    const char* env = std::getenv("GECKO_SEED");
    if (!env || !*env)
        return 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 0);
    return (end && *end == '\0') ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

std::uint64_t
globalSeed()
{
    static std::once_flag once;
    static std::uint64_t seed = 0;
    std::call_once(once, [] { seed = resolveSeed(); });
    return seed;
}

void
setGlobalSeed(std::uint64_t seed)
{
    g_staged_seed = seed;
    g_staged = true;
}

std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t m = splitmix64(splitmix64(a) ^ (b + 0x9e3779b97f4a7c15ull));
    return m ? m : 1;
}

std::uint64_t
applyGlobalSeed(std::uint64_t componentSeed)
{
    std::uint64_t g = globalSeed();
    return g == 0 ? componentSeed : mixSeed(componentSeed, g);
}

}  // namespace gecko::exp
