#ifndef GECKO_EXP_RNG_HPP_
#define GECKO_EXP_RNG_HPP_

#include <cstdint>

/**
 * @file
 * Centralised, deterministic random-number seeding.
 *
 * Every stochastic component of the system — harvester trace noise,
 * the monitor's DCO sampling jitter, the fuzz generator, the fault
 * campaign — derives its seed from one process-wide value so that any
 * run replays bit-identically.  The value comes from the `GECKO_SEED`
 * environment variable, or from a `--seed=N` CLI flag staged via
 * setGlobalSeed() before first use.
 *
 * A global seed of 0 (the default when `GECKO_SEED` is unset) means
 * "unseeded baseline": components keep their historical fixed seeds so
 * outputs stay byte-identical with earlier revisions.  Any nonzero
 * global seed is mixed into every component seed via mixSeed().
 */

namespace gecko::exp {

/**
 * The process-wide seed: `GECKO_SEED` (parsed once, cached), or the
 * value staged with setGlobalSeed().  0 = unseeded baseline.
 */
std::uint64_t globalSeed();

/**
 * Stage the global seed (CLI `--seed=N` override).  Must be called
 * before the first globalSeed() use to take effect.
 */
void setGlobalSeed(std::uint64_t seed);

/**
 * Combine two seed values into one with full avalanche (splitmix64
 * finalizer over the pair).  Never returns 0.
 */
std::uint64_t mixSeed(std::uint64_t a, std::uint64_t b);

/**
 * Derive a component's effective seed from its historical default:
 * returns `componentSeed` unchanged under the unseeded baseline, else
 * mixSeed(componentSeed, globalSeed()).
 */
std::uint64_t applyGlobalSeed(std::uint64_t componentSeed);

/** xorshift64* PRNG — deterministic across platforms and fast. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

    std::uint64_t next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, n); n == 0 yields 0. */
    std::uint32_t pick(std::uint32_t n)
    {
        return n ? static_cast<std::uint32_t>(next() % n) : 0;
    }

    /** Uniform in [0, n); 64-bit range. */
    std::uint64_t pick64(std::uint64_t n) { return n ? next() % n : 0; }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next() >> 11) / 9007199254740992.0;
    }

  private:
    std::uint64_t state_;
};

}  // namespace gecko::exp

#endif  // GECKO_EXP_RNG_HPP_
