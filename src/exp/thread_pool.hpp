#ifndef GECKO_EXP_THREAD_POOL_HPP_
#define GECKO_EXP_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/**
 * @file
 * Work-stealing thread pool for the experiment engine.
 *
 * Every attacked-victim run of a sweep is independent, so the figure
 * and table benches are embarrassingly parallel.  The pool keeps one
 * task deque per worker: submissions are distributed round-robin, a
 * worker drains its own deque from the front and steals from the back
 * of a victim's deque when it runs dry.  Deques are mutex-guarded (the
 * tasks are whole simulator runs, microseconds to seconds each, so
 * queue overhead is irrelevant and the simple locking stays clean
 * under ThreadSanitizer).
 *
 * The pool size is `GECKO_THREADS` (environment) when set, else the
 * hardware concurrency; benches additionally accept a `--threads=N`
 * override (see bench_util).  A pool of one thread is the degenerate
 * serial case: exp::parallelMap then runs entirely on the caller.
 */

namespace gecko::exp {

/** Work-stealing pool of worker threads executing submitted tasks. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; <= 0 means defaultThreads().
     */
    explicit ThreadPool(int threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Enqueue a task (round-robin over the worker deques). */
    void submit(std::function<void()> task);

    /**
     * Steal and execute one queued task on the calling thread.
     * Used by parallelMap so the submitting thread works too instead
     * of blocking idle.
     * @return true if a task was executed.
     */
    bool tryRunOne();

    /**
     * Resolve the configured parallelism: `GECKO_THREADS` if set (>= 1),
     * else std::thread::hardware_concurrency (>= 1).
     */
    static int defaultThreads();

    /**
     * Process-wide pool shared by the bench harnesses.  Created on
     * first use with setGlobalThreads()'s value if one was staged,
     * else defaultThreads().
     */
    static ThreadPool& global();

    /**
     * Stage the worker count for the global pool (CLI override).  Must
     * be called before the first global() use to take effect.
     */
    static void setGlobalThreads(int threads);

  private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool popTask(std::size_t preferred, std::function<void()>* out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

}  // namespace gecko::exp

#endif  // GECKO_EXP_THREAD_POOL_HPP_
