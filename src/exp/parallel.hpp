#ifndef GECKO_EXP_PARALLEL_HPP_
#define GECKO_EXP_PARALLEL_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

#include "exp/thread_pool.hpp"

/**
 * @file
 * Deterministic parallel sweep execution.
 *
 * `parallelMap(pool, points, fn)` evaluates `fn` on every point and
 * returns the results *in input order*, regardless of worker count or
 * scheduling: result[i] is always fn(points[i]).  Callers therefore
 * get byte-identical output with `GECKO_THREADS=1` and
 * `GECKO_THREADS=8` as long as `fn` itself is a pure function of its
 * point (each sweep task must own its simulator/rig instances — see
 * DESIGN.md, "The experiment engine").
 *
 * Exceptions thrown by tasks are captured; the first one (by
 * completion time) is rethrown on the calling thread after all tasks
 * of the map have finished, so no task is left running against
 * destroyed result storage.
 */

namespace gecko::exp {

/**
 * Map `fn` over `items` on `pool`, preserving input order of results.
 *
 * The calling thread participates in execution while it waits.  The
 * result type must be default-constructible and movable.
 *
 * @param taskSeconds optional out: per-task wall time, indexed like
 *                    `items`.
 */
template <class T, class Fn>
auto
parallelMap(ThreadPool& pool, const std::vector<T>& items, Fn fn,
            std::vector<double>* taskSeconds = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, const T&>>
{
    using R = std::invoke_result_t<Fn&, const T&>;
    using Clock = std::chrono::steady_clock;
    const std::size_t n = items.size();
    std::vector<R> results(n);
    std::vector<double> times(n, 0.0);

    auto runOne = [&](std::size_t i) {
        auto t0 = Clock::now();
        results[i] = fn(items[i]);
        times[i] = std::chrono::duration<double>(Clock::now() - t0).count();
    };

    if (pool.threadCount() <= 1 || n <= 1) {
        // Degenerate serial case: run inline, in order, on the caller.
        for (std::size_t i = 0; i < n; ++i)
            runOne(i);
    } else {
        struct Job {
            std::atomic<std::size_t> done{0};
            std::mutex mutex;
            std::condition_variable cv;
            std::exception_ptr error;
        } job;

        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    runOne(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(job.mutex);
                    if (!job.error)
                        job.error = std::current_exception();
                }
                // The increment and notify stay inside one critical
                // section, and nothing touches `job` after the unlock:
                // once the caller sees done == n and passes its barrier
                // lock below, every worker is fully out of the Job and
                // the stack object can die.
                {
                    std::lock_guard<std::mutex> lock(job.mutex);
                    if (job.done.fetch_add(1, std::memory_order_acq_rel) +
                            1 ==
                        n)
                        job.cv.notify_all();
                }
            });
        }
        // Work while waiting: the submitting thread executes queued
        // tasks (of this map or any concurrent one) instead of idling.
        while (job.done.load(std::memory_order_acquire) < n) {
            if (!pool.tryRunOne()) {
                std::unique_lock<std::mutex> lock(job.mutex);
                job.cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
                    return job.done.load(std::memory_order_acquire) >= n;
                });
            }
        }
        // Barrier: wait for the final worker to leave its critical
        // section before `job` is read and destroyed.
        std::unique_lock<std::mutex> barrier(job.mutex);
        if (job.error)
            std::rethrow_exception(job.error);
        barrier.unlock();
    }

    if (taskSeconds)
        *taskSeconds = std::move(times);
    return results;
}

/** parallelMap on the process-wide pool. */
template <class T, class Fn>
auto
parallelMap(const std::vector<T>& items, Fn fn,
            std::vector<double>* taskSeconds = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, const T&>>
{
    return parallelMap(ThreadPool::global(), items, std::move(fn),
                       taskSeconds);
}

}  // namespace gecko::exp

#endif  // GECKO_EXP_PARALLEL_HPP_
