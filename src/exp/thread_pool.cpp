#include "exp/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace gecko::exp {

namespace {

/** Staged worker count for the global pool (0 = not staged). */
std::atomic<int> g_globalThreads{0};

}  // namespace

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : defaultThreads();
    queues_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    // Drain: workers only exit once every queue is empty, so pending
    // tasks (which parallelMap callers may be blocked on) still run.
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    idleCv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t slot = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
        queues_[slot]->tasks.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_release);
    idleCv_.notify_one();
}

bool
ThreadPool::popTask(std::size_t preferred, std::function<void()>* out)
{
    std::size_t n = queues_.size();
    for (std::size_t i = 0; i < n; ++i) {
        WorkerQueue& q = *queues_[(preferred + i) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            continue;
        if (i == 0) {
            // Own queue: drain in submission order.
            *out = std::move(q.tasks.front());
            q.tasks.pop_front();
        } else {
            // Steal from the cold end of the victim's deque.
            *out = std::move(q.tasks.back());
            q.tasks.pop_back();
        }
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    // External callers have no own queue; start stealing anywhere.
    std::size_t start = nextQueue_.load(std::memory_order_relaxed) %
                        queues_.size();
    if (!popTask(start, &task))
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (popTask(self, &task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(idleMutex_);
        idleCv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_acquire) == 0)
            return;
    }
}

int
ThreadPool::defaultThreads()
{
    if (const char* env = std::getenv("GECKO_THREADS")) {
        try {
            int n = std::stoi(env);
            if (n >= 1)
                return n;
        } catch (...) {
            // Malformed value: fall through to hardware concurrency.
        }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(g_globalThreads.load(std::memory_order_acquire));
    return pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    g_globalThreads.store(threads, std::memory_order_release);
}

}  // namespace gecko::exp
