#ifndef GECKO_ENERGY_POWER_MODEL_HPP_
#define GECKO_ENERGY_POWER_MODEL_HPP_

/**
 * @file
 * CPU power/energy model.
 *
 * Approximates an MSP430FR-class MCU in its worst-case active mode (the
 * paper sizes regions against the worst-case power consumption mode,
 * §VI-B).  Energy is charged per executed cycle; the instruction cycle
 * costs in ir::cycleCost already differentiate FRAM accesses from ALU
 * work.
 */

namespace gecko::energy {

/** Per-cycle CPU energy parameters. */
struct PowerModel {
    /// Core clock (Hz).
    double clockHz = 8e6;
    /// Energy drawn per active cycle (J).  3 nJ ≈ 24 mW at 8 MHz,
    /// worst-case active mode with peripherals.
    double energyPerCycleJ = 3e-9;
    /// Power drawn while sleeping / waiting for wake-up (W).
    double sleepPowerW = 2e-6;

    double secondsPerCycle() const { return 1.0 / clockHz; }
    double cyclesPerSecond() const { return clockHz; }

    /** Active power (W). */
    double activePowerW() const { return energyPerCycleJ * clockHz; }
};

}  // namespace gecko::energy

#endif  // GECKO_ENERGY_POWER_MODEL_HPP_
