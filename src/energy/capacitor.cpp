#include "energy/capacitor.hpp"

#include <algorithm>
#include <cmath>

namespace gecko::energy {

Capacitor::Capacitor(const CapacitorConfig& config) : config_(config)
{
    setVoltage(config.initialV);
}

double
Capacitor::voltage() const
{
    return std::sqrt(2.0 * energyJ_ / config_.capacitanceF);
}

double
Capacitor::discharge(double joules)
{
    double drawn = std::min(joules, energyJ_);
    energyJ_ -= drawn;
    return drawn;
}

void
Capacitor::chargeFrom(double vOc, double rSeries, double dt)
{
    // The harvester front end rectifies (Fig. 1): no reverse current
    // flows into a source below the capacitor voltage.
    if (vOc <= voltage()) {
        leak(dt);
        return;
    }
    // dV/dt = (vOc - V)/(Rs C) - (G V)/C  =  b - a V, with
    //   a = 1/(Rs C) + G/C,  b = vOc/(Rs C).
    // Exact step: V(t+dt) = V∞ + (V - V∞) e^{-a dt},  V∞ = b/a.
    const double c = config_.capacitanceF;
    const double a = 1.0 / (rSeries * c) + config_.leakageS / c;
    const double b = vOc / (rSeries * c);
    const double v_inf = b / a;
    double v = voltage();
    v = v_inf + (v - v_inf) * std::exp(-a * dt);
    v = std::clamp(v, 0.0, config_.maxV);
    setVoltage(v);
}

void
Capacitor::leak(double dt)
{
    // Pure leakage: V(t) = V e^{-G dt / C}.
    double v = voltage() *
               std::exp(-config_.leakageS * dt / config_.capacitanceF);
    setVoltage(v);
}

double
Capacitor::timeToReach(double targetV, double vOc, double rSeries) const
{
    const double c = config_.capacitanceF;
    const double a = 1.0 / (rSeries * c) + config_.leakageS / c;
    const double v_inf = (vOc / (rSeries * c)) / a;
    const double v0 = voltage();
    if (targetV <= v0)
        return 0.0;
    if (targetV >= v_inf)
        return -1.0;
    return std::log((v_inf - v0) / (v_inf - targetV)) / a;
}

void
Capacitor::setVoltage(double v)
{
    v = std::clamp(v, 0.0, config_.maxV);
    energyJ_ = 0.5 * config_.capacitanceF * v * v;
}

double
bufferedEnergy(double c, double vHi, double vLo)
{
    return 0.5 * c * (vHi * vHi - vLo * vLo);
}

}  // namespace gecko::energy
