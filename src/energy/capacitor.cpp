#include "energy/capacitor.hpp"

#include <algorithm>
#include <cmath>

#include "campaign/archive.hpp"
#include "trace/trace.hpp"

namespace gecko::energy {

namespace {

/// Open-circuit voltage below which the harvester counts as dark.
constexpr double kOutageVocV = 0.05;

[[maybe_unused]] std::uint64_t
traceMv(double v)
{
    return v > 0 ? static_cast<std::uint64_t>(std::llround(v * 1000.0)) : 0;
}

}  // namespace

Capacitor::Capacitor(const CapacitorConfig& config) : config_(config)
{
    setVoltage(config.initialV);
}

void
Capacitor::chargeFrom(double vOc, double rSeries, double dt)
{
    traceOutage(vOc);
    // The harvester front end rectifies (Fig. 1): no reverse current
    // flows into a source below the capacitor voltage.
    if (vOc <= voltage()) {
        leak(dt);
        return;
    }
    // dV/dt = (vOc - V)/(Rs C) - (G V)/C  =  b - a V, with
    //   a = 1/(Rs C) + G/C,  b = vOc/(Rs C).
    // Exact step: V(t+dt) = V∞ + (V - V∞) e^{-a dt},  V∞ = b/a.
    // Harvesters are piecewise-constant and the simulator's quantum is
    // fixed over long spans, so consecutive calls nearly always repeat
    // the same (vOc, Rs, dt) triple: memoize the coefficients and skip
    // the exp().  A miss recomputes exactly the cached expressions
    // (planCharge mirrors this derivation), so results are
    // bit-identical regardless of cache state.
    if (vOc != planVoc_ || rSeries != planRs_ || dt != planDt_) {
        plan_ = planCharge(vOc, rSeries, dt);
        planVoc_ = vOc;
        planRs_ = rSeries;
        planDt_ = dt;
    }
    const double prevE = energyJ_;
    double v = voltage();
    v = plan_.vInf + (v - plan_.vInf) * plan_.rcDecay;
    v = std::clamp(v, 0.0, config_.maxV);
    setVoltage(v);
    traceCrossings(prevE, energyJ_);
}

void
Capacitor::leak(double dt)
{
    // Pure leakage: V(t) = V e^{-G dt / C}.  The decay factor depends
    // only on dt (G and C are fixed per capacitor), so it is memoized
    // like the chargeFrom plan.
    if (dt != leakDt_) {
        leakDecay_ =
            std::exp(-config_.leakageS * dt / config_.capacitanceF);
        leakDt_ = dt;
    }
    const double prevE = energyJ_;
    double v = voltage() * leakDecay_;
    setVoltage(v);
    traceCrossings(prevE, energyJ_);
}

double
Capacitor::timeToReach(double targetV, double vOc, double rSeries) const
{
    const double c = config_.capacitanceF;
    const double a = 1.0 / (rSeries * c) + config_.leakageS / c;
    const double v_inf = (vOc / (rSeries * c)) / a;
    const double v0 = voltage();
    if (targetV <= v0)
        return 0.0;
    if (targetV >= v_inf)
        return -1.0;
    return std::log((v_inf - v0) / (v_inf - targetV)) / a;
}

void
Capacitor::watchThresholds(double vOff, double vBackup, double vOn)
{
    watching_ = true;
    thresholds_[0] = vOff;
    thresholds_[1] = vBackup;
    thresholds_[2] = vOn;
    // Precompute ½CV² per threshold so crossings compare against the
    // stored energy directly — no sqrt on the hot discharge path.
    for (int i = 0; i < 3; ++i)
        thresholdsE_[i] = 0.5 * config_.capacitanceF * thresholds_[i] *
                          thresholds_[i];
}

void
Capacitor::traceCrossings(double prevE, double newE)
{
    if (!watching_ || prevE == newE || trace::current() == nullptr)
        return;
    for (int i = 0; i < 3; ++i) {
        const double thrE = thresholdsE_[i];
        if (prevE < thrE && newE >= thrE) {
            GECKO_TRACE_EVENT(trace::EventKind::kThresholdCross,
                              trace::kFlagUp, static_cast<std::uint64_t>(i),
                              traceMv(thresholds_[i]));
        } else if (prevE > thrE && newE <= thrE) {
            GECKO_TRACE_EVENT(trace::EventKind::kThresholdCross,
                              trace::kFlagDown,
                              static_cast<std::uint64_t>(i),
                              traceMv(thresholds_[i]));
        }
    }
}

void
Capacitor::traceOutage(double vOc)
{
    if (!watching_)
        return;
    const bool dark = vOc < kOutageVocV;
    if (dark == outage_)
        return;
    outage_ = dark;
    if (dark) {
        GECKO_TRACE_EVENT(trace::EventKind::kOutageStart, 0, traceMv(vOc),
                          0);
    } else {
        GECKO_TRACE_EVENT(trace::EventKind::kOutageEnd, 0, traceMv(vOc), 0);
    }
}

double
bufferedEnergy(double c, double vHi, double vLo)
{
    return 0.5 * c * (vHi * vHi - vLo * vLo);
}

void
Capacitor::archiveState(campaign::Archive& ar)
{
    ar.section("capacitor");
    ar.f64(energyJ_);
    ar.boolean(outage_);
}

}  // namespace gecko::energy
