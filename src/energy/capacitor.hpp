#ifndef GECKO_ENERGY_CAPACITOR_HPP_
#define GECKO_ENERGY_CAPACITOR_HPP_

#include <algorithm>
#include <cmath>
#include <cstdint>

/**
 * @file
 * Energy-buffer capacitor model.
 *
 * The capacitor is the intermittent system's sole energy store (paper
 * Fig. 1).  State is tracked as stored energy E = ½CV²; computation
 * discharges it, the harvester charges it through a Thevenin source
 * resistance (which makes charge time grow superlinearly with C — the
 * Fig. 15 effect), and a parallel leakage conductance drains it.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::energy {

/** Capacitor parameters. */
struct CapacitorConfig {
    /// Capacitance in farad (paper sweeps 1 mF .. 10 mF).
    double capacitanceF = 1e-3;
    /// Voltage at simulation start.
    double initialV = 3.3;
    /// Clamp voltage (harvester/regulator limit).
    double maxV = 3.3;
    /// Parallel leakage conductance in siemens.
    double leakageS = 2e-7;
};

/** The energy-buffer capacitor. */
class Capacitor
{
  public:
    explicit Capacitor(const CapacitorConfig& config);

    /** Current terminal voltage (V). */
    double voltage() const
    {
        return std::sqrt(2.0 * energyJ_ / config_.capacitanceF);
    }

    /** Stored energy (J). */
    double energy() const { return energyJ_; }

    double capacitance() const { return config_.capacitanceF; }

    double maxVoltage() const { return config_.maxV; }

    /**
     * Draw `joules` from the buffer.  Inline: this is the simulator's
     * per-quantum hot path (millions of calls per figure), and the
     * common case — thresholds unwatched, or no trace buffer installed
     * — must not pay an out-of-line call just to discover there is
     * nothing to trace.
     * @return the energy actually drawn (less than requested iff the
     *         buffer ran dry).
     */
    double discharge(double joules)
    {
        const double prevE = energyJ_;
        double drawn = std::min(joules, energyJ_);
        energyJ_ -= drawn;
        if (watching_ && prevE != energyJ_)
            traceCrossings(prevE, energyJ_);
        return drawn;
    }

    /**
     * Batched-discharge support for the simulator's execution quanta:
     * the number of whole cycles at `epcJ` joules/cycle the buffer can
     * afford before the stored energy would fall to `floorEnergyJ`.
     * This is the crossing-safe bound the block-compiled backend's
     * entry guard relies on — a run budgeted by this value can never
     * discharge across the floor threshold mid-block, so threshold
     * crossings are only ever observed at batch-commit granularity
     * (dischargeCycles), identically for every execution tier.
     */
    std::uint64_t affordableCycles(double epcJ, double floorEnergyJ) const
    {
        const double avail = energyJ_ - floorEnergyJ;
        return avail > 0 ? static_cast<std::uint64_t>(avail / epcJ) : 0;
    }

    /**
     * Commit one batch of computation: draw `cycles * epcJ` in a single
     * RC update.  Threshold-crossing trace events fire here, once per
     * batch — per-instruction discharge would emit the same crossings
     * (energy is linear in cycles) but 10^3x more integration steps.
     * @return joules actually drawn.
     */
    double dischargeCycles(std::uint64_t cycles, double epcJ)
    {
        return discharge(static_cast<double>(cycles) * epcJ);
    }

    /**
     * True iff the stored energy is within `marginJ` above the energy
     * level `thresholdEJ` (armed-threshold proximity guard: callers
     * drop to fine-grained sampling before a crossing can slip between
     * two coarse quanta).
     */
    bool nearThresholdE(double thresholdEJ, double marginJ) const
    {
        return energyJ_ - thresholdEJ < marginJ;
    }

    /**
     * Charge from a Thevenin source (`vOc`, `rSeries`) for `dt` seconds,
     * including leakage.  Uses the exact solution of the linear RC ODE,
     * so arbitrarily large steps are stable.
     */
    void chargeFrom(double vOc, double rSeries, double dt);

    /** Let only leakage act for `dt` seconds. */
    void leak(double dt);

    /**
     * Precomputed coefficients of one `chargeFrom(vOc, rSeries, dt)`
     * step.  When the simulator's quantum-coalescing fast path has
     * proven the source steady over a whole burst (constant vOc and
     * rSeries, fixed dt), the Thevenin divide/exp work is hoisted out
     * of the per-quantum loop; `quietStep` then replays the exact
     * floating-point sequence of `discharge` + `chargeFrom` with these
     * constants, bit-for-bit.
     */
    struct ChargePlan {
        double vOc = 0.0;
        double vInf = 0.0;      ///< b/a — steady-state voltage
        double rcDecay = 1.0;   ///< e^{-a dt}
        double leakDecay = 1.0; ///< e^{-G dt / C}
    };

    /** Build the coefficients `chargeFrom` would derive per call. */
    ChargePlan planCharge(double vOc, double rSeries, double dt) const
    {
        ChargePlan p;
        p.vOc = vOc;
        const double c = config_.capacitanceF;
        const double a = 1.0 / (rSeries * c) + config_.leakageS / c;
        const double b = vOc / (rSeries * c);
        p.vInf = b / a;
        p.rcDecay = std::exp(-a * dt);
        p.leakDecay = std::exp(-config_.leakageS * dt / c);
        return p;
    }

    /**
     * One coalesced simulation quantum: `dischargeCycles(cycles, epcJ)`
     * followed by `chargeFrom` under a precomputed plan.  Caller
     * contract (the coalescing guard): no trace buffer is installed and
     * the outage latch has already been settled via `noteSource`, so
     * the tracing hooks the slow path would run are provably inert and
     * are skipped here.  Every energy-state operation matches the slow
     * path's floating-point arithmetic exactly.
     */
    void quietStep(std::uint64_t cycles, double epcJ, const ChargePlan& p)
    {
        energyJ_ = quietStepEnergy(energyJ_, cycles, epcJ, p,
                                   config_.capacitanceF, config_.maxV);
    }

    /**
     * Pure form of quietStep's energy update: the stored energy after
     * one quiet quantum of `cycles` at `epcJ` under plan `p`.  Static
     * so the coalescing proof can march the *exact* burst trajectory on
     * local copies — the same floating-point operations in the same
     * order as the commit — before mutating anything.
     */
    static double quietStepEnergy(double energyJ, std::uint64_t cycles,
                                  double epcJ, const ChargePlan& p,
                                  double capacitanceF, double maxV)
    {
        const double joules = static_cast<double>(cycles) * epcJ;
        energyJ -= std::min(joules, energyJ);
        double v = std::sqrt(2.0 * energyJ / capacitanceF);
        if (p.vOc <= v)
            v = v * p.leakDecay;
        else
            v = p.vInf + (v - p.vInf) * p.rcDecay;
        v = std::clamp(v, 0.0, maxV);
        return 0.5 * capacitanceF * v * v;
    }

    /**
     * Settle the harvester-outage trace latch for source voltage `vOc`
     * without charging.  The coalescing fast path calls this once per
     * burst; with a steady source it is equivalent to the per-quantum
     * `traceOutage` the slow path performs inside `chargeFrom`.
     */
    void noteSource(double vOc) { traceOutage(vOc); }

    /**
     * Time needed for `chargeFrom(vOc, rSeries, ·)` to lift the voltage
     * to `targetV`.
     * @return seconds, or a negative value if `targetV` is unreachable
     *         (above the steady-state voltage).
     */
    double timeToReach(double targetV, double vOc, double rSeries) const;

    /** Force the voltage (used by tests and scenario setup). */
    void setVoltage(double v)
    {
        v = std::clamp(v, 0.0, config_.maxV);
        energyJ_ = 0.5 * config_.capacitanceF * v * v;
    }

    /**
     * Arm trace emission of threshold crossings (V_off, V_backup, V_on)
     * and harvester outage edges.  Off by default; the intermittent
     * simulator arms it when event tracing is compiled in.  Purely
     * observational — never changes the energy state.
     */
    void watchThresholds(double vOff, double vBackup, double vOn);

    /**
     * Serialize/restore the energy state plus the outage trace latch.
     * Configuration and the watch thresholds are reconstructed by the
     * owning simulator, not archived.
     */
    void archiveState(campaign::Archive& ar);

  private:
    // Crossing detection runs in the energy domain (E = ½CV² is strictly
    // monotone in V) so the per-quantum discharge path never needs the
    // sqrt in voltage() just to feed tracing.
    void traceCrossings(double prevE, double newE);
    void traceOutage(double vOc);

    CapacitorConfig config_;
    double energyJ_;
    // Memoized chargeFrom/leak coefficients (derived state, never
    // archived): harvesters are piecewise-constant and the simulation
    // quantum is fixed over long spans, so consecutive RC steps repeat
    // the same (vOc, Rs, dt) inputs and can skip the divides and exp().
    // A miss recomputes exactly the cached expressions, so results are
    // bit-identical whether or not the cache hits — including across a
    // snapshot restore, which simply starts cold.
    double planVoc_ = -1.0;
    double planRs_ = -1.0;
    double planDt_ = -1.0;
    ChargePlan plan_{};
    double leakDt_ = -1.0;
    double leakDecay_ = 1.0;
    // Trace-only state (inert unless watchThresholds was called).
    bool watching_ = false;
    bool outage_ = false;
    double thresholds_[3] = {0.0, 0.0, 0.0};
    double thresholdsE_[3] = {0.0, 0.0, 0.0};
};

/**
 * Energy between two voltage levels for capacitance `c`:
 * ½c(v_hi² − v_lo²).
 */
double bufferedEnergy(double c, double vHi, double vLo);

}  // namespace gecko::energy

#endif  // GECKO_ENERGY_CAPACITOR_HPP_
