#ifndef GECKO_ENERGY_CAPACITOR_HPP_
#define GECKO_ENERGY_CAPACITOR_HPP_

#include <cstdint>

/**
 * @file
 * Energy-buffer capacitor model.
 *
 * The capacitor is the intermittent system's sole energy store (paper
 * Fig. 1).  State is tracked as stored energy E = ½CV²; computation
 * discharges it, the harvester charges it through a Thevenin source
 * resistance (which makes charge time grow superlinearly with C — the
 * Fig. 15 effect), and a parallel leakage conductance drains it.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::energy {

/** Capacitor parameters. */
struct CapacitorConfig {
    /// Capacitance in farad (paper sweeps 1 mF .. 10 mF).
    double capacitanceF = 1e-3;
    /// Voltage at simulation start.
    double initialV = 3.3;
    /// Clamp voltage (harvester/regulator limit).
    double maxV = 3.3;
    /// Parallel leakage conductance in siemens.
    double leakageS = 2e-7;
};

/** The energy-buffer capacitor. */
class Capacitor
{
  public:
    explicit Capacitor(const CapacitorConfig& config);

    /** Current terminal voltage (V). */
    double voltage() const;

    /** Stored energy (J). */
    double energy() const { return energyJ_; }

    double capacitance() const { return config_.capacitanceF; }

    /**
     * Draw `joules` from the buffer.
     * @return the energy actually drawn (less than requested iff the
     *         buffer ran dry).
     */
    double discharge(double joules);

    /**
     * Batched-discharge support for the simulator's execution quanta:
     * the number of whole cycles at `epcJ` joules/cycle the buffer can
     * afford before the stored energy would fall to `floorEnergyJ`.
     * This is the crossing-safe bound the block-compiled backend's
     * entry guard relies on — a run budgeted by this value can never
     * discharge across the floor threshold mid-block, so threshold
     * crossings are only ever observed at batch-commit granularity
     * (dischargeCycles), identically for every execution tier.
     */
    std::uint64_t affordableCycles(double epcJ, double floorEnergyJ) const
    {
        const double avail = energyJ_ - floorEnergyJ;
        return avail > 0 ? static_cast<std::uint64_t>(avail / epcJ) : 0;
    }

    /**
     * Commit one batch of computation: draw `cycles * epcJ` in a single
     * RC update.  Threshold-crossing trace events fire here, once per
     * batch — per-instruction discharge would emit the same crossings
     * (energy is linear in cycles) but 10^3x more integration steps.
     * @return joules actually drawn.
     */
    double dischargeCycles(std::uint64_t cycles, double epcJ)
    {
        return discharge(static_cast<double>(cycles) * epcJ);
    }

    /**
     * True iff the stored energy is within `marginJ` above the energy
     * level `thresholdEJ` (armed-threshold proximity guard: callers
     * drop to fine-grained sampling before a crossing can slip between
     * two coarse quanta).
     */
    bool nearThresholdE(double thresholdEJ, double marginJ) const
    {
        return energyJ_ - thresholdEJ < marginJ;
    }

    /**
     * Charge from a Thevenin source (`vOc`, `rSeries`) for `dt` seconds,
     * including leakage.  Uses the exact solution of the linear RC ODE,
     * so arbitrarily large steps are stable.
     */
    void chargeFrom(double vOc, double rSeries, double dt);

    /** Let only leakage act for `dt` seconds. */
    void leak(double dt);

    /**
     * Time needed for `chargeFrom(vOc, rSeries, ·)` to lift the voltage
     * to `targetV`.
     * @return seconds, or a negative value if `targetV` is unreachable
     *         (above the steady-state voltage).
     */
    double timeToReach(double targetV, double vOc, double rSeries) const;

    /** Force the voltage (used by tests and scenario setup). */
    void setVoltage(double v);

    /**
     * Arm trace emission of threshold crossings (V_off, V_backup, V_on)
     * and harvester outage edges.  Off by default; the intermittent
     * simulator arms it when event tracing is compiled in.  Purely
     * observational — never changes the energy state.
     */
    void watchThresholds(double vOff, double vBackup, double vOn);

    /**
     * Serialize/restore the energy state plus the outage trace latch.
     * Configuration and the watch thresholds are reconstructed by the
     * owning simulator, not archived.
     */
    void archiveState(campaign::Archive& ar);

  private:
    // Crossing detection runs in the energy domain (E = ½CV² is strictly
    // monotone in V) so the per-quantum discharge path never needs the
    // sqrt in voltage() just to feed tracing.
    void traceCrossings(double prevE, double newE);
    void traceOutage(double vOc);

    CapacitorConfig config_;
    double energyJ_;
    // Trace-only state (inert unless watchThresholds was called).
    bool watching_ = false;
    bool outage_ = false;
    double thresholds_[3] = {0.0, 0.0, 0.0};
    double thresholdsE_[3] = {0.0, 0.0, 0.0};
};

/**
 * Energy between two voltage levels for capacitance `c`:
 * ½c(v_hi² − v_lo²).
 */
double bufferedEnergy(double c, double vHi, double vLo);

}  // namespace gecko::energy

#endif  // GECKO_ENERGY_CAPACITOR_HPP_
