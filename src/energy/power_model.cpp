#include "energy/power_model.hpp"

// PowerModel is a plain parameter aggregate; this translation unit exists
// so the build has a home for future model extensions (DVFS curves,
// peripheral power states).
