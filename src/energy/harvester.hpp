#ifndef GECKO_ENERGY_HARVESTER_HPP_
#define GECKO_ENERGY_HARVESTER_HPP_

#include <memory>
#include <vector>

/**
 * @file
 * Ambient-energy harvester models.
 *
 * A harvester is a time-varying Thevenin source (open-circuit voltage +
 * series resistance) feeding the capacitor.  The square-wave model
 * reproduces the paper's 1 Hz-outage power generator (§VII-B3); the trace
 * model replays arbitrary RF harvesting profiles like the Powercast
 * P2110 setup of §VII-B4.
 */

namespace gecko::energy {

/** Time-varying Thevenin source abstraction. */
class Harvester
{
  public:
    virtual ~Harvester() = default;

    /** Open-circuit voltage at time `t` (seconds). */
    virtual double openCircuitVoltage(double t) const = 0;

    /** Source series resistance at time `t` (ohm). */
    virtual double seriesResistance(double t) const = 0;

    /**
     * True if the source is time-invariant on [t, t+dt) — lets the
     * simulator take closed-form charging steps.
     */
    virtual bool steadyOver(double t, double dt) const = 0;

    /**
     * Sound steadiness: true only if `openCircuitVoltage` and
     * `seriesResistance` provably return the *same values* for every
     * instant in [t, t+dt].  Unlike `steadyOver` (a heuristic some
     * models answer by endpoint comparison), a `true` here is a hard
     * guarantee — the quantum-coalescing fast path replays per-quantum
     * charging with one sampled (vOc, Rs) pair and must match the
     * uncoalesced simulation bit-for-bit.  Default: unknown ⇒ false.
     */
    virtual bool constantOver(double t, double dt) const
    {
        (void)t;
        (void)dt;
        return false;
    }
};

/** Constant source (bench power supply / strong RF field). */
class ConstantHarvester : public Harvester
{
  public:
    ConstantHarvester(double vOc, double rSeries)
        : vOc_(vOc), rSeries_(rSeries) {}

    double openCircuitVoltage(double) const override { return vOc_; }
    double seriesResistance(double) const override { return rSeries_; }
    bool steadyOver(double, double) const override { return true; }
    bool constantOver(double, double) const override { return true; }

  private:
    double vOc_;
    double rSeries_;
};

/**
 * Square-wave source: `onSeconds` of supply followed by
 * `offSeconds` of nothing, repeating (the paper's GPIO power generator
 * inducing outages at 1 Hz).
 */
class SquareWaveHarvester : public Harvester
{
  public:
    SquareWaveHarvester(double vOc, double rSeries, double onSeconds,
                        double offSeconds)
        : vOc_(vOc), rSeries_(rSeries), on_(onSeconds), off_(offSeconds) {}

    double openCircuitVoltage(double t) const override
    {
        return isOn(t) ? vOc_ : 0.0;
    }
    double seriesResistance(double) const override { return rSeries_; }
    bool steadyOver(double t, double dt) const override;
    /// steadyOver already proves "no on/off edge inside the span",
    /// which for a square wave is exact constancy.
    bool constantOver(double t, double dt) const override
    {
        return steadyOver(t, dt);
    }

  private:
    bool isOn(double t) const;

    double vOc_;
    double rSeries_;
    double on_;
    double off_;
};

/**
 * Trace-driven source: open-circuit voltage samples at a fixed interval,
 * looped.  Used to replay recorded RF power traces.
 */
class TraceHarvester : public Harvester
{
  public:
    TraceHarvester(std::vector<double> vocSamples, double sampleIntervalS,
                   double rSeries);

    double openCircuitVoltage(double t) const override;
    double seriesResistance(double) const override { return rSeries_; }
    bool steadyOver(double t, double dt) const override;
    bool constantOver(double t, double dt) const override;

  private:
    std::size_t indexAt(double t) const;

    std::vector<double> samples_;
    double interval_;
    double rSeries_;
};

/**
 * Synthetic Powercast-like RF harvesting trace: a pseudo-random but
 * deterministic mix of strong and weak harvest intervals around a mean
 * duty cycle, causing roughly `outageRateHz` outages per second.
 */
TraceHarvester makeRfTrace(double vOc, double rSeries, double outageRateHz,
                           double onFraction, double durationS,
                           unsigned seed = 1);

}  // namespace gecko::energy

#endif  // GECKO_ENERGY_HARVESTER_HPP_
