#include "energy/harvester.hpp"

#include <cmath>

#include "exp/rng.hpp"

namespace gecko::energy {

bool
SquareWaveHarvester::isOn(double t) const
{
    double period = on_ + off_;
    double phase = std::fmod(t, period);
    if (phase < 0)
        phase += period;
    return phase < on_;
}

bool
SquareWaveHarvester::steadyOver(double t, double dt) const
{
    double period = on_ + off_;
    double phase = std::fmod(t, period);
    if (phase < 0)
        phase += period;
    double boundary = (phase < on_) ? on_ : period;
    return phase + dt <= boundary;
}

TraceHarvester::TraceHarvester(std::vector<double> vocSamples,
                               double sampleIntervalS, double rSeries)
    : samples_(std::move(vocSamples)), interval_(sampleIntervalS),
      rSeries_(rSeries)
{
    if (samples_.empty())
        samples_.push_back(0.0);
}

std::size_t
TraceHarvester::indexAt(double t) const
{
    double pos = t / interval_;
    auto idx = static_cast<long long>(pos);
    auto n = static_cast<long long>(samples_.size());
    long long wrapped = idx % n;
    if (wrapped < 0)
        wrapped += n;
    return static_cast<std::size_t>(wrapped);
}

double
TraceHarvester::openCircuitVoltage(double t) const
{
    return samples_[indexAt(t)];
}

bool
TraceHarvester::steadyOver(double t, double dt) const
{
    return indexAt(t) == indexAt(t + dt);
}

bool
TraceHarvester::constantOver(double t, double dt) const
{
    // Endpoint index equality (steadyOver) is not sound: a span longer
    // than the looped trace wraps back to the same slot, and a span of
    // several slots can start and end on equal samples with different
    // ones between.  Walk every covered slot instead; runs of equal
    // samples (the common case in outage-style traces) still coalesce.
    if (dt < 0)
        return false;
    auto i0 = static_cast<long long>(t / interval_);
    auto i1 = static_cast<long long>((t + dt) / interval_);
    auto n = static_cast<long long>(samples_.size());
    if (i1 - i0 >= n)
        return false;  // covers the whole looped trace
    const double v = samples_[indexAt(t)];
    for (long long i = i0 + 1; i <= i1; ++i) {
        long long wrapped = i % n;
        if (wrapped < 0)
            wrapped += n;
        if (samples_[static_cast<std::size_t>(wrapped)] != v)
            return false;
    }
    return true;
}

TraceHarvester
makeRfTrace(double vOc, double rSeries, double outageRateHz,
            double onFraction, double durationS, unsigned seed)
{
    // Deterministic xorshift so runs are reproducible.  The component
    // seed is combined with the global GECKO_SEED (identity when no
    // global seed is set, preserving historical traces).
    seed = static_cast<unsigned>(
        exp::applyGlobalSeed(static_cast<std::uint64_t>(seed)));
    auto next = [state = seed ? seed : 1u]() mutable {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    };

    // Sample interval: ~32 samples per outage period.
    double period = 1.0 / outageRateHz;
    double interval = period / 32.0;
    auto count = static_cast<std::size_t>(durationS / interval) + 1;

    std::vector<double> samples;
    samples.reserve(count);
    double t = 0.0;
    while (samples.size() < count) {
        // Jittered on/off durations around the requested duty cycle.
        double jitter_on = 0.5 + (next() % 1000) / 1000.0;   // 0.5..1.5
        double jitter_off = 0.5 + (next() % 1000) / 1000.0;
        double on_time = period * onFraction * jitter_on;
        double off_time = period * (1.0 - onFraction) * jitter_off;
        for (double e = t + on_time; t < e && samples.size() < count;
             t += interval)
            samples.push_back(vOc);
        for (double e = t + off_time; t < e && samples.size() < count;
             t += interval)
            samples.push_back(0.0);
    }
    return TraceHarvester(std::move(samples), interval, rSeries);
}

}  // namespace gecko::energy
