#include "adversary/optimizer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/engine.hpp"
#include "metrics/bench_json.hpp"

namespace gecko::adversary {

namespace {

/** Round-trip-exact double text (spec.cpp idiom). */
std::string
numText(double v)
{
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

bool
numberAfterKey(const std::string& text, const char* key, double* out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char* start = text.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start)
        return false;
    *out = v;
    return true;
}

/** Search-journal state reconstructed from completed-round lines. */
struct SearchState {
    int roundsDone = 0;
    AttackKnobs best;
    std::uint64_t bestScore = 0;
    double stepScale = 0.5;
    bool haveBest = false;
};

std::string
candName(int round, int idx)
{
    std::ostringstream os;
    os << "r" << round << "c" << idx;
    return os.str();
}

/** The candidate set of round `round` given the journaled state.
 *  Depends only on (seed, round, best, stepScale) so an interrupted
 *  round re-derives the identical set — and thus the identical
 *  campaign configHash — on resume. */
std::vector<AttackKnobs>
proposeRound(const SearchConfig& config, const SearchState& st, int round)
{
    exp::Rng rng(exp::mixSeed(config.seed,
                              0xad5e4271ull ^ static_cast<std::uint64_t>(round)));
    std::vector<AttackKnobs> out;
    if (round == 0) {
        // Seeding round: the default center plus random restarts.
        out.push_back(clampKnobs(AttackKnobs{}, config.bounds));
        for (int i = 0; i < std::max(1, config.restarts); ++i)
            out.push_back(randomKnobs(rng, config.bounds));
        return out;
    }
    // Coordinate sweep around the incumbent, both directions per knob.
    for (int c = 0; c < kKnobCount; ++c) {
        out.push_back(perturb(st.best, config.bounds, c, +1, st.stepScale));
        out.push_back(perturb(st.best, config.bounds, c, -1, st.stepScale));
    }
    for (int i = 0; i < config.restarts; ++i)
        out.push_back(randomKnobs(rng, config.bounds));
    return out;
}

std::string
groupKeyFor(const SearchConfig& config, const std::string& scenarioName)
{
    std::string key = config.workload;
    key += '/';
    key += compiler::schemeName(config.scheme);
    key += '/';
    key += scenarioName;
    if (config.defense != "static") {
        key += '/';
        key += config.defense;
    }
    return key;
}

/** Build the one-round campaign space: clean baseline + candidates. */
campaign::CampaignSpace
spaceFor(const SearchConfig& config,
         const std::vector<AttackKnobs>& candidates, int round)
{
    campaign::CampaignSpace space;
    space.workloads = {config.workload};
    space.schemes = {config.scheme};
    space.devices = {config.device};
    space.defenses = {config.defense};
    campaign::Scenario clean;
    clean.kind = campaign::ScenarioKind::kClean;
    clean.freqHz = 0.0;
    clean.powerDbm = 0.0;
    clean.outagePeriodS = config.outagePeriodS;
    clean.outageOnFrac = config.outageOnFrac;
    space.scenarios = {clean};
    for (std::size_t i = 0; i < candidates.size(); ++i)
        space.scenarios.push_back(toScenario(
            candidates[i], config.bounds,
            candName(round, static_cast<int>(i)), config.outagePeriodS,
            config.outageOnFrac));
    for (int s = 1; s <= std::max(1, config.seedsPerCandidate); ++s)
        space.seeds.push_back(static_cast<std::uint64_t>(s));
    space.simSeconds = config.simSeconds;
    space.sliceSimSeconds = config.sliceSimSeconds;
    return space;
}

/** Fold a completed round directory's results.jsonl into group totals. */
std::map<std::string, campaign::GroupTotals>
foldResults(const std::string& dir, std::uint64_t totalJobs)
{
    campaign::Aggregator agg(totalJobs);
    std::ifstream in(dir + "/results.jsonl");
    std::string line;
    while (std::getline(in, line)) {
        if (auto r = campaign::JobResult::fromJsonl(line))
            agg.add(*r);
    }
    return agg.groups();
}

/** Run one campaign (a search round or the best-eval replay).
 *  @return true when it completed; false = cooperative stop. */
bool
runRoundCampaign(const SearchConfig& config, const std::string& dir,
                 const campaign::CampaignSpace& space,
                 exp::ThreadPool& pool)
{
    std::filesystem::create_directories(dir);
    campaign::EngineConfig ec;
    ec.dir = dir;
    ec.space = space;
    ec.seed = config.seed;
    ec.stopRequested = config.stopRequested;
    campaign::EngineReport report = campaign::runCampaign(ec, pool);
    if (report.jobsQuarantined > 0)
        throw std::runtime_error("adversary: quarantined jobs in " + dir);
    return report.complete;
}

}  // namespace

std::uint64_t
denialScore(const campaign::GroupTotals& clean,
            const campaign::GroupTotals& attacked)
{
    const auto deficit = [](std::uint64_t base, std::uint64_t got) {
        return base > got ? base - got : 0;
    };
    // Progress deficits dominate; the attacked arm's recovery churn
    // breaks ties between equally-denying schedules.  Integer weights
    // keep the objective exactly reproducible.
    std::uint64_t score = 0;
    score += 1000 * deficit(clean.completions, attacked.completions);
    score += 100 * deficit(clean.commits, attacked.commits);
    score += 50 * attacked.rollbacks;
    score += 500 * attacked.retriesExhausted;
    score += 2000 * attacked.hardDeaths;
    return score;
}

SearchReport
runSearch(const SearchConfig& config, exp::ThreadPool& pool)
{
    if (config.dir.empty())
        throw std::runtime_error("adversary: dir required");
    std::filesystem::create_directories(config.dir);
    const std::string journalPath = config.dir + "/search.jsonl";

    // ---- recover journaled state (completed rounds only) ----
    SearchState st;
    {
        std::ifstream in(journalPath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"type\":\"round\"") == std::string::npos)
                continue;
            double round = 0, score = 0, step = 0;
            AttackKnobs knobs;
            if (!numberAfterKey(line, "round", &round) ||
                !numberAfterKey(line, "best_score", &score) ||
                !numberAfterKey(line, "step", &step) ||
                !knobsFromJson(line, &knobs))
                continue;  // torn tail line: crash window, ignore
            st.roundsDone = static_cast<int>(round) + 1;
            st.best = knobs;
            st.bestScore = static_cast<std::uint64_t>(score);
            st.stepScale = step;
            st.haveBest = true;
        }
    }

    const int totalRounds = 1 + std::max(0, config.rounds);
    metrics::JsonlWriter journal(journalPath, /*append=*/true,
                                 /*syncEvery=*/1);
    if (!journal.ok())
        throw std::runtime_error("adversary: cannot open " + journalPath);

    SearchReport out;
    for (int round = st.roundsDone; round < totalRounds; ++round) {
        const std::vector<AttackKnobs> candidates =
            proposeRound(config, st, round);
        const campaign::CampaignSpace space =
            spaceFor(config, candidates, round);
        const std::string dir =
            config.dir + "/round_" + std::to_string(round);
        if (!runRoundCampaign(config, dir, space, pool)) {
            out.roundsDone = st.roundsDone;
            out.best = {st.best, st.bestScore};
            return out;  // cooperative stop; resume later
        }

        const auto groups = foldResults(dir, space.jobCount());
        const auto cleanIt = groups.find(groupKeyFor(
            config, campaign::scenarioName(campaign::ScenarioKind::kClean)));
        if (cleanIt == groups.end())
            throw std::runtime_error("adversary: clean arm missing in " +
                                     dir);

        // Score every candidate; journal each (the evaluated-candidate
        // record the replay tooling feeds on).
        int bestIdx = -1;
        std::uint64_t bestRoundScore = 0;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const auto it = groups.find(groupKeyFor(
                config, candName(round, static_cast<int>(i))));
            const std::uint64_t score =
                it == groups.end()
                    ? 0
                    : denialScore(cleanIt->second, it->second);
            std::ostringstream cl;
            cl << "{\"type\":\"cand\",\"round\":" << round
               << ",\"cand\":" << i << ",\"score\":" << score
               << ",\"knobs\":" << knobsJson(candidates[i]) << "}";
            journal.append(cl.str());
            if (bestIdx < 0 || score > bestRoundScore) {
                bestIdx = static_cast<int>(i);
                bestRoundScore = score;
            }
        }

        // Adopt-or-shrink: a strictly better candidate moves the
        // incumbent and grows the step; a dry round shrinks it (the
        // success-rule step adaptation standing in for a full CMA
        // covariance update).
        if (!st.haveBest || bestRoundScore > st.bestScore) {
            st.best = candidates[static_cast<std::size_t>(bestIdx)];
            st.bestScore = bestRoundScore;
            st.haveBest = true;
            st.stepScale = std::min(1.0, st.stepScale * 1.25);
        } else {
            st.stepScale = std::max(0.05, st.stepScale * 0.6);
        }
        st.roundsDone = round + 1;

        std::ostringstream rl;
        rl << "{\"type\":\"round\",\"round\":" << round
           << ",\"best_score\":" << st.bestScore
           << ",\"step\":" << numText(st.stepScale)
           << ",\"clean_commits\":" << cleanIt->second.commits
           << ",\"clean_escalations\":" << cleanIt->second.escalations
           << ",\"best_knobs\":" << knobsJson(st.best) << "}";
        journal.append(rl.str());
        journal.sync();
    }

    // ---- standalone best evaluation: the replay contract ----
    // The winner re-runs alone, from the knob state the journal pinned,
    // in its own campaign directory.  Job results depend only on the
    // axis values and the engine seed — not on job ids — so this
    // single-candidate space must reproduce the journaled score
    // exactly.
    const std::string bestName = "best";
    campaign::CampaignSpace evalSpace = spaceFor(config, {}, 0);
    evalSpace.scenarios.push_back(toScenario(
        st.best, config.bounds, bestName, config.outagePeriodS,
        config.outageOnFrac));
    const std::string evalDir = config.dir + "/best_eval";
    if (!runRoundCampaign(config, evalDir, evalSpace, pool)) {
        out.roundsDone = st.roundsDone;
        out.best = {st.best, st.bestScore};
        return out;
    }
    const auto groups = foldResults(evalDir, evalSpace.jobCount());
    const auto cleanIt = groups.find(groupKeyFor(
        config, campaign::scenarioName(campaign::ScenarioKind::kClean)));
    const auto bestIt = groups.find(groupKeyFor(config, bestName));
    if (cleanIt == groups.end() || bestIt == groups.end())
        throw std::runtime_error("adversary: best_eval arms missing");

    out.complete = true;
    out.roundsDone = st.roundsDone;
    out.best = {st.best, st.bestScore};
    out.cleanTotals = cleanIt->second;
    out.bestTotals = bestIt->second;
    out.replayMatches =
        denialScore(out.cleanTotals, out.bestTotals) == st.bestScore;

    // Serialize the winner as a schema-v2 spec (the durable replay
    // artifact named in EXPERIMENTS.md).
    const fault::FaultSpec spec = toSpec(
        st.best, config.bounds, "best-vs-" + config.defense, config.seed,
        config.device, std::max(1, config.seedsPerCandidate),
        config.simSeconds, config.sliceSimSeconds, config.outagePeriodS,
        config.outageOnFrac);
    out.bestSpecJson = fault::serializeSpec(spec);
    std::ofstream specOut(config.dir + "/best_spec.json",
                          std::ios::trunc);
    specOut << out.bestSpecJson;
    return out;
}

}  // namespace gecko::adversary
