#ifndef GECKO_ADVERSARY_OPTIMIZER_HPP_
#define GECKO_ADVERSARY_OPTIMIZER_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adversary/knobs.hpp"
#include "campaign/aggregate.hpp"
#include "exp/thread_pool.hpp"

/**
 * @file
 * Seeded deterministic attack optimizer (DESIGN.md §16).
 *
 * The search maximizes denial-of-progress against one defense
 * configuration: rounds of coordinate search (both directions per
 * knob, step-size adaptation on success/failure — the CMA-lite part)
 * plus random restarts, every candidate evaluated as jobs on the
 * crash-tolerant campaign engine.  Consequences of that substrate:
 *
 *  - kill-9 safe: each round is one resumable campaign in
 *    `<dir>/round_<n>`, and completed rounds are journaled to
 *    `<dir>/search.jsonl` (fsync'd) — rerunning the same command
 *    resumes mid-search, mid-round, even mid-job, and converges to the
 *    byte-identical best-attack spec;
 *  - deterministic: candidate proposals derive from (seed, round,
 *    journaled best/step) only, scores fold from integer counters, so
 *    the same seed always emits the same spec;
 *  - replayable: the winner is re-evaluated standalone in
 *    `<dir>/best_eval` from its serialized schema-v2 spec
 *    (`<dir>/best_spec.json`) and must reproduce the journaled score
 *    exactly — the bit-identical-replay contract, enforced every run.
 */

namespace gecko::adversary {

/** Search budget and evaluation environment. */
struct SearchConfig {
    /// Durable root: search.jsonl, round_<n>/, best_eval/,
    /// best_spec.json.  Must exist.
    std::string dir;
    /// Defense preset the attacker optimizes against.
    std::string defense = "static";
    std::string workload = "sensor_loop";
    compiler::Scheme scheme = compiler::Scheme::kGecko;
    std::string device = "MSP430FR5994";
    /// Coordinate-search rounds after the seeding round.
    int rounds = 4;
    /// Random-restart candidates added per round.
    int restarts = 2;
    /// Replication seeds per candidate (jobs = candidates x seeds).
    int seedsPerCandidate = 2;
    std::uint64_t seed = 1;
    double simSeconds = 0.02;
    double sliceSimSeconds = 0.005;
    /// Harvester outage environment shared by every arm including the
    /// clean baseline (phase locking target).
    double outagePeriodS = 0.008;
    double outageOnFrac = 0.75;
    KnobBounds bounds;
    /// Cooperative stop, polled between jobs (campaign engine flag).
    std::function<bool()> stopRequested;
};

/** One journaled/evaluated candidate. */
struct Candidate {
    AttackKnobs knobs;
    std::uint64_t score = 0;
};

/** What one runSearch() accomplished. */
struct SearchReport {
    /// False = stopped mid-search; rerun to resume.
    bool complete = false;
    /// Rounds finished across all runs (journal length).
    int roundsDone = 0;
    Candidate best;
    /// Journaled vs replayed best score agree (replay contract).
    bool replayMatches = false;
    /// Serialized schema-v2 spec of the winner (also best_spec.json).
    std::string bestSpecJson;
    /// Clean-baseline totals from the standalone best evaluation.
    campaign::GroupTotals cleanTotals;
    /// Best-attack totals from the standalone best evaluation.
    campaign::GroupTotals bestTotals;
};

/**
 * Weighted denial-of-progress objective: commit/completion deficit vs
 * the clean baseline plus the attacked arm's rollback, retry-
 * exhaustion and hard-death counts.  Pure integer arithmetic.
 */
std::uint64_t denialScore(const campaign::GroupTotals& clean,
                          const campaign::GroupTotals& attacked);

/**
 * Run (or resume) the search.  Throws std::runtime_error on journal /
 * campaign-identity corruption (same contract as the engine).
 */
SearchReport runSearch(const SearchConfig& config, exp::ThreadPool& pool);

}  // namespace gecko::adversary

#endif  // GECKO_ADVERSARY_OPTIMIZER_HPP_
