#include "adversary/knobs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace gecko::adversary {

namespace {

double
clampD(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

/** Shortest text that strtod()s back to exactly `v` (spec.cpp idiom). */
std::string
numText(double v)
{
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/** Find `"key":` and parse the number after it; false if absent. */
bool
numberAfterKey(const std::string& text, const char* key, double* out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char* start = text.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start)
        return false;
    *out = v;
    return true;
}

}  // namespace

AttackKnobs
clampKnobs(const AttackKnobs& k, const KnobBounds& b)
{
    AttackKnobs out = k;
    out.freqHz = clampD(k.freqHz, b.freqMinHz, b.freqMaxHz);
    out.powerDbm = clampD(k.powerDbm, b.powerMinDbm, b.powerMaxDbm);
    out.dutyPeriodS =
        clampD(k.dutyPeriodS, b.dutyPeriodMinS, b.dutyPeriodMaxS);
    out.dutyOnFrac = clampD(k.dutyOnFrac, b.dutyOnFracMin, b.dutyOnFracMax);
    out.phaseS = clampD(k.phaseS, b.phaseMinS, b.phaseMaxS);
    out.envelopeStepDbm =
        clampD(k.envelopeStepDbm, 0.0, b.envelopeStepMaxDbm);
    out.gridCell = std::min(std::max(k.gridCell, 0), b.cells() - 1);
    return out;
}

AttackKnobs
randomKnobs(exp::Rng& rng, const KnobBounds& b)
{
    AttackKnobs k;
    k.freqHz = b.freqMinHz + rng.uniform() * (b.freqMaxHz - b.freqMinHz);
    k.powerDbm =
        b.powerMinDbm + rng.uniform() * (b.powerMaxDbm - b.powerMinDbm);
    k.dutyPeriodS = b.dutyPeriodMinS +
                    rng.uniform() * (b.dutyPeriodMaxS - b.dutyPeriodMinS);
    k.dutyOnFrac = b.dutyOnFracMin +
                   rng.uniform() * (b.dutyOnFracMax - b.dutyOnFracMin);
    k.phaseS = b.phaseMinS + rng.uniform() * (b.phaseMaxS - b.phaseMinS);
    k.envelopeStepDbm = rng.uniform() * b.envelopeStepMaxDbm;
    k.gridCell = static_cast<int>(rng.pick(
        static_cast<std::uint32_t>(b.cells())));
    return k;
}

AttackKnobs
perturb(const AttackKnobs& k, const KnobBounds& b, int coord, int direction,
        double stepScale)
{
    AttackKnobs out = k;
    const double d = direction >= 0 ? 1.0 : -1.0;
    switch (coord) {
      case 0:
        out.freqHz += d * stepScale * 0.5 * (b.freqMaxHz - b.freqMinHz);
        break;
      case 1:
        out.powerDbm +=
            d * stepScale * 0.5 * (b.powerMaxDbm - b.powerMinDbm);
        break;
      case 2:
        out.dutyPeriodS +=
            d * stepScale * 0.5 * (b.dutyPeriodMaxS - b.dutyPeriodMinS);
        break;
      case 3:
        out.dutyOnFrac +=
            d * stepScale * 0.5 * (b.dutyOnFracMax - b.dutyOnFracMin);
        break;
      case 4:
        out.phaseS += d * stepScale * 0.5 * (b.phaseMaxS - b.phaseMinS);
        break;
      case 5:
        out.envelopeStepDbm += d * stepScale * 0.5 * b.envelopeStepMaxDbm;
        break;
      case 6: {
        // Discrete coordinate: step at least one cell.
        const int cells = b.cells();
        const int step = std::max(
            1, static_cast<int>(stepScale * 0.5 * cells));
        out.gridCell += direction >= 0 ? step : -step;
        break;
      }
      default:
        break;
    }
    return clampKnobs(out, b);
}

campaign::Scenario
toScenario(const AttackKnobs& k, const KnobBounds& b,
           const std::string& name, double outagePeriodS,
           double outageOnFrac)
{
    campaign::Scenario sc;
    sc.kind = campaign::ScenarioKind::kTone;
    sc.name = name;
    sc.freqHz = k.freqHz;
    sc.powerDbm = k.powerDbm;
    sc.gridRows = b.gridRows;
    sc.gridCols = b.gridCols;
    sc.gridRow = k.gridCell / b.gridCols;
    sc.gridCol = k.gridCell % b.gridCols;
    sc.dutyPeriodS = k.dutyPeriodS;
    sc.dutyOnFrac = k.dutyOnFrac;
    sc.phaseS = k.phaseS;
    if (k.envelopeStepDbm > 0.01)
        sc.envelopeDbm = {k.powerDbm, k.powerDbm - k.envelopeStepDbm};
    sc.outagePeriodS = outagePeriodS;
    sc.outageOnFrac = outageOnFrac;
    return sc;
}

fault::FaultSpec
toSpec(const AttackKnobs& k, const KnobBounds& b, const std::string& name,
       std::uint64_t seed, const std::string& device, int seeds,
       double simS, double sliceS, double outagePeriodS,
       double outageOnFrac)
{
    fault::FaultSpec spec;
    spec.version = 2;
    spec.name = name;
    spec.hasSeed = true;
    spec.seed = seed;
    spec.hasScenario = true;
    spec.scenario.kind = "tone";
    spec.scenario.freqHz = k.freqHz;
    spec.scenario.powerDbm = k.powerDbm;
    spec.scenario.gridRows = b.gridRows;
    spec.scenario.gridCols = b.gridCols;
    spec.scenario.gridRow = k.gridCell / b.gridCols;
    spec.scenario.gridCol = k.gridCell % b.gridCols;
    spec.scenario.dutyPeriodS = k.dutyPeriodS;
    spec.scenario.dutyOnFrac = k.dutyOnFrac;
    spec.scenario.phaseS = k.phaseS;
    if (k.envelopeStepDbm > 0.01)
        spec.scenario.envelopeDbm = {k.powerDbm,
                                     k.powerDbm - k.envelopeStepDbm};
    spec.scenario.outagePeriodS = outagePeriodS;
    spec.scenario.outageOnFrac = outageOnFrac;
    spec.hasEngine = true;
    spec.devices = {device};
    spec.seeds = seeds;
    spec.simS = simS;
    spec.sliceS = sliceS;
    return spec;
}

std::string
knobsJson(const AttackKnobs& k)
{
    std::ostringstream os;
    os << "{\"freq_hz\":" << numText(k.freqHz)
       << ",\"power_dbm\":" << numText(k.powerDbm)
       << ",\"duty_period_s\":" << numText(k.dutyPeriodS)
       << ",\"duty_on_frac\":" << numText(k.dutyOnFrac)
       << ",\"phase_s\":" << numText(k.phaseS)
       << ",\"envelope_step_dbm\":" << numText(k.envelopeStepDbm)
       << ",\"grid_cell\":" << k.gridCell << "}";
    return os.str();
}

bool
knobsFromJson(const std::string& text, AttackKnobs* out)
{
    AttackKnobs k;
    double cell = 0.0;
    if (!numberAfterKey(text, "freq_hz", &k.freqHz) ||
        !numberAfterKey(text, "power_dbm", &k.powerDbm) ||
        !numberAfterKey(text, "duty_period_s", &k.dutyPeriodS) ||
        !numberAfterKey(text, "duty_on_frac", &k.dutyOnFrac) ||
        !numberAfterKey(text, "phase_s", &k.phaseS) ||
        !numberAfterKey(text, "envelope_step_dbm", &k.envelopeStepDbm) ||
        !numberAfterKey(text, "grid_cell", &cell))
        return false;
    k.gridCell = static_cast<int>(cell);
    *out = k;
    return true;
}

}  // namespace gecko::adversary
