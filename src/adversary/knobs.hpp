#ifndef GECKO_ADVERSARY_KNOBS_HPP_
#define GECKO_ADVERSARY_KNOBS_HPP_

#include <cstdint>
#include <string>

#include "campaign/engine.hpp"
#include "exp/rng.hpp"
#include "fault/spec.hpp"

/**
 * @file
 * The adversarial search space (DESIGN.md §16).
 *
 * An attack candidate is a point in a small continuous/discrete knob
 * space: carrier frequency, base amplitude, duty cycle, burst phase
 * relative to the harvester outage, a two-level amplitude envelope and
 * the attacker's spatial grid cell.  Every knob maps 1:1 onto the
 * schema-v2 scenario-spec fields (src/fault/spec.hpp), so any evaluated
 * candidate — in particular each per-defense best attack — serializes
 * as a versioned spec and replays bit-identically through the campaign
 * engine.
 */

namespace gecko::adversary {

/** One attack candidate (a point in the search space). */
struct AttackKnobs {
    /// Carrier frequency (Hz) — the coupling resonances are the
    /// attacker's primary lever.
    double freqHz = 27e6;
    /// Base carrier power (dBm).
    double powerDbm = 35.0;
    /// Duty-cycle period (s); the carrier is on for `dutyOnFrac` of it.
    /// dutyOnFrac = 1.0 degenerates to a continuous tone.
    double dutyPeriodS = 0.004;
    double dutyOnFrac = 1.0;
    /// Offset of the first attack window (s) — lets the search lock
    /// bursts to the harvester outage phase.
    double phaseS = 0.0;
    /// Two-level amplitude envelope: windows alternate powerDbm and
    /// powerDbm - envelopeStepDbm.  ~0 = flat envelope.
    double envelopeStepDbm = 0.0;
    /// Attacker position: cell index (row-major) of the spatial grid.
    int gridCell = 0;
};

/** Box bounds of the space (clamping + random restarts). */
struct KnobBounds {
    double freqMinHz = 5e6, freqMaxHz = 50e6;
    double powerMinDbm = 20.0, powerMaxDbm = 40.0;
    double dutyPeriodMinS = 0.001, dutyPeriodMaxS = 0.02;
    double dutyOnFracMin = 0.05, dutyOnFracMax = 1.0;
    double phaseMinS = 0.0, phaseMaxS = 0.008;
    double envelopeStepMaxDbm = 20.0;
    /// Spatial grid the attacker moves on (row-major cells).
    int gridRows = 8;
    int gridCols = 8;

    int cells() const { return gridRows * gridCols; }
};

/** Number of search coordinates (see perturb()). */
inline constexpr int kKnobCount = 7;

/** Clamp every knob into the box. */
AttackKnobs clampKnobs(const AttackKnobs& k, const KnobBounds& b);

/** Uniform random point in the box (random restart). */
AttackKnobs randomKnobs(exp::Rng& rng, const KnobBounds& b);

/**
 * The candidate one coordinate-search step away: knob `coord`
 * (0..kKnobCount-1) moved by `direction` (±1) times `stepScale` of its
 * half-range, clamped into the box.
 */
AttackKnobs perturb(const AttackKnobs& k, const KnobBounds& b, int coord,
                    int direction, double stepScale);

/**
 * The campaign scenario evaluating this candidate: a named, duty-
 * cycled, spatially-placed tone with the given harvester-outage
 * environment (outagePeriodS <= 0 = constant supply).
 */
campaign::Scenario toScenario(const AttackKnobs& k, const KnobBounds& b,
                              const std::string& name,
                              double outagePeriodS, double outageOnFrac);

/**
 * The candidate as a schema-v2 scenario spec (bit-identical replay
 * artifact): scenario section from the knobs, engine section from the
 * evaluation parameters.
 */
fault::FaultSpec toSpec(const AttackKnobs& k, const KnobBounds& b,
                        const std::string& name, std::uint64_t seed,
                        const std::string& device, int seeds, double simS,
                        double sliceS, double outagePeriodS,
                        double outageOnFrac);

/** Canonical JSON object of the knobs (journal / telemetry payload). */
std::string knobsJson(const AttackKnobs& k);

/** Parse knobsJson() output (resume path).  False on malformed text. */
bool knobsFromJson(const std::string& text, AttackKnobs* out);

}  // namespace gecko::adversary

#endif  // GECKO_ADVERSARY_KNOBS_HPP_
