#include "ir/instr.hpp"

namespace gecko::ir {

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        return true;
      default:
        return false;
    }
}

bool
isUncondTransfer(Opcode op)
{
    switch (op) {
      case Opcode::kJmp:
      case Opcode::kCall:
      case Opcode::kRet:
      case Opcode::kHalt:
        return true;
      default:
        return false;
    }
}

bool
isTerminator(Opcode op)
{
    return isCondBranch(op) || isUncondTransfer(op);
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivu:
      case Opcode::kRemu:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
        return true;
      default:
        return false;
    }
}

bool
isUnaryAlu(Opcode op)
{
    return op == Opcode::kNot || op == Opcode::kNeg;
}

bool
writesReg(const Instr& ins)
{
    switch (ins.op) {
      case Opcode::kMovi:
      case Opcode::kMov:
      case Opcode::kLoad:
      case Opcode::kIn:
        return true;
      case Opcode::kCall:
        return true;  // writes the link register
      default:
        return isBinaryAlu(ins.op) || isUnaryAlu(ins.op);
    }
}

std::vector<Reg>
regsRead(const Instr& ins)
{
    std::vector<Reg> regs;
    switch (ins.op) {
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kNeg:
        regs.push_back(ins.rs1);
        break;
      case Opcode::kLoad:
        regs.push_back(ins.rs1);
        break;
      case Opcode::kStore:
        regs.push_back(ins.rs1);
        regs.push_back(ins.rs2);
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        regs.push_back(ins.rs1);
        regs.push_back(ins.rs2);
        break;
      case Opcode::kOut:
        regs.push_back(ins.rs1);
        break;
      case Opcode::kRet:
        regs.push_back(kLinkReg);
        break;
      case Opcode::kCkpt:
        regs.push_back(ins.rs1);
        break;
      default:
        if (isBinaryAlu(ins.op)) {
            regs.push_back(ins.rs1);
            if (!ins.useImm)
                regs.push_back(ins.rs2);
        }
        break;
    }
    return regs;
}

const char*
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::kNop: return "nop";
      case Opcode::kMovi: return "movi";
      case Opcode::kMov: return "mov";
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDivu: return "divu";
      case Opcode::kRemu: return "remu";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kNot: return "not";
      case Opcode::kNeg: return "neg";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kBeq: return "beq";
      case Opcode::kBne: return "bne";
      case Opcode::kBlt: return "blt";
      case Opcode::kBge: return "bge";
      case Opcode::kBltu: return "bltu";
      case Opcode::kBgeu: return "bgeu";
      case Opcode::kJmp: return "jmp";
      case Opcode::kCall: return "call";
      case Opcode::kRet: return "ret";
      case Opcode::kIn: return "in";
      case Opcode::kOut: return "out";
      case Opcode::kHalt: return "halt";
      case Opcode::kBoundary: return "boundary";
      case Opcode::kCkpt: return "ckpt";
    }
    return "?";
}

std::uint32_t
evalBinary(Opcode op, std::uint32_t a, std::uint32_t b)
{
    switch (op) {
      case Opcode::kAdd: return a + b;
      case Opcode::kSub: return a - b;
      case Opcode::kMul: return a * b;
      case Opcode::kDivu: return b == 0 ? 0xffffffffu : a / b;
      case Opcode::kRemu: return b == 0 ? a : a % b;
      case Opcode::kAnd: return a & b;
      case Opcode::kOr: return a | b;
      case Opcode::kXor: return a ^ b;
      case Opcode::kShl: return a << (b & 31u);
      case Opcode::kShr: return a >> (b & 31u);
      default: return 0;
    }
}

std::uint32_t
evalUnary(Opcode op, std::uint32_t a)
{
    switch (op) {
      case Opcode::kNot: return ~a;
      case Opcode::kNeg: return 0u - a;
      default: return 0;
    }
}

bool
evalBranch(Opcode op, std::uint32_t a, std::uint32_t b)
{
    switch (op) {
      case Opcode::kBeq: return a == b;
      case Opcode::kBne: return a != b;
      case Opcode::kBlt:
        return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
      case Opcode::kBge:
        return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
      case Opcode::kBltu: return a < b;
      case Opcode::kBgeu: return a >= b;
      default: return false;
    }
}

int
cycleCost(const Instr& ins)
{
    switch (ins.op) {
      case Opcode::kNop: return 1;
      case Opcode::kMovi: return 1;
      case Opcode::kMov: return 1;
      case Opcode::kMul: return 5;
      case Opcode::kDivu: return 24;
      case Opcode::kRemu: return 24;
      case Opcode::kLoad: return 2;   // FRAM access (no wait state ≤ 8 MHz)
      case Opcode::kStore: return 2;  // FRAM write
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: return 2;
      case Opcode::kJmp: return 2;
      case Opcode::kCall: return 4;
      case Opcode::kRet: return 3;
      // Peripheral transactions (sensor conversion, radio send) are
      // long atomic operations — ~50 µs at 8 MHz.  This is what the
      // paper observes EMI DoS interrupting "in the middle of (atomic)
      // task execution such as sending a message or sensing".
      case Opcode::kIn: return 400;
      case Opcode::kOut: return 400;
      case Opcode::kHalt: return 1;
      // Region boundary: one atomic NVM store of the region id (the
      // staged-I/O counters piggyback on the same commit word).
      case Opcode::kBoundary: return 2;
      // Checkpoint store: one NVM store into the double-buffered slot.
      case Opcode::kCkpt: return 2;
      default: return 1;  // remaining single-cycle ALU ops
    }
}

}  // namespace gecko::ir
