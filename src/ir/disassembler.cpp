#include "ir/disassembler.hpp"

#include <sstream>

namespace gecko::ir {

namespace {

std::string
reg(Reg r)
{
    return "r" + std::to_string(static_cast<int>(r));
}

}  // namespace

std::string
formatInstr(const Program& prog, const Instr& ins)
{
    std::ostringstream os;
    os << mnemonic(ins.op);
    switch (ins.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kRet:
        break;
      case Opcode::kMovi:
        os << " " << reg(ins.rd) << ", " << ins.imm;
        break;
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kNeg:
        os << " " << reg(ins.rd) << ", " << reg(ins.rs1);
        break;
      case Opcode::kLoad:
        os << " " << reg(ins.rd) << ", [" << reg(ins.rs1);
        if (ins.imm != 0)
            os << "+" << ins.imm;
        os << "]";
        break;
      case Opcode::kStore:
        os << " [" << reg(ins.rs1);
        if (ins.imm != 0)
            os << "+" << ins.imm;
        os << "], " << reg(ins.rs2);
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        os << " " << reg(ins.rs1) << ", " << reg(ins.rs2) << ", "
           << prog.labelName(ins.target);
        break;
      case Opcode::kJmp:
      case Opcode::kCall:
        os << " " << prog.labelName(ins.target);
        break;
      case Opcode::kIn:
        os << " " << reg(ins.rd) << ", " << ins.imm;
        break;
      case Opcode::kOut:
        os << " " << ins.imm << ", " << reg(ins.rs1);
        break;
      case Opcode::kBoundary:
        os << " " << ins.imm;
        break;
      case Opcode::kCkpt:
        os << " " << reg(ins.rs1) << ", " << ins.imm << ", " << ins.target;
        break;
      default:
        os << " " << reg(ins.rd) << ", " << reg(ins.rs1) << ", ";
        if (ins.useImm)
            os << "#" << ins.imm;
        else
            os << reg(ins.rs2);
        break;
    }
    return os.str();
}

std::string
disassemble(const Program& prog)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (auto label = prog.labelAt(i))
            os << prog.labelName(*label) << ":\n";
        os << "    " << formatInstr(prog, prog.at(i)) << "\n";
    }
    // Labels bound past the last instruction (e.g. end labels).
    if (auto label = prog.labelAt(prog.size()))
        os << prog.labelName(*label) << ":\n";
    return os.str();
}

}  // namespace gecko::ir
