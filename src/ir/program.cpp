#include "ir/program.hpp"

#include <sstream>

namespace gecko::ir {

std::size_t
Program::append(const Instr& ins)
{
    code_.push_back(ins);
    return code_.size() - 1;
}

void
Program::insertBefore(std::size_t pos, const Instr& ins, bool before_label)
{
    code_.insert(code_.begin() + static_cast<std::ptrdiff_t>(pos), ins);
    for (auto& label : labels_) {
        if (label.pos == npos)
            continue;
        if (label.pos > pos || (label.pos == pos && !before_label))
            ++label.pos;
    }
}

void
Program::erase(std::size_t pos)
{
    code_.erase(code_.begin() + static_cast<std::ptrdiff_t>(pos));
    for (auto& label : labels_) {
        if (label.pos == npos)
            continue;
        if (label.pos > pos)
            --label.pos;
    }
}

LabelId
Program::internLabel(const std::string& name)
{
    auto it = labelIndex_.find(name);
    if (it != labelIndex_.end())
        return it->second;
    LabelId id = static_cast<LabelId>(labels_.size());
    labels_.push_back({name, npos});
    labelIndex_.emplace(name, id);
    return id;
}

void
Program::bindLabel(LabelId id, std::size_t pos)
{
    labels_.at(static_cast<std::size_t>(id)).pos = pos;
}

LabelId
Program::makeLabelAt(std::size_t pos, const std::string& hint)
{
    std::string name;
    do {
        std::ostringstream os;
        os << "." << hint << uniqueCounter_++;
        name = os.str();
    } while (labelIndex_.count(name) != 0);
    LabelId id = internLabel(name);
    bindLabel(id, pos);
    return id;
}

std::size_t
Program::labelPos(LabelId id) const
{
    return labels_.at(static_cast<std::size_t>(id)).pos;
}

const std::string&
Program::labelName(LabelId id) const
{
    return labels_.at(static_cast<std::size_t>(id)).name;
}

std::optional<LabelId>
Program::labelAt(std::size_t pos) const
{
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i].pos == pos)
            return static_cast<LabelId>(i);
    }
    return std::nullopt;
}

std::optional<LabelId>
Program::findLabel(const std::string& name) const
{
    auto it = labelIndex_.find(name);
    if (it == labelIndex_.end())
        return std::nullopt;
    return it->second;
}

std::string
Program::validate() const
{
    std::ostringstream err;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const Instr& ins = code_[i];
        bool needs_label = isCondBranch(ins.op) || ins.op == Opcode::kJmp ||
                           ins.op == Opcode::kCall;
        if (needs_label) {
            if (ins.target < 0 ||
                static_cast<std::size_t>(ins.target) >= labels_.size()) {
                err << "instr " << i << ": bad label id " << ins.target;
                return err.str();
            }
            if (labelPos(ins.target) == npos) {
                err << "instr " << i << ": unbound label '"
                    << labelName(ins.target) << "'";
                return err.str();
            }
        }
        if (ins.rd >= kNumRegs || ins.rs1 >= kNumRegs || ins.rs2 >= kNumRegs) {
            err << "instr " << i << ": register out of range";
            return err.str();
        }
    }
    if (!code_.empty()) {
        Opcode last = code_.back().op;
        if (last != Opcode::kHalt && !isUncondTransfer(last)) {
            err << "program may fall off the end (last op: "
                << mnemonic(last) << ")";
            return err.str();
        }
    }
    return {};
}

}  // namespace gecko::ir
