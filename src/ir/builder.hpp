#ifndef GECKO_IR_BUILDER_HPP_
#define GECKO_IR_BUILDER_HPP_

#include <string>

#include "ir/program.hpp"

/**
 * @file
 * Fluent builder for hand-writing mini-ISA programs (used by the workload
 * suite and the tests).
 */

namespace gecko::ir {

/**
 * Fluent program builder.
 *
 * Example:
 * @code
 *   ProgramBuilder b("sum");
 *   b.movi(1, 0)            // r1 = acc
 *    .movi(2, 10)           // r2 = n
 *    .label("loop")
 *    .add(1, 1, 2)          // acc += n
 *    .subi(2, 2, 1)         // --n
 *    .bne(2, 0, "loop")
 *    .halt();
 *   Program p = b.take();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name) : prog_(std::move(name)) {}

    /** Bind a named label at the current position. */
    ProgramBuilder& label(const std::string& name);

    ProgramBuilder& nop();
    ProgramBuilder& movi(Reg rd, std::int32_t imm);
    ProgramBuilder& mov(Reg rd, Reg rs);

    // Register-register ALU.
    ProgramBuilder& add(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& sub(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& mul(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& divu(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& remu(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& and_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& or_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& xor_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& shl(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& shr(Reg rd, Reg rs1, Reg rs2);

    // Register-immediate ALU.
    ProgramBuilder& addi(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& subi(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& muli(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& divui(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& remui(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& andi(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& ori(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& xori(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& shli(Reg rd, Reg rs1, std::int32_t imm);
    ProgramBuilder& shri(Reg rd, Reg rs1, std::int32_t imm);

    ProgramBuilder& not_(Reg rd, Reg rs1);
    ProgramBuilder& neg(Reg rd, Reg rs1);

    ProgramBuilder& load(Reg rd, Reg base, std::int32_t offset);
    ProgramBuilder& store(Reg base, std::int32_t offset, Reg value);

    ProgramBuilder& beq(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& bne(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& blt(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& bge(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& bltu(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& bgeu(Reg rs1, Reg rs2, const std::string& label);
    ProgramBuilder& jmp(const std::string& label);
    ProgramBuilder& call(const std::string& label);
    ProgramBuilder& ret();

    ProgramBuilder& in(Reg rd, std::int32_t port);
    ProgramBuilder& out(std::int32_t port, Reg rs);
    ProgramBuilder& halt();

    /**
     * Finish building.  Validates the program; throws std::runtime_error on
     * malformed code (unbound labels, fall-through end, ...).
     */
    Program take();

    /** Access the program under construction (e.g. for size queries). */
    const Program& peek() const { return prog_; }

  private:
    ProgramBuilder& emit(const Instr& ins);
    ProgramBuilder& emitBranch(Opcode op, Reg rs1, Reg rs2,
                               const std::string& label);
    ProgramBuilder& emitAlu(Opcode op, Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder& emitAluImm(Opcode op, Reg rd, Reg rs1, std::int32_t imm);

    Program prog_;
};

}  // namespace gecko::ir

#endif  // GECKO_IR_BUILDER_HPP_
