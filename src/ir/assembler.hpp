#ifndef GECKO_IR_ASSEMBLER_HPP_
#define GECKO_IR_ASSEMBLER_HPP_

#include <stdexcept>
#include <string>

#include "ir/program.hpp"

/**
 * @file
 * Text assembler for the GECKO mini-ISA.
 *
 * Syntax (one instruction per line, `;` starts a comment):
 * @code
 *   loop:                 ; label
 *       movi r1, 10
 *       add  r2, r2, r1   ; register form
 *       add  r2, r2, #5   ; immediate form ('#' prefix)
 *       load r3, [r4+8]
 *       store [r4+8], r3
 *       bne  r1, r0, loop
 *       in   r5, 0
 *       out  1, r5
 *       halt
 * @endcode
 */

namespace gecko::ir {

/** Error thrown by Assembler on malformed input, with a line number. */
struct AsmError : std::runtime_error {
    AsmError(int line, const std::string& msg)
        : std::runtime_error("line " + std::to_string(line) + ": " + msg),
          line(line) {}
    int line;
};

/** Two-pass text assembler. */
class Assembler
{
  public:
    /**
     * Assemble `source` into a Program named `name`.
     * @throws AsmError on syntax errors or undefined labels.
     */
    static Program assemble(const std::string& name,
                            const std::string& source);
};

}  // namespace gecko::ir

#endif  // GECKO_IR_ASSEMBLER_HPP_
