#ifndef GECKO_IR_INSTR_HPP_
#define GECKO_IR_INSTR_HPP_

#include <cstdint>
#include <string>
#include <vector>

/**
 * @file
 * Instruction set of the GECKO mini-ISA.
 *
 * The ISA models a small FRAM-based microcontroller in the spirit of the
 * TI MSP430FR family used by the paper: 16 general-purpose 32-bit registers,
 * a word-addressed non-volatile main memory, memory-mapped I/O ports, and a
 * handful of ALU/branch opcodes.  Two pseudo-opcodes (`kBoundary`, `kCkpt`)
 * are emitted by the GECKO/Ratchet compiler pipelines and interpreted by the
 * intermittent-system runtime.
 */

namespace gecko::ir {

/** Register index. The ISA has 16 general purpose registers, r0..r15. */
using Reg = std::uint8_t;

/** Number of architectural general-purpose registers. */
inline constexpr int kNumRegs = 16;

/**
 * Link register used by kCall/kRet by convention.  A call writes the return
 * address to r15; ret jumps to r15.  Non-leaf callees must spill r15.
 */
inline constexpr Reg kLinkReg = 15;

/** Opcodes of the mini-ISA. */
enum class Opcode : std::uint8_t {
    kNop,
    /// rd = imm
    kMovi,
    /// rd = rs1
    kMov,
    // Binary ALU ops: rd = rs1 <op> (useImm ? imm : rs2)
    kAdd,
    kSub,
    kMul,
    /// Unsigned division; division by zero yields all-ones (0xffffffff).
    kDivu,
    /// Unsigned remainder; remainder by zero yields rs1.
    kRemu,
    kAnd,
    kOr,
    kXor,
    /// Logical shift left (shift amount masked to 5 bits).
    kShl,
    /// Logical shift right (shift amount masked to 5 bits).
    kShr,
    // Unary ALU ops: rd = <op> rs1
    kNot,
    kNeg,
    /// rd = mem[rs1 + imm] (word addressed)
    kLoad,
    /// mem[rs1 + imm] = rs2
    kStore,
    // Conditional branches: if (rs1 <cond> rs2) goto label(target)
    kBeq,
    kBne,
    /// Signed less-than branch.
    kBlt,
    /// Signed greater-or-equal branch.
    kBge,
    /// Unsigned less-than branch.
    kBltu,
    /// Unsigned greater-or-equal branch.
    kBgeu,
    /// Unconditional jump to label(target).
    kJmp,
    /// r15 = return address; goto label(target).
    kCall,
    /// goto r15.
    kRet,
    /// rd = next value from input port `imm` (replay-consistent, see Machine).
    kIn,
    /// emit rs1 to output port `imm` (exactly-once, see Machine).
    kOut,
    /// Stop the program; the run is complete.
    kHalt,
    /**
     * Compiler pseudo-op: idempotent region boundary.  `imm` holds the
     * static region id entered at this point.  The runtime commits staged
     * I/O state and records the region entry PC here.
     */
    kBoundary,
    /**
     * Compiler pseudo-op: checkpoint store.  Saves register `rs1` into the
     * double-buffered compiler checkpoint storage at slot colour `imm`
     * (0 or 1) for region id `target`.
     */
    kCkpt,
};

/** Total number of opcodes (for table sizing). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCkpt) + 1;

/**
 * One decoded instruction.
 *
 * Field usage depends on the opcode; unused fields are zero.  Branch/jump
 * targets are *label ids* (indices into Program's label table), never raw
 * instruction indices, so that compiler passes can insert instructions
 * without rewriting every branch.
 */
struct Instr {
    Opcode op = Opcode::kNop;
    /// Destination register.
    Reg rd = 0;
    /// First source register.
    Reg rs1 = 0;
    /// Second source register (binary ALU with useImm == false, kStore data).
    Reg rs2 = 0;
    /// If true, binary ALU ops use `imm` instead of rs2.
    bool useImm = false;
    /// Immediate operand (kMovi value, address offset, port, slot colour).
    std::int32_t imm = 0;
    /// Label id for branches/jumps/calls; region id for kCkpt.
    std::int32_t target = -1;

    bool operator==(const Instr&) const = default;
};

/** @return true if `op` is a conditional branch. */
bool isCondBranch(Opcode op);

/** @return true if `op` unconditionally transfers control (jmp/call/ret/halt). */
bool isUncondTransfer(Opcode op);

/** @return true if `op` ends a basic block. */
bool isTerminator(Opcode op);

/** @return true if `op` is a binary ALU operation (rd = rs1 op rs2/imm). */
bool isBinaryAlu(Opcode op);

/** @return true if `op` is a unary ALU operation (rd = op rs1). */
bool isUnaryAlu(Opcode op);

/** @return true if the instruction writes a general purpose register. */
bool writesReg(const Instr& ins);

/** @return the registers read by `ins` (at most 2 plus link for kRet). */
std::vector<Reg> regsRead(const Instr& ins);

/** @return mnemonic text for an opcode, e.g. "add". */
const char* mnemonic(Opcode op);

/**
 * Evaluate a binary ALU opcode on two operand values.
 *
 * Shared by the interpreter and the compiler's constant folder so both
 * agree on ISA semantics (division by zero yields all-ones, shifts mask
 * the amount to 5 bits, all arithmetic wraps modulo 2^32).
 */
std::uint32_t evalBinary(Opcode op, std::uint32_t a, std::uint32_t b);

/** Evaluate a unary ALU opcode (kNot/kNeg). */
std::uint32_t evalUnary(Opcode op, std::uint32_t a);

/**
 * Evaluate a conditional-branch predicate.
 * @return true if the branch is taken.
 */
bool evalBranch(Opcode op, std::uint32_t a, std::uint32_t b);

/**
 * Architectural cycle cost of one instruction.
 *
 * The table approximates an MSP430FR-class MCU: single-cycle ALU, a
 * multi-cycle hardware multiplier, slow software-assisted division, and
 * FRAM wait states on loads/stores.  Pseudo-ops cost what the runtime
 * work they stand for costs (one or two NVM stores).
 */
int cycleCost(const Instr& ins);

}  // namespace gecko::ir

#endif  // GECKO_IR_INSTR_HPP_
