#include "ir/builder.hpp"

#include <stdexcept>

namespace gecko::ir {

ProgramBuilder&
ProgramBuilder::emit(const Instr& ins)
{
    prog_.append(ins);
    return *this;
}

ProgramBuilder&
ProgramBuilder::emitBranch(Opcode op, Reg rs1, Reg rs2,
                           const std::string& label)
{
    Instr ins;
    ins.op = op;
    ins.rs1 = rs1;
    ins.rs2 = rs2;
    ins.target = prog_.internLabel(label);
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::emitAlu(Opcode op, Reg rd, Reg rs1, Reg rs2)
{
    Instr ins;
    ins.op = op;
    ins.rd = rd;
    ins.rs1 = rs1;
    ins.rs2 = rs2;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::emitAluImm(Opcode op, Reg rd, Reg rs1, std::int32_t imm)
{
    Instr ins;
    ins.op = op;
    ins.rd = rd;
    ins.rs1 = rs1;
    ins.useImm = true;
    ins.imm = imm;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::label(const std::string& name)
{
    LabelId id = prog_.internLabel(name);
    if (prog_.labelPos(id) != Program::npos)
        throw std::runtime_error("duplicate label: " + name);
    prog_.bindLabel(id, prog_.size());
    return *this;
}

ProgramBuilder& ProgramBuilder::nop() { return emit({}); }

ProgramBuilder&
ProgramBuilder::movi(Reg rd, std::int32_t imm)
{
    Instr ins;
    ins.op = Opcode::kMovi;
    ins.rd = rd;
    ins.imm = imm;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::mov(Reg rd, Reg rs)
{
    Instr ins;
    ins.op = Opcode::kMov;
    ins.rd = rd;
    ins.rs1 = rs;
    return emit(ins);
}

ProgramBuilder& ProgramBuilder::add(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kAdd, rd, a, b); }
ProgramBuilder& ProgramBuilder::sub(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kSub, rd, a, b); }
ProgramBuilder& ProgramBuilder::mul(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kMul, rd, a, b); }
ProgramBuilder& ProgramBuilder::divu(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kDivu, rd, a, b); }
ProgramBuilder& ProgramBuilder::remu(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kRemu, rd, a, b); }
ProgramBuilder& ProgramBuilder::and_(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kAnd, rd, a, b); }
ProgramBuilder& ProgramBuilder::or_(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kOr, rd, a, b); }
ProgramBuilder& ProgramBuilder::xor_(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kXor, rd, a, b); }
ProgramBuilder& ProgramBuilder::shl(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kShl, rd, a, b); }
ProgramBuilder& ProgramBuilder::shr(Reg rd, Reg a, Reg b)
{ return emitAlu(Opcode::kShr, rd, a, b); }

ProgramBuilder& ProgramBuilder::addi(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kAdd, rd, a, i); }
ProgramBuilder& ProgramBuilder::subi(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kSub, rd, a, i); }
ProgramBuilder& ProgramBuilder::muli(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kMul, rd, a, i); }
ProgramBuilder& ProgramBuilder::divui(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kDivu, rd, a, i); }
ProgramBuilder& ProgramBuilder::remui(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kRemu, rd, a, i); }
ProgramBuilder& ProgramBuilder::andi(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kAnd, rd, a, i); }
ProgramBuilder& ProgramBuilder::ori(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kOr, rd, a, i); }
ProgramBuilder& ProgramBuilder::xori(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kXor, rd, a, i); }
ProgramBuilder& ProgramBuilder::shli(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kShl, rd, a, i); }
ProgramBuilder& ProgramBuilder::shri(Reg rd, Reg a, std::int32_t i)
{ return emitAluImm(Opcode::kShr, rd, a, i); }

ProgramBuilder&
ProgramBuilder::not_(Reg rd, Reg rs1)
{
    Instr ins;
    ins.op = Opcode::kNot;
    ins.rd = rd;
    ins.rs1 = rs1;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::neg(Reg rd, Reg rs1)
{
    Instr ins;
    ins.op = Opcode::kNeg;
    ins.rd = rd;
    ins.rs1 = rs1;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::load(Reg rd, Reg base, std::int32_t offset)
{
    Instr ins;
    ins.op = Opcode::kLoad;
    ins.rd = rd;
    ins.rs1 = base;
    ins.imm = offset;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::store(Reg base, std::int32_t offset, Reg value)
{
    Instr ins;
    ins.op = Opcode::kStore;
    ins.rs1 = base;
    ins.rs2 = value;
    ins.imm = offset;
    return emit(ins);
}

ProgramBuilder& ProgramBuilder::beq(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBeq, a, b, l); }
ProgramBuilder& ProgramBuilder::bne(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBne, a, b, l); }
ProgramBuilder& ProgramBuilder::blt(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBlt, a, b, l); }
ProgramBuilder& ProgramBuilder::bge(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBge, a, b, l); }
ProgramBuilder& ProgramBuilder::bltu(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBltu, a, b, l); }
ProgramBuilder& ProgramBuilder::bgeu(Reg a, Reg b, const std::string& l)
{ return emitBranch(Opcode::kBgeu, a, b, l); }

ProgramBuilder&
ProgramBuilder::jmp(const std::string& label)
{
    Instr ins;
    ins.op = Opcode::kJmp;
    ins.target = prog_.internLabel(label);
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::call(const std::string& label)
{
    Instr ins;
    ins.op = Opcode::kCall;
    ins.rd = kLinkReg;
    ins.target = prog_.internLabel(label);
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::ret()
{
    Instr ins;
    ins.op = Opcode::kRet;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::in(Reg rd, std::int32_t port)
{
    Instr ins;
    ins.op = Opcode::kIn;
    ins.rd = rd;
    ins.imm = port;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::out(std::int32_t port, Reg rs)
{
    Instr ins;
    ins.op = Opcode::kOut;
    ins.rs1 = rs;
    ins.imm = port;
    return emit(ins);
}

ProgramBuilder&
ProgramBuilder::halt()
{
    Instr ins;
    ins.op = Opcode::kHalt;
    return emit(ins);
}

Program
ProgramBuilder::take()
{
    std::string err = prog_.validate();
    if (!err.empty())
        throw std::runtime_error(prog_.name() + ": " + err);
    return std::move(prog_);
}

}  // namespace gecko::ir
