#ifndef GECKO_IR_DISASSEMBLER_HPP_
#define GECKO_IR_DISASSEMBLER_HPP_

#include <string>

#include "ir/program.hpp"

/**
 * @file
 * Disassembler: renders a Program back to assembler text.  The output
 * round-trips through Assembler::assemble (modulo pseudo-op region ids,
 * which are printed as raw immediates).
 */

namespace gecko::ir {

/** Render one instruction (without any label prefix). */
std::string formatInstr(const Program& prog, const Instr& ins);

/** Render a whole program with labels, one instruction per line. */
std::string disassemble(const Program& prog);

}  // namespace gecko::ir

#endif  // GECKO_IR_DISASSEMBLER_HPP_
