#include "ir/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace gecko::ir {

namespace {

/** Token stream over one assembly line. */
class LineLexer
{
  public:
    LineLexer(std::string text, int line) : text_(std::move(text)), line_(line)
    {
        // Strip comment.
        auto semi = text_.find(';');
        if (semi != std::string::npos)
            text_.resize(semi);
        tokenize();
    }

    bool empty() const { return tokens_.empty(); }
    bool done() const { return next_ >= tokens_.size(); }

    const std::string& peek() const
    {
        if (done())
            throw AsmError(line_, "unexpected end of line");
        return tokens_[next_];
    }

    std::string get()
    {
        std::string t = peek();
        ++next_;
        return t;
    }

    void expect(const std::string& tok)
    {
        std::string t = get();
        if (t != tok)
            throw AsmError(line_, "expected '" + tok + "', got '" + t + "'");
    }

    int line() const { return line_; }

  private:
    void tokenize()
    {
        std::size_t i = 0;
        while (i < text_.size()) {
            char c = text_[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (c == ',' || c == '[' || c == ']' || c == '+' || c == ':' ||
                c == '#') {
                tokens_.push_back(std::string(1, c));
                ++i;
                continue;
            }
            std::size_t start = i;
            while (i < text_.size()) {
                char d = text_[i];
                if (std::isspace(static_cast<unsigned char>(d)) || d == ',' ||
                    d == '[' || d == ']' || d == '+' || d == ':' || d == '#')
                    break;
                ++i;
            }
            tokens_.push_back(text_.substr(start, i - start));
        }
    }

    std::string text_;
    std::vector<std::string> tokens_;
    std::size_t next_ = 0;
    int line_;
};

Reg
parseReg(LineLexer& lex)
{
    std::string t = lex.get();
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R'))
        throw AsmError(lex.line(), "expected register, got '" + t + "'");
    int n = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(t[i])))
            throw AsmError(lex.line(), "bad register '" + t + "'");
        n = n * 10 + (t[i] - '0');
    }
    if (n >= kNumRegs)
        throw AsmError(lex.line(), "register out of range: " + t);
    return static_cast<Reg>(n);
}

std::int32_t
parseImm(LineLexer& lex)
{
    std::string t = lex.get();
    bool neg = false;
    std::size_t i = 0;
    if (!t.empty() && (t[0] == '-' || t[0] == '+')) {
        neg = (t[0] == '-');
        i = 1;
    }
    if (i >= t.size())
        throw AsmError(lex.line(), "expected number, got '" + t + "'");
    std::int64_t value = 0;
    int base = 10;
    if (t.size() > i + 1 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    for (; i < t.size(); ++i) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(t[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            throw AsmError(lex.line(), "bad number '" + t + "'");
        value = value * base + digit;
    }
    if (neg)
        value = -value;
    return static_cast<std::int32_t>(value);
}

const std::map<std::string, Opcode>&
opcodeTable()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (int i = 0; i < kNumOpcodes; ++i) {
            Opcode op = static_cast<Opcode>(i);
            t.emplace(mnemonic(op), op);
        }
        return t;
    }();
    return table;
}

}  // namespace

Program
Assembler::assemble(const std::string& name, const std::string& source)
{
    Program prog(name);
    std::istringstream stream(source);
    std::string raw;
    int line_no = 0;

    while (std::getline(stream, raw)) {
        ++line_no;
        LineLexer lex(raw, line_no);
        if (lex.empty())
            continue;

        // Optional leading labels ("name:"), possibly several on one line.
        while (!lex.done()) {
            std::string first = lex.peek();
            // Lookahead: is the next-next token a colon?
            LineLexer probe = lex;
            probe.get();
            if (probe.done() || probe.peek() != ":")
                break;
            lex.get();       // label name
            lex.expect(":");
            LabelId id = prog.internLabel(first);
            if (prog.labelPos(id) != Program::npos)
                throw AsmError(line_no, "duplicate label '" + first + "'");
            prog.bindLabel(id, prog.size());
        }
        if (lex.done())
            continue;

        std::string mn = lex.get();
        std::transform(mn.begin(), mn.end(), mn.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        auto it = opcodeTable().find(mn);
        if (it == opcodeTable().end())
            throw AsmError(line_no, "unknown mnemonic '" + mn + "'");
        Opcode op = it->second;

        Instr ins;
        ins.op = op;
        switch (op) {
          case Opcode::kNop:
          case Opcode::kHalt:
          case Opcode::kRet:
            break;
          case Opcode::kMovi:
            ins.rd = parseReg(lex);
            lex.expect(",");
            if (lex.peek() == "#")
                lex.get();
            ins.imm = parseImm(lex);
            break;
          case Opcode::kMov:
          case Opcode::kNot:
          case Opcode::kNeg:
            ins.rd = parseReg(lex);
            lex.expect(",");
            ins.rs1 = parseReg(lex);
            break;
          case Opcode::kLoad:
            // load rd, [base+off]
            ins.rd = parseReg(lex);
            lex.expect(",");
            lex.expect("[");
            ins.rs1 = parseReg(lex);
            if (lex.peek() == "+") {
                lex.get();
                ins.imm = parseImm(lex);
            }
            lex.expect("]");
            break;
          case Opcode::kStore:
            // store [base+off], rs
            lex.expect("[");
            ins.rs1 = parseReg(lex);
            if (lex.peek() == "+") {
                lex.get();
                ins.imm = parseImm(lex);
            }
            lex.expect("]");
            lex.expect(",");
            ins.rs2 = parseReg(lex);
            break;
          case Opcode::kBeq:
          case Opcode::kBne:
          case Opcode::kBlt:
          case Opcode::kBge:
          case Opcode::kBltu:
          case Opcode::kBgeu:
            ins.rs1 = parseReg(lex);
            lex.expect(",");
            ins.rs2 = parseReg(lex);
            lex.expect(",");
            ins.target = prog.internLabel(lex.get());
            break;
          case Opcode::kJmp:
            ins.target = prog.internLabel(lex.get());
            break;
          case Opcode::kCall:
            ins.rd = kLinkReg;
            ins.target = prog.internLabel(lex.get());
            break;
          case Opcode::kIn:
            ins.rd = parseReg(lex);
            lex.expect(",");
            ins.imm = parseImm(lex);
            break;
          case Opcode::kOut:
            ins.imm = parseImm(lex);
            lex.expect(",");
            ins.rs1 = parseReg(lex);
            break;
          case Opcode::kBoundary:
            ins.imm = parseImm(lex);
            break;
          case Opcode::kCkpt:
            // ckpt rs, slot, region
            ins.rs1 = parseReg(lex);
            lex.expect(",");
            ins.imm = parseImm(lex);
            lex.expect(",");
            ins.target = parseImm(lex);
            break;
          default:
            // Binary ALU: op rd, rs1, (rs2 | #imm)
            ins.rd = parseReg(lex);
            lex.expect(",");
            ins.rs1 = parseReg(lex);
            lex.expect(",");
            if (lex.peek() == "#") {
                lex.get();
                ins.useImm = true;
                ins.imm = parseImm(lex);
            } else {
                ins.rs2 = parseReg(lex);
            }
            break;
        }
        if (!lex.done())
            throw AsmError(line_no, "trailing tokens after instruction");
        prog.append(ins);
    }

    std::string err = prog.validate();
    if (!err.empty())
        throw AsmError(line_no, err);
    return prog;
}

}  // namespace gecko::ir
