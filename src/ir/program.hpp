#ifndef GECKO_IR_PROGRAM_HPP_
#define GECKO_IR_PROGRAM_HPP_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instr.hpp"

/**
 * @file
 * Program container for the GECKO mini-ISA.
 */

namespace gecko::ir {

/** Identifier of a label inside a Program (index into the label table). */
using LabelId = std::int32_t;

/**
 * A straight-line instruction list with a symbolic label table.
 *
 * Control transfers reference labels by id; labels map to instruction
 * indices.  Compiler passes insert instructions with insertBefore(), which
 * keeps every label position consistent, so branch targets never need
 * rewriting.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Number of instructions. */
    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    const Instr& at(std::size_t idx) const { return code_.at(idx); }
    Instr& at(std::size_t idx) { return code_.at(idx); }
    const std::vector<Instr>& code() const { return code_; }

    /** Append an instruction and return its index. */
    std::size_t append(const Instr& ins);

    /**
     * Insert an instruction before position `pos`, shifting labels.
     *
     * A label bound exactly at `pos` moves with the instruction originally
     * at `pos` (i.e. the inserted instruction executes *before* the label).
     * Pass `before_label = true` to keep such labels pointing at the
     * inserted instruction instead (the instruction becomes the first of
     * the labelled block — what region-boundary insertion wants).
     */
    void insertBefore(std::size_t pos, const Instr& ins,
                      bool before_label = false);

    /** Remove the instruction at `pos`, shifting labels. */
    void erase(std::size_t pos);

    /**
     * Define or look up a label by name.
     * @return the label id (stable across insertions).
     */
    LabelId internLabel(const std::string& name);

    /** Bind label `id` to instruction index `pos`. */
    void bindLabel(LabelId id, std::size_t pos);

    /** Create a fresh uniquely-named label bound at `pos`. */
    LabelId makeLabelAt(std::size_t pos, const std::string& hint = "L");

    /** @return the instruction index a label is bound to (or npos). */
    std::size_t labelPos(LabelId id) const;

    /** @return the label name for `id`. */
    const std::string& labelName(LabelId id) const;

    /** @return the label id bound exactly at `pos`, if any. */
    std::optional<LabelId> labelAt(std::size_t pos) const;

    /** @return label id for `name`, if defined. */
    std::optional<LabelId> findLabel(const std::string& name) const;

    /** Number of interned labels. */
    std::size_t numLabels() const { return labels_.size(); }

    /** Sentinel for "label not bound". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * Validate internal consistency: every branch targets a bound label,
     * register indices are in range, the last instruction cannot fall off
     * the end (must be a terminator).
     * @return empty string when valid, otherwise a diagnostic.
     */
    std::string validate() const;

  private:
    struct Label {
        std::string name;
        std::size_t pos = npos;
    };

    std::string name_;
    std::vector<Instr> code_;
    std::vector<Label> labels_;
    std::unordered_map<std::string, LabelId> labelIndex_;
    int uniqueCounter_ = 0;
};

}  // namespace gecko::ir

#endif  // GECKO_IR_PROGRAM_HPP_
