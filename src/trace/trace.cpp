#include "trace/trace.hpp"

#include <algorithm>

#include "campaign/archive.hpp"

namespace gecko::trace {

const char*
eventName(EventKind kind)
{
    switch (kind) {
        case EventKind::kRegionCommit: return "region_commit";
        case EventKind::kCompletion: return "completion";
        case EventKind::kMachineFault: return "machine_fault";
        case EventKind::kBlockCompile: return "block_compile";
        case EventKind::kBlockEnter: return "block_enter";
        case EventKind::kBlockExit: return "block_exit";
        case EventKind::kBlockDeopt: return "block_deopt";
        case EventKind::kBoot: return "boot";
        case EventKind::kSleepEnter: return "sleep_enter";
        case EventKind::kPowerLoss: return "power_loss";
        case EventKind::kBackupSignal: return "backup_signal";
        case EventKind::kWakeSignal: return "wake_signal";
        case EventKind::kMonitorTrip: return "monitor_trip";
        case EventKind::kJitSaveStart: return "jit_save_start";
        case EventKind::kJitSaveCommit: return "jit_save_commit";
        case EventKind::kJitSaveAbort: return "jit_save_abort";
        case EventKind::kJitSaveTorn: return "jit_save_torn";
        case EventKind::kJitSaveRetry: return "jit_save_retry";
        case EventKind::kJitRetriesExhausted: return "jit_retries_exhausted";
        case EventKind::kJitRestore: return "jit_restore";
        case EventKind::kRollback: return "rollback";
        case EventKind::kCrcReject: return "crc_reject";
        case EventKind::kSlotRepair: return "slot_repair";
        case EventKind::kSlotUnrecoverable: return "slot_unrecoverable";
        case EventKind::kRecoveryBlock: return "recovery_block";
        case EventKind::kAttackDetected: return "attack_detected";
        case EventKind::kJitDisabled: return "jit_disabled";
        case EventKind::kJitReenabled: return "jit_reenabled";
        case EventKind::kThresholdCross: return "threshold_cross";
        case EventKind::kOutageStart: return "outage_start";
        case EventKind::kOutageEnd: return "outage_end";
        case EventKind::kEmiOn: return "emi_on";
        case EventKind::kEmiOff: return "emi_off";
        case EventKind::kSpatialHit: return "spatial_hit";
        case EventKind::kFaultInject: return "fault_inject";
        case EventKind::kInstrFault: return "instr_fault";
        case EventKind::kDefenseAnomaly: return "defense_anomaly";
        case EventKind::kDefenseModeChange: return "defense_mode_change";
        case EventKind::kDefenseRatchetTrip: return "defense_ratchet_trip";
    }
    return "unknown";
}

bool
compiledIn()
{
    return GECKO_TRACE != 0;
}

Buffer::Buffer(std::size_t capacity) : ring_(capacity) {}

void
Buffer::emit(EventKind kind, std::uint16_t flags, std::uint64_t a,
             std::uint64_t b)
{
    Event& e = ring_[head_];
    e.t = now_;
    e.seq = seq_++;
    e.kind = static_cast<std::uint16_t>(kind);
    e.flags = flags;
    e.a = a;
    e.b = b;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size())
        ++size_;
    else
        ++dropped_;
}

std::vector<Event>
Buffer::events() const
{
    std::vector<Event> out;
    out.reserve(size_);
    const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

Buffer*
Collector::open(std::string label, std::uint64_t index)
{
    auto buffer = std::make_unique<Buffer>();
    buffer->setLabel(std::move(label));
    buffer->setIndex(index);
    Buffer* raw = buffer.get();
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
    return raw;
}

std::vector<std::size_t>
Collector::mergeOrder() const
{
    std::vector<std::size_t> order(buffers_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t lhs, std::size_t rhs) {
                  const Buffer& a = *buffers_[lhs];
                  const Buffer& b = *buffers_[rhs];
                  if (a.label() != b.label())
                      return a.label() < b.label();
                  return a.index() < b.index();
              });
    return order;
}

std::vector<Collector::BufferInfo>
Collector::bufferInfos() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BufferInfo> infos;
    infos.reserve(buffers_.size());
    for (std::size_t i : mergeOrder()) {
        const Buffer& b = *buffers_[i];
        infos.push_back({b.label(), b.index(),
                         static_cast<std::uint64_t>(b.size()), b.dropped()});
    }
    return infos;
}

std::vector<MergedEvent>
Collector::merged() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MergedEvent> out;
    const std::vector<std::size_t> order = mergeOrder();
    for (std::uint32_t ordinal = 0; ordinal < order.size(); ++ordinal) {
        for (const Event& e : buffers_[order[ordinal]]->events())
            out.push_back({ordinal, e});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const MergedEvent& a, const MergedEvent& b) {
                         if (a.event.t != b.event.t)
                             return a.event.t < b.event.t;
                         if (a.buf != b.buf)
                             return a.buf < b.buf;
                         return a.event.seq < b.event.seq;
                     });
    return out;
}

std::uint64_t
Collector::totalEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto& b : buffers_)
        n += b->size();
    return n;
}

std::uint64_t
Collector::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto& b : buffers_)
        n += b->dropped();
    return n;
}

void
Buffer::archiveState(campaign::Archive& ar)
{
    ar.section("trace_buffer");
    ar.check(ring_.size(), "trace ring capacity");
    ar.u32(seq_);
    ar.u64(dropped_);
    ar.f64(now_);
    std::vector<Event> live = ar.saving() ? events() : std::vector<Event>();
    std::uint64_t n = live.size();
    ar.u64(n);
    if (!ar.saving()) {
        if (n > ring_.size())
            throw campaign::SnapshotError(
                "trace: live events exceed ring capacity");
        live.resize(static_cast<std::size_t>(n));
    }
    for (Event& ev : live) {
        ar.f64(ev.t);
        ar.u32(ev.seq);
        ar.u16(ev.kind);
        ar.u16(ev.flags);
        ar.u64(ev.a);
        ar.u64(ev.b);
    }
    if (!ar.saving()) {
        // Lay the unrolled stream back from slot 0: the physical head
        // position is not observable through events(), so normalizing
        // it keeps future emissions logically identical.
        std::fill(ring_.begin(), ring_.end(), Event{});
        std::copy(live.begin(), live.end(), ring_.begin());
        size_ = live.size();
        head_ = ring_.empty() ? 0 : live.size() % ring_.size();
    }
}

}  // namespace gecko::trace
