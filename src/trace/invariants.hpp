#ifndef GECKO_TRACE_INVARIANTS_HPP_
#define GECKO_TRACE_INVARIANTS_HPP_

#include <string>
#include <vector>

#include "trace/trace.hpp"

/**
 * @file
 * Checkpoint-protocol invariants expressed as trace properties.
 *
 * These run over ONE case's event stream (a single Buffer, or one
 * buffer's slice of a merged trace) and return human-readable
 * violations.  Checked properties:
 *
 *  I1  time nondecreasing, seq strictly increasing;
 *  I2  commitCount strictly increasing across region commits;
 *  I3  completions count up by exactly 1; committed I/O totals never
 *      regress (exactly-once I/O);
 *  I4  JIT epochs monotone: nondecreasing on save commits, and a
 *      *guarded* restore never consumes an epoch older than the last
 *      guarded restore (an unguarded/NVP stale restore is the paper's
 *      vulnerability, not a trace violation);
 *  I5  save lifecycle: a save_start is resolved by exactly one of
 *      commit/abort/torn/retry before the next save_start;
 *  I6  every save_commit is eventually consumed (restore), rolled
 *      back, or superseded by a newer commit (or the trace ends);
 *  I7  no compute events (region_commit/completion/machine_fault/
 *      jit_save_*) between power_loss or sleep_enter and the next boot;
 *  I8  every boot is followed by exactly one recovery decision
 *      (jit_restore or rollback) before the next boot.
 */

namespace gecko::trace {

/** Check protocol invariants over one case's events (emission order). */
std::vector<std::string> checkInvariants(const std::vector<Event>& events);

}  // namespace gecko::trace

#endif  // GECKO_TRACE_INVARIANTS_HPP_
