#ifndef GECKO_TRACE_EXPORT_HPP_
#define GECKO_TRACE_EXPORT_HPP_

#include <string>

#include "trace/trace.hpp"

/**
 * @file
 * Trace exporters.
 *
 *  - JSONL ("trace.jsonl"): one header line with buffer metadata, then
 *    one line per merged event.  Floats print with %.9g so the bytes
 *    are stable across platforms and thread counts — the format the
 *    golden-trace differential suite diffs.
 *  - Chrome trace ("trace.json"): the Trace Event Format consumed by
 *    Perfetto / chrome://tracing.  Instant events per protocol event,
 *    duration pairs for EMI windows and outages, one track per merged
 *    buffer.
 *
 * writeTraceFile() picks the format from the extension: ".json" gets
 * Chrome trace, anything else JSONL.
 */

namespace gecko::trace {

/** Serialize the merged trace as JSONL (deterministic bytes). */
std::string toJsonl(const Collector& collector);

/** Serialize the merged trace in Chrome Trace Event Format. */
std::string toChromeTrace(const Collector& collector);

/**
 * Write the collector's merged trace to `path` (format by extension).
 * @return true on success.
 */
bool writeTraceFile(const Collector& collector, const std::string& path);

}  // namespace gecko::trace

#endif  // GECKO_TRACE_EXPORT_HPP_
