#include "trace/invariants.hpp"

#include <sstream>

namespace gecko::trace {

namespace {

bool
isComputeEvent(EventKind k)
{
    switch (k) {
        case EventKind::kRegionCommit:
        case EventKind::kCompletion:
        case EventKind::kMachineFault:
        case EventKind::kJitSaveStart:
        case EventKind::kJitSaveCommit:
        case EventKind::kJitSaveAbort:
        case EventKind::kJitSaveTorn:
        case EventKind::kJitSaveRetry:
            return true;
        default:
            return false;
    }
}

bool
isSaveLifecycle(EventKind k)
{
    switch (k) {
        case EventKind::kJitSaveStart:
        case EventKind::kJitSaveCommit:
        case EventKind::kJitSaveAbort:
        case EventKind::kJitSaveTorn:
        case EventKind::kJitSaveRetry:
        case EventKind::kJitRetriesExhausted:
            return true;
        default:
            return false;
    }
}

std::string
at(std::size_t i, const Event& e)
{
    std::ostringstream os;
    os << "event " << i << " (" << eventName(static_cast<EventKind>(e.kind))
       << " t=" << e.t << " seq=" << e.seq << ")";
    return os.str();
}

}  // namespace

std::vector<std::string>
checkInvariants(const std::vector<Event>& events)
{
    std::vector<std::string> violations;
    const auto report = [&](const char* inv, std::size_t i, const Event& e,
                            const std::string& what) {
        violations.push_back(std::string(inv) + ": " + what + " at " +
                             at(i, e));
    };

    double lastT = -1.0;
    std::uint32_t lastSeq = 0;
    bool haveSeq = false;

    std::uint64_t lastCommitCount = 0;
    bool haveCommit = false;

    std::uint64_t lastCompletion = 0;
    std::uint64_t lastIoTotal = 0;

    std::uint64_t lastSaveEpoch = 0;
    bool haveSaveEpoch = false;
    std::uint64_t lastGuardedRestoreEpoch = 0;
    bool haveGuardedRestore = false;

    bool saveOpen = false;       // save_start awaiting resolution
    bool commitOpen = false;     // save_commit awaiting consumption
    std::size_t commitIdx = 0;

    bool inOutage = false;       // power_loss/sleep_enter .. boot
    bool bootOpen = false;       // boot awaiting recovery decision
    std::size_t bootIdx = 0;
    bool sawBoot = false;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event& e = events[i];
        const auto kind = static_cast<EventKind>(e.kind);

        // I1: time nondecreasing, seq strictly increasing.
        if (e.t < lastT)
            report("I1", i, e, "time went backwards");
        lastT = e.t;
        if (haveSeq && e.seq <= lastSeq)
            report("I1", i, e, "seq not strictly increasing");
        lastSeq = e.seq;
        haveSeq = true;

        // I5: save lifecycle.
        if (isSaveLifecycle(kind)) {
            if (kind == EventKind::kJitSaveStart) {
                if (saveOpen)
                    report("I5", i, e, "save_start while save unresolved");
                saveOpen = true;
            } else if (kind == EventKind::kJitRetriesExhausted) {
                if (saveOpen)
                    report("I5", i, e,
                           "retries_exhausted with save unresolved");
            } else {
                if (!saveOpen)
                    report("I5", i, e, "save outcome without save_start");
                saveOpen = false;
            }
        }

        // I7: no compute between outage start and boot.
        if (inOutage && isComputeEvent(kind))
            report("I7", i, e, "compute event during outage");

        switch (kind) {
            case EventKind::kRegionCommit:
                // I2: commitCount strictly increasing.
                if (haveCommit && e.b <= lastCommitCount)
                    report("I2", i, e, "commitCount not increasing");
                lastCommitCount = e.b;
                haveCommit = true;
                break;
            case EventKind::kCompletion:
                // I3: completions count by one; I/O totals never regress.
                if (e.a != lastCompletion + 1)
                    report("I3", i, e, "completion count skipped");
                lastCompletion = e.a;
                if (e.b < lastIoTotal)
                    report("I3", i, e, "committed I/O total regressed");
                lastIoTotal = e.b;
                break;
            case EventKind::kJitSaveCommit:
                // I4: commit epochs nondecreasing.
                if (haveSaveEpoch && e.a < lastSaveEpoch)
                    report("I4", i, e, "save epoch regressed");
                lastSaveEpoch = e.a;
                haveSaveEpoch = true;
                commitOpen = true;
                commitIdx = i;
                break;
            case EventKind::kJitRestore:
                if ((e.flags & kFlagGuarded) != 0) {
                    // I4: guarded restores never consume an older epoch.
                    if (haveGuardedRestore &&
                        e.a < lastGuardedRestoreEpoch)
                        report("I4", i, e, "guarded restore epoch regressed");
                    lastGuardedRestoreEpoch = e.a;
                    haveGuardedRestore = true;
                }
                commitOpen = false;
                if (bootOpen)
                    bootOpen = false;
                else if (sawBoot)
                    report("I8", i, e, "second recovery decision after boot");
                break;
            case EventKind::kRollback:
                commitOpen = false;
                if (bootOpen)
                    bootOpen = false;
                else if (sawBoot)
                    report("I8", i, e, "second recovery decision after boot");
                break;
            case EventKind::kPowerLoss:
            case EventKind::kSleepEnter:
                inOutage = true;
                break;
            case EventKind::kBoot:
                if (bootOpen)
                    report("I8", bootIdx, events[bootIdx],
                           "boot without recovery decision");
                bootOpen = true;
                bootIdx = i;
                sawBoot = true;
                inOutage = false;
                saveOpen = false;  // power died with a save in flight
                break;
            default:
                break;
        }
    }

    // I6: a commit left open at end-of-trace is fine (superseded-by-end);
    // nothing to flag.  A dangling boot means the case ended mid-recovery,
    // also fine.
    (void)commitOpen;
    (void)commitIdx;
    return violations;
}

}  // namespace gecko::trace
