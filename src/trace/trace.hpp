#ifndef GECKO_TRACE_TRACE_HPP_
#define GECKO_TRACE_TRACE_HPP_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/**
 * @file
 * Structured event tracing for the checkpoint protocol.
 *
 * The attack and defense are protocol-level phenomena — monitor trips,
 * JIT saves, rollbacks — so this layer records them as typed events
 * with stable IDs rather than aggregate counters.  Design constraints:
 *
 *  - Zero cost when compiled out: `-DGECKO_TRACE=0` makes the
 *    GECKO_TRACE_EVENT macro expand to `((void)0)` (arguments are not
 *    evaluated), so the interpreter fast path is untouched.
 *  - Near-zero cost when compiled in but idle: the macro is a single
 *    thread-local null-pointer check.
 *  - Deterministic output: each sweep/campaign case records into its
 *    own Buffer; the Collector merges buffers keyed by (label, index)
 *    — never by OS-thread identity — and events by
 *    (sim-time, buffer, seq), so the merged trace is byte-identical
 *    across GECKO_THREADS settings and across step()/fast-dispatch.
 *
 * Instrumentation lives in .cpp files only; no public simulator header
 * includes this one.
 */

#ifndef GECKO_TRACE
#define GECKO_TRACE 1
#endif

namespace gecko::campaign {
class Archive;
}

namespace gecko::trace {

/**
 * Event kinds with stable wire IDs (append-only; never renumber —
 * golden traces and external tooling key on these values).
 */
enum class EventKind : std::uint16_t {
    // Machine / compute (1..15)
    kRegionCommit = 1,  ///< a=regionId, b=commitCount after commit
    kCompletion = 2,    ///< a=completions, b=sum of committed outCount
    kMachineFault = 3,  ///< a=pc at fault
    // Block-backend observability (emitted only under
    // GECKO_TRACE_BLOCKS=1 so golden traces stay backend-independent).
    kBlockCompile = 4,  ///< a=block start pc, b=instruction count
    kBlockEnter = 5,    ///< a=block start pc, b=cycles into this run
    kBlockExit = 6,     ///< a=pc on leaving threaded code, b=cycles
    kBlockDeopt = 7,    ///< a=pc, b=cycles; flags=kFlagDeopt* reason

    // Power / simulator (16..31)
    kBoot = 16,          ///< a=reboots, b=bootCycles total
    kSleepEnter = 17,    ///< flags: reason (kFlagJitArmed if armed)
    kPowerLoss = 18,     ///< hard death; flags kFlagJitArmed if missed ckpt
    kBackupSignal = 19,  ///< flags kFlagIgnored/kFlagLockout as applicable
    kWakeSignal = 20,
    kMonitorTrip = 21,  ///< a=rail mV, b=seen mV; flags backup/wake/attack

    // JIT save lifecycle (32..47)
    kJitSaveStart = 32,  ///< a=attempt number (0-based)
    kJitSaveCommit = 33, ///< a=epoch committed, b=words written
    kJitSaveAbort = 34,  ///< wake veto inside the abort window
    kJitSaveTorn = 35,   ///< power died mid-image; ACK not toggled
    kJitSaveRetry = 36,  ///< a=attempt that failed (write fault)
    kJitRetriesExhausted = 37,

    // Recovery / runtime (48..63)
    kJitRestore = 48,  ///< a=image epoch; flags kFlagGuarded/kFlagStale
    kRollback = 49,    ///< a=committed region, b=commitCount
    kCrcReject = 50,   ///< a=image epoch seen
    kSlotRepair = 51,  ///< a=slot index (shadow copy healed it)
    kSlotUnrecoverable = 52,  ///< a=slot index
    kRecoveryBlock = 53,      ///< a=region, b=instructions executed
    kAttackDetected = 54,     ///< flags kFlagAckDetect/kFlagTimerDetect
    kJitDisabled = 55,        ///< degradation to rollback-only
    kJitReenabled = 56,       ///< §VI-F probe succeeded

    // Energy (64..79)
    kThresholdCross = 64,  ///< a=threshold idx (0=vOff,1=vBackup,2=vOn),
                           ///< b=mV; flags kFlagUp/kFlagDown
    kOutageStart = 65,     ///< harvester open-circuit collapsed
    kOutageEnd = 66,

    // Attack (80..95)
    kEmiOn = 80,  ///< a=freqHz, b=power in milli-dBm (signed, offset)
    kEmiOff = 81,
    kSpatialHit = 82,  ///< a=grid cell (row*cols+col), b=coupling milli-units

    // Fault injection (96..111)
    kFaultInject = 96,  ///< a=FaultSite, b=site-specific payload
    kInstrFault = 97,   ///< a=FaultSite (instr family), b=payload (pc/reg)

    // Adaptive defense controller (112..)
    kDefenseAnomaly = 112,     ///< a=score milli-units, b=evidence bits
    kDefenseModeChange = 113,  ///< a=new defense::Mode, b=previous Mode
    kDefenseRatchetTrip = 114, ///< a=regionId, b=consecutive rollbacks
};

/** Payload `a` values for EventKind::kFaultInject. */
enum FaultSite : std::uint64_t {
    kSiteJitWord = 0,
    kSiteSlotWord = 1,
    kSiteAckWord = 2,
    kSiteStaleImage = 3,
    kSiteStaleSlot = 4,
    kSiteTornWrite = 5,
    kSiteJitWriteFault = 6,
    kSiteMonitorFault = 7,
    // Instruction-stream faults (EventKind::kInstrFault payloads).
    kSiteInstrSkip = 8,
    kSiteOpcodeCorrupt = 9,
    kSiteOperandFlip = 10,
};

// Event flag bits (shared namespace; kinds use disjoint subsets).
inline constexpr std::uint16_t kFlagBackup = 0x1;
inline constexpr std::uint16_t kFlagWake = 0x2;
inline constexpr std::uint16_t kFlagAttack = 0x4;
inline constexpr std::uint16_t kFlagMonitorFault = 0x8;
inline constexpr std::uint16_t kFlagIgnored = 0x10;
inline constexpr std::uint16_t kFlagLockout = 0x20;
inline constexpr std::uint16_t kFlagUp = 0x40;
inline constexpr std::uint16_t kFlagDown = 0x80;
inline constexpr std::uint16_t kFlagGuarded = 0x100;
inline constexpr std::uint16_t kFlagStale = 0x200;
inline constexpr std::uint16_t kFlagAckDetect = 0x400;
inline constexpr std::uint16_t kFlagTimerDetect = 0x800;
inline constexpr std::uint16_t kFlagJitArmed = 0x1000;
// kBlockDeopt reasons (block backend fell back to per-instruction
// stepping for the rest of the run quantum).
inline constexpr std::uint16_t kFlagDeoptCold = 0x2000;
inline constexpr std::uint16_t kFlagDeoptUnaligned = 0x4000;
inline constexpr std::uint16_t kFlagDeoptBudget = 0x8000;

/** One trace record (POD, 32 bytes). */
struct Event {
    double t = 0.0;         ///< sim-time seconds (buffer clock)
    std::uint32_t seq = 0;  ///< per-buffer emission order
    std::uint16_t kind = 0;
    std::uint16_t flags = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    bool operator==(const Event&) const = default;
};

/** Stable lowercase name for an event kind ("region_commit", ...). */
const char* eventName(EventKind kind);

/** True iff the library was built with tracing compiled in. */
bool compiledIn();

/**
 * Fixed-capacity event ring for one traced case.  Oldest events are
 * overwritten once full (`dropped()` counts them).  The buffer carries
 * its own sim-time clock, advanced via setTime() at simulator loop
 * heads so emit sites don't need a time argument.
 */
class Buffer
{
  public:
    explicit Buffer(std::size_t capacity = kDefaultCapacity);

    void setLabel(std::string label) { label_ = std::move(label); }
    void setIndex(std::uint64_t index) { index_ = index; }
    const std::string& label() const { return label_; }
    std::uint64_t index() const { return index_; }

    void setTime(double t) { now_ = t; }
    double time() const { return now_; }

    void emit(EventKind kind, std::uint16_t flags = 0, std::uint64_t a = 0,
              std::uint64_t b = 0);

    std::uint64_t dropped() const { return dropped_; }
    std::size_t size() const { return size_; }

    /** Events in emission order (unrolls the ring). */
    std::vector<Event> events() const;

    /**
     * Serialize/restore the ring's logical state: clock, sequence and
     * drop cursors, plus the live events in emission order.  The
     * physical head position is normalized on restore (the unrolled
     * stream — the only observable — is preserved exactly); capacity
     * and label/index identity are construction-time and only
     * validated.
     */
    void archiveState(campaign::Archive& ar);

    static constexpr std::size_t kDefaultCapacity = 1u << 16;

  private:
    std::vector<Event> ring_;
    std::size_t head_ = 0;  ///< next write slot
    std::size_t size_ = 0;
    std::uint32_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    double now_ = 0.0;
    std::string label_;
    std::uint64_t index_ = 0;
};

namespace detail {
/// The thread's active buffer.  `inline thread_local` so current() is a
/// raw TLS load at every macro site — an out-of-line call here costs
/// 20%+ on monitor-sample-heavy sims even with tracing idle.
inline thread_local Buffer* tCurrentBuffer = nullptr;
}  // namespace detail

/** The thread's active buffer (nullptr = tracing idle). */
inline Buffer*
current()
{
    return detail::tCurrentBuffer;
}

/** Install `buffer` as the thread's active buffer (nullptr to clear). */
inline void
setCurrent(Buffer* buffer)
{
    detail::tCurrentBuffer = buffer;
}

/** RAII: install a buffer for a scope, restoring the previous one. */
class BufferScope
{
  public:
    explicit BufferScope(Buffer* buffer) : prev_(current())
    {
        setCurrent(buffer);
    }
    ~BufferScope() { setCurrent(prev_); }
    BufferScope(const BufferScope&) = delete;
    BufferScope& operator=(const BufferScope&) = delete;

  private:
    Buffer* prev_;
};

/** One merged-and-labelled event, as produced by Collector::merged(). */
struct MergedEvent {
    std::uint32_t buf = 0;  ///< ordinal of the (label,index)-sorted buffer
    Event event;
};

/**
 * Thread-safe sink for finished per-case buffers.  Merging is
 * deterministic: buffers sort by (label, index) — registration order,
 * which depends on thread scheduling, is irrelevant — then events sort
 * by (t, buf, seq).
 */
class Collector
{
  public:
    /** Open a fresh buffer owned by the collector. */
    Buffer* open(std::string label, std::uint64_t index);

    /** Buffer descriptors in merge order: (label, index, events, dropped). */
    struct BufferInfo {
        std::string label;
        std::uint64_t index = 0;
        std::uint64_t events = 0;
        std::uint64_t dropped = 0;
    };
    std::vector<BufferInfo> bufferInfos() const;

    std::vector<MergedEvent> merged() const;

    std::uint64_t totalEvents() const;
    std::uint64_t totalDropped() const;

  private:
    /** Buffers sorted by (label, index); returns indices into buffers_. */
    std::vector<std::size_t> mergeOrder() const;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

/**
 * RAII: open a per-case buffer on `collector` and make it current for
 * the scope, restoring the previously current buffer on exit.  A null
 * collector installs nullptr (tracing suppressed) rather than
 * inheriting the outer buffer: parallel case bodies run inline on the
 * caller's thread when GECKO_THREADS=1 but on pool threads otherwise,
 * and inheriting would make the outer buffer's bytes depend on the
 * thread count.
 */
class CaseScope
{
  public:
    CaseScope(Collector* collector, const std::string& label,
              std::uint64_t index)
        : prev_(current())
    {
        setCurrent(collector != nullptr ? collector->open(label, index)
                                        : nullptr);
    }
    ~CaseScope() { setCurrent(prev_); }
    CaseScope(const CaseScope&) = delete;
    CaseScope& operator=(const CaseScope&) = delete;

  private:
    Buffer* prev_;
};

}  // namespace gecko::trace

// The only instrumentation entry points.  With GECKO_TRACE=0 both
// expand to ((void)0) and their arguments are never evaluated.
#if GECKO_TRACE
#define GECKO_TRACE_EVENT(kind, flags, a, b)                               \
    do {                                                                   \
        if (::gecko::trace::Buffer* gtb_ = ::gecko::trace::current())      \
            gtb_->emit((kind), (flags), (a), (b));                         \
    } while (0)
#define GECKO_TRACE_TIME(t)                                                \
    do {                                                                   \
        if (::gecko::trace::Buffer* gtb_ = ::gecko::trace::current())      \
            gtb_->setTime(t);                                              \
    } while (0)
#else
#define GECKO_TRACE_EVENT(kind, flags, a, b) ((void)0)
#define GECKO_TRACE_TIME(t) ((void)0)
#endif

#endif  // GECKO_TRACE_TRACE_HPP_
