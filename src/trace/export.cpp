#include "trace/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gecko::trace {

namespace {

/** Shortest round-trippable decimal for trace timestamps. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string
toJsonl(const Collector& collector)
{
    std::ostringstream os;
    os << "{\"schema\":\"gecko-trace\",\"version\":1,\"buffers\":[";
    bool first = true;
    for (const auto& info : collector.bufferInfos()) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"label\":\"" << escape(info.label)
           << "\",\"index\":" << info.index << ",\"events\":" << info.events
           << ",\"dropped\":" << info.dropped << '}';
    }
    os << "]}\n";
    for (const MergedEvent& m : collector.merged()) {
        const auto kind = static_cast<EventKind>(m.event.kind);
        os << "{\"t\":" << num(m.event.t) << ",\"buf\":" << m.buf
           << ",\"seq\":" << m.event.seq << ",\"ev\":\"" << eventName(kind)
           << "\",\"id\":" << m.event.kind;
        if (m.event.flags != 0)
            os << ",\"flags\":" << m.event.flags;
        os << ",\"a\":" << m.event.a << ",\"b\":" << m.event.b << "}\n";
    }
    return os.str();
}

std::string
toChromeTrace(const Collector& collector)
{
    // Duration-style kinds rendered as B/E pairs on their track.
    const auto beginOf = [](EventKind k) {
        return k == EventKind::kEmiOn || k == EventKind::kOutageStart;
    };
    const auto endOf = [](EventKind k) {
        return k == EventKind::kEmiOff || k == EventKind::kOutageEnd;
    };
    const auto durationName = [](EventKind k) {
        return (k == EventKind::kEmiOn || k == EventKind::kEmiOff)
                   ? "emi_window"
                   : "outage";
    };

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto infos = collector.bufferInfos();
    for (std::size_t i = 0; i < infos.size(); ++i) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << escape(infos[i].label) << " #" << infos[i].index << "\"}}";
    }
    for (const MergedEvent& m : collector.merged()) {
        const auto kind = static_cast<EventKind>(m.event.kind);
        os << ',';
        os << "{\"ph\":\"";
        if (beginOf(kind))
            os << 'B';
        else if (endOf(kind))
            os << 'E';
        else
            os << "i\",\"s\":\"t";
        os << "\",\"pid\":1,\"tid\":" << m.buf << ",\"ts\":"
           << num(m.event.t * 1e6) << ",\"name\":\""
           << ((beginOf(kind) || endOf(kind)) ? durationName(kind)
                                              : eventName(kind))
           << "\",\"args\":{\"flags\":" << m.event.flags
           << ",\"a\":" << m.event.a << ",\"b\":" << m.event.b << "}}";
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
    return os.str();
}

bool
writeTraceFile(const Collector& collector, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << (endsWith(path, ".json") ? toChromeTrace(collector)
                                    : toJsonl(collector));
    return static_cast<bool>(out);
}

}  // namespace gecko::trace
