#ifndef GECKO_DEFENSE_CONTROLLER_HPP_
#define GECKO_DEFENSE_CONTROLLER_HPP_

#include <cstdint>

#include "analog/voltage_monitor.hpp"
#include "defense/defense.hpp"

/**
 * @file
 * The online adaptive defense controller (DESIGN.md §11).
 *
 * One instance rides along with one simulated node.  The intermittent
 * simulator feeds it every monitor observation (both the primary and
 * the shadow monitor's view of the same sample) plus protocol
 * notifications (boot detections, rollbacks, commits, save-retry
 * exhaustion, sleep entries); the runtime and simulator query it for
 * the current checkpoint policy.  The controller is pure deterministic
 * state — no RNG, no clocks — so traces and campaign bytes stay
 * thread-count-invariant.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::defense {

/** Evidence bits carried in kDefenseAnomaly's payload `b`. */
enum AnomalyEvidence : std::uint64_t {
    kEvidencePhysics = 0x1,    ///< dV/dt outside the RC bound
    kEvidenceDisagree = 0x2,   ///< monitor views disagree on an edge
    kEvidenceBoot = 0x4,       ///< ACK/timer detection at boot
    kEvidenceRetries = 0x8,    ///< save-retry budget exhausted
};

class DefenseController
{
  public:
    DefenseController(const DefenseConfig& config, const PlantModel& plant);

    // ------------------------------------------------------------------
    // Observations (simulator / runtime → controller).
    // ------------------------------------------------------------------
    /**
     * One monitor sample at time `t`.  Point samples pass vLo == vHi;
     * continuous monitors under attack pass the window envelope.  The
     * controller cross-validates the two monitor views and checks the
     * observed voltage step against the RC physics bound.
     */
    void observeSample(double t, double vLo, double vHi,
                       const analog::MonitorEvent& primary,
                       const analog::MonitorEvent& shadow);

    /** Boot-time detector verdicts (§VI-A ACK / timer evidence). */
    void noteBootEvidence(double t, bool ackDetect, bool timerDetect);

    /** A rollback recovery of `regionId` just ran (ratchet input). */
    void noteRollback(double t, std::uint32_t regionId);

    /** Committed-region progress (monotone commit counter). */
    void noteCommit(std::uint64_t commitCount);

    /** The bounded checkpoint-save retry budget ran out. */
    void noteRetriesExhausted(double t);

    /**
     * The node entered sleep at `t`; `fullChargeEstS` is the physics
     * estimate of the time to recharge to V_on (negative =
     * unreachable).  In kDegraded this arms the recharge dwell that
     * gates forgeable monitor wakes.
     */
    void noteSleepEnter(double t, double fullChargeEstS);

    /** Energy charged to the debt ledger (boot/rollback overhead). */
    void noteEnergyCost(double t, double joules);

    // ------------------------------------------------------------------
    // Policy queries (controller → runtime / simulator).
    // ------------------------------------------------------------------
    Mode mode() const { return mode_; }
    double score() const { return score_; }

    /** May the JIT checkpoint protocol be trusted right now? */
    bool jitAllowed() const { return mode_ <= Mode::kSuspicious; }

    /**
     * May a monitor wake signal boot the node at time `t`?  Always true
     * outside kDegraded; inside it, the physics-timed recharge dwell
     * must have elapsed (wake signals are forgeable, timers are not).
     */
    bool wakeAllowed(double t);

    /**
     * Save-retry backoff for `attempt` (0-based), in cycles.  kNominal
     * preserves the legacy linear policy; escalated modes back off
     * exponentially with a cap so a sustained burst cannot be ridden
     * out by hammering the NVM.
     */
    int backoffCycles(int attempt) const;

    const DefenseStats& stats() const { return stats_; }
    const DefenseConfig& config() const { return config_; }

    /**
     * Serialize/restore the controller's pure state: mode ladder,
     * anomaly score, ratchet, recharge dwell, and counters.  The
     * config and plant-derived constants are ctor inputs, not
     * archived.
     */
    void archiveState(campaign::Archive& ar);

  private:
    void addEvidence(double t, double weight, std::uint64_t evidence);
    /// Calm dwell currently required to step one mode down:
    /// calmSamples doubled once per relapse level.
    int calmDwell() const;
    void decayAndMaybeDeescalate(double t);
    /// One-monitor edge pulse awaiting the other monitor's matching
    /// pulse (lead: +1 primary, -1 shadow, 0 empty).
    struct PendingEdge {
        int lead = 0;
        int age = 0;
    };
    /// Track one edge kind (backup or wake) through the skew window;
    /// returns the number of disagreement charges that matured.
    int trackEdge(PendingEdge& pending, bool primaryPulse,
                  bool shadowPulse);
    void escalateTo(double t, Mode target);
    void setMode(double t, Mode next);
    void tripRatchet(double t, std::uint32_t regionId,
                     std::uint64_t count);

    DefenseConfig config_;
    PlantModel plant_;
    /// Max legitimate |dV/dt| (V/s): discharge + charge slew.
    double maxSlewVps_ = 0.0;
    double debtBudgetJ_ = 0.0;
    double commitCreditJ_ = 0.0;

    Mode mode_ = Mode::kNominal;
    double score_ = 0.0;
    bool aboveSuspicion_ = false;  ///< anomaly-edge latch (traced once)
    int calmRun_ = 0;
    // Relapse-hardened hysteresis: dwell doublings earned by
    // re-escalating soon after a de-escalation, and the (saturating)
    // sample count since the last de-escalation.
    int relapseLevel_ = 0;
    std::uint64_t sinceDeescalation_ = ~std::uint64_t{0};

    double lastSampleT_ = -1.0;
    double lastSampleV_ = -1.0;
    // Edge-skew reconciliation windows (one per edge kind).
    PendingEdge pendingBackup_;
    PendingEdge pendingWake_;

    // Ratchet state.
    std::uint32_t lastRollbackRegion_ = ~std::uint32_t{0};
    std::uint64_t consecutiveRollbacks_ = 0;
    std::uint64_t lastCommitCount_ = 0;
    /// Commit count at the previous rollback: distinguishes a redo of
    /// the rolled-back region (not progress) from the frontier moving.
    std::uint64_t commitCountAtRollback_ = 0;
    /// Set by a rollback: the next commit is the redo of the
    /// rolled-back region and earns no energy-debt credit.
    bool redoCommitPending_ = false;
    bool committedSinceDegrade_ = false;

    // Recharge dwell (kDegraded wake gate).
    double wakeNotBefore_ = -1.0;

    DefenseStats stats_;
};

}  // namespace gecko::defense

#endif  // GECKO_DEFENSE_CONTROLLER_HPP_
