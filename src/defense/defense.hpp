#ifndef GECKO_DEFENSE_DEFENSE_HPP_
#define GECKO_DEFENSE_DEFENSE_HPP_

#include <cstdint>
#include <string>

/**
 * @file
 * Types of the adaptive attack-aware defense controller.
 *
 * The paper evaluates its defenses (ACK/timer detectors, idempotent
 * regions) as a *static* configuration (§VI, Fig. 13).  The controller
 * in this directory closes the loop online instead: it scores EMI
 * anomalies from the redundant monitor views and the capacitor's RC
 * physics, escalates through a hysteretic mode ladder, and enforces a
 * forward-progress ratchet so a sustained attack can degrade throughput
 * but never livelock a workload that fits the power period.  See
 * DESIGN.md §11.
 */

namespace gecko::defense {

/**
 * Escalation ladder.  Checkpoint policy per mode:
 *  - kNominal:    JIT-trusting (paper default, linear retry backoff)
 *  - kSuspicious: guarded JIT with exponential-with-cap save backoff
 *  - kUnderAttack: JIT disabled, rollback-only recovery
 *  - kDegraded:   rollback-only plus the forward-progress ratchet —
 *    monitor wake signals are distrusted and boots are gated on a
 *    physics-timed recharge dwell.
 */
enum class Mode : std::uint8_t {
    kNominal = 0,
    kSuspicious = 1,
    kUnderAttack = 2,
    kDegraded = 3,
};

/** Stable lowercase name ("nominal", "suspicious", ...). */
const char* modeName(Mode mode);

/** Controller knobs.  Defaults are inert: `enabled=false` leaves every
 *  existing configuration byte-identical. */
struct DefenseConfig {
    /// Master switch; off by default so the static-paper configurations
    /// are untouched.
    bool enabled = false;

    // --- anomaly scoring ---
    /// Escalate to kSuspicious at this score.
    double scoreSuspicious = 1.0;
    /// Escalate to kUnderAttack at this score.
    double scoreAttack = 2.5;
    /// A sample is "calm" (eligible for de-escalation) below this.
    double scoreClear = 0.5;
    /// Saturation ceiling so de-escalation latency is bounded.
    double scoreMax = 8.0;
    /// Exponential decay applied per monitor sample: s *= (1 - decay).
    double decayPerSample = 0.04;
    /// Evidence weight: the two monitor views disagree on an edge.
    double disagreeWeight = 0.4;
    /// Evidence weight: observed dV/dt violates the RC physics bound.
    double physicsWeight = 1.2;
    /// Evidence weight: boot-time ACK/timer detection (§VI-A).
    double bootEvidenceWeight = 1.5;
    /// Slack (V) added to the physics bound — absorbs quantization and
    /// sampling-phase error without admitting volt-scale EMI swings.
    double physicsMarginV = 0.05;
    /// Redundant monitors with different quantization and sampling
    /// cadence legitimately flag the *same* supply edge a sample or two
    /// apart (e.g. the wake crossing during a harvester-outage restore
    /// ramp).  A lone edge pulse is therefore held pending this many
    /// samples; a matching pulse from the other monitor inside the
    /// window reconciles the pair as benign skew instead of evidence.
    /// An attacker gains nothing from the grace: a forged trough
    /// couples into only one sensing path, never earns the matching
    /// pulse, and is charged when the window closes (one-sample
    /// detection latency).  0 restores immediate per-sample charging.
    int edgeSkewSamples = 1;

    // --- hysteretic de-escalation ---
    /// Consecutive calm samples required to step *one* level down.
    int calmSamples = 64;
    /// A re-escalation out of kNominal within this many samples of the
    /// last de-escalation is a *relapse*: each relapse doubles the calm
    /// dwell (up to relapseLevelCap doublings), so a duty-cycled tone
    /// that waits out the dwell and re-attacks pays a geometrically
    /// growing price instead of farming the fixed hysteresis.  0
    /// disables relapse hardening.
    int relapseWindowSamples = 256;
    /// Cap on dwell doublings (dwell <= calmSamples << cap).
    int relapseLevelCap = 4;

    // --- escalated checkpoint-save policy ---
    /// Base of the save-retry backoff (cycles).
    int backoffBaseCycles = 256;
    /// Cap of the exponential backoff used at kSuspicious and above.
    int backoffCapCycles = 8192;

    // --- forward-progress ratchet ---
    /// Consecutive rollbacks of the *same* region tolerated before the
    /// ratchet trips to kDegraded.
    int rollbackBudgetPerRegion = 4;
    /// Energy-debt ceiling (J); 0 = derive from the physics at
    /// construction (a few full-buffer discharges).
    double energyDebtBudgetJ = 0.0;
    /// Debt paid back per committed region (J); 0 = one boot's worth
    /// (PlantModel::bootEnergyJ).  A bounded credit — rather than
    /// clearing the ledger — keeps a trickle of forced progress from
    /// masking sustained forged-wake boot churn.
    double commitCreditJ = 0.0;
};

/**
 * Plant constants the controller's physics plausibility check and
 * ratchet are derived from (all design-time knowns on a real board).
 */
struct PlantModel {
    double clockHz = 8e6;
    double energyPerCycleJ = 3e-9;
    double sleepPowerW = 2e-6;
    double capacitanceF = 1e-3;
    /// Nominal Thevenin source resistance (charge-slew bound).
    double sourceResistance = 5.0;
    double maxV = 3.3;
    double vOn = 3.0;
    double vOff = 2.08;
    /// Fixed cold-boot energy (clock settling, re-init) — the per-boot
    /// quantum of the debt ledger's commit credit.
    double bootEnergyJ = 4.8e-5;
};

/**
 * Resolve a named defense preset (the campaign engine's defense axis):
 *  - "static":   controller off — the paper's static configuration
 *  - "adaptive": controller on with the default knobs
 *  - "strict":   controller on with tightened degraded-entry
 *    thresholds (lower escalation scores, half the rollback budget,
 *    longer calm dwell)
 * @return false for an unknown name (`*out` untouched).
 */
bool presetByName(const std::string& name, DefenseConfig* out);

/** Observable controller counters. */
struct DefenseStats {
    std::uint64_t samples = 0;
    /// Upward crossings of the suspicion threshold (traced).
    std::uint64_t anomalies = 0;
    /// Samples where the two monitor views mismatched (raw, before
    /// edge-skew reconciliation).
    std::uint64_t disagreements = 0;
    /// Mismatch pairs reconciled as benign sampling skew (the other
    /// monitor confirmed the same edge within edgeSkewSamples).
    std::uint64_t edgeSkews = 0;
    /// Samples carrying physics-violation evidence.
    std::uint64_t physicsViolations = 0;
    std::uint64_t escalations = 0;
    std::uint64_t deEscalations = 0;
    std::uint64_t ratchetTrips = 0;
    /// Re-escalations out of kNominal within the relapse window of a
    /// de-escalation (each one doubles the calm dwell).
    std::uint64_t relapses = 0;
    /// Monitor wake signals deferred by the kDegraded recharge dwell.
    std::uint64_t wakesDeferred = 0;
    /// Sim time of the first escalation out of kNominal (<0 = never);
    /// the detection-latency numerator of bench/fig_adaptive.
    double firstEscalationT = -1.0;
    /// Outstanding rollback/boot energy not yet paid back by commits.
    double energyDebtJ = 0.0;
    /// High-water mark of the ledger over the run.
    double peakEnergyDebtJ = 0.0;
};

}  // namespace gecko::defense

#endif  // GECKO_DEFENSE_DEFENSE_HPP_
