#include "defense/controller.hpp"

#include <algorithm>
#include <cmath>

#include "campaign/archive.hpp"
#include "trace/trace.hpp"

namespace gecko::defense {

namespace {

/** Score in integer milli-units for trace payloads (clamped at 0). */
[[maybe_unused]] std::uint64_t
traceScore(double s)
{
    return s > 0 ? static_cast<std::uint64_t>(std::llround(s * 1000.0)) : 0;
}

}  // namespace

const char*
modeName(Mode mode)
{
    switch (mode) {
      case Mode::kNominal:
        return "nominal";
      case Mode::kSuspicious:
        return "suspicious";
      case Mode::kUnderAttack:
        return "under_attack";
      case Mode::kDegraded:
        return "degraded";
    }
    return "unknown";
}

DefenseController::DefenseController(const DefenseConfig& config,
                                     const PlantModel& plant)
    : config_(config), plant_(plant)
{
    // Legitimate dV/dt is bounded by the plant: the CPU discharging the
    // buffer at worst-case active power, plus the harvester charging it
    // through the Thevenin source resistance.  EMI couples volts into
    // the *monitor*, not the rail, so a seen excursion beyond this bound
    // (plus margin) is physical evidence of a forged reading.
    const double c = std::max(plant.capacitanceF, 1e-12);
    const double dischargeSlew =
        plant.energyPerCycleJ * plant.clockHz / (c * std::max(plant.vOff, 0.1));
    const double chargeSlew =
        plant.maxV / (std::max(plant.sourceResistance, 1e-3) * c);
    maxSlewVps_ = dischargeSlew + chargeSlew;

    debtBudgetJ_ =
        config.energyDebtBudgetJ > 0
            ? config.energyDebtBudgetJ
            : 8.0 * 0.5 * c * (plant.vOn * plant.vOn -
                               plant.vOff * plant.vOff);
    commitCreditJ_ = config.commitCreditJ > 0 ? config.commitCreditJ
                                              : plant.bootEnergyJ;
}

void
DefenseController::setMode(double t, Mode next)
{
    if (next == mode_)
        return;
    const Mode prev = mode_;
    mode_ = next;
    if (next > prev) {
        ++stats_.escalations;
        if (stats_.firstEscalationT < 0)
            stats_.firstEscalationT = t;
    } else {
        ++stats_.deEscalations;
    }
    if (next == Mode::kDegraded)
        committedSinceDegrade_ = false;
    if (next < Mode::kDegraded)
        wakeNotBefore_ = -1.0;
    calmRun_ = 0;
    GECKO_TRACE_EVENT(trace::EventKind::kDefenseModeChange, 0,
                      static_cast<std::uint64_t>(next),
                      static_cast<std::uint64_t>(prev));
}

void
DefenseController::escalateTo(double t, Mode target)
{
    if (target > mode_)
        setMode(t, target);
}

void
DefenseController::tripRatchet(double t,
                               [[maybe_unused]] std::uint32_t regionId,
                               [[maybe_unused]] std::uint64_t count)
{
    ++stats_.ratchetTrips;
    GECKO_TRACE_EVENT(trace::EventKind::kDefenseRatchetTrip, 0,
                      static_cast<std::uint64_t>(regionId), count);
    escalateTo(t, Mode::kDegraded);
}

void
DefenseController::addEvidence(double t, double weight,
                               [[maybe_unused]] std::uint64_t evidence)
{
    score_ = std::min(score_ + weight, config_.scoreMax);
    calmRun_ = 0;
    if (!aboveSuspicion_ && score_ >= config_.scoreSuspicious) {
        aboveSuspicion_ = true;
        ++stats_.anomalies;
        GECKO_TRACE_EVENT(trace::EventKind::kDefenseAnomaly, 0,
                          traceScore(score_), evidence);
    }
    if (score_ >= config_.scoreAttack)
        escalateTo(t, Mode::kUnderAttack);
    else if (score_ >= config_.scoreSuspicious)
        escalateTo(t, Mode::kSuspicious);
}

void
DefenseController::decayAndMaybeDeescalate(double t)
{
    score_ = std::max(0.0, score_ * (1.0 - config_.decayPerSample));
    if (score_ < config_.scoreClear)
        aboveSuspicion_ = false;
    if (mode_ == Mode::kNominal || score_ > config_.scoreClear) {
        if (score_ > config_.scoreClear)
            calmRun_ = 0;
        return;
    }
    if (++calmRun_ < config_.calmSamples)
        return;
    // One level per calm dwell — the hysteresis that keeps an attacker
    // from flapping the policy with a 50% duty-cycle tone.  Leaving
    // kDegraded additionally requires proven forward progress.
    if (mode_ == Mode::kDegraded && !committedSinceDegrade_) {
        calmRun_ = 0;
        return;
    }
    setMode(t, static_cast<Mode>(static_cast<std::uint8_t>(mode_) - 1));
}

void
DefenseController::observeSample(double t, double vLo, double vHi,
                                 const analog::MonitorEvent& primary,
                                 const analog::MonitorEvent& shadow)
{
    ++stats_.samples;
    std::uint64_t evidence = 0;

    if (lastSampleT_ >= 0.0 && t > lastSampleT_) {
        // Legitimate motion since the previous sample is bounded by the
        // RC physics; both the within-window envelope span and the
        // between-sample step must fit it.
        const double bound =
            (t - lastSampleT_) * maxSlewVps_ + config_.physicsMarginV;
        const double mid = 0.5 * (vLo + vHi);
        if ((vHi - vLo) > bound || std::abs(mid - lastSampleV_) > bound) {
            evidence |= kEvidencePhysics;
            ++stats_.physicsViolations;
        }
    }
    if (primary.backup != shadow.backup || primary.wake != shadow.wake) {
        evidence |= kEvidenceDisagree;
        ++stats_.disagreements;
    }

    decayAndMaybeDeescalate(t);
    if (evidence & kEvidencePhysics)
        addEvidence(t, config_.physicsWeight, evidence);
    if (evidence & kEvidenceDisagree)
        addEvidence(t, config_.disagreeWeight, evidence);

    lastSampleT_ = t;
    lastSampleV_ = 0.5 * (vLo + vHi);
}

void
DefenseController::noteBootEvidence(double t, bool ackDetect,
                                    bool timerDetect)
{
    if (!ackDetect && !timerDetect)
        return;
    const double w = config_.bootEvidenceWeight *
                     ((ackDetect ? 1 : 0) + (timerDetect ? 1 : 0));
    addEvidence(t, w, kEvidenceBoot);
}

void
DefenseController::noteRollback(double t, std::uint32_t regionId)
{
    // Progress test: a recovery that merely re-commits the rolled-back
    // region before dying again (one commit per power cycle) is a
    // livelock, not progress — the commit counter advances while the
    // frontier stays put.  Only >=2 commits since the previous rollback
    // (the redo plus something new) re-arm the budget.
    const std::uint64_t commitsSince =
        lastCommitCount_ - commitCountAtRollback_;
    commitCountAtRollback_ = lastCommitCount_;
    if (regionId == lastRollbackRegion_ && commitsSince <= 1) {
        ++consecutiveRollbacks_;
    } else {
        lastRollbackRegion_ = regionId;
        consecutiveRollbacks_ = 1;
    }
    if (mode_ != Mode::kDegraded &&
        consecutiveRollbacks_ >
            static_cast<std::uint64_t>(config_.rollbackBudgetPerRegion))
        tripRatchet(t, regionId, consecutiveRollbacks_);
}

void
DefenseController::noteCommit(std::uint64_t commitCount)
{
    if (commitCount <= lastCommitCount_)
        return;
    const std::uint64_t committed = commitCount - lastCommitCount_;
    lastCommitCount_ = commitCount;
    // Each committed region pays one boot-quantum of debt back.  The
    // credit is bounded (not a wholesale clear) so an attack that lets
    // a trickle of progress through cannot keep the ledger from
    // integrating its boot churn.  The rollback budget re-arms in
    // noteRollback, which can tell a redo-commit from real progress.
    stats_.energyDebtJ = std::max(
        0.0, stats_.energyDebtJ -
                 commitCreditJ_ * static_cast<double>(committed));
    if (mode_ == Mode::kDegraded)
        committedSinceDegrade_ = true;
}

void
DefenseController::noteRetriesExhausted(double t)
{
    addEvidence(t, config_.scoreAttack, kEvidenceRetries);
    // Persistent save failures mean the NVM write path itself is being
    // disturbed: go straight to the ratcheted rollback-only mode.
    escalateTo(t, Mode::kDegraded);
}

void
DefenseController::noteSleepEnter(double t, double fullChargeEstS)
{
    if (mode_ == Mode::kDegraded && fullChargeEstS >= 0.0)
        wakeNotBefore_ = t + fullChargeEstS;
    else
        wakeNotBefore_ = -1.0;
}

void
DefenseController::noteEnergyCost(double t, double joules)
{
    stats_.energyDebtJ += joules;
    stats_.peakEnergyDebtJ =
        std::max(stats_.peakEnergyDebtJ, stats_.energyDebtJ);
    if (mode_ != Mode::kDegraded && stats_.energyDebtJ > debtBudgetJ_)
        tripRatchet(t, lastRollbackRegion_, consecutiveRollbacks_);
}

bool
DefenseController::wakeAllowed(double t)
{
    if (mode_ != Mode::kDegraded || wakeNotBefore_ < 0.0)
        return true;
    if (t >= wakeNotBefore_ - 1e-12)
        return true;
    ++stats_.wakesDeferred;
    return false;
}

int
DefenseController::backoffCycles(int attempt) const
{
    const int a = std::max(attempt, 0);
    if (mode_ == Mode::kNominal)
        return config_.backoffBaseCycles * (a + 1);
    const int shift = std::min(a, 20);
    const long long exp =
        static_cast<long long>(config_.backoffBaseCycles) << shift;
    return static_cast<int>(
        std::min<long long>(exp, config_.backoffCapCycles));
}

void
DefenseController::archiveState(campaign::Archive& ar)
{
    ar.section("defense_controller");
    std::uint8_t mode = static_cast<std::uint8_t>(mode_);
    ar.u8(mode);
    if (!ar.saving()) {
        if (mode > static_cast<std::uint8_t>(Mode::kDegraded))
            throw campaign::SnapshotError("defense: bad mode encoding");
        mode_ = static_cast<Mode>(mode);
    }
    ar.f64(score_);
    ar.boolean(aboveSuspicion_);
    ar.i32(calmRun_);
    ar.f64(lastSampleT_);
    ar.f64(lastSampleV_);
    ar.u32(lastRollbackRegion_);
    ar.u64(consecutiveRollbacks_);
    ar.u64(lastCommitCount_);
    ar.u64(commitCountAtRollback_);
    ar.boolean(committedSinceDegrade_);
    ar.f64(wakeNotBefore_);
    ar.u64(stats_.samples);
    ar.u64(stats_.anomalies);
    ar.u64(stats_.disagreements);
    ar.u64(stats_.physicsViolations);
    ar.u64(stats_.escalations);
    ar.u64(stats_.deEscalations);
    ar.u64(stats_.ratchetTrips);
    ar.u64(stats_.wakesDeferred);
    ar.f64(stats_.firstEscalationT);
    ar.f64(stats_.energyDebtJ);
    ar.f64(stats_.peakEnergyDebtJ);
}

}  // namespace gecko::defense
