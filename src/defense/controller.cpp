#include "defense/controller.hpp"

#include <algorithm>
#include <cmath>

#include "campaign/archive.hpp"
#include "trace/trace.hpp"

namespace gecko::defense {

namespace {

/** Score in integer milli-units for trace payloads (clamped at 0). */
[[maybe_unused]] std::uint64_t
traceScore(double s)
{
    return s > 0 ? static_cast<std::uint64_t>(std::llround(s * 1000.0)) : 0;
}

}  // namespace

bool
presetByName(const std::string& name, DefenseConfig* out)
{
    if (name == "static") {
        *out = DefenseConfig{};
        return true;
    }
    if (name == "adaptive") {
        DefenseConfig config;
        config.enabled = true;
        *out = config;
        return true;
    }
    if (name == "strict") {
        DefenseConfig config;
        config.enabled = true;
        config.scoreSuspicious = 0.7;
        config.scoreAttack = 1.8;
        config.calmSamples = 96;
        config.rollbackBudgetPerRegion = 2;
        config.backoffCapCycles = 16384;
        *out = config;
        return true;
    }
    return false;
}

const char*
modeName(Mode mode)
{
    switch (mode) {
      case Mode::kNominal:
        return "nominal";
      case Mode::kSuspicious:
        return "suspicious";
      case Mode::kUnderAttack:
        return "under_attack";
      case Mode::kDegraded:
        return "degraded";
    }
    return "unknown";
}

DefenseController::DefenseController(const DefenseConfig& config,
                                     const PlantModel& plant)
    : config_(config), plant_(plant)
{
    // Legitimate dV/dt is bounded by the plant: the CPU discharging the
    // buffer at worst-case active power, plus the harvester charging it
    // through the Thevenin source resistance.  EMI couples volts into
    // the *monitor*, not the rail, so a seen excursion beyond this bound
    // (plus margin) is physical evidence of a forged reading.
    const double c = std::max(plant.capacitanceF, 1e-12);
    const double dischargeSlew =
        plant.energyPerCycleJ * plant.clockHz / (c * std::max(plant.vOff, 0.1));
    const double chargeSlew =
        plant.maxV / (std::max(plant.sourceResistance, 1e-3) * c);
    maxSlewVps_ = dischargeSlew + chargeSlew;

    debtBudgetJ_ =
        config.energyDebtBudgetJ > 0
            ? config.energyDebtBudgetJ
            : 8.0 * 0.5 * c * (plant.vOn * plant.vOn -
                               plant.vOff * plant.vOff);
    commitCreditJ_ = config.commitCreditJ > 0 ? config.commitCreditJ
                                              : plant.bootEnergyJ;
}

void
DefenseController::setMode(double t, Mode next)
{
    if (next == mode_)
        return;
    const Mode prev = mode_;
    mode_ = next;
    if (next > prev) {
        ++stats_.escalations;
        if (stats_.firstEscalationT < 0)
            stats_.firstEscalationT = t;
        // Relapse: escalating again soon after we calmed down.  Each
        // one doubles the calm dwell (capped), so an attacker
        // duty-cycled to just outlast the hysteresis loses the race —
        // its off-time requirement grows geometrically while its
        // disruption stays fixed.
        if (prev == Mode::kNominal && config_.relapseWindowSamples > 0 &&
            sinceDeescalation_ <
                static_cast<std::uint64_t>(config_.relapseWindowSamples)) {
            relapseLevel_ =
                std::min(relapseLevel_ + 1, config_.relapseLevelCap);
            ++stats_.relapses;
        }
    } else {
        ++stats_.deEscalations;
        sinceDeescalation_ = 0;
    }
    if (next == Mode::kDegraded)
        committedSinceDegrade_ = false;
    if (next < Mode::kDegraded)
        wakeNotBefore_ = -1.0;
    calmRun_ = 0;
    GECKO_TRACE_EVENT(trace::EventKind::kDefenseModeChange, 0,
                      static_cast<std::uint64_t>(next),
                      static_cast<std::uint64_t>(prev));
}

void
DefenseController::escalateTo(double t, Mode target)
{
    if (target > mode_)
        setMode(t, target);
}

void
DefenseController::tripRatchet(double t,
                               [[maybe_unused]] std::uint32_t regionId,
                               [[maybe_unused]] std::uint64_t count)
{
    ++stats_.ratchetTrips;
    GECKO_TRACE_EVENT(trace::EventKind::kDefenseRatchetTrip, 0,
                      static_cast<std::uint64_t>(regionId), count);
    escalateTo(t, Mode::kDegraded);
}

void
DefenseController::addEvidence(double t, double weight,
                               [[maybe_unused]] std::uint64_t evidence)
{
    score_ = std::min(score_ + weight, config_.scoreMax);
    calmRun_ = 0;
    if (!aboveSuspicion_ && score_ >= config_.scoreSuspicious) {
        aboveSuspicion_ = true;
        ++stats_.anomalies;
        GECKO_TRACE_EVENT(trace::EventKind::kDefenseAnomaly, 0,
                          traceScore(score_), evidence);
    }
    if (score_ >= config_.scoreAttack)
        escalateTo(t, Mode::kUnderAttack);
    else if (score_ >= config_.scoreSuspicious)
        escalateTo(t, Mode::kSuspicious);
}

int
DefenseController::trackEdge(PendingEdge& pending, bool primaryPulse,
                             bool shadowPulse)
{
    if (primaryPulse && shadowPulse) {
        // Simultaneous agreement; nothing pending can be forged skew.
        pending = PendingEdge{};
        return 0;
    }
    if (primaryPulse != shadowPulse) {
        const int lead = primaryPulse ? 1 : -1;
        if (pending.lead == -lead) {
            // The other monitor confirmed the earlier pulse: benign
            // sampling skew at a real crossing, not evidence.
            ++stats_.edgeSkews;
            pending = PendingEdge{};
            return 0;
        }
        // Same-side repeat (sustained forged trough): the previous
        // pulse is now unconfirmable — charge it and re-arm.
        const int matured = pending.lead == lead ? 1 : 0;
        pending.lead = lead;
        pending.age = 0;
        return matured;
    }
    // Quiet sample: age the window; an unmatched pulse matures into a
    // disagreement charge once the skew grace is exhausted.
    if (pending.lead != 0 && ++pending.age > config_.edgeSkewSamples) {
        pending = PendingEdge{};
        return 1;
    }
    return 0;
}

int
DefenseController::calmDwell() const
{
    const int shift = std::min(relapseLevel_, config_.relapseLevelCap);
    const long long dwell =
        static_cast<long long>(config_.calmSamples) << std::min(shift, 20);
    return static_cast<int>(std::min<long long>(dwell, 1 << 20));
}

void
DefenseController::decayAndMaybeDeescalate(double t)
{
    score_ = std::max(0.0, score_ * (1.0 - config_.decayPerSample));
    if (score_ < config_.scoreClear)
        aboveSuspicion_ = false;
    if (score_ > config_.scoreClear) {
        calmRun_ = 0;
        return;
    }
    if (mode_ == Mode::kNominal) {
        // Sustained nominal calm forgives one relapse level per calm
        // dwell — a one-off incident doesn't tax the node forever.
        if (relapseLevel_ > 0 && ++calmRun_ >= calmDwell()) {
            --relapseLevel_;
            calmRun_ = 0;
        }
        return;
    }
    if (++calmRun_ < calmDwell())
        return;
    // One level per calm dwell — the hysteresis that keeps an attacker
    // from flapping the policy with a 50% duty-cycle tone.  Leaving
    // kDegraded additionally requires proven forward progress.
    if (mode_ == Mode::kDegraded && !committedSinceDegrade_) {
        calmRun_ = 0;
        return;
    }
    setMode(t, static_cast<Mode>(static_cast<std::uint8_t>(mode_) - 1));
}

void
DefenseController::observeSample(double t, double vLo, double vHi,
                                 const analog::MonitorEvent& primary,
                                 const analog::MonitorEvent& shadow)
{
    ++stats_.samples;
    if (sinceDeescalation_ != ~std::uint64_t{0})
        ++sinceDeescalation_;
    std::uint64_t evidence = 0;

    if (lastSampleT_ >= 0.0 && t > lastSampleT_) {
        // Legitimate motion since the previous sample is bounded by the
        // RC physics; both the within-window envelope span and the
        // between-sample step must fit it.
        const double bound =
            (t - lastSampleT_) * maxSlewVps_ + config_.physicsMarginV;
        const double mid = 0.5 * (vLo + vHi);
        if ((vHi - vLo) > bound || std::abs(mid - lastSampleV_) > bound) {
            evidence |= kEvidencePhysics;
            ++stats_.physicsViolations;
        }
    }
    if (primary.backup != shadow.backup || primary.wake != shadow.wake) {
        evidence |= kEvidenceDisagree;
        ++stats_.disagreements;
    }

    decayAndMaybeDeescalate(t);
    if (evidence & kEvidencePhysics)
        addEvidence(t, config_.physicsWeight, evidence);
    if (config_.edgeSkewSamples <= 0) {
        if (evidence & kEvidenceDisagree)
            addEvidence(t, config_.disagreeWeight, evidence);
    } else {
        // Edge-skew reconciliation: a lone pulse waits for the other
        // monitor's matching pulse before it becomes evidence, so the
        // one-sample trip skew at a genuine supply crossing (ADC
        // quantization vs comparator hysteresis) stops scoring as
        // forgery.  Unmatched pulses still mature into the full
        // disagreement weight when the window closes.
        int charges = trackEdge(pendingBackup_, primary.backup,
                                shadow.backup) +
                      trackEdge(pendingWake_, primary.wake, shadow.wake);
        for (int i = 0; i < charges; ++i)
            addEvidence(t, config_.disagreeWeight,
                        evidence | kEvidenceDisagree);
    }

    lastSampleT_ = t;
    lastSampleV_ = 0.5 * (vLo + vHi);
}

void
DefenseController::noteBootEvidence(double t, bool ackDetect,
                                    bool timerDetect)
{
    if (!ackDetect && !timerDetect)
        return;
    const double w = config_.bootEvidenceWeight *
                     ((ackDetect ? 1 : 0) + (timerDetect ? 1 : 0));
    addEvidence(t, w, kEvidenceBoot);
}

void
DefenseController::noteRollback(double t, std::uint32_t regionId)
{
    // Progress test: a recovery that merely re-commits the rolled-back
    // region before dying again (one commit per power cycle) is a
    // livelock, not progress — the commit counter advances while the
    // frontier stays put.  Only >=2 commits since the previous rollback
    // (the redo plus something new) re-arm the budget.
    const std::uint64_t commitsSince =
        lastCommitCount_ - commitCountAtRollback_;
    commitCountAtRollback_ = lastCommitCount_;
    redoCommitPending_ = true;
    if (regionId == lastRollbackRegion_ && commitsSince <= 1) {
        ++consecutiveRollbacks_;
    } else {
        lastRollbackRegion_ = regionId;
        consecutiveRollbacks_ = 1;
    }
    if (mode_ != Mode::kDegraded &&
        consecutiveRollbacks_ >
            static_cast<std::uint64_t>(config_.rollbackBudgetPerRegion))
        tripRatchet(t, regionId, consecutiveRollbacks_);
}

void
DefenseController::noteCommit(std::uint64_t commitCount)
{
    if (commitCount <= lastCommitCount_)
        return;
    std::uint64_t committed = commitCount - lastCommitCount_;
    lastCommitCount_ = commitCount;
    // The first commit after a rollback merely redoes the rolled-back
    // region: the frontier hasn't moved, so it earns no credit.
    // Without this gate an outage-phase-locked burst that forces one
    // rollback per power cycle farms a boot-quantum of credit from
    // every redo and the debt ledger never trips.
    if (redoCommitPending_) {
        redoCommitPending_ = false;
        --committed;
    }
    // Each committed region pays one boot-quantum of debt back.  The
    // credit is bounded (not a wholesale clear) so an attack that lets
    // a trickle of progress through cannot keep the ledger from
    // integrating its boot churn.  The rollback budget re-arms in
    // noteRollback, which can tell a redo-commit from real progress.
    stats_.energyDebtJ = std::max(
        0.0, stats_.energyDebtJ -
                 commitCreditJ_ * static_cast<double>(committed));
    if (mode_ == Mode::kDegraded)
        committedSinceDegrade_ = true;
}

void
DefenseController::noteRetriesExhausted(double t)
{
    addEvidence(t, config_.scoreAttack, kEvidenceRetries);
    // Persistent save failures mean the NVM write path itself is being
    // disturbed: go straight to the ratcheted rollback-only mode.
    escalateTo(t, Mode::kDegraded);
}

void
DefenseController::noteSleepEnter(double t, double fullChargeEstS)
{
    if (mode_ == Mode::kDegraded && fullChargeEstS >= 0.0)
        wakeNotBefore_ = t + fullChargeEstS;
    else
        wakeNotBefore_ = -1.0;
}

void
DefenseController::noteEnergyCost(double t, double joules)
{
    stats_.energyDebtJ += joules;
    stats_.peakEnergyDebtJ =
        std::max(stats_.peakEnergyDebtJ, stats_.energyDebtJ);
    if (mode_ != Mode::kDegraded && stats_.energyDebtJ > debtBudgetJ_)
        tripRatchet(t, lastRollbackRegion_, consecutiveRollbacks_);
}

bool
DefenseController::wakeAllowed(double t)
{
    if (mode_ != Mode::kDegraded || wakeNotBefore_ < 0.0)
        return true;
    if (t >= wakeNotBefore_ - 1e-12)
        return true;
    ++stats_.wakesDeferred;
    return false;
}

int
DefenseController::backoffCycles(int attempt) const
{
    const int a = std::max(attempt, 0);
    if (mode_ == Mode::kNominal)
        return config_.backoffBaseCycles * (a + 1);
    const int shift = std::min(a, 20);
    const long long exp =
        static_cast<long long>(config_.backoffBaseCycles) << shift;
    return static_cast<int>(
        std::min<long long>(exp, config_.backoffCapCycles));
}

void
DefenseController::archiveState(campaign::Archive& ar)
{
    ar.section("defense_controller");
    std::uint8_t mode = static_cast<std::uint8_t>(mode_);
    ar.u8(mode);
    if (!ar.saving()) {
        if (mode > static_cast<std::uint8_t>(Mode::kDegraded))
            throw campaign::SnapshotError("defense: bad mode encoding");
        mode_ = static_cast<Mode>(mode);
    }
    ar.f64(score_);
    ar.boolean(aboveSuspicion_);
    ar.i32(calmRun_);
    ar.i32(relapseLevel_);
    ar.u64(sinceDeescalation_);
    ar.boolean(redoCommitPending_);
    ar.f64(lastSampleT_);
    ar.f64(lastSampleV_);
    ar.i32(pendingBackup_.lead);
    ar.i32(pendingBackup_.age);
    ar.i32(pendingWake_.lead);
    ar.i32(pendingWake_.age);
    ar.u32(lastRollbackRegion_);
    ar.u64(consecutiveRollbacks_);
    ar.u64(lastCommitCount_);
    ar.u64(commitCountAtRollback_);
    ar.boolean(committedSinceDegrade_);
    ar.f64(wakeNotBefore_);
    ar.u64(stats_.samples);
    ar.u64(stats_.anomalies);
    ar.u64(stats_.disagreements);
    ar.u64(stats_.edgeSkews);
    ar.u64(stats_.physicsViolations);
    ar.u64(stats_.escalations);
    ar.u64(stats_.deEscalations);
    ar.u64(stats_.ratchetTrips);
    ar.u64(stats_.relapses);
    ar.u64(stats_.wakesDeferred);
    ar.f64(stats_.firstEscalationT);
    ar.f64(stats_.energyDebtJ);
    ar.f64(stats_.peakEnergyDebtJ);
}

}  // namespace gecko::defense
