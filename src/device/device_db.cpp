#include "device/device_db.hpp"

#include <stdexcept>

namespace gecko::device {

using analog::ResonanceCurve;
using analog::ResonantPeak;

namespace {

/** Single-peak remote curve helper. */
ResonanceCurve
peakCurve(double freqMhz, double q, double gain)
{
    ResonanceCurve curve;
    curve.peaks.push_back({freqMhz * 1e6, q, gain});
    curve.lowPassHz = 55e6;
    return curve;
}

/** DPI P1 (power-line injection): resonances only, narrow. */
ResonanceCurve
dpiP1Curve(const ResonanceCurve& remote)
{
    ResonanceCurve curve = remote;
    for (auto& peak : curve.peaks)
        peak.q *= 1.5;  // narrower through the regulator path
    return curve;
}

/** DPI P2 (capacitor node): resonances plus a broadband floor. */
ResonanceCurve
dpiP2Curve(const ResonanceCurve& remote)
{
    ResonanceCurve curve = remote;
    curve.broadbandGain = 0.25;
    return curve;
}

DeviceProfile
makeDevice(const std::string& name, bool has_comp,
           const ResonanceCurve& adc_remote,
           const ResonanceCurve& comp_remote, int adc_bits,
           double adc_sample_hz, double comp_check_hz, double clock_hz)
{
    DeviceProfile dev;
    dev.name = name;
    dev.hasAdcMonitor = true;
    dev.hasComparatorMonitor = has_comp;
    dev.adcBits = adc_bits;
    dev.adcSampleHz = adc_sample_hz;
    dev.compCheckHz = comp_check_hz;
    dev.adcRemote = adc_remote;
    dev.compRemote = comp_remote;
    dev.dpiP1 = dpiP1Curve(adc_remote);
    dev.dpiP2 = dpiP2Curve(adc_remote);
    dev.power.clockHz = clock_hz;
    return dev;
}

std::vector<DeviceProfile>
buildDb()
{
    std::vector<DeviceProfile> db;

    // MSP430 family: 27 MHz ADC-path resonance (Table I).  Gains are
    // calibrated so a 35 dBm remote attack at 5 m induces ~1.3 V at the
    // resonance — enough to control both thresholds.
    db.push_back(makeDevice("MSP430FR2311", false,
                            peakCurve(27, 10, 0.52), {}, 10, 64e3, 0,
                            8e6));
    db.push_back(makeDevice("MSP430FR2433", false,
                            peakCurve(27, 11, 0.50), {}, 10, 80e3, 0,
                            8e6));
    db.push_back(makeDevice("MSP430FR4133", false,
                            peakCurve(28, 10, 0.51), {}, 10, 72e3, 0,
                            8e6));
    {
        // F5529: main response at 27 MHz, additional 16 MHz peak where
        // the paper saw the maximum checkpoint-failure rate.
        ResonanceCurve c = peakCurve(27, 10, 0.48);
        c.peaks.push_back({16e6, 9, 0.52});
        db.push_back(makeDevice("MSP430F5529", false, c, {}, 12, 96e3, 0,
                                8e6));
    }
    db.push_back(makeDevice("MSP430FR5739", false,
                            peakCurve(27, 14, 0.56), {}, 10, 200e3, 0,
                            8e6));
    {
        // FR5994 (the main evaluation board): ADC path at 27 MHz;
        // comparator path resonating at 5 and 6 MHz.
        ResonanceCurve comp;
        comp.peaks.push_back({5e6, 16, 0.55});
        comp.lowPassHz = 55e6;
        comp.peaks.push_back({6e6, 16, 0.52});
        db.push_back(makeDevice("MSP430FR5994", true,
                                peakCurve(27, 11, 0.50), comp, 12, 100e3,
                                2e6, 8e6));
    }
    db.push_back(makeDevice("MSP430FR6989", true,
                            peakCurve(27, 11, 0.50),
                            peakCurve(27, 13, 0.50), 12, 90e3, 1.5e6,
                            8e6));
    db.push_back(makeDevice("MSP432P", true,
                            peakCurve(27, 9, 0.50),
                            peakCurve(27, 9, 0.04), 14, 120e3, 2e6,
                            48e6));
    {
        // STM32L552: cortex-m33, resonance at 17-18 MHz.
        ResonanceCurve c = peakCurve(17, 9, 0.52);
        c.peaks.push_back({18e6, 10, 0.45});
        db.push_back(makeDevice("STM32L552ZE", true, c,
                                peakCurve(17, 10, 0.05), 12, 150e3, 2e6,
                                48e6));
    }
    return db;
}

}  // namespace

const std::vector<DeviceProfile>&
DeviceDb::all()
{
    static const std::vector<DeviceProfile> db = buildDb();
    return db;
}

const DeviceProfile&
DeviceDb::byName(const std::string& name)
{
    for (const DeviceProfile& dev : all())
        if (dev.name == name)
            return dev;
    throw std::out_of_range("unknown device: " + name);
}

const DeviceProfile&
DeviceDb::msp430fr5994()
{
    return byName("MSP430FR5994");
}

}  // namespace gecko::device
