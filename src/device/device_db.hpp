#ifndef GECKO_DEVICE_DEVICE_DB_HPP_
#define GECKO_DEVICE_DEVICE_DB_HPP_

#include <vector>

#include "device/device_profile.hpp"

/**
 * @file
 * Database of the nine commodity MCUs evaluated in the paper (Table I).
 *
 * The coupling curves are calibrated so the simulated attack reproduces
 * the paper's qualitative structure: all MSP430-family ADC paths resonate
 * near 27 MHz, the F5529 has an additional 16 MHz response, the
 * STM32L552 resonates near 17–18 MHz, the FR5994's comparator path
 * resonates at 5/6 MHz, and nothing couples above ~50 MHz.
 */

namespace gecko::device {

/** Device registry. */
class DeviceDb
{
  public:
    /** All nine Table-I boards. */
    static const std::vector<DeviceProfile>& all();

    /**
     * Look up a board by name (e.g. "MSP430FR5994").
     * @throws std::out_of_range for unknown names.
     */
    static const DeviceProfile& byName(const std::string& name);

    /** The paper's main evaluation board. */
    static const DeviceProfile& msp430fr5994();
};

}  // namespace gecko::device

#endif  // GECKO_DEVICE_DEVICE_DB_HPP_
