#include "device/device_profile.hpp"

namespace gecko::device {

std::unique_ptr<analog::VoltageMonitor>
DeviceProfile::makeMonitor(analog::MonitorKind kind) const
{
    if (kind == analog::MonitorKind::kAdc) {
        return std::make_unique<analog::AdcMonitor>(
            adcBits, vccNominal, vBackup, vOn, adcSampleHz);
    }
    return std::make_unique<analog::ComparatorMonitor>(
        vBackup, vOn, compHysteresisV, compCheckHz);
}

}  // namespace gecko::device
