#ifndef GECKO_DEVICE_DEVICE_PROFILE_HPP_
#define GECKO_DEVICE_DEVICE_PROFILE_HPP_

#include <memory>
#include <string>

#include "analog/resonance.hpp"
#include "analog/voltage_monitor.hpp"
#include "energy/power_model.hpp"

/**
 * @file
 * Per-device model of one commodity intermittent-system MCU.
 *
 * Encodes what the paper measured per board (Table I): which voltage
 * monitors exist, the EMI coupling response of each monitor path (remote
 * and DPI P1/P2), the monitor sampling characteristics, and the
 * operating thresholds.
 */

namespace gecko::device {

/** Static description of one evaluation board. */
struct DeviceProfile {
    std::string name;

    bool hasAdcMonitor = true;
    bool hasComparatorMonitor = false;

    /// ADC monitor resolution and conversion rate.
    int adcBits = 12;
    double adcSampleHz = 100e3;
    /// Comparator monitor equivalent evaluation rate and hysteresis.
    double compCheckHz = 2e6;
    double compHysteresisV = 0.02;

    /// Remote EMI coupling into the ADC monitor path.
    analog::ResonanceCurve adcRemote;
    /// Remote EMI coupling into the comparator monitor path.
    analog::ResonanceCurve compRemote;
    /// DPI transfer response at injection points P1 (power line) and
    /// P2 (capacitor node, broader band per Fig. 4).
    analog::ResonanceCurve dpiP1;
    analog::ResonanceCurve dpiP2;
    double dpiCouplingP1 = 0.9;
    double dpiCouplingP2 = 1.5;

    /// Operating thresholds (V).
    double vccNominal = 3.3;
    double vOn = 3.0;      ///< wake / restore threshold
    double vBackup = 2.2;  ///< JIT checkpoint threshold
    double vOff = 2.08;    ///< brown-out: CPU dies below this

    energy::PowerModel power;

    /** Instantiate the requested monitor for this device. */
    std::unique_ptr<analog::VoltageMonitor>
    makeMonitor(analog::MonitorKind kind) const;

    /** Remote coupling curve of the monitor path for `kind`. */
    const analog::ResonanceCurve&
    remoteCurve(analog::MonitorKind kind) const
    {
        return kind == analog::MonitorKind::kAdc ? adcRemote : compRemote;
    }
};

}  // namespace gecko::device

#endif  // GECKO_DEVICE_DEVICE_PROFILE_HPP_
