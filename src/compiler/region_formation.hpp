#ifndef GECKO_COMPILER_REGION_FORMATION_HPP_
#define GECKO_COMPILER_REGION_FORMATION_HPP_

#include "ir/program.hpp"

/**
 * @file
 * Idempotent region formation (paper §VI-B, following de Kruijf [22] and
 * Ratchet [87]).
 *
 * A region delimited by kBoundary pseudo-ops is idempotent iff it contains
 * no memory anti-dependence (a store overwriting a location a preceding
 * instruction of the same region read) unless the read was preceded by a
 * same-region write to the same location (the WARAW exemption: re-execution
 * recreates the first write before the read sees it).  Loop headers, calls,
 * call targets and I/O operations additionally receive boundaries.
 */

namespace gecko::compiler {

/** Structural boundary placement options. */
struct RegionFormationConfig {
    /// Boundary at every loop header (required for WCET-finite regions).
    bool cutLoopHeaders = true;
    /// Boundaries before and after kCall and at call targets.
    bool cutCalls = true;
    /// Boundaries before and after kIn/kOut (I/O is its own region).
    bool cutIo = true;
    /// See cutAntiDependences; false for the Ratchet baseline.
    bool preciseAliasing = true;
};

/** Region-boundary placement passes. */
class RegionFormation
{
  public:
    /**
     * Insert the structural boundaries (program entry, loop headers,
     * around calls and I/O).  Idempotent: positions already guarded by a
     * boundary are skipped.
     * @return the number of boundaries inserted.
     */
    static int insertStructuralBoundaries(ir::Program& prog,
                                          const RegionFormationConfig& cfg);

    /**
     * One sweep of memory anti-dependence cutting: find stores that
     * overwrite a location read earlier in the same region without WARAW
     * protection, and insert a boundary before each.  Call repeatedly
     * until it returns 0 (each sweep re-analyses the modified program).
     *
     * @param preciseAliasing use the IR-level constant-address alias
     *        analysis.  False models Ratchet's binary-level analysis
     *        [87], where a store conservatively aliases every preceding
     *        load and no WARAW protection can be proven.
     * @return the number of boundaries inserted by this sweep.
     */
    static int cutAntiDependences(ir::Program& prog,
                                  bool preciseAliasing = true);

    /**
     * Run structural placement followed by anti-dependence cutting to a
     * fixpoint.
     */
    static void run(ir::Program& prog, const RegionFormationConfig& cfg = {});
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_REGION_FORMATION_HPP_
