#include "compiler/wcet.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "compiler/loop_analysis.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;

namespace {

/** Instruction-level control successors. */
std::vector<std::size_t>
instrSuccs(const Program& prog, std::size_t i)
{
    const Instr& ins = prog.at(i);
    std::vector<std::size_t> succs;
    switch (ins.op) {
      case Opcode::kJmp:
        succs.push_back(prog.labelPos(ins.target));
        break;
      case Opcode::kCall:
        // The path continues into the callee; the return point carries
        // its own boundary, so also walking the fall-through is sound
        // for the region-local longest path.
        succs.push_back(prog.labelPos(ins.target));
        if (i + 1 < prog.size())
            succs.push_back(i + 1);
        break;
      case Opcode::kRet:
      case Opcode::kHalt:
        break;
      default:
        if (ir::isCondBranch(ins.op)) {
            succs.push_back(prog.labelPos(ins.target));
            if (i + 1 < prog.size())
                succs.push_back(i + 1);
        } else if (i + 1 < prog.size()) {
            succs.push_back(i + 1);
        }
        break;
    }
    return succs;
}

/** Shared analysis context for one program snapshot. */
class WcetContext
{
  public:
    explicit WcetContext(const Program& prog)
        : prog_(prog), cfg_(Cfg::build(prog)),
          dom_(Dominators::build(cfg_)),
          rdefs_(ReachingDefs::build(prog, cfg_)),
          aa_(AliasAnalysis::build(prog, cfg_, rdefs_)),
          loops_(LoopAnalysis::analyze(prog, cfg_, dom_, rdefs_, aa_)),
          extra_(prog.size(), 0), memo_(prog.size(), kUnvisited)
    {
        buildSummaries();
    }

    const std::vector<NaturalLoop>& loops() const { return loops_; }
    const Cfg& cfg() const { return cfg_; }

    /** Is `loop` summarized (boundary-free, bounded)? */
    bool summarized(std::size_t loop_idx) const
    {
        return summarized_[loop_idx];
    }

    /** Does `loop` satisfy the invariant (summarized or header-cut)? */
    bool needsHeaderBoundary(const NaturalLoop& loop) const
    {
        if (LoopAnalysis::hasInternalBoundary(prog_, cfg_, loop)) {
            std::size_t h = cfg_.block(loop.header).first;
            return prog_.at(h).op != Opcode::kBoundary;
        }
        return !loop.tripBound.has_value();
    }

    /** Extra (loop-summary) cost charged at instruction `i`. */
    long extra(std::size_t i) const { return extra_[i]; }

    /** Is edge (i, s) a cut back edge of a summarized loop? */
    bool isCut(std::size_t i, std::size_t s) const
    {
        return cutEdges_.count({i, s}) != 0;
    }

    /**
     * Longest acyclic path from `i` to the next boundary, with
     * summarized loops folded into their headers' extra cost.
     */
    long
    wcetFrom(std::size_t i)
    {
        if (prog_.at(i).op == Opcode::kBoundary)
            return 0;
        long& slot = memo_[i];
        if (slot == kOpen)
            throw std::runtime_error(
                "WCET: unbounded boundary-free cycle "
                "(run Wcet::enforceLoopInvariant first)");
        if (slot != kUnvisited)
            return slot;
        slot = kOpen;
        long best = 0;
        for (std::size_t s : instrSuccs(prog_, i)) {
            if (cutEdges_.count({i, s}))
                continue;
            best = std::max(best, wcetFrom(s));
        }
        slot = ir::cycleCost(prog_.at(i)) + extra_[i] + best;
        return slot;
    }

  private:
    static constexpr long kUnvisited = -1;
    static constexpr long kOpen = -2;

    void
    buildSummaries()
    {
        summarized_.assign(loops_.size(), false);
        // Collect cut edges and extra costs, innermost loop first (the
        // analyze() order), so outer iteration costs see inner extras.
        for (std::size_t li = 0; li < loops_.size(); ++li) {
            const NaturalLoop& loop = loops_[li];
            if (LoopAnalysis::hasInternalBoundary(prog_, cfg_, loop))
                continue;  // cycles cross the boundary; nothing to fold
            if (!loop.tripBound)
                continue;  // invariant enforcement will cut the header
            summarized_[li] = true;
            std::size_t header = cfg_.block(loop.header).first;
            // Cut every back edge (latch-last -> header-first).
            for (BlockId latch : loop.latches)
                cutEdges_.insert({cfg_.block(latch).last, header});
            long iter = iterationCost(loop);
            extra_[header] += (*loop.tripBound - 1) * iter;
        }
    }

    /**
     * Longest single-iteration path: header to any in-loop dead end
     * (normally a latch), back edges cut, inner extras included.
     */
    long
    iterationCost(const NaturalLoop& loop)
    {
        std::size_t header = cfg_.block(loop.header).first;
        std::map<std::size_t, long> memo;
        auto dfs = [&](auto&& self, std::size_t i) -> long {
            auto it = memo.find(i);
            if (it != memo.end()) {
                if (it->second == kOpen)
                    throw std::runtime_error(
                        "WCET: cycle inside summarized loop");
                return it->second;
            }
            memo[i] = kOpen;
            long best = 0;
            for (std::size_t s : instrSuccs(prog_, i)) {
                if (s == header)
                    continue;  // own back edge
                if (cutEdges_.count({i, s}))
                    continue;  // inner (already summarized) back edge
                if (!loop.contains(cfg_.blockOf(s)))
                    continue;  // exit edge
                best = std::max(best, self(self, s));
            }
            long cost = ir::cycleCost(prog_.at(i)) + extra_[i] + best;
            memo[i] = cost;
            return cost;
        };
        return dfs(dfs, header);
    }

    const Program& prog_;
    Cfg cfg_;
    Dominators dom_;
    ReachingDefs rdefs_;
    AliasAnalysis aa_;
    std::vector<NaturalLoop> loops_;
    std::vector<bool> summarized_;
    std::set<std::pair<std::size_t, std::size_t>> cutEdges_;
    std::vector<long> extra_;
    std::vector<long> memo_;
};

}  // namespace

long
Wcet::wcetFrom(const Program& prog, std::size_t idx)
{
    WcetContext ctx(prog);
    return ctx.wcetFrom(idx);
}

std::vector<std::pair<std::size_t, long>>
Wcet::analyze(const Program& prog)
{
    WcetContext ctx(prog);
    std::vector<std::pair<std::size_t, long>> result;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (prog.at(i).op != Opcode::kBoundary)
            continue;
        long cost = ir::cycleCost(prog.at(i));
        if (i + 1 < prog.size())
            cost += ctx.wcetFrom(i + 1);
        result.emplace_back(i, cost);
    }
    return result;
}

int
Wcet::enforceLoopInvariant(Program& prog)
{
    int inserted = 0;
    // Header insertions can make outer loops boundary-containing, so
    // iterate to a fixpoint.
    for (int round = 0; round < 64; ++round) {
        WcetContext ctx(prog);
        std::set<std::size_t> headers;
        for (const NaturalLoop& loop : ctx.loops())
            if (ctx.needsHeaderBoundary(loop))
                headers.insert(ctx.cfg().block(loop.header).first);
        if (headers.empty())
            return inserted;
        for (auto it = headers.rbegin(); it != headers.rend(); ++it) {
            Instr boundary;
            boundary.op = Opcode::kBoundary;
            boundary.imm = -1;
            prog.insertBefore(*it, boundary, /*before_label=*/true);
            ++inserted;
        }
    }
    throw std::runtime_error("WCET: loop invariant did not converge");
}

int
Wcet::enforce(Program& prog, long bound)
{
    int inserted = 0;
    const int max_rounds = static_cast<int>(prog.size()) * 4 + 64;
    for (int round = 0; round < max_rounds; ++round) {
        inserted += enforceLoopInvariant(prog);
        WcetContext ctx(prog);

        // Find the worst splittable region.  A region that is already a
        // single instruction (e.g. one I/O transaction, which the ISA
        // treats as atomic) cannot be subdivided; it defines the floor
        // of any feasible budget and is skipped.
        std::size_t worst_boundary = Program::npos;
        long worst = bound;
        for (std::size_t i = 0; i < prog.size(); ++i) {
            if (prog.at(i).op != Opcode::kBoundary)
                continue;
            long cost = ir::cycleCost(prog.at(i));
            if (i + 1 < prog.size())
                cost += ctx.wcetFrom(i + 1);
            bool single = i + 2 >= prog.size() ||
                          prog.at(i + 1).op == Opcode::kBoundary ||
                          prog.at(i + 2).op == Opcode::kBoundary ||
                          ir::isUncondTransfer(prog.at(i + 1).op);
            if (cost > worst && !single) {
                worst = cost;
                worst_boundary = i;
            }
        }
        if (worst_boundary == Program::npos)
            return inserted;

        // Preferred split: demote the costliest summarized loop reachable
        // in this region to per-iteration regions.
        std::set<std::size_t> seen;
        std::vector<std::size_t> stack{worst_boundary + 1};
        std::size_t best_header = Program::npos;
        long best_extra = 0;
        while (!stack.empty()) {
            std::size_t i = stack.back();
            stack.pop_back();
            if (!seen.insert(i).second)
                continue;
            if (prog.at(i).op == Opcode::kBoundary)
                continue;
            if (ctx.extra(i) > best_extra) {
                best_extra = ctx.extra(i);
                best_header = i;
            }
            for (std::size_t s : instrSuccs(prog, i))
                stack.push_back(s);
        }
        Instr boundary;
        boundary.op = Opcode::kBoundary;
        boundary.imm = -1;
        if (best_header != Program::npos) {
            prog.insertBefore(best_header, boundary, /*before_label=*/true);
            ++inserted;
            continue;
        }

        // Straight-line split: walk the longest path and cut once the
        // accumulated cost passes half the bound.
        long budget = std::max<long>(bound / 2, 1);
        std::size_t pos = worst_boundary + 1;
        long acc = ir::cycleCost(prog.at(worst_boundary));
        bool advanced = false;
        while (true) {
            const Instr& ins = prog.at(pos);
            long cost = ir::cycleCost(ins) + ctx.extra(pos);
            if (advanced && acc + cost > budget)
                break;
            if (cost > bound) {
                // An atomic instruction larger than the budget: isolate
                // it in its own region (the feasible minimum).
                if (!advanced)
                    ++pos;
                advanced = true;
                break;
            }
            acc += cost;
            advanced = true;
            std::size_t best = Program::npos;
            long best_cost = -1;
            for (std::size_t s : instrSuccs(prog, pos)) {
                if (ctx.isCut(pos, s))
                    continue;
                long c = ctx.wcetFrom(s);
                if (c > best_cost) {
                    best_cost = c;
                    best = s;
                }
            }
            if (best == Program::npos ||
                prog.at(best).op == Opcode::kBoundary)
                break;
            pos = best;
        }
        if (!advanced)
            throw std::runtime_error(
                "WCET: region budget too small to make progress");
        prog.insertBefore(pos, boundary, /*before_label=*/true);
        ++inserted;
    }
    throw std::runtime_error("WCET: region splitting did not converge");
}

}  // namespace gecko::compiler
