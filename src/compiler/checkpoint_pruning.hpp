#ifndef GECKO_COMPILER_CHECKPOINT_PRUNING_HPP_
#define GECKO_COMPILER_CHECKPOINT_PRUNING_HPP_

#include <vector>

#include "compiler/checkpoint_insertion.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Checkpoint pruning (paper §VI-C).
 *
 * A checkpoint store can be removed when the register's region-entry
 * value is reconstructible by a recovery block.  The pass builds candidate
 * recovery blocks for every checkpoint, resolves dependency cycles among
 * candidates of the same region by demoting members back to real
 * checkpoints, removes the pruned kCkpt instructions, and records the
 * surviving blocks in dependency order in each RegionSeed.
 */

namespace gecko::compiler {

/** Checkpoint pruning pass. */
class CheckpointPruning
{
  public:
    /**
     * Prune checkpoints of `prog`, updating `seeds[id].recovery`.
     * @param maxSliceInstrs per-block slice size limit.
     * @return the number of checkpoint stores removed.
     */
    static int run(ir::Program& prog, std::vector<RegionSeed>& seeds,
                   int maxSliceInstrs = 16);
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_CHECKPOINT_PRUNING_HPP_
