#include "compiler/pipeline.hpp"

#include <stdexcept>

#include "compiler/checkpoint_insertion.hpp"
#include "compiler/checkpoint_pruning.hpp"
#include "compiler/region_formation.hpp"
#include "compiler/slot_coloring.hpp"
#include "compiler/wcet.hpp"

namespace gecko::compiler {

using ir::Opcode;
using ir::Program;

const char*
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kNvp: return "NVP";
      case Scheme::kRatchet: return "Ratchet";
      case Scheme::kGeckoNoPrune: return "GECKO-noprune";
      case Scheme::kGecko: return "GECKO";
    }
    return "?";
}

namespace {

int
countCkpts(const Program& prog)
{
    int n = 0;
    for (std::size_t i = 0; i < prog.size(); ++i)
        if (prog.at(i).op == Opcode::kCkpt)
            ++n;
    return n;
}

/** Worst-case cost of a full entry sequence (16 stores + the commit). */
long
entrySequenceMargin()
{
    ir::Instr ck;
    ck.op = Opcode::kCkpt;
    ir::Instr bd;
    bd.op = Opcode::kBoundary;
    return ir::kNumRegs * ir::cycleCost(ck) + 2 * ir::cycleCost(bd);
}

}  // namespace

CompiledProgram
compile(const Program& prog, Scheme scheme, const PipelineConfig& config)
{
    CompiledProgram out;
    out.scheme = scheme;
    out.stats.originalInstrs = static_cast<int>(prog.size());

    if (scheme == Scheme::kNvp) {
        out.prog = prog;
        out.stats.finalInstrs = static_cast<int>(prog.size());
        return out;
    }

    Program work = prog;
    RegionFormationConfig region_config;
    // Idempotence only strictly requires cutting memory anti-dependences,
    // calls and I/O; regions may span whole loops.  For Ratchet that is
    // the final region structure — which is exactly why the paper
    // observes Ratchet regions "too long to be completed within one
    // capacitor charge cycle" (§VII-B3).  GECKO's WCET pass then bounds
    // every region: counted loops are folded into the longest-path
    // analysis, unbounded (or boundary-containing) loops get header
    // boundaries, and over-budget regions are split.
    region_config.cutLoopHeaders = false;
    // Ratchet works on binaries and cannot disambiguate addresses [87].
    region_config.preciseAliasing = (scheme != Scheme::kRatchet);
    RegionFormation::run(work, region_config);

    if (scheme != Scheme::kRatchet) {
        // Checkpoint stores are inserted after the WCET pass, so budget
        // for the worst-case entry sequence up front, then alternate
        // splitting and anti-dependence repair to a fixpoint (the paper's
        // "loops back to the WCET analysis step").
        long bound = config.maxRegionCycles - entrySequenceMargin();
        if (bound < 32)
            throw std::runtime_error(
                "maxRegionCycles too small for any region");
        for (int round = 0;; ++round) {
            if (round > 32)
                throw std::runtime_error(
                    "WCET/region-formation loop did not converge");
            int split = Wcet::enforceLoopInvariant(work);
            split += Wcet::enforce(work, bound);
            int cut = 0;
            while (true) {
                int k = RegionFormation::cutAntiDependences(work);
                if (k == 0)
                    break;
                cut += k;
            }
            if (split == 0 && cut == 0)
                break;
        }
    }

    if (scheme != Scheme::kRatchet)
        out.minOnPeriodCycles = config.maxRegionCycles;

    std::vector<RegionSeed> seeds = CheckpointInsertion::run(work);
    out.stats.ckptsBeforePruning = countCkpts(work);

    bool prune = (scheme == Scheme::kGecko && config.enablePruning);
    if (prune)
        CheckpointPruning::run(work, seeds, /*maxSliceInstrs=*/16);

    // Clean-checkpoint elimination is the degenerate form of pruning
    // (the "recovery" is a slot the value already sits in), so it is
    // gated with it.
    SlotColoring::Result coloring = SlotColoring::run(
        work, seeds, prune && config.enableCleanElim);

    // Assemble the final region table.
    out.prog = std::move(work);
    out.regions.resize(seeds.size());
    // Ratchet regions may contain whole (boundary-free) loops, so their
    // WCET is unbounded; record -1 there.
    std::vector<std::pair<std::size_t, long>> wcets;
    if (scheme != Scheme::kRatchet)
        wcets = Wcet::analyze(out.prog);

    for (std::size_t i = 0; i < out.prog.size(); ++i) {
        if (out.prog.at(i).op != Opcode::kBoundary)
            continue;
        int id = out.prog.at(i).imm;
        if (id < 0 || static_cast<std::size_t>(id) >= seeds.size())
            throw std::runtime_error("pipeline: unnumbered region boundary");
        RegionInfo& info = out.regions[static_cast<std::size_t>(id)];
        RegionSeed& seed = seeds[static_cast<std::size_t>(id)];
        info.id = id;
        info.boundaryIdx = i;
        info.liveIn = seed.liveIn;
        info.recovery = std::move(seed.recovery);
        info.parentId = seed.parentId;

        std::size_t start = i;
        while (start > 0 && out.prog.at(start - 1).op == Opcode::kCkpt)
            --start;
        info.entryIdx = start;
        for (std::size_t c = start; c < i; ++c) {
            const ir::Instr& ck = out.prog.at(c);
            if (ck.imm < 0)
                throw std::runtime_error("pipeline: uncoloured checkpoint");
            info.ckpts.push_back({ck.rs1, ck.imm, c});
        }
    }
    for (const InheritedCkpt& entry : coloring.inherited) {
        out.regions[static_cast<std::size_t>(entry.regionId)].ckpts.push_back(
            {entry.reg, entry.slot, Program::npos});
    }

    for (RegionInfo& info : out.regions)
        info.wcetCycles = -1;
    for (const auto& [bidx, cycles] : wcets)
        out.regions[static_cast<std::size_t>(out.prog.at(bidx).imm)]
            .wcetCycles = cycles;

    // Statistics.
    out.stats.cleanEliminated = coloring.cleanEliminated;
    out.stats.numRegions = static_cast<int>(out.regions.size());
    out.stats.ckptsAfterPruning = countCkpts(out.prog);
    for (const RegionInfo& info : out.regions) {
        out.stats.recoveryBlocks += static_cast<int>(info.recovery.size());
        for (const RecoverySpec& spec : info.recovery)
            out.stats.recoveryInstrs += static_cast<int>(spec.code.size());
    }
    out.stats.finalInstrs = static_cast<int>(out.prog.size());
    // Runtime lookup table: per region a resume PC, live-in mask, parent
    // link and table pointer, plus two words per restore entry and one
    // per recovery-block instruction.
    out.stats.lookupTableWords =
        4 * out.stats.numRegions + 2 * out.stats.ckptsAfterPruning +
        out.stats.recoveryInstrs;
    return out;
}

}  // namespace gecko::compiler
