#ifndef GECKO_COMPILER_CFG_HPP_
#define GECKO_COMPILER_CFG_HPP_

#include <cstddef>
#include <string>
#include <vector>

#include "ir/program.hpp"

/**
 * @file
 * Control-flow graph over a mini-ISA Program.
 */

namespace gecko::compiler {

/** Index of a basic block inside a Cfg. */
using BlockId = int;

/**
 * A basic block: a maximal straight-line range [first, last] of instruction
 * indices with control entering only at `first` and leaving only at `last`.
 */
struct BasicBlock {
    std::size_t first = 0;
    /// Inclusive index of the final instruction of the block.
    std::size_t last = 0;
    std::vector<BlockId> succs;
    std::vector<BlockId> preds;

    std::size_t length() const { return last - first + 1; }
};

/**
 * Control-flow graph.
 *
 * kCall blocks get two successors — the call target and the fall-through
 * block — modelling "the callee eventually returns here"; kRet blocks have
 * no successors.  This is a sound intra-procedural approximation for the
 * liveness and region analyses (the GECKO pipeline additionally forces
 * region boundaries around calls, see RegionFormation).
 */
class Cfg
{
  public:
    /** Build the CFG of `prog`. */
    static Cfg build(const ir::Program& prog);

    const std::vector<BasicBlock>& blocks() const { return blocks_; }
    const BasicBlock& block(BlockId id) const
    {
        return blocks_.at(static_cast<std::size_t>(id));
    }
    std::size_t numBlocks() const { return blocks_.size(); }

    /** @return the block containing instruction index `idx`. */
    BlockId blockOf(std::size_t idx) const
    {
        return instrBlock_.at(idx);
    }

    /** Entry block id (always 0 for non-empty programs). */
    BlockId entry() const { return 0; }

    /**
     * Blocks in reverse post-order from the entry (good iteration order for
     * forward dataflow problems).
     */
    const std::vector<BlockId>& reversePostOrder() const { return rpo_; }

    /** @return true if block `target` is a loop header (has a back edge). */
    bool isLoopHeader(BlockId target) const;

    /** Graphviz dump for debugging. */
    std::string toDot(const ir::Program& prog) const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<BlockId> instrBlock_;
    std::vector<BlockId> rpo_;
    std::vector<bool> loopHeader_;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_CFG_HPP_
