#ifndef GECKO_COMPILER_SLOT_COLORING_HPP_
#define GECKO_COMPILER_SLOT_COLORING_HPP_

#include <tuple>
#include <vector>

#include "compiler/checkpoint_insertion.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Static double-buffer slot assignment (paper §VI-D) and clean-checkpoint
 * elimination.
 *
 * Slot constraint: two checkpoint stores of the same register that can
 * execute consecutively *with the register redefined in between* must
 * write different NVM slots — a power failure during the later entry
 * sequence rolls back to the earlier region, whose slot must still hold
 * the earlier value.  The paper formulates this as 2-colouring with
 * additional checkpoints fixing conflicts; we implement
 *
 *  - self-conflicts (a loop whose single region re-checkpoints a
 *    register it modifies) by inserting a conflict-fix region right
 *    after the loop region's commit (sharing the parent's restore table
 *    for everything else — sound because nothing executes between the
 *    two commits),
 *  - remaining odd cycles by greedy colouring with up to kMaxSlots
 *    colours, and
 *  - *clean elimination*: a checkpoint whose register is unmodified on
 *    every path from its unique previous checkpoint stores a value the
 *    slot already holds — it is removed and the region's restore table
 *    inherits the previous checkpoint's slot.  This is the degenerate
 *    case of checkpoint pruning (reconstruction is a no-op), so it runs
 *    only when pruning is enabled.
 */

namespace gecko::compiler {

/** Number of NVM slot copies reserved per register. */
inline constexpr int kMaxSlots = 4;

/** An inherited restore-table entry produced by clean elimination. */
struct InheritedCkpt {
    int regionId = 0;
    ir::Reg reg = 0;
    int slot = 0;
};

/** Slot colouring pass. */
class SlotColoring
{
  public:
    struct Result {
        /// Highest slot index used + 1.
        int slotsUsed = 0;
        /// Conflict-fix regions inserted for self-conflicts.
        int fixRegions = 0;
        /// Checkpoint stores added by fix regions.
        int fixCkpts = 0;
        /// Checkpoint stores removed by clean elimination.
        int cleanEliminated = 0;
        /// Restore-table entries inherited from earlier regions.
        std::vector<InheritedCkpt> inherited;
    };

    /**
     * Assign a slot (kCkpt.imm) to every checkpoint store of `prog`,
     * inserting conflict-fix regions as needed (appended to `seeds`) and
     * optionally eliminating clean checkpoints.
     * @throws std::runtime_error if more than kMaxSlots colours would be
     *         required (not observed on any workload).
     */
    static Result run(ir::Program& prog, std::vector<RegionSeed>& seeds,
                      bool cleanElim);
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_SLOT_COLORING_HPP_
