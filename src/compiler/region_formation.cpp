#include "compiler/region_formation.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "compiler/liveness.hpp"
#include "compiler/loop_analysis.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;

namespace {

Instr
boundaryInstr()
{
    Instr ins;
    ins.op = Opcode::kBoundary;
    ins.imm = -1;  // region id assigned later by CheckpointInsertion
    return ins;
}

/**
 * Would a boundary inserted before `pos` be redundant (position already
 * starts with, or is directly preceded by, a boundary)?
 */
bool
guarded(const Program& prog, std::size_t pos)
{
    if (pos < prog.size() && prog.at(pos).op == Opcode::kBoundary)
        return true;
    if (pos > 0 && prog.at(pos - 1).op == Opcode::kBoundary)
        return true;
    return false;
}

}  // namespace

int
RegionFormation::insertStructuralBoundaries(Program& prog,
                                            const RegionFormationConfig& cfg)
{
    Cfg graph = Cfg::build(prog);
    std::set<std::size_t> positions;
    positions.insert(0);

    for (std::size_t i = 0; i < prog.size(); ++i) {
        const Instr& ins = prog.at(i);
        if (cfg.cutLoopHeaders) {
            BlockId b = graph.blockOf(i);
            if (graph.isLoopHeader(b) && graph.block(b).first == i)
                positions.insert(i);
        }
        if (cfg.cutCalls && ins.op == Opcode::kCall) {
            positions.insert(i);
            positions.insert(i + 1);                   // return point
            positions.insert(prog.labelPos(ins.target));  // callee entry
        }
        if (cfg.cutIo && (ins.op == Opcode::kIn || ins.op == Opcode::kOut)) {
            positions.insert(i);
            positions.insert(i + 1);
        }
        // A boundary before kHalt makes program completion a committed
        // region: a power failure after the halt re-executes only the
        // halt, never re-emitting I/O.
        if (ins.op == Opcode::kHalt)
            positions.insert(i);
    }

    int inserted = 0;
    for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
        std::size_t pos = *it;
        if (pos >= prog.size())
            continue;  // nothing executes past the final terminator
        if (guarded(prog, pos))
            continue;
        prog.insertBefore(pos, boundaryInstr(), /*before_label=*/true);
        ++inserted;
    }
    return inserted;
}

int
RegionFormation::cutAntiDependences(Program& prog, bool preciseAliasing)
{
    Cfg graph = Cfg::build(prog);
    ReachingDefs rdefs = ReachingDefs::build(prog, graph);
    AliasAnalysis aa = AliasAnalysis::build(prog, graph, rdefs);
    Dominators dom = Dominators::build(graph);
    std::vector<NaturalLoop> loops =
        LoopAnalysis::analyze(prog, graph, dom, rdefs, aa);
    RangeAnalysis ranges(prog, graph, dom, rdefs, aa, loops);

    // May the accesses at `l` (load) and `s` (store) touch the same word?
    auto accesses_may_alias = [&](std::size_t l, std::size_t s) {
        if (!preciseAliasing)
            return true;  // Ratchet's binary-level conservatism
        if (aa.alias(l, s) == AliasVerdict::kNoAlias)
            return false;
        // Fall back to index ranges: disjoint array footprints cannot
        // collide even with loop-variant indices.
        auto rl = ranges.addrRange(l);
        auto rs = ranges.addrRange(s);
        if (rl && rs &&
            (rl->second < rs->first || rs->second < rl->first))
            return false;
        return true;
    };

    // Forward dataflow.  Per point:
    //   reads:   load instructions executed since the last boundary on SOME
    //            path (union at joins) and not WARAW-protected,
    //   written: constant addresses stored since the last boundary on EVERY
    //            path (intersection at joins; nullopt = top).
    struct State {
        std::set<std::size_t> reads;
        std::optional<std::set<std::uint32_t>> written;  // nullopt = top

        bool operator==(const State&) const = default;
    };

    auto meet = [](State a, const State& b) {
        a.reads.insert(b.reads.begin(), b.reads.end());
        if (!a.written) {
            a.written = b.written;
        } else if (b.written) {
            std::set<std::uint32_t> inter;
            std::set_intersection(a.written->begin(), a.written->end(),
                                  b.written->begin(), b.written->end(),
                                  std::inserter(inter, inter.begin()));
            a.written = std::move(inter);
        }
        return a;
    };

    // store instr -> one witnessing earlier load (for hoisting).
    std::map<std::size_t, std::size_t> violations;

    auto transfer = [&](State s, const BasicBlock& block) {
        if (!s.written)
            s.written.emplace();
        for (std::size_t i = block.first; i <= block.last; ++i) {
            const Instr& ins = prog.at(i);
            switch (ins.op) {
              case Opcode::kBoundary:
                s.reads.clear();
                s.written->clear();
                break;
              case Opcode::kCall:
                // Callee effects unknown; surrounding boundaries normally
                // clear state, but stay conservative regardless.
                s.reads.clear();
                s.written->clear();
                break;
              case Opcode::kLoad: {
                auto addr = aa.constAddr(i);
                if (!preciseAliasing || !(addr && s.written->count(*addr)))
                    s.reads.insert(i);
                break;
              }
              case Opcode::kStore: {
                bool war = false;
                std::size_t witness = 0;
                for (std::size_t l : s.reads) {
                    if (accesses_may_alias(l, i)) {
                        war = true;
                        witness = l;
                        break;
                    }
                }
                if (war) {
                    violations.emplace(i, witness);
                    // Model the boundary that will be inserted before i.
                    s.reads.clear();
                    s.written->clear();
                }
                if (auto addr = aa.constAddr(i))
                    s.written->insert(*addr);
                break;
              }
              default:
                break;
            }
        }
        return s;
    };

    const std::size_t nb = graph.numBlocks();
    std::vector<State> in(nb), out(nb);
    // Entry starts a fresh region (a boundary is always present at 0 after
    // structural placement, but be robust without it).
    in[static_cast<std::size_t>(graph.entry())].written.emplace();

    bool changed = true;
    while (changed) {
        changed = false;
        violations.clear();
        for (BlockId b : graph.reversePostOrder()) {
            std::size_t bi = static_cast<std::size_t>(b);
            State o = transfer(in[bi], graph.block(b));
            if (!(o == out[bi])) {
                out[bi] = o;
                changed = true;
            }
            for (BlockId succ : graph.block(b).succs) {
                std::size_t si = static_cast<std::size_t>(succ);
                State merged = meet(in[si], out[bi]);
                if (!(merged == in[si])) {
                    in[si] = std::move(merged);
                    changed = true;
                }
            }
        }
    }

    // Pick each violation's boundary position.  A store whose
    // anti-dependent load lives *outside* the store's loop only
    // conflicts across iterations of an outer trip, so the cut can be
    // hoisted to the loop's preheader (one boundary per loop entry
    // instead of one per iteration).  The hoist is only legal when
    // every out-of-loop path enters the header by fall-through (the
    // inserted instruction would be skipped by a direct jump).
    std::set<std::pair<std::size_t, bool>> cuts;  // (pos, before_label)
    for (const auto& [store, load] : violations) {
        std::size_t pos = store;
        bool before_label = true;
        BlockId store_block = graph.blockOf(store);
        BlockId load_block = graph.blockOf(load);
        const NaturalLoop* hoist = nullptr;
        for (const NaturalLoop& loop : loops) {
            if (!loop.contains(store_block) || loop.contains(load_block))
                continue;
            bool fallthrough_entry = true;
            std::size_t header_first = graph.block(loop.header).first;
            for (BlockId pred : graph.block(loop.header).preds) {
                if (loop.contains(pred))
                    continue;  // back edge
                if (graph.block(pred).last + 1 != header_first)
                    fallthrough_entry = false;
            }
            if (!fallthrough_entry)
                continue;
            // Outermost eligible loop wins (loops are innermost-first).
            hoist = &loop;
        }
        if (hoist) {
            pos = graph.block(hoist->header).first;
            before_label = false;  // preheader: back edges skip it
        }
        cuts.emplace(pos, before_label);
    }

    int inserted = 0;
    for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
        if (guarded(prog, it->first))
            continue;
        prog.insertBefore(it->first, boundaryInstr(), it->second);
        ++inserted;
    }
    return inserted;
}

void
RegionFormation::run(Program& prog, const RegionFormationConfig& cfg)
{
    insertStructuralBoundaries(prog, cfg);
    while (cutAntiDependences(prog, cfg.preciseAliasing) > 0) {
    }
}

}  // namespace gecko::compiler
