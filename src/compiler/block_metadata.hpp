#ifndef GECKO_COMPILER_BLOCK_METADATA_HPP_
#define GECKO_COMPILER_BLOCK_METADATA_HPP_

#include <cstdint>
#include <vector>

#include "compiler/pipeline.hpp"

/**
 * @file
 * Region-aware basic-block boundaries for the superinstruction backend.
 *
 * The simulator's block compiler (sim/exec_block.cpp) fuses straight-line
 * runs of the final program into superinstructions.  The boundaries it may
 * fuse across are a *compiler* property, not a simulator one: besides the
 * ordinary CFG leaders, every idempotent-region entry sequence
 * (`kCkpt* kBoundary`, see pipeline.hpp) must start its own block so a
 * fused superinstruction never spans a checkpoint commit point — the
 * runtime rolls back to region entries, and keeping them block-aligned is
 * what lets the backend re-enter compiled code immediately after a
 * rollback instead of deoptimizing.
 */

namespace gecko::compiler {

/**
 * Instruction indices that must start a superblock in `compiled.prog`:
 *
 *  - instruction 0,
 *  - every branch/jump/call target,
 *  - the fall-through successor of every terminator,
 *  - each region's entry index (first kCkpt of the entry sequence), and
 *  - each region's first body instruction (the one after kBoundary).
 *
 * @return sorted, deduplicated, all strictly less than program size.
 */
std::vector<std::uint32_t> superblockLeaders(const CompiledProgram& compiled);

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_BLOCK_METADATA_HPP_
