#include "compiler/block_metadata.hpp"

#include <algorithm>

namespace gecko::compiler {

std::vector<std::uint32_t>
superblockLeaders(const CompiledProgram& compiled)
{
    const ir::Program& p = compiled.prog;
    const std::size_t size = p.size();
    std::vector<std::uint32_t> leaders;
    if (size == 0)
        return leaders;
    leaders.reserve(size / 4 + 4);
    leaders.push_back(0);

    for (std::size_t i = 0; i < size; ++i) {
        const ir::Instr& ins = p.at(i);
        if (ir::isCondBranch(ins.op) || ins.op == ir::Opcode::kJmp ||
            ins.op == ir::Opcode::kCall) {
            leaders.push_back(
                static_cast<std::uint32_t>(p.labelPos(ins.target)));
        }
        // Everything after a terminator starts fresh: fall-throughs of
        // conditional branches, call-return sites (kRet lands at
        // call+1), and the instruction after jmp/ret/halt (possibly
        // unreachable — a harmless singleton block).
        if (ir::isTerminator(ins.op) && i + 1 < size)
            leaders.push_back(static_cast<std::uint32_t>(i + 1));
    }

    // Region metadata: entry sequences are their own blocks.
    for (const RegionInfo& region : compiled.regions) {
        if (region.entryIdx < size)
            leaders.push_back(static_cast<std::uint32_t>(region.entryIdx));
        if (region.boundaryIdx + 1 < size)
            leaders.push_back(
                static_cast<std::uint32_t>(region.boundaryIdx + 1));
    }

    std::sort(leaders.begin(), leaders.end());
    leaders.erase(std::unique(leaders.begin(), leaders.end()),
                  leaders.end());
    // All entries are < size by construction (labelPos targets are
    // always in range for a validated program).
    return leaders;
}

}  // namespace gecko::compiler
