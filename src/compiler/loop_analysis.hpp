#ifndef GECKO_COMPILER_LOOP_ANALYSIS_HPP_
#define GECKO_COMPILER_LOOP_ANALYSIS_HPP_

#include <optional>
#include <set>
#include <vector>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Natural-loop detection and trip-count bounding.
 *
 * The WCET pass (paper §VI-B, building on the loop-bound-aware analysis
 * of [12]) needs an upper bound on every boundary-free cycle.  Counted
 * loops — a single in-loop update `i += step` / `i -= step` with a
 * constant initial value and a constant latch bound — get a static trip
 * bound; anything else is "unbounded" and region formation must place a
 * boundary in its header.
 */

namespace gecko::compiler {

/** One natural loop (reducible back edge). */
struct NaturalLoop {
    BlockId header = 0;
    /// All blocks of the loop body (including the header).
    std::set<BlockId> blocks;
    /// Blocks with a back edge to the header.
    std::vector<BlockId> latches;
    /**
     * Static upper bound on iterations, if the loop matches the counted
     * pattern.  nullopt = unbounded.
     */
    std::optional<long> tripBound;

    // Counted-loop pattern details (valid when tripBound is set and
    // counterReg >= 0): the counter register, its smallest initial
    // value, and the signed per-iteration step.
    int counterReg = -1;
    long counterInit = 0;
    long counterStep = 0;

    bool contains(BlockId b) const { return blocks.count(b) != 0; }

    /**
     * Inclusive value range the counter stays within while execution is
     * inside the loop (one extra step of slack for the exit increment).
     */
    std::pair<long, long> counterRange() const
    {
        long last = counterInit + counterStep * (*tripBound);
        return {std::min(counterInit, last), std::max(counterInit, last)};
    }
};

/** Loop detection + trip bounding over one program snapshot. */
class LoopAnalysis
{
  public:
    /**
     * Find all natural loops of `prog` (loops sharing a header are
     * merged) and compute trip bounds where the counted pattern matches.
     */
    static std::vector<NaturalLoop> analyze(const ir::Program& prog,
                                            const Cfg& cfg,
                                            const Dominators& dom,
                                            const ReachingDefs& rdefs,
                                            const AliasAnalysis& aa);

    /** @return true if any instruction of `loop` is a kBoundary. */
    static bool hasInternalBoundary(const ir::Program& prog, const Cfg& cfg,
                                    const NaturalLoop& loop);

    /// Trip bounds beyond this are treated as unbounded.
    static constexpr long kMaxTripBound = 1 << 20;
};

/**
 * Value-range analysis for memory addresses.
 *
 * Resolves the inclusive range an address expression can take by
 * combining constant propagation with counted-loop counter ranges
 * (base + i patterns).  Lets the region-formation pass prove that
 * accesses to different arrays never collide even when the index is a
 * loop variable.
 */
class RangeAnalysis
{
  public:
    RangeAnalysis(const ir::Program& prog, const Cfg& cfg,
                  const Dominators& dom, const ReachingDefs& rdefs,
                  const AliasAnalysis& aa,
                  const std::vector<NaturalLoop>& loops)
        : prog_(prog), cfg_(cfg), dom_(dom), rdefs_(rdefs), aa_(aa),
          loops_(loops)
    {
    }

    /**
     * Inclusive range of the address of the kLoad/kStore at `idx`
     * (base register value + immediate), if derivable.
     */
    std::optional<std::pair<long, long>>
    addrRange(std::size_t idx) const;

    /** Inclusive range of register `r`'s value just before `point`. */
    std::optional<std::pair<long, long>>
    valueRange(ir::Reg r, std::size_t point, int depth = 0) const;

  private:
    const ir::Program& prog_;
    const Cfg& cfg_;
    const Dominators& dom_;
    const ReachingDefs& rdefs_;
    const AliasAnalysis& aa_;
    const std::vector<NaturalLoop>& loops_;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_LOOP_ANALYSIS_HPP_
