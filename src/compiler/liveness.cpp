#include "compiler/liveness.hpp"

#include <algorithm>

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;
using ir::Reg;

namespace {

RegMask
useMask(const Instr& ins)
{
    if (ins.op == Opcode::kRet)
        return 0xffff;  // conservative: whole register file survives a return
    RegMask m = 0;
    for (Reg r : ir::regsRead(ins))
        m |= regBit(r);
    return m;
}

RegMask
defMask(const Instr& ins)
{
    if (!ir::writesReg(ins))
        return 0;
    if (ins.op == Opcode::kCall)
        return regBit(ir::kLinkReg);
    return regBit(ins.rd);
}

}  // namespace

Liveness
Liveness::build(const Program& prog, const Cfg& cfg)
{
    Liveness live;
    const std::size_t n = prog.size();
    live.liveIn_.assign(n, 0);
    live.liveOut_.assign(n, 0);
    if (n == 0)
        return live;

    // Block-level fixpoint.
    const std::size_t nb = cfg.numBlocks();
    std::vector<RegMask> block_in(nb, 0), block_out(nb, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate blocks in reverse RPO (approximately postorder) for
        // faster convergence of the backward problem.
        const auto& rpo = cfg.reversePostOrder();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            BlockId b = *it;
            const BasicBlock& block = cfg.block(b);
            RegMask out = 0;
            for (BlockId succ : block.succs)
                out |= block_in[static_cast<std::size_t>(succ)];
            RegMask in = out;
            for (std::size_t i = block.last + 1; i-- > block.first;) {
                const Instr& ins = prog.at(i);
                in = static_cast<RegMask>((in & ~defMask(ins)) |
                                          useMask(ins));
            }
            if (in != block_in[static_cast<std::size_t>(b)] ||
                out != block_out[static_cast<std::size_t>(b)]) {
                block_in[static_cast<std::size_t>(b)] = in;
                block_out[static_cast<std::size_t>(b)] = out;
                changed = true;
            }
        }
    }

    // Per-instruction propagation within each block.
    for (std::size_t b = 0; b < nb; ++b) {
        const BasicBlock& block = cfg.block(static_cast<BlockId>(b));
        RegMask cur = block_out[b];
        for (std::size_t i = block.last + 1; i-- > block.first;) {
            const Instr& ins = prog.at(i);
            live.liveOut_[i] = cur;
            cur = static_cast<RegMask>((cur & ~defMask(ins)) | useMask(ins));
            live.liveIn_[i] = cur;
        }
    }
    return live;
}

std::int32_t
ReachingDefs::uniqueDefAt(std::size_t idx, ir::Reg r) const
{
    const auto& defs = defsAt(idx, r);
    if (defs.size() == 1 && defs[0] != kEntryDef)
        return defs[0];
    return -2;
}

ReachingDefs
ReachingDefs::build(const Program& prog, const Cfg& cfg)
{
    ReachingDefs rd;
    const std::size_t n = prog.size();
    rd.in_.resize(n);
    if (n == 0)
        return rd;

    const std::size_t nb = cfg.numBlocks();

    using RegDefs = std::array<std::vector<std::int32_t>, ir::kNumRegs>;
    auto merge_into = [](RegDefs& dst, const RegDefs& src) {
        bool changed = false;
        for (int r = 0; r < ir::kNumRegs; ++r) {
            for (std::int32_t d : src[static_cast<std::size_t>(r)]) {
                auto& v = dst[static_cast<std::size_t>(r)];
                auto it = std::lower_bound(v.begin(), v.end(), d);
                if (it == v.end() || *it != d) {
                    v.insert(it, d);
                    changed = true;
                }
            }
        }
        return changed;
    };

    auto transfer = [&prog](RegDefs defs, const BasicBlock& block) {
        for (std::size_t i = block.first; i <= block.last; ++i) {
            const Instr& ins = prog.at(i);
            if (ir::writesReg(ins)) {
                Reg target = (ins.op == Opcode::kCall) ? ir::kLinkReg
                                                       : ins.rd;
                defs[target] = {static_cast<std::int32_t>(i)};
            }
        }
        return defs;
    };

    std::vector<RegDefs> block_in(nb), block_out(nb);
    // Entry: all registers carry the pseudo entry definition.
    for (int r = 0; r < ir::kNumRegs; ++r)
        block_in[static_cast<std::size_t>(cfg.entry())]
                [static_cast<std::size_t>(r)] = {kEntryDef};

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.reversePostOrder()) {
            std::size_t bi = static_cast<std::size_t>(b);
            RegDefs out = transfer(block_in[bi], cfg.block(b));
            if (out != block_out[bi]) {
                block_out[bi] = out;
                changed = true;
            }
            for (BlockId succ : cfg.block(b).succs) {
                if (merge_into(block_in[static_cast<std::size_t>(succ)],
                               block_out[bi]))
                    changed = true;
            }
        }
    }

    // Per-instruction IN sets.
    for (std::size_t b = 0; b < nb; ++b) {
        const BasicBlock& block = cfg.block(static_cast<BlockId>(b));
        RegDefs cur = block_in[b];
        for (std::size_t i = block.first; i <= block.last; ++i) {
            rd.in_[i] = cur;
            const Instr& ins = prog.at(i);
            if (ir::writesReg(ins)) {
                Reg target = (ins.op == Opcode::kCall) ? ir::kLinkReg
                                                       : ins.rd;
                cur[target] = {static_cast<std::int32_t>(i)};
            }
        }
    }
    return rd;
}

}  // namespace gecko::compiler
