#ifndef GECKO_COMPILER_COMPILE_CACHE_HPP_
#define GECKO_COMPILER_COMPILE_CACHE_HPP_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "compiler/pipeline.hpp"

/**
 * @file
 * Thread-safe cache of compiled programs for the sweep benches.
 *
 * A sweep re-runs the same victim thousands of times while only the
 * attack parameters change, so the compiled program is shared.  The
 * pre-existing bench helper kept a function-local `static std::map`,
 * which is a data race the moment two sweep tasks run concurrently —
 * and it keyed on (workload, scheme) only, so a hypothetical
 * device-dependent compilation would alias across boards.  This cache
 * replaces it: reads take a shared lock; the first miss for a key
 * installs a future and compiles while other threads asking for the
 * same key block on that future instead of compiling twice.
 */

namespace gecko::compiler {

/** Shared-mutex-guarded map from cache key to compiled program. */
class CompileCache
{
  public:
    using Ptr = std::shared_ptr<const CompiledProgram>;

    /**
     * Look up `key`, compiling via `build` on the first request.
     * Concurrent requests for the same key compile exactly once; a
     * `build` that throws propagates to every waiter and the key is
     * released so a later request can retry.
     */
    Ptr getOrCompile(const std::string& key,
                     const std::function<CompiledProgram()>& build);

    /** Cached entry count (compiles in flight included). */
    std::size_t size() const;

    /** Drop every entry. */
    void clear();

    /**
     * Canonical key for a victim compilation: workload x scheme x
     * device.  The device participates so cross-board sweeps can never
     * alias, even though today's pipeline is device-independent.
     */
    static std::string makeKey(const std::string& workload, Scheme scheme,
                               const std::string& deviceName);

    /** Process-wide instance shared by the bench harnesses. */
    static CompileCache& global();

  private:
    mutable std::shared_mutex mutex_;
    std::map<std::string, std::shared_future<Ptr>> entries_;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_COMPILE_CACHE_HPP_
