#include "compiler/cfg.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "ir/disassembler.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;

Cfg
Cfg::build(const Program& prog)
{
    Cfg cfg;
    if (prog.empty())
        return cfg;

    const std::size_t n = prog.size();

    // 1. Find leaders.
    std::set<std::size_t> leaders;
    leaders.insert(0);
    for (std::size_t i = 0; i < n; ++i) {
        const Instr& ins = prog.at(i);
        if (ir::isCondBranch(ins.op) || ins.op == Opcode::kJmp ||
            ins.op == Opcode::kCall) {
            leaders.insert(prog.labelPos(ins.target));
        }
        if (ir::isTerminator(ins.op) && i + 1 < n)
            leaders.insert(i + 1);
    }

    // 2. Carve blocks.
    std::vector<std::size_t> leader_list(leaders.begin(), leaders.end());
    cfg.instrBlock_.assign(n, -1);
    for (std::size_t b = 0; b < leader_list.size(); ++b) {
        BasicBlock block;
        block.first = leader_list[b];
        block.last = (b + 1 < leader_list.size() ? leader_list[b + 1] - 1
                                                 : n - 1);
        for (std::size_t i = block.first; i <= block.last; ++i)
            cfg.instrBlock_[i] = static_cast<BlockId>(b);
        cfg.blocks_.push_back(block);
    }

    // 3. Edges.
    auto add_edge = [&cfg](BlockId from, BlockId to) {
        cfg.blocks_[static_cast<std::size_t>(from)].succs.push_back(to);
        cfg.blocks_[static_cast<std::size_t>(to)].preds.push_back(from);
    };
    for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
        const BasicBlock& block = cfg.blocks_[b];
        const Instr& term = prog.at(block.last);
        BlockId id = static_cast<BlockId>(b);
        switch (term.op) {
          case Opcode::kJmp:
            add_edge(id, cfg.instrBlock_[prog.labelPos(term.target)]);
            break;
          case Opcode::kCall:
            add_edge(id, cfg.instrBlock_[prog.labelPos(term.target)]);
            if (block.last + 1 < n)
                add_edge(id, cfg.instrBlock_[block.last + 1]);
            break;
          case Opcode::kHalt:
          case Opcode::kRet:
            break;
          default:
            if (ir::isCondBranch(term.op)) {
                add_edge(id, cfg.instrBlock_[prog.labelPos(term.target)]);
                if (block.last + 1 < n)
                    add_edge(id, cfg.instrBlock_[block.last + 1]);
            } else if (block.last + 1 < n) {
                // Fall-through (block ended because next instr is a leader).
                add_edge(id, cfg.instrBlock_[block.last + 1]);
            }
            break;
        }
    }

    // Deduplicate edges (a conditional branch to the fall-through point
    // would otherwise produce a double edge).
    for (auto& block : cfg.blocks_) {
        auto dedup = [](std::vector<BlockId>& v) {
            std::vector<BlockId> seen;
            for (BlockId id : v)
                if (std::find(seen.begin(), seen.end(), id) == seen.end())
                    seen.push_back(id);
            v = std::move(seen);
        };
        dedup(block.succs);
        dedup(block.preds);
    }

    // 4. Reverse post-order + back-edge (loop header) detection.
    std::vector<int> state(cfg.blocks_.size(), 0);  // 0=new 1=open 2=done
    cfg.loopHeader_.assign(cfg.blocks_.size(), false);
    std::vector<BlockId> postorder;
    std::function<void(BlockId)> dfs = [&](BlockId id) {
        state[static_cast<std::size_t>(id)] = 1;
        for (BlockId succ : cfg.blocks_[static_cast<std::size_t>(id)].succs) {
            int s = state[static_cast<std::size_t>(succ)];
            if (s == 0)
                dfs(succ);
            else if (s == 1)
                cfg.loopHeader_[static_cast<std::size_t>(succ)] = true;
        }
        state[static_cast<std::size_t>(id)] = 2;
        postorder.push_back(id);
    };
    dfs(cfg.entry());
    cfg.rpo_.assign(postorder.rbegin(), postorder.rend());

    return cfg;
}

bool
Cfg::isLoopHeader(BlockId target) const
{
    return loopHeader_.at(static_cast<std::size_t>(target));
}

std::string
Cfg::toDot(const Program& prog) const
{
    std::ostringstream os;
    os << "digraph \"" << prog.name() << "\" {\n  node [shape=box];\n";
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        os << "  B" << b << " [label=\"B" << b << "\\n";
        for (std::size_t i = blocks_[b].first; i <= blocks_[b].last; ++i)
            os << i << ": " << ir::formatInstr(prog, prog.at(i)) << "\\l";
        os << "\"];\n";
        for (BlockId succ : blocks_[b].succs)
            os << "  B" << b << " -> B" << succ << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace gecko::compiler
