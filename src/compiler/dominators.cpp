#include "compiler/dominators.hpp"

#include <algorithm>

namespace gecko::compiler {

Dominators
Dominators::build(const Cfg& cfg)
{
    Dominators dom;
    const std::size_t n = cfg.numBlocks();
    dom.idom_.assign(n, -1);
    if (n == 0)
        return dom;

    // Map block -> RPO position for the intersect walk.
    std::vector<int> rpo_pos(n, -1);
    const auto& rpo = cfg.reversePostOrder();
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_pos[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);

    dom.idom_[static_cast<std::size_t>(cfg.entry())] = cfg.entry();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo_pos[static_cast<std::size_t>(a)] >
                   rpo_pos[static_cast<std::size_t>(b)])
                a = dom.idom_[static_cast<std::size_t>(a)];
            while (rpo_pos[static_cast<std::size_t>(b)] >
                   rpo_pos[static_cast<std::size_t>(a)])
                b = dom.idom_[static_cast<std::size_t>(b)];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == cfg.entry())
                continue;
            BlockId new_idom = -1;
            for (BlockId pred : cfg.block(b).preds) {
                if (dom.idom_[static_cast<std::size_t>(pred)] == -1)
                    continue;  // pred not yet processed/unreachable
                new_idom = (new_idom == -1) ? pred
                                            : intersect(new_idom, pred);
            }
            if (new_idom != -1 &&
                dom.idom_[static_cast<std::size_t>(b)] != new_idom) {
                dom.idom_[static_cast<std::size_t>(b)] = new_idom;
                changed = true;
            }
        }
    }
    return dom;
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    if (a == b)
        return true;
    BlockId cur = b;
    while (true) {
        BlockId up = idom_.at(static_cast<std::size_t>(cur));
        if (up == -1)
            return false;
        if (up == cur)
            return false;  // reached the entry without meeting `a`
        if (up == a)
            return true;
        cur = up;
    }
}

bool
Dominators::dominatesInstr(const Cfg& cfg, std::size_t i, std::size_t j) const
{
    BlockId bi = cfg.blockOf(i);
    BlockId bj = cfg.blockOf(j);
    if (bi == bj)
        return i <= j;
    return dominates(bi, bj);
}

}  // namespace gecko::compiler
