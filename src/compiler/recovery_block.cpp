#include "compiler/recovery_block.hpp"

#include <algorithm>
#include <set>

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Reg;

namespace {

/** Is `ins` re-executable inside a recovery block? */
bool
safeSliceInstr(const RecoveryBuilder::Context& ctx, std::size_t idx)
{
    const Instr& ins = ctx.prog.at(idx);
    switch (ins.op) {
      case Opcode::kMovi:
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kNeg:
        return true;
      case Opcode::kLoad:
        return ctx.aa.isReadOnlyLoad(idx);
      default:
        return ir::isBinaryAlu(ins.op);
    }
}

class SliceWalker
{
  public:
    SliceWalker(const RecoveryBuilder::Context& ctx, std::size_t boundary,
                RegMask live_in, int max_instrs)
        : ctx_(ctx), boundary_(boundary), liveIn_(live_in),
          maxInstrs_(max_instrs) {}

    /**
     * Ensure the value register `s` held just before instruction `point`
     * executed is reproducible.  Fills slice_/terminals_.
     */
    bool
    need(Reg s, std::size_t point, int depth, bool allow_terminal = true)
    {
        if (depth > 24)
            return false;

        const auto& defs_p = ctx_.rdefs.defsAt(point, s);
        const auto& defs_b = ctx_.rdefs.defsAt(boundary_, s);
        if (allow_terminal && defs_p == defs_b && (liveIn_ & regBit(s))) {
            terminals_.insert(s);
            return true;
        }

        std::int32_t d = ctx_.rdefs.uniqueDefAt(point, s);
        if (d < 0)
            return false;  // ambiguous or entry definition
        std::size_t def = static_cast<std::size_t>(d);
        if (!ctx_.dom.dominatesInstr(ctx_.cfg, def, boundary_))
            return false;
        if (!safeSliceInstr(ctx_, def))
            return false;
        if (slice_.count(def))
            return true;
        if (static_cast<int>(slice_.size()) >= maxInstrs_)
            return false;
        slice_.insert(def);
        for (Reg src : ir::regsRead(ctx_.prog.at(def))) {
            if (!need(src, def, depth + 1))
                return false;
        }
        return true;
    }

    /**
     * Finalize: order slice by instruction index and verify that every
     * non-terminal operand is produced by an earlier slice instruction and
     * that no slice instruction clobbers a terminal.
     */
    std::optional<RecoverySpec>
    finalize(Reg target)
    {
        std::vector<std::size_t> order(slice_.begin(), slice_.end());
        std::sort(order.begin(), order.end());

        std::set<Reg> defined;
        for (std::size_t idx : order) {
            const Instr& ins = ctx_.prog.at(idx);
            for (Reg src : ir::regsRead(ins)) {
                if (terminals_.count(src))
                    continue;
                if (!defined.count(src))
                    return std::nullopt;  // ordering not realizable
            }
            if (terminals_.count(ins.rd))
                return std::nullopt;  // would clobber a restored input
            defined.insert(ins.rd);
        }
        if (!defined.count(target))
            return std::nullopt;

        RecoverySpec spec;
        spec.reg = target;
        for (std::size_t idx : order)
            spec.code.push_back(ctx_.prog.at(idx));
        spec.dependsOn.assign(terminals_.begin(), terminals_.end());
        return spec;
    }

  private:
    const RecoveryBuilder::Context& ctx_;
    std::size_t boundary_;
    RegMask liveIn_;
    int maxInstrs_;
    std::set<std::size_t> slice_;
    std::set<Reg> terminals_;
};

}  // namespace

std::optional<RecoverySpec>
RecoveryBuilder::build(const Context& ctx, std::size_t boundaryIdx, Reg reg,
                       RegMask liveIn, int maxInstrs)
{
    // A register never written since boot holds 0 at the boundary (the
    // machine boots with a zeroed register file and rollback re-zeroes
    // volatile state), so an entry-only definition prunes to `movi reg,0`.
    const auto& defs_b = ctx.rdefs.defsAt(boundaryIdx, reg);
    if (defs_b.size() == 1 && defs_b[0] == ReachingDefs::kEntryDef) {
        RecoverySpec spec;
        spec.reg = reg;
        Instr mv;
        mv.op = Opcode::kMovi;
        mv.rd = reg;
        mv.imm = 0;
        spec.code.push_back(mv);
        return spec;
    }

    SliceWalker walker(ctx, boundaryIdx, liveIn, maxInstrs);
    // The root register must expand into its defining slice; it cannot
    // terminate at itself.
    if (!walker.need(reg, boundaryIdx, 0, /*allow_terminal=*/false))
        return std::nullopt;
    return walker.finalize(reg);
}

}  // namespace gecko::compiler
