#ifndef GECKO_COMPILER_PIPELINE_HPP_
#define GECKO_COMPILER_PIPELINE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/liveness.hpp"
#include "ir/program.hpp"

/**
 * @file
 * The GECKO compilation pipeline and its output metadata.
 *
 * The pipeline mirrors Section VI of the paper:
 *   1. idempotent region formation (cut memory anti-dependences, loop
 *      headers, calls and I/O),
 *   2. WCET analysis and splitting of regions that cannot finish within
 *      one worst-case power-on period,
 *   3. re-run of region formation (splitting may have broken a WARAW
 *      protection),
 *   4. checkpoint-store insertion for every region live-in register,
 *   5. checkpoint pruning via recovery blocks,
 *   6. double-buffer slot assignment by 2-colouring, fixing join-point
 *      conflicts with additional checkpoint regions.
 *
 * Region entry layout in the emitted code is
 * `kCkpt* kBoundary` — the checkpoint stores execute first and the
 * boundary *commits* the region (atomically stores the region id and
 * flushes staged I/O).  A power failure inside the entry sequence
 * therefore rolls back to the previous committed region, whose slots are
 * intact thanks to the 2-colouring.
 */

namespace gecko::compiler {

/** Recovery scheme variants evaluated by the paper. */
enum class Scheme {
    /// Roll-forward JIT checkpointing only (the CTPL/NVP baseline).
    kNvp,
    /// Pure compiler rollback, fine-grained regions, no pruning ([87]).
    kRatchet,
    /// GECKO with the pruning optimisation disabled (Fig. 11 ablation).
    kGeckoNoPrune,
    /// Full GECKO: hybrid JIT + pruned idempotent processing.
    kGecko,
};

/** @return human-readable scheme name. */
const char* schemeName(Scheme scheme);

/** One remaining (unpruned) checkpoint store. */
struct CkptSpec {
    ir::Reg reg = 0;
    /// Static double-buffer colour in [0, kMaxSlots).
    int slot = 0;
    /// Index of the kCkpt instruction in the final program.
    std::size_t instrIdx = 0;
};

/**
 * A recovery block: straight-line code that recomputes one pruned
 * register's region-entry value from already-restored registers.
 */
struct RecoverySpec {
    ir::Reg reg = 0;
    /// Slice instructions in execution order (ALU/movi/read-only loads).
    std::vector<ir::Instr> code;
    /**
     * Other pruned registers of the same region whose recovery blocks
     * must run before this one (the slice terminates at them).
     */
    std::vector<ir::Reg> dependsOn;
};

/** Static metadata of one idempotent region. */
struct RegionInfo {
    int id = 0;
    /// Index of the first instruction of the entry sequence (first kCkpt,
    /// or the kBoundary itself when the region checkpoints nothing).
    std::size_t entryIdx = 0;
    /// Index of the committing kBoundary instruction.
    std::size_t boundaryIdx = 0;
    /// Registers live at region entry (= checkpointed ∪ pruned).
    RegMask liveIn = 0;
    /// Restore table: which slot holds each unpruned live-in.
    std::vector<CkptSpec> ckpts;
    /// Recovery blocks for pruned live-ins, in dependency order.
    std::vector<RecoverySpec> recovery;
    /**
     * For conflict-fix regions: id of the region whose restore table
     * covers registers this region does not checkpoint itself (sound
     * because nothing executes between the two commits); -1 otherwise.
     */
    int parentId = -1;
    /// Worst-case cycles from the entry sequence to the next boundary.
    long wcetCycles = 0;
};

/** Configuration of the compilation pipeline. */
struct PipelineConfig {
    /**
     * Worst-case power-on budget per region, in cycles.  Regions whose
     * WCET exceeds this bound are split (paper §VI-B step 3/4).
     */
    long maxRegionCycles = 20000;
    /// Disable pruning (kGeckoNoPrune uses this internally).
    bool enablePruning = true;
    /// Disable only the clean-checkpoint elimination half of pruning
    /// (ablation knob; no effect when enablePruning is false).
    bool enableCleanElim = true;
    /// Hard cap on conflict-fix iterations in slot colouring.
    int maxColoringFixes = 64;
};

/** Aggregate static statistics of a compilation. */
struct CompileStats {
    int numRegions = 0;
    /// Checkpoint stores before pruning.
    int ckptsBeforePruning = 0;
    /// Checkpoint stores in the final binary (incl. colouring fix-ups).
    int ckptsAfterPruning = 0;
    int recoveryBlocks = 0;
    /// Total instructions across all recovery blocks.
    int recoveryInstrs = 0;
    /// Checkpoint stores removed by clean elimination (value already in
    /// the inherited slot — the degenerate pruning case).
    int cleanEliminated = 0;
    /// Instructions in the original program.
    int originalInstrs = 0;
    /// Instructions in the final program (code-size overhead numerator).
    int finalInstrs = 0;
    /// Entries in the runtime's region lookup table (≈ metadata cost).
    int lookupTableWords = 0;

    /** Fraction of checkpoint stores removed by pruning, in [0,1]. */
    double pruningRatio() const
    {
        if (ckptsBeforePruning == 0)
            return 0.0;
        return 1.0 - static_cast<double>(ckptsAfterPruning) /
                         static_cast<double>(ckptsBeforePruning);
    }

    /** Binary size overhead vs. the uninstrumented program, in [0,∞). */
    double codeSizeOverhead() const
    {
        if (originalInstrs == 0)
            return 0.0;
        return static_cast<double>(finalInstrs - originalInstrs) /
               static_cast<double>(originalInstrs);
    }
};

/** Result of compiling a program for one scheme. */
struct CompiledProgram {
    ir::Program prog;
    Scheme scheme = Scheme::kNvp;
    std::vector<RegionInfo> regions;
    CompileStats stats;
    /**
     * The worst-case power-on budget the regions were sized against
     * (= PipelineConfig::maxRegionCycles; 0 for NVP/Ratchet).  Doubles
     * as the runtime's timer-detection bound: a legitimate power-on
     * period is at least this long by system design.
     */
    long minOnPeriodCycles = 0;

    /** Region metadata by id. */
    const RegionInfo& region(int id) const
    {
        return regions.at(static_cast<std::size_t>(id));
    }
};

/**
 * Compile `prog` for `scheme`.
 *
 * kNvp returns the program untouched (no regions).  kRatchet forms
 * fine-grained idempotent regions and checkpoints every live-in with no
 * pruning and no WCET splitting (the paper notes Ratchet regions can
 * exceed a charge cycle, which is exactly its DoS failure mode).
 * kGeckoNoPrune/kGecko run the full pipeline above.
 *
 * @throws std::runtime_error on programs the pipeline cannot handle
 *         (e.g. a single instruction exceeding the WCET bound).
 */
CompiledProgram compile(const ir::Program& prog, Scheme scheme,
                        const PipelineConfig& config = {});

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_PIPELINE_HPP_
