#ifndef GECKO_COMPILER_WCET_HPP_
#define GECKO_COMPILER_WCET_HPP_

#include <cstddef>
#include <utility>
#include <vector>

#include "ir/program.hpp"

/**
 * @file
 * Loop-aware worst-case execution time analysis per idempotent region
 * (paper §VI-B steps 3 and 4, following the loop-bound-aware WCET of
 * [12]).
 *
 * Regions may span whole *counted* loops: a boundary-free loop with a
 * static trip bound contributes bound × iteration-cost to the longest
 * path.  Loops that contain a boundary — or whose trip count cannot be
 * bounded — must start with a header boundary (enforceLoopInvariant
 * inserts it), so every cyclic path crosses a boundary and the longest
 * path of each region is finite.  Regions whose WCET exceeds the
 * power-on budget are split: first by demoting an embedded counted loop
 * to per-iteration regions (header boundary), then by straight-line
 * splitting.
 */

namespace gecko::compiler {

/** WCET analysis and enforcement. */
class Wcet
{
  public:
    /**
     * Worst-case cycles of every region, as pairs of
     * (boundary instruction index, cycles from the boundary up to — but
     * excluding — the next boundary on any path).
     *
     * Requires the loop invariant (see enforceLoopInvariant).
     * @throws std::runtime_error on boundary-free unbounded cycles.
     */
    static std::vector<std::pair<std::size_t, long>>
    analyze(const ir::Program& prog);

    /**
     * Worst-case cycles starting at instruction `idx` until the next
     * boundary (0 if `idx` is itself a boundary).
     */
    static long wcetFrom(const ir::Program& prog, std::size_t idx);

    /**
     * Insert header boundaries for loops that need them: loops with no
     * derivable trip bound, and loops already containing an internal
     * boundary (whose cyclic paths must all cross one).
     * @return the number of boundaries inserted.
     */
    static int enforceLoopInvariant(ir::Program& prog);

    /**
     * Split regions until every region's WCET is at most `bound` cycles.
     * Requires the loop invariant.
     * @return the number of boundaries inserted.
     * @throws std::runtime_error if the bound cannot be met.
     */
    static int enforce(ir::Program& prog, long bound);
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_WCET_HPP_
