#include "compiler/slot_coloring.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "compiler/cfg.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;
using ir::Reg;

namespace {

/** Sentinel "no checkpoint yet" in reaching sets. */
constexpr long kNoCkpt = -1;

/**
 * Reaching-checkpoint dataflow.  For every kCkpt instruction (not in
 * `removed`), the set of most-recent kept checkpoints of the same
 * register that can reach it, each tagged with whether the register may
 * have been redefined since (dirty).  kNoCkpt entries mark paths from
 * the program entry with no prior checkpoint.
 */
class ReachingCkpts
{
  public:
    using PerReg = std::map<long, bool>;  // kept ckpt idx / kNoCkpt -> dirty
    using State = std::map<Reg, PerReg>;

    ReachingCkpts(const Program& prog, const Cfg& cfg,
                  const std::set<std::size_t>& removed)
        : prog_(prog), cfg_(cfg), removed_(removed)
    {
        const std::size_t nb = cfg.numBlocks();
        in_.resize(nb);
        // Entry: every register starts with "no checkpoint".
        State entry;
        for (int r = 0; r < ir::kNumRegs; ++r)
            entry[static_cast<Reg>(r)] = {{kNoCkpt, false}};
        in_[static_cast<std::size_t>(cfg.entry())] = entry;

        bool changed = true;
        while (changed) {
            changed = false;
            for (BlockId b : cfg.reversePostOrder()) {
                std::size_t bi = static_cast<std::size_t>(b);
                State out = transfer(in_[bi], cfg.block(b), nullptr);
                for (BlockId succ : cfg.block(b).succs) {
                    if (merge(in_[static_cast<std::size_t>(succ)], out))
                        changed = true;
                }
            }
        }
    }

    /** Visit every kept checkpoint with its reaching set. */
    template <typename Fn>
    void
    forEachCkpt(Fn&& fn) const
    {
        for (std::size_t b = 0; b < cfg_.numBlocks(); ++b) {
            State s = in_[b];
            transfer(s, cfg_.block(static_cast<BlockId>(b)), &fn);
        }
    }

  private:
    static bool
    merge(State& dst, const State& src)
    {
        bool changed = false;
        for (const auto& [r, per] : src) {
            for (const auto& [idx, dirty] : per) {
                auto [it, inserted] = dst[r].emplace(idx, dirty);
                if (inserted) {
                    changed = true;
                } else if (dirty && !it->second) {
                    it->second = true;
                    changed = true;
                }
            }
        }
        return changed;
    }

    template <typename Fn>
    State
    transfer(State s, const BasicBlock& block, Fn* visit) const
    {
        for (std::size_t i = block.first; i <= block.last; ++i) {
            const Instr& ins = prog_.at(i);
            if (ins.op == Opcode::kCkpt) {
                if (removed_.count(i))
                    continue;  // transparent
                Reg r = ins.rs1;
                if (visit)
                    (*visit)(i, ins, s[r]);
                s[r] = {{static_cast<long>(i), false}};
            } else if (ir::writesReg(ins)) {
                Reg rd = (ins.op == Opcode::kCall) ? ir::kLinkReg : ins.rd;
                for (auto& [idx, dirty] : s[rd])
                    dirty = true;
            }
        }
        return s;
    }

    // Overload for the fixpoint phase (no visitor).
    State
    transfer(const State& s, const BasicBlock& block, std::nullptr_t) const
    {
        State copy = s;
        for (std::size_t i = block.first; i <= block.last; ++i) {
            const Instr& ins = prog_.at(i);
            if (ins.op == Opcode::kCkpt) {
                if (removed_.count(i))
                    continue;
                copy[ins.rs1] = {{static_cast<long>(i), false}};
            } else if (ir::writesReg(ins)) {
                Reg rd = (ins.op == Opcode::kCall) ? ir::kLinkReg : ins.rd;
                for (auto& [idx, dirty] : copy[rd])
                    dirty = true;
            }
        }
        return copy;
    }

    const Program& prog_;
    const Cfg& cfg_;
    const std::set<std::size_t>& removed_;
    std::vector<State> in_;
};

/** Conflict edges between kept checkpoints (dirty consecutive pairs). */
struct CkptGraph {
    std::map<Reg, std::map<std::size_t, std::set<std::size_t>>> adj;
    std::map<int, std::set<Reg>> selfConflicts;  // region id -> registers
};

CkptGraph
buildGraph(const Program& prog, const std::set<std::size_t>& removed)
{
    Cfg cfg = Cfg::build(prog);
    ReachingCkpts reach(prog, cfg, removed);
    CkptGraph graph;
    reach.forEachCkpt([&](std::size_t i, const Instr& ins,
                          const ReachingCkpts::PerReg& entries) {
        Reg r = ins.rs1;
        for (const auto& [prev, dirty] : entries) {
            if (prev == kNoCkpt || !dirty)
                continue;
            auto p = static_cast<std::size_t>(prev);
            graph.adj[r][p].insert(i);
            graph.adj[r][i].insert(p);
            if (p == i)
                graph.selfConflicts[ins.target].insert(r);
        }
    });
    return graph;
}

}  // namespace

SlotColoring::Result
SlotColoring::run(Program& prog, std::vector<RegionSeed>& seeds,
                  bool cleanElim)
{
    Result result;
    std::set<std::size_t> removed;

    // ------------------------------------------------------------------
    // Phase 1: break self-conflicts with fix regions.
    // ------------------------------------------------------------------
    for (int round = 0; round < 8; ++round) {
        CkptGraph graph = buildGraph(prog, removed);
        if (graph.selfConflicts.empty())
            break;
        if (round == 7)
            throw std::runtime_error(
                "slot colouring: self-conflicts did not converge");

        std::map<int, std::size_t> boundary_of;
        for (std::size_t i = 0; i < prog.size(); ++i)
            if (prog.at(i).op == Opcode::kBoundary)
                boundary_of[prog.at(i).imm] = i;

        std::vector<std::pair<std::size_t, int>> todo;
        for (const auto& [id, regs] : graph.selfConflicts)
            todo.emplace_back(boundary_of.at(id), id);
        std::sort(todo.rbegin(), todo.rend());

        for (const auto& [bidx, id] : todo) {
            int new_id = static_cast<int>(seeds.size());
            const auto& regs = graph.selfConflicts.at(id);

            Instr boundary;
            boundary.op = Opcode::kBoundary;
            boundary.imm = new_id;
            prog.insertBefore(bidx + 1, boundary, /*before_label=*/false);
            for (auto it = regs.rbegin(); it != regs.rend(); ++it) {
                Instr ck;
                ck.op = Opcode::kCkpt;
                ck.rs1 = *it;
                ck.imm = -1;
                ck.target = new_id;
                prog.insertBefore(bidx + 1, ck, /*before_label=*/false);
                ++result.fixCkpts;
            }

            RegionSeed seed;
            seed.id = new_id;
            seed.liveIn = seeds.at(static_cast<std::size_t>(id)).liveIn;
            seed.parentId = id;
            seeds.push_back(std::move(seed));
            ++result.fixRegions;
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: clean-checkpoint elimination (fixpoint).
    // ------------------------------------------------------------------
    // inheritFrom[removedCkpt] = the kept checkpoint whose slot the
    // region inherits (may chain through later removals).
    std::map<std::size_t, std::size_t> inherit_from;
    if (cleanElim) {
        // Fix-region checkpoints exist precisely to break self-conflicts;
        // never eliminate them.
        std::set<std::size_t> protected_ckpts;
        auto is_fix_region = [&seeds](int id) {
            return id >= 0 && static_cast<std::size_t>(id) < seeds.size() &&
                   seeds[static_cast<std::size_t>(id)].parentId >= 0;
        };
        for (std::size_t i = 0; i < prog.size(); ++i) {
            const Instr& ins = prog.at(i);
            if (ins.op == Opcode::kCkpt && is_fix_region(ins.target))
                protected_ckpts.insert(i);
        }

        auto run_elim = [&]() {
            bool changed = true;
            while (changed) {
                changed = false;
                Cfg cfg = Cfg::build(prog);
                ReachingCkpts reach(prog, cfg, removed);
                std::map<std::size_t, std::size_t> candidates;
                reach.forEachCkpt([&](std::size_t i, const Instr& ins,
                                      const ReachingCkpts::PerReg&
                                          entries) {
                    (void)ins;
                    if (removed.count(i) || protected_ckpts.count(i))
                        return;
                    if (entries.empty())
                        return;
                    std::set<long> others;
                    for (const auto& [prev, dirty] : entries) {
                        if (dirty)
                            return;  // value may differ: keep
                        if (prev == kNoCkpt)
                            return;  // no slot to inherit on some path
                        if (prev != static_cast<long>(i))
                            others.insert(prev);
                    }
                    if (others.size() != 1)
                        return;  // ambiguous inheritance: keep
                    candidates.emplace(
                        i, static_cast<std::size_t>(*others.begin()));
                });
                for (const auto& [c, k] : candidates) {
                    removed.insert(c);
                    inherit_from[c] = k;
                    changed = true;
                }
            }
        };
        run_elim();

        // Removal can make two dynamic instances of one kept checkpoint
        // consecutive with a redefinition in between — a self-conflict
        // phase 1 never saw.  Detect and conservatively un-remove every
        // eliminated checkpoint of the affected registers.
        for (int round = 0; round < 8; ++round) {
            CkptGraph check = buildGraph(prog, removed);
            std::set<Reg> bad;
            for (const auto& [id, regs] : check.selfConflicts)
                bad.insert(regs.begin(), regs.end());
            if (bad.empty())
                break;
            if (round == 7)
                throw std::runtime_error(
                    "clean elimination: self-conflict repair diverged");
            for (auto it = removed.begin(); it != removed.end();) {
                if (bad.count(prog.at(*it).rs1)) {
                    inherit_from.erase(*it);
                    protected_ckpts.insert(*it);
                    it = removed.erase(it);
                } else {
                    ++it;
                }
            }
            run_elim();
        }
        result.cleanEliminated = static_cast<int>(removed.size());
    }

    // ------------------------------------------------------------------
    // Phase 3: greedy colouring of the kept checkpoints.
    // ------------------------------------------------------------------
    CkptGraph graph = buildGraph(prog, removed);
    std::map<std::size_t, int> color;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (prog.at(i).op != Opcode::kCkpt || removed.count(i))
            continue;
        Reg r = prog.at(i).rs1;
        std::set<int> used;
        auto reg_it = graph.adj.find(r);
        if (reg_it != graph.adj.end()) {
            auto node_it = reg_it->second.find(i);
            if (node_it != reg_it->second.end()) {
                for (std::size_t neigh : node_it->second) {
                    auto c = color.find(neigh);
                    if (c != color.end())
                        used.insert(c->second);
                }
            }
        }
        int slot = 0;
        while (used.count(slot))
            ++slot;
        if (slot >= kMaxSlots)
            throw std::runtime_error(
                "slot colouring: more than kMaxSlots colours required");
        color[i] = slot;
        prog.at(i).imm = slot;
        result.slotsUsed = std::max(result.slotsUsed, slot + 1);
    }

    // ------------------------------------------------------------------
    // Phase 4: emit inherited restore entries and erase removed stores.
    // ------------------------------------------------------------------
    for (const auto& [c, k0] : inherit_from) {
        std::size_t k = k0;
        while (removed.count(k))
            k = inherit_from.at(k);
        InheritedCkpt entry;
        entry.regionId = prog.at(c).target;
        entry.reg = prog.at(c).rs1;
        entry.slot = color.at(k);
        result.inherited.push_back(entry);
    }
    for (auto it = removed.rbegin(); it != removed.rend(); ++it)
        prog.erase(*it);
    return result;
}

}  // namespace gecko::compiler
