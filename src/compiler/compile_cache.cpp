#include "compiler/compile_cache.hpp"

namespace gecko::compiler {

CompileCache::Ptr
CompileCache::getOrCompile(const std::string& key,
                           const std::function<CompiledProgram()>& build)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            std::shared_future<Ptr> fut = it->second;
            lock.unlock();
            return fut.get();
        }
    }

    std::promise<Ptr> promise;
    std::shared_future<Ptr> fut = promise.get_future().share();
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        auto [it, inserted] = entries_.emplace(key, fut);
        if (!inserted) {
            // Lost the install race: wait on the winner's compile.
            std::shared_future<Ptr> winner = it->second;
            lock.unlock();
            return winner.get();
        }
    }
    // Compile outside the lock so unrelated keys proceed concurrently.
    try {
        promise.set_value(
            std::make_shared<const CompiledProgram>(build()));
    } catch (...) {
        promise.set_exception(std::current_exception());
        {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            entries_.erase(key);
        }
        fut.get();  // rethrows for this caller
    }
    return fut.get();
}

std::size_t
CompileCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return entries_.size();
}

void
CompileCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_.clear();
}

std::string
CompileCache::makeKey(const std::string& workload, Scheme scheme,
                      const std::string& deviceName)
{
    return workload + '|' + schemeName(scheme) + '|' + deviceName;
}

CompileCache&
CompileCache::global()
{
    static CompileCache cache;
    return cache;
}

}  // namespace gecko::compiler
