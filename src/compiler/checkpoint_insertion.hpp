#ifndef GECKO_COMPILER_CHECKPOINT_INSERTION_HPP_
#define GECKO_COMPILER_CHECKPOINT_INSERTION_HPP_

#include <vector>

#include "compiler/liveness.hpp"
#include "compiler/pipeline.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Checkpoint-store insertion (paper §VI-B step 5).
 *
 * After the region boundaries are final, every region receives an entry
 * sequence `kCkpt*  kBoundary`: one checkpoint store per register live at
 * the region entry, followed by the committing boundary.  Rolling back to
 * a committed region therefore only ever needs that region's own entry
 * checkpoints (plus recovery blocks once pruning ran).
 */

namespace gecko::compiler {

/** Intermediate per-region record threaded through the late passes. */
struct RegionSeed {
    int id = 0;
    RegMask liveIn = 0;
    /// Filled by CheckpointPruning, in dependency order.
    std::vector<RecoverySpec> recovery;
    /**
     * For conflict-fix regions inserted by SlotColoring: the region whose
     * restore table covers the registers this region does not checkpoint
     * itself (-1 for ordinary regions).
     */
    int parentId = -1;
};

/** Checkpoint-store insertion pass. */
class CheckpointInsertion
{
  public:
    /**
     * Assign sequential region ids to all kBoundary instructions (program
     * order) and insert a kCkpt for every live-in register immediately
     * before each boundary.
     * @return one RegionSeed per region, indexed by region id.
     */
    static std::vector<RegionSeed> run(ir::Program& prog);
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_CHECKPOINT_INSERTION_HPP_
