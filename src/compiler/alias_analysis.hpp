#ifndef GECKO_COMPILER_ALIAS_ANALYSIS_HPP_
#define GECKO_COMPILER_ALIAS_ANALYSIS_HPP_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "compiler/cfg.hpp"
#include "compiler/liveness.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Memory alias analysis for region formation and checkpoint pruning.
 *
 * The analysis runs a flow-sensitive constant propagation over the CFG to
 * resolve as many load/store addresses as possible to constants (global
 * arrays at fixed addresses resolve fully; pointer-chasing degrades to
 * "unknown").  On top of the constant facts it answers may-alias queries
 * and identifies read-only addresses (never written anywhere in the
 * program), which are the only loads a recovery block may re-execute.
 */

namespace gecko::compiler {

/** Constant-propagation lattice value for one register. */
struct ConstVal {
    enum class Kind : std::uint8_t {
        kTop,     ///< unvisited
        kConst,   ///< known constant
        kBottom,  ///< varies
    };
    Kind kind = Kind::kTop;
    std::uint32_t value = 0;

    static ConstVal top() { return {Kind::kTop, 0}; }
    static ConstVal constant(std::uint32_t v) { return {Kind::kConst, v}; }
    static ConstVal bottom() { return {Kind::kBottom, 0}; }

    bool isConst() const { return kind == Kind::kConst; }
    bool operator==(const ConstVal&) const = default;

    /** Lattice meet. */
    static ConstVal meet(const ConstVal& a, const ConstVal& b);
};

/** May/must-alias verdict. */
enum class AliasVerdict {
    kNoAlias,
    kMayAlias,
    kMustAlias,
};

/** Alias analysis over one program. */
class AliasAnalysis
{
  public:
    /**
     * Analyse `prog`.  The Cfg and ReachingDefs must describe the same
     * program snapshot.
     */
    static AliasAnalysis build(const ir::Program& prog, const Cfg& cfg,
                               const ReachingDefs& rdefs);

    /**
     * Resolved constant address of the kLoad/kStore at `idx`
     * (base + offset), if the base register is a known constant there.
     */
    std::optional<std::uint32_t> constAddr(std::size_t idx) const;

    /** Constant value of register `r` just before instruction `idx`. */
    ConstVal regAt(std::size_t idx, ir::Reg r) const
    {
        return in_.at(idx).at(r);
    }

    /**
     * May the memory access at `a` touch the same word as the access at
     * `b`?  Both must be kLoad or kStore instructions.
     */
    AliasVerdict alias(std::size_t a, std::size_t b) const;

    /**
     * @return true if `addr` is never the target of any store in the
     * program (loads from it are safe to re-execute in recovery blocks).
     * If any store has an unresolvable address the answer is always false.
     */
    bool isReadOnlyAddr(std::uint32_t addr) const;

    /** @return true if the load at `idx` reads a read-only constant addr. */
    bool isReadOnlyLoad(std::size_t idx) const;

  private:
    const ir::Program* prog_ = nullptr;
    const Cfg* cfg_ = nullptr;
    const ReachingDefs* rdefs_ = nullptr;
    // in_[idx][reg]: constant lattice just before instruction idx.
    std::vector<std::array<ConstVal, ir::kNumRegs>> in_;
    std::unordered_set<std::uint32_t> writtenAddrs_;
    bool hasUnknownStore_ = false;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_ALIAS_ANALYSIS_HPP_
