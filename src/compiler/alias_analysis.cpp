#include "compiler/alias_analysis.hpp"

#include <array>

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;
using ir::Reg;

ConstVal
ConstVal::meet(const ConstVal& a, const ConstVal& b)
{
    if (a.kind == Kind::kTop)
        return b;
    if (b.kind == Kind::kTop)
        return a;
    if (a.kind == Kind::kBottom || b.kind == Kind::kBottom)
        return bottom();
    return (a.value == b.value) ? a : bottom();
}

namespace {

using RegLattice = std::array<ConstVal, ir::kNumRegs>;

RegLattice
transferInstr(const Instr& ins, RegLattice env)
{
    auto operand = [&env](const Instr& i) -> ConstVal {
        if (i.useImm)
            return ConstVal::constant(static_cast<std::uint32_t>(i.imm));
        return env[i.rs2];
    };

    switch (ins.op) {
      case Opcode::kMovi:
        env[ins.rd] =
            ConstVal::constant(static_cast<std::uint32_t>(ins.imm));
        break;
      case Opcode::kMov:
        env[ins.rd] = env[ins.rs1];
        break;
      case Opcode::kNot:
      case Opcode::kNeg:
        env[ins.rd] = env[ins.rs1].isConst()
            ? ConstVal::constant(ir::evalUnary(ins.op, env[ins.rs1].value))
            : ConstVal::bottom();
        break;
      case Opcode::kLoad:
      case Opcode::kIn:
        env[ins.rd] = ConstVal::bottom();
        break;
      case Opcode::kCall:
        env[ir::kLinkReg] = ConstVal::bottom();
        break;
      default:
        if (ir::isBinaryAlu(ins.op)) {
            ConstVal a = env[ins.rs1];
            ConstVal b = operand(ins);
            env[ins.rd] = (a.isConst() && b.isConst())
                ? ConstVal::constant(ir::evalBinary(ins.op, a.value, b.value))
                : ConstVal::bottom();
        }
        break;
    }
    return env;
}

}  // namespace

AliasAnalysis
AliasAnalysis::build(const Program& prog, const Cfg& cfg,
                     const ReachingDefs& rdefs)
{
    AliasAnalysis aa;
    aa.prog_ = &prog;
    aa.cfg_ = &cfg;
    aa.rdefs_ = &rdefs;
    const std::size_t n = prog.size();
    aa.in_.resize(n);
    if (n == 0)
        return aa;

    const std::size_t nb = cfg.numBlocks();
    std::vector<RegLattice> block_in(nb), block_out(nb);

    // Entry registers carry unknown values.
    for (auto& v : block_in[static_cast<std::size_t>(cfg.entry())])
        v = ConstVal::bottom();

    auto transfer_block = [&prog](RegLattice env, const BasicBlock& block) {
        for (std::size_t i = block.first; i <= block.last; ++i)
            env = transferInstr(prog.at(i), env);
        return env;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.reversePostOrder()) {
            std::size_t bi = static_cast<std::size_t>(b);
            RegLattice out = transfer_block(block_in[bi], cfg.block(b));
            if (out != block_out[bi]) {
                block_out[bi] = out;
                changed = true;
            }
            for (BlockId succ : cfg.block(b).succs) {
                std::size_t si = static_cast<std::size_t>(succ);
                RegLattice merged;
                for (int r = 0; r < ir::kNumRegs; ++r)
                    merged[static_cast<std::size_t>(r)] = ConstVal::meet(
                        block_in[si][static_cast<std::size_t>(r)],
                        block_out[bi][static_cast<std::size_t>(r)]);
                if (merged != block_in[si]) {
                    block_in[si] = merged;
                    changed = true;
                }
            }
        }
    }

    for (std::size_t b = 0; b < nb; ++b) {
        const BasicBlock& block = cfg.block(static_cast<BlockId>(b));
        RegLattice cur = block_in[b];
        for (std::size_t i = block.first; i <= block.last; ++i) {
            aa.in_[i] = cur;
            cur = transferInstr(prog.at(i), cur);
        }
    }

    // Collect the set of written addresses for read-only classification.
    for (std::size_t i = 0; i < n; ++i) {
        if (prog.at(i).op != Opcode::kStore)
            continue;
        if (auto addr = aa.constAddr(i))
            aa.writtenAddrs_.insert(*addr);
        else
            aa.hasUnknownStore_ = true;
    }
    return aa;
}

std::optional<std::uint32_t>
AliasAnalysis::constAddr(std::size_t idx) const
{
    const Instr& ins = prog_->at(idx);
    if (ins.op != Opcode::kLoad && ins.op != Opcode::kStore)
        return std::nullopt;
    const ConstVal& base = in_.at(idx).at(ins.rs1);
    if (!base.isConst())
        return std::nullopt;
    return base.value + static_cast<std::uint32_t>(ins.imm);
}

AliasVerdict
AliasAnalysis::alias(std::size_t a, std::size_t b) const
{
    auto addr_a = constAddr(a);
    auto addr_b = constAddr(b);
    if (addr_a && addr_b)
        return (*addr_a == *addr_b) ? AliasVerdict::kMustAlias
                                    : AliasVerdict::kNoAlias;

    // Same symbolic base (identical register fed by identical reaching
    // definition) with different offsets cannot collide.
    const Instr& ia = prog_->at(a);
    const Instr& ib = prog_->at(b);
    if (ia.rs1 == ib.rs1) {
        std::int32_t def_a = rdefs_->uniqueDefAt(a, ia.rs1);
        std::int32_t def_b = rdefs_->uniqueDefAt(b, ib.rs1);
        if (def_a != -2 && def_a == def_b) {
            return (ia.imm == ib.imm) ? AliasVerdict::kMustAlias
                                      : AliasVerdict::kNoAlias;
        }
    }
    return AliasVerdict::kMayAlias;
}

bool
AliasAnalysis::isReadOnlyAddr(std::uint32_t addr) const
{
    return !hasUnknownStore_ && writtenAddrs_.count(addr) == 0;
}

bool
AliasAnalysis::isReadOnlyLoad(std::size_t idx) const
{
    if (prog_->at(idx).op != Opcode::kLoad)
        return false;
    auto addr = constAddr(idx);
    return addr && isReadOnlyAddr(*addr);
}

}  // namespace gecko::compiler
