#include "compiler/checkpoint_insertion.hpp"

#include "compiler/cfg.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;

std::vector<RegionSeed>
CheckpointInsertion::run(Program& prog)
{
    Cfg cfg = Cfg::build(prog);
    Liveness live = Liveness::build(prog, cfg);

    // Collect boundaries and assign ids in program order.
    std::vector<std::size_t> boundaries;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (prog.at(i).op == Opcode::kBoundary) {
            prog.at(i).imm = static_cast<std::int32_t>(boundaries.size());
            boundaries.push_back(i);
        }
    }

    std::vector<RegionSeed> seeds(boundaries.size());
    for (std::size_t id = 0; id < boundaries.size(); ++id) {
        seeds[id].id = static_cast<int>(id);
        seeds[id].liveIn = live.liveIn(boundaries[id]);
    }

    // Insert checkpoint stores, highest boundary first so earlier indices
    // stay valid.  Registers are inserted in descending order so the final
    // entry sequence checkpoints r0, r1, ... in ascending order.
    for (std::size_t id = boundaries.size(); id-- > 0;) {
        std::size_t pos = boundaries[id];
        RegMask mask = seeds[id].liveIn;
        for (int r = ir::kNumRegs; r-- > 0;) {
            if (!(mask & regBit(static_cast<ir::Reg>(r))))
                continue;
            Instr ck;
            ck.op = Opcode::kCkpt;
            ck.rs1 = static_cast<ir::Reg>(r);
            ck.imm = -1;  // slot assigned by SlotColoring
            ck.target = static_cast<std::int32_t>(id);
            prog.insertBefore(pos, ck, /*before_label=*/true);
        }
    }
    return seeds;
}

}  // namespace gecko::compiler
