#ifndef GECKO_COMPILER_LIVENESS_HPP_
#define GECKO_COMPILER_LIVENESS_HPP_

#include <array>
#include <cstdint>
#include <vector>

#include "compiler/cfg.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Register liveness and reaching-definition analyses.
 */

namespace gecko::compiler {

/** Bitmask over the 16 architectural registers. */
using RegMask = std::uint16_t;

/** Set bit for register `r`. */
inline RegMask regBit(ir::Reg r) { return static_cast<RegMask>(1u << r); }

/**
 * Per-instruction register liveness.
 *
 * kRet conservatively uses all registers (intra-procedural approximation:
 * whatever the caller holds live must survive the callee).
 */
class Liveness
{
  public:
    /** Run backward liveness dataflow over `prog`/`cfg`. */
    static Liveness build(const ir::Program& prog, const Cfg& cfg);

    /** Registers live immediately before instruction `idx` executes. */
    RegMask liveIn(std::size_t idx) const { return liveIn_.at(idx); }

    /** Registers live immediately after instruction `idx` executes. */
    RegMask liveOut(std::size_t idx) const { return liveOut_.at(idx); }

  private:
    std::vector<RegMask> liveIn_;
    std::vector<RegMask> liveOut_;
};

/**
 * Reaching definitions per register.
 *
 * For every program point (instruction index) and register, the set of
 * instruction indices whose definition of that register may reach the
 * point.  Definition index `kEntryDef` denotes "uninitialised at program
 * entry".
 */
class ReachingDefs
{
  public:
    /** Pseudo definition site meaning "value from before program start". */
    static constexpr std::int32_t kEntryDef = -1;

    static ReachingDefs build(const ir::Program& prog, const Cfg& cfg);

    /**
     * Definitions of register `r` reaching the point just before
     * instruction `idx` executes (sorted, may contain kEntryDef).
     */
    const std::vector<std::int32_t>& defsAt(std::size_t idx, ir::Reg r) const
    {
        return in_.at(idx).at(r);
    }

    /**
     * Convenience: if exactly one real definition of `r` reaches `idx`,
     * return its instruction index; otherwise -2 (ambiguous / entry).
     */
    std::int32_t uniqueDefAt(std::size_t idx, ir::Reg r) const;

  private:
    // in_[idx][reg] -> sorted vector of defining instruction indices.
    std::vector<std::array<std::vector<std::int32_t>, ir::kNumRegs>> in_;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_LIVENESS_HPP_
