#include "compiler/checkpoint_pruning.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "compiler/recovery_block.hpp"

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;
using ir::Reg;

int
CheckpointPruning::run(Program& prog, std::vector<RegionSeed>& seeds,
                       int maxSliceInstrs)
{
    // Analyses over the frozen snapshot; all pruning decisions are made
    // before any instruction is removed.
    Cfg cfg = Cfg::build(prog);
    ReachingDefs rdefs = ReachingDefs::build(prog, cfg);
    AliasAnalysis aa = AliasAnalysis::build(prog, cfg, rdefs);
    Dominators dom = Dominators::build(cfg);
    RecoveryBuilder::Context ctx{prog, cfg, rdefs, aa, dom};

    struct Candidate {
        std::size_t ckptIdx;
        RecoverySpec spec;
    };

    std::vector<std::size_t> removals;

    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (prog.at(i).op != Opcode::kBoundary)
            continue;
        int id = prog.at(i).imm;
        RegionSeed& seed = seeds.at(static_cast<std::size_t>(id));

        // The entry sequence is the contiguous kCkpt run ending at i-1.
        std::size_t start = i;
        while (start > 0 && prog.at(start - 1).op == Opcode::kCkpt)
            --start;

        std::map<Reg, Candidate> candidates;
        for (std::size_t c = start; c < i; ++c) {
            Reg r = prog.at(c).rs1;
            auto spec = RecoveryBuilder::build(ctx, i, r, seed.liveIn,
                                               maxSliceInstrs);
            if (spec)
                candidates.emplace(r, Candidate{c, std::move(*spec)});
        }

        // Resolve dependency cycles among candidates (Kahn's algorithm;
        // whatever cannot be ordered is demoted back to a checkpoint).
        std::set<Reg> pruned;
        for (const auto& [r, cand] : candidates)
            pruned.insert(r);

        std::vector<Reg> order;
        bool progress = true;
        while (progress) {
            progress = false;
            for (const auto& [r, cand] : candidates) {
                if (!pruned.count(r) ||
                    std::find(order.begin(), order.end(), r) != order.end())
                    continue;
                bool ready = true;
                for (Reg dep : cand.spec.dependsOn) {
                    if (pruned.count(dep) &&
                        std::find(order.begin(), order.end(), dep) ==
                            order.end()) {
                        ready = false;
                        break;
                    }
                }
                if (ready) {
                    order.push_back(r);
                    progress = true;
                }
            }
        }
        // Leftovers participate in cycles: demote them.
        for (auto it = candidates.begin(); it != candidates.end();) {
            if (std::find(order.begin(), order.end(), it->first) ==
                order.end()) {
                pruned.erase(it->first);
                it = candidates.erase(it);
            } else {
                ++it;
            }
        }

        for (Reg r : order) {
            Candidate& cand = candidates.at(r);
            // Keep only dependencies on registers that are themselves
            // pruned (restored-from-slot registers impose no ordering).
            auto& deps = cand.spec.dependsOn;
            deps.erase(std::remove_if(deps.begin(), deps.end(),
                                      [&pruned](Reg d) {
                                          return pruned.count(d) == 0;
                                      }),
                       deps.end());
            seed.recovery.push_back(std::move(cand.spec));
            removals.push_back(cand.ckptIdx);
        }
    }

    std::sort(removals.begin(), removals.end());
    for (auto it = removals.rbegin(); it != removals.rend(); ++it)
        prog.erase(*it);
    return static_cast<int>(removals.size());
}

}  // namespace gecko::compiler
