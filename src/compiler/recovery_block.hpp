#ifndef GECKO_COMPILER_RECOVERY_BLOCK_HPP_
#define GECKO_COMPILER_RECOVERY_BLOCK_HPP_

#include <optional>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "compiler/liveness.hpp"
#include "compiler/pipeline.hpp"
#include "ir/program.hpp"

/**
 * @file
 * Recovery-block construction (paper §VI-E).
 *
 * A recovery block for a live-in register r of region Rg is a program
 * slice that recomputes r's region-entry value from registers that are
 * restored from checkpoint slots.  The builder backtracks data
 * dependences from the region boundary; the backtracking terminates at
 *   - a register whose value at its use site provably equals its value at
 *     the boundary and that is itself a live-in of the region (restored
 *     before the block runs), or
 *   - a constant (kMovi) / read-only load.
 * Unique dominating reaching definitions guarantee that the control flow
 * the slice depends on is unambiguous, which is our conservative subset
 * of the paper's control-dependence backtracking.
 */

namespace gecko::compiler {

/** Recovery-block builder over a frozen program snapshot. */
class RecoveryBuilder
{
  public:
    /** Shared analyses over the snapshot. */
    struct Context {
        const ir::Program& prog;
        const Cfg& cfg;
        const ReachingDefs& rdefs;
        const AliasAnalysis& aa;
        const Dominators& dom;
    };

    /**
     * Try to build the recovery block reconstructing `reg` at the region
     * whose kBoundary sits at `boundaryIdx`.
     *
     * @param liveIn   live-in mask of the region (potential terminals).
     * @param maxInstrs fail if the slice would exceed this many
     *                  instructions (the paper reports ~6 on average).
     * @return the block, or nullopt if the checkpoint must be kept.
     */
    static std::optional<RecoverySpec> build(const Context& ctx,
                                             std::size_t boundaryIdx,
                                             ir::Reg reg, RegMask liveIn,
                                             int maxInstrs = 16);
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_RECOVERY_BLOCK_HPP_
