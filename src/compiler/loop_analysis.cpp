#include "compiler/loop_analysis.hpp"

#include <algorithm>
#include <map>

namespace gecko::compiler {

using ir::Instr;
using ir::Opcode;
using ir::Program;
using ir::Reg;

namespace {

/** Collect the natural loop of back edge latch->header. */
void
collectBody(const Cfg& cfg, BlockId header, BlockId latch,
            std::set<BlockId>& body)
{
    body.insert(header);
    std::vector<BlockId> work;
    if (body.insert(latch).second)
        work.push_back(latch);
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId pred : cfg.block(b).preds)
            if (body.insert(pred).second)
                work.push_back(pred);
    }
}

/**
 * Try to derive a trip bound for the counted-loop pattern.
 *
 * Requirements: a single latch whose terminator is a conditional branch
 * back to the header; the counter register is updated by exactly one
 * in-loop `add/sub reg, reg, #const`; every out-of-loop definition
 * reaching the header is a constant kMovi; the comparison bound is a
 * constant at the latch.
 */
std::optional<long>
tripBound(const Program& prog, const Cfg& cfg, const ReachingDefs& rdefs,
          const AliasAnalysis& aa, NaturalLoop& loop)
{
    if (loop.latches.size() != 1)
        return std::nullopt;
    const BasicBlock& latch = cfg.block(loop.latches.front());
    const Instr& br = prog.at(latch.last);
    if (!ir::isCondBranch(br.op))
        return std::nullopt;
    std::size_t header_first = cfg.block(loop.header).first;
    if (prog.labelPos(br.target) != header_first)
        return std::nullopt;  // branch does not continue the loop

    // Identify counter and bound operands: counter varies in the loop,
    // bound is constant at the latch.
    auto const_at = [&](Reg r) -> std::optional<long> {
        ConstVal v = aa.regAt(latch.last, r);
        if (!v.isConst())
            return std::nullopt;
        return static_cast<long>(static_cast<std::int32_t>(v.value));
    };

    for (bool swapped : {false, true}) {
        Reg counter = swapped ? br.rs2 : br.rs1;
        Reg bound_reg = swapped ? br.rs1 : br.rs2;
        auto bound_val = const_at(bound_reg);
        if (!bound_val)
            continue;

        // Exactly one in-loop def of the counter: add/sub imm of itself.
        const Instr* step_instr = nullptr;
        bool multiple = false;
        for (BlockId b : loop.blocks) {
            const BasicBlock& block = cfg.block(b);
            for (std::size_t i = block.first; i <= block.last; ++i) {
                const Instr& ins = prog.at(i);
                if (!ir::writesReg(ins))
                    continue;
                Reg rd = (ins.op == Opcode::kCall) ? ir::kLinkReg : ins.rd;
                if (rd != counter)
                    continue;
                if (step_instr)
                    multiple = true;
                step_instr = &ins;
            }
        }
        if (!step_instr || multiple)
            continue;
        if ((step_instr->op != Opcode::kAdd &&
             step_instr->op != Opcode::kSub) ||
            !step_instr->useImm || step_instr->rs1 != counter ||
            step_instr->imm <= 0)
            continue;
        long step = step_instr->imm;
        bool increasing = step_instr->op == Opcode::kAdd;

        // All out-of-loop reaching defs of the counter at the header must
        // be constants; take the worst (largest trip count) initial value.
        std::optional<long> worst_init;
        bool ok = true;
        for (std::int32_t d : rdefs.defsAt(header_first, counter)) {
            if (d == ReachingDefs::kEntryDef) {
                // Boot value 0 — a valid constant initialiser.
                long init = 0;
                if (!worst_init ||
                    (increasing ? init < *worst_init : init > *worst_init))
                    worst_init = init;
                continue;
            }
            auto di = static_cast<std::size_t>(d);
            if (loop.contains(cfg.blockOf(di)))
                continue;  // the step instruction
            const Instr& def = prog.at(di);
            if (def.op != Opcode::kMovi) {
                ok = false;
                break;
            }
            long init = def.imm;
            if (!worst_init ||
                (increasing ? init < *worst_init : init > *worst_init))
                worst_init = init;
        }
        if (!ok || !worst_init)
            continue;
        long init = *worst_init;
        long bound = *bound_val;

        // Continue-while conditions (the branch *taken* repeats the loop).
        long trips = -1;
        switch (br.op) {
          case Opcode::kBlt:
          case Opcode::kBltu:
            // while (counter < bound), counter increasing
            if (!swapped && increasing)
                trips = bound > init ? (bound - init + step - 1) / step : 1;
            break;
          case Opcode::kBge:
          case Opcode::kBgeu:
            // while (counter >= bound), counter decreasing
            if (!swapped && !increasing)
                trips = init >= bound ? (init - bound) / step + 1 : 1;
            break;
          case Opcode::kBne:
            // while (counter != bound): requires exact landing
            if (increasing && bound > init &&
                (bound - init) % step == 0)
                trips = (bound - init) / step;
            else if (!increasing && init > bound &&
                     (init - bound) % step == 0)
                trips = (init - bound) / step;
            break;
          default:
            break;
        }
        if (trips >= 0 && trips <= LoopAnalysis::kMaxTripBound) {
            loop.counterReg = counter;
            loop.counterInit = init;
            loop.counterStep = increasing ? step : -step;
            return std::max<long>(trips, 1);
        }
    }
    return std::nullopt;
}

}  // namespace

std::vector<NaturalLoop>
LoopAnalysis::analyze(const Program& prog, const Cfg& cfg,
                      const Dominators& dom, const ReachingDefs& rdefs,
                      const AliasAnalysis& aa)
{
    // Back edges: succ edge b -> h where h dominates b.
    std::map<BlockId, NaturalLoop> by_header;
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        BlockId from = static_cast<BlockId>(b);
        for (BlockId to : cfg.block(from).succs) {
            if (!dom.dominates(to, from))
                continue;
            NaturalLoop& loop = by_header[to];
            loop.header = to;
            loop.latches.push_back(from);
            collectBody(cfg, to, from, loop.blocks);
        }
    }

    std::vector<NaturalLoop> loops;
    for (auto& [h, loop] : by_header) {
        loop.tripBound = tripBound(prog, cfg, rdefs, aa, loop);
        loops.push_back(std::move(loop));
    }
    // Innermost first (smaller bodies first).
    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop& a, const NaturalLoop& b) {
                  return a.blocks.size() < b.blocks.size();
              });
    return loops;
}

std::optional<std::pair<long, long>>
RangeAnalysis::addrRange(std::size_t idx) const
{
    const Instr& ins = prog_.at(idx);
    if (ins.op != Opcode::kLoad && ins.op != Opcode::kStore)
        return std::nullopt;
    auto base = valueRange(ins.rs1, idx);
    if (!base)
        return std::nullopt;
    return std::make_pair(base->first + ins.imm, base->second + ins.imm);
}

std::optional<std::pair<long, long>>
RangeAnalysis::valueRange(Reg r, std::size_t point, int depth) const
{
    if (depth > 6)
        return std::nullopt;

    // Known constant at this point.
    ConstVal cv = aa_.regAt(point, r);
    if (cv.isConst()) {
        long v = static_cast<long>(static_cast<std::int32_t>(cv.value));
        return std::make_pair(v, v);
    }

    // The counter of an enclosing counted loop (innermost match wins;
    // loops_ is ordered innermost-first).
    BlockId block = cfg_.blockOf(point);
    for (const NaturalLoop& loop : loops_) {
        if (loop.counterReg == static_cast<int>(r) && loop.tripBound &&
            loop.contains(block))
            return loop.counterRange();
    }

    // Chase a unique dominating definition through simple arithmetic.
    std::int32_t d = rdefs_.uniqueDefAt(point, r);
    if (d < 0)
        return std::nullopt;
    std::size_t def = static_cast<std::size_t>(d);
    if (!dom_.dominatesInstr(cfg_, def, point))
        return std::nullopt;
    const Instr& ins = prog_.at(def);
    switch (ins.op) {
      case Opcode::kMovi:
        return std::make_pair<long, long>(ins.imm, ins.imm);
      case Opcode::kMov:
        return valueRange(ins.rs1, def, depth + 1);
      case Opcode::kAdd:
      case Opcode::kSub: {
        auto a = valueRange(ins.rs1, def, depth + 1);
        if (!a)
            return std::nullopt;
        std::pair<long, long> b;
        if (ins.useImm) {
            b = {ins.imm, ins.imm};
        } else {
            auto rb = valueRange(ins.rs2, def, depth + 1);
            if (!rb)
                return std::nullopt;
            b = *rb;
        }
        if (ins.op == Opcode::kAdd)
            return std::make_pair(a->first + b.first,
                                  a->second + b.second);
        return std::make_pair(a->first - b.second, a->second - b.first);
      }
      case Opcode::kMul: {
        if (!ins.useImm || ins.imm < 0)
            return std::nullopt;
        auto a = valueRange(ins.rs1, def, depth + 1);
        if (!a)
            return std::nullopt;
        return std::make_pair(a->first * ins.imm, a->second * ins.imm);
      }
      default:
        return std::nullopt;
    }
}

bool
LoopAnalysis::hasInternalBoundary(const Program& prog, const Cfg& cfg,
                                  const NaturalLoop& loop)
{
    for (BlockId b : loop.blocks) {
        const BasicBlock& block = cfg.block(b);
        for (std::size_t i = block.first; i <= block.last; ++i)
            if (prog.at(i).op == Opcode::kBoundary)
                return true;
    }
    return false;
}

}  // namespace gecko::compiler
