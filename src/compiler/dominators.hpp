#ifndef GECKO_COMPILER_DOMINATORS_HPP_
#define GECKO_COMPILER_DOMINATORS_HPP_

#include <vector>

#include "compiler/cfg.hpp"

/**
 * @file
 * Dominator tree over a Cfg (Cooper-Harvey-Kennedy iterative algorithm).
 */

namespace gecko::compiler {

/**
 * Dominator information for the blocks of a Cfg.
 *
 * Blocks unreachable from the entry have no immediate dominator and are
 * reported as dominated by nothing (dominates() returns false for them
 * except against themselves).
 */
class Dominators
{
  public:
    /** Compute dominators for `cfg`. */
    static Dominators build(const Cfg& cfg);

    /** Immediate dominator of `b` (entry's idom is itself; -1 unreachable). */
    BlockId idom(BlockId b) const
    {
        return idom_.at(static_cast<std::size_t>(b));
    }

    /** @return true iff block `a` dominates block `b`. */
    bool dominates(BlockId a, BlockId b) const;

    /**
     * Instruction-level dominance: does instruction `i` dominate
     * instruction `j`?  Within a block this is index order; across blocks
     * it is block dominance.
     */
    bool dominatesInstr(const Cfg& cfg, std::size_t i, std::size_t j) const;

  private:
    std::vector<BlockId> idom_;
};

}  // namespace gecko::compiler

#endif  // GECKO_COMPILER_DOMINATORS_HPP_
