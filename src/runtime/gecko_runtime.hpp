#ifndef GECKO_RUNTIME_GECKO_RUNTIME_HPP_
#define GECKO_RUNTIME_GECKO_RUNTIME_HPP_

#include <cstdint>

#include "compiler/pipeline.hpp"
#include "sim/jit_checkpoint.hpp"
#include "sim/machine.hpp"
#include "sim/nvm.hpp"

/**
 * @file
 * The GECKO runtime: boot protocol with EMI-attack detection, rollback
 * recovery with recovery-block execution, and JIT re-enable (paper
 * §VI-A, §VI-E, §VI-F).  The same class also implements the plain
 * NVP and Ratchet boot paths so the simulator treats all schemes
 * uniformly.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::defense {
class DefenseController;
}

namespace gecko::runtime {

/** Counters maintained by the runtime. */
struct RuntimeStats {
    std::uint64_t rollbacks = 0;
    std::uint64_t jitRestores = 0;
    std::uint64_t corruptedRestores = 0;
    std::uint64_t attackDetections = 0;
    std::uint64_t ackDetections = 0;
    std::uint64_t dosDetections = 0;
    std::uint64_t jitReenables = 0;
    std::uint64_t recoveryBlockRuns = 0;
    std::uint64_t recoveryInstrRuns = 0;
    // --- integrity hardening (fault campaign defence) ---
    /// JIT images rejected at restore by the CRC/epoch guard.
    std::uint64_t crcRejects = 0;
    /// Slot reads whose primary copy failed its CRC and were served
    /// from the shadow copy.
    std::uint64_t slotRepairs = 0;
    /// Slot reads where both copies failed their CRCs (restored
    /// best-effort from the primary; campaign never produces this
    /// under the single-word fault model).
    std::uint64_t slotUnrecoverable = 0;
    /// Checkpoint saves retried after a transient mid-burst failure.
    std::uint64_t ckptSaveRetries = 0;
    /// Checkpoint saves abandoned after the retry budget ran out.
    std::uint64_t retriesExhausted = 0;
    /// Times persistent integrity failures degraded the runtime to the
    /// JIT-disabled rollback mode.
    std::uint64_t integrityDegradations = 0;
};

/** Per-scheme recovery runtime. */
class GeckoRuntime
{
  public:
    /**
     * @param compiled program + region metadata (must outlive the runtime)
     * @param machine / nvm the simulated core and its persistent memory
     */
    GeckoRuntime(const compiler::CompiledProgram& compiled,
                 sim::Machine& machine, sim::Nvm& nvm);

    /**
     * Boot after a power cycle: runs the scheme's restore path, performs
     * GECKO's attack detection, and arms the re-enable probe.
     *
     * @param prevOnCycles cycles the machine executed during the
     *        previous power-on period (the timer-based detector's
     *        input, §VI-A: the compiler guarantees a *legitimate* period
     *        covers at least the largest region's WCET, so a shorter
     *        period means the backup or wake signal was forged).  Pass
     *        the default when no timer evidence is available.
     * @return cycles consumed by the boot path.
     */
    std::uint64_t onBoot(
        std::uint64_t prevOnCycles = ~std::uint64_t{0});

    /** Minimum legitimate power-on period (cycles) for the timer check. */
    std::uint64_t minOnCycles() const { return minOnCycles_; }

    /**
     * Is the JIT checkpoint protocol currently armed?  NVP: always.
     * Ratchet: never.  GECKO: unless disabled by attack detection.
     */
    bool jitActive() const;

    /**
     * The intermittent simulator reports every backup signal here (even
     * ignored ones) so the re-enable probe can see the monitor's
     * behaviour during the first region after boot.
     */
    void onBackupSignal();

    /**
     * The simulator reports committed-region progress after each
     * execution chunk; the runtime uses it to conclude the re-enable
     * probe ("no checkpoint signal within the initial region ⇒ the
     * threat is over", §VI-F).
     */
    void onProgress();

    /**
     * Whether the JIT image in NVM is a consistent roll-forward target
     * (complete, and no instruction has executed since it was taken).
     * Maintained by the simulator via the two notifications below.
     */
    void noteJitCheckpointComplete() { jitImageFresh_ = true; }
    void noteExecutionSinceCheckpoint() { jitImageFresh_ = false; }

    /**
     * Whether the attack-end probe is waiting on a commit.  While it is
     * disarmed and no defense controller is attached, `onProgress` is
     * provably a no-op — one leg of the simulator's quantum-coalescing
     * guard.
     */
    bool probeArmed() const { return probeArmed_; }

    /** Extra CTPL SRAM-snapshot words included in JIT restore cost. */
    void setJitRamWords(int words) { jitRamWords_ = words; }

    /**
     * The simulator reports a checkpoint save that failed transiently
     * (injected write fault / mid-burst disturbance) and is being
     * retried with backoff.
     */
    void noteCkptSaveRetry() { ++stats.ckptSaveRetries; }

    /**
     * The simulator reports that the bounded retry budget for a failing
     * checkpoint save ran out.  GECKO degrades gracefully: the JIT
     * protocol is disabled and recovery falls back to rollback mode
     * until the re-enable probe sees a quiet region (§VI-F machinery).
     */
    void noteCkptRetriesExhausted();

    /** Consecutive integrity rejects that trigger degradation. */
    static constexpr int kMaxIntegrityFailures = 3;

    /**
     * Enable/disable the two detection mechanisms individually
     * (ablation knob; both default on, as in the paper).
     */
    void
    setDetectors(bool ack, bool timer)
    {
        ackDetectorOn_ = ack;
        timerDetectorOn_ = timer;
    }

    /**
     * Attach the adaptive defense controller (may be null, the
     * static-paper default).  When attached, the runtime reports boot
     * detections, rollbacks, commits and retry exhaustion to it, and
     * the controller's mode gates the JIT protocol on top of the NVM
     * disable flag.
     */
    void setDefense(defense::DefenseController* defense)
    {
        defense_ = defense;
    }

    /** Simulator clock, fed before boot/notification calls so defense
     *  events carry sim time (runtime itself has no clock). */
    void setNow(double t) { now_ = t; }

    /**
     * Serialize/restore the runtime's mutable state: counters, the
     * image-freshness and integrity latches, and the re-enable probe.
     * Configuration (detector switches, RAM words, the WCET bound) is
     * reconstructed by the owner.
     */
    void archiveState(campaign::Archive& ar);

    RuntimeStats stats;

  private:
    std::uint64_t rollback();
    std::uint64_t jitRestore();
    /// Is this a scheme with the integrity-guarded restore paths?
    bool guarded() const;
    void degradeToRollback();

    const compiler::CompiledProgram* compiled_;
    sim::Machine* machine_;
    sim::Nvm* nvm_;
    defense::DefenseController* defense_ = nullptr;
    double now_ = 0.0;

    bool jitImageFresh_ = false;
    int jitRamWords_ = 0;
    /// Consecutive CRC/epoch rejects (volatile; reset by a valid
    /// restore).  Reaching kMaxIntegrityFailures degrades to rollback.
    int consecutiveIntegrityFailures_ = 0;
    std::uint64_t minOnCycles_ = 0;
    bool ackDetectorOn_ = true;
    bool timerDetectorOn_ = true;
    // Re-enable probe state (volatile; re-armed at each boot).
    bool probeArmed_ = false;
    bool sawBackupSinceBoot_ = false;
    std::uint64_t commitsAtProbeArm_ = 0;
};

}  // namespace gecko::runtime

#endif  // GECKO_RUNTIME_GECKO_RUNTIME_HPP_
