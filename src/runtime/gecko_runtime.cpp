#include "runtime/gecko_runtime.hpp"

#include "campaign/archive.hpp"
#include "defense/controller.hpp"
#include "trace/trace.hpp"

namespace gecko::runtime {

using compiler::CkptSpec;
using compiler::RecoverySpec;
using compiler::RegionInfo;
using compiler::Scheme;

GeckoRuntime::GeckoRuntime(const compiler::CompiledProgram& compiled,
                           sim::Machine& machine, sim::Nvm& nvm)
    : compiled_(&compiled), machine_(&machine), nvm_(&nvm),
      jitImageFresh_(true)  // an all-zero area is a valid cold start
{
    // The system is designed so any legitimate power-on period covers
    // at least the region budget the compiler sized regions against.
    if (compiled.minOnPeriodCycles > 0)
        minOnCycles_ =
            static_cast<std::uint64_t>(compiled.minOnPeriodCycles);
}

bool
GeckoRuntime::jitActive() const
{
    switch (compiled_->scheme) {
      case Scheme::kNvp:
        return true;
      case Scheme::kRatchet:
        return false;
      default:
        return nvm_->jitDisabledFlag == 0 &&
               (defense_ == nullptr || defense_->jitAllowed());
    }
}

bool
GeckoRuntime::guarded() const
{
    // The integrity defences are GECKO's contribution; NVP (blind
    // roll-forward) and Ratchet (prior-work rollback) stay as the paper
    // evaluates them.
    return compiled_->scheme == Scheme::kGecko ||
           compiled_->scheme == Scheme::kGeckoNoPrune;
}

void
GeckoRuntime::degradeToRollback()
{
    if (!guarded() || nvm_->jitDisabledFlag != 0)
        return;
    nvm_->jitDisabledFlag = 1;
    ++stats.integrityDegradations;
    GECKO_TRACE_EVENT(trace::EventKind::kJitDisabled, 0,
                      stats.integrityDegradations, 0);
}

void
GeckoRuntime::noteCkptRetriesExhausted()
{
    ++stats.retriesExhausted;
    degradeToRollback();
    if (defense_)
        defense_->noteRetriesExhausted(now_);
}

void
GeckoRuntime::onBackupSignal()
{
    sawBackupSinceBoot_ = true;
}

void
GeckoRuntime::onProgress()
{
    if (defense_)
        defense_->noteCommit(nvm_->commitCount);
    // Rollback resumes at the interrupted region's entry sequence, whose
    // own boundary re-commits almost immediately — that re-commit is not
    // progress.  The probe therefore waits for a *second* commit (a full
    // region completed after boot).
    if (!probeArmed_ || nvm_->commitCount < commitsAtProbeArm_ + 2)
        return;
    // The first full region after boot committed.  If the (ignored)
    // voltage monitor stayed silent through it, assume the attack has
    // ended and re-arm the JIT protocol (§VI-F).  A wrong guess is
    // harmless: the idempotent program recovers either way.
    probeArmed_ = false;
    if (!sawBackupSinceBoot_) {
        nvm_->jitDisabledFlag = 0;
        ++stats.jitReenables;
        GECKO_TRACE_EVENT(trace::EventKind::kJitReenabled, 0,
                          stats.jitReenables, 0);
    }
}

std::uint64_t
GeckoRuntime::jitRestore()
{
    // maybe_unused: read before the restore mutates the image, but
    // consumed only by trace events (compiled away under GECKO_TRACE=0).
    [[maybe_unused]] const std::uint64_t imageEpoch =
        nvm_->jit[sim::Nvm::kJitEpochIndex];
    if (guarded()) {
        if (!sim::JitCheckpoint::imageValid(*nvm_)) {
            // Torn, bit-flipped, ACK-corrupted or stale image: refuse to
            // roll forward and recover from the last committed region
            // instead.  Persistent rejects mean the NVM itself is under
            // attack, so degrade to the rollback-only mode (the §VI-F
            // probe machinery later re-enables JIT once things quiet
            // down).
            ++stats.crcRejects;
            ++stats.corruptedRestores;
            GECKO_TRACE_EVENT(trace::EventKind::kCrcReject, 0, imageEpoch,
                              stats.crcRejects);
            if (++consecutiveIntegrityFailures_ >= kMaxIntegrityFailures) {
                degradeToRollback();
                probeArmed_ = true;
                commitsAtProbeArm_ = nvm_->commitCount;
            }
            return rollback();
        }
        consecutiveIntegrityFailures_ = 0;
        sim::JitCheckpoint::consumeImage(*nvm_);
    }
    ++stats.jitRestores;
    if (!jitImageFresh_)
        ++stats.corruptedRestores;
    GECKO_TRACE_EVENT(
        trace::EventKind::kJitRestore,
        static_cast<std::uint16_t>(
            (guarded() ? trace::kFlagGuarded : 0) |
            (jitImageFresh_ ? 0 : trace::kFlagStale)),
        imageEpoch, stats.jitRestores);
    return sim::JitCheckpoint::restore(*machine_, *nvm_, jitRamWords_);
}

std::uint64_t
GeckoRuntime::rollback()
{
    machine_->powerCycle();

    const auto& regions = compiled_->regions;
    std::uint32_t id = nvm_->committedRegion;
    if (regions.empty()) {
        GECKO_TRACE_EVENT(trace::EventKind::kRollback, 0, id,
                          nvm_->commitCount);
        return 0;
    }
    if (id >= regions.size())
        id = 0;
    const RegionInfo& info = regions[id];
    const RegionInfo* parent =
        info.parentId >= 0
            ? &regions[static_cast<std::size_t>(info.parentId)]
            : nullptr;

    // Walking the region lookup table costs roughly its size (the paper
    // reports a ~130-instruction table).
    std::uint64_t cycles = 130;

    auto& regs = machine_->regs();
    compiler::RegMask covered = 0;

    // Slot restores: the region's own table first, then the parent's for
    // anything a conflict-fix region does not checkpoint itself.
    for (const RegionInfo* r : {&info, parent}) {
        if (!r)
            continue;
        for (const CkptSpec& ck : r->ckpts) {
            if (covered & compiler::regBit(ck.reg))
                continue;
            // Slot integrity is a property of the checkpoint *storage*,
            // not of the GECKO protocol: every scheme writes slots
            // through the guarded (value, CRC, shadow) store, so every
            // scheme restores through the guarded read.  Ratchet used
            // to read the primary word raw, which let single-word slot
            // faults through on exactly the cases the campaign surfaced.
            sim::SlotRead sr = nvm_->readSlotGuarded(ck.reg, ck.slot);
            if (sr.repaired) {
                // Scrub: re-arm the full pair so the surviving latent
                // corruption cannot meet a second disturbance later.
                nvm_->scrubSlot(ck.reg, ck.slot, sr.value);
                ++stats.slotRepairs;
                GECKO_TRACE_EVENT(trace::EventKind::kSlotRepair, 0, ck.reg,
                                  static_cast<std::uint64_t>(ck.slot));
            }
            if (sr.unrecoverable) {
                ++stats.slotUnrecoverable;
                GECKO_TRACE_EVENT(trace::EventKind::kSlotUnrecoverable, 0,
                                  ck.reg,
                                  static_cast<std::uint64_t>(ck.slot));
            }
            regs[ck.reg] = sr.value;
            covered |= compiler::regBit(ck.reg);
            cycles += 3;
        }
    }

    // Recovery blocks reconstruct the pruned registers, in dependency
    // order; each executes against a snapshot and publishes its target.
    for (const RegionInfo* r : {&info, parent}) {
        if (!r)
            continue;
        for (const RecoverySpec& spec : r->recovery) {
            if (covered & compiler::regBit(spec.reg))
                continue;
            std::array<std::uint32_t, 16> env = regs;
            for (const ir::Instr& ins : spec.code) {
                sim::Machine::execRecoveryInstr(ins, env, *nvm_);
                cycles += static_cast<std::uint64_t>(ir::cycleCost(ins));
                ++stats.recoveryInstrRuns;
            }
            regs[spec.reg] = env[spec.reg];
            covered |= compiler::regBit(spec.reg);
            ++stats.recoveryBlockRuns;
            GECKO_TRACE_EVENT(trace::EventKind::kRecoveryBlock, 0, spec.reg,
                              spec.code.size());
        }
    }

    machine_->setPc(static_cast<std::uint32_t>(info.entryIdx));
    ++stats.rollbacks;
    if (defense_)
        defense_->noteRollback(now_, id);
    GECKO_TRACE_EVENT(trace::EventKind::kRollback, 0, id,
                      nvm_->commitCount);
    return cycles;
}

std::uint64_t
GeckoRuntime::onBoot(std::uint64_t prevOnCycles)
{
    bool first_boot = (nvm_->bootCount == 0);
    ++nvm_->bootCount;

    bool ack_changed =
        nvm_->jit[sim::Nvm::kJitAckIndex] != nvm_->lastBootAck;
    nvm_->lastBootAck = nvm_->jit[sim::Nvm::kJitAckIndex];

    std::uint32_t commits_since = nvm_->commitCount - nvm_->commitsAtLastBoot;
    nvm_->commitsAtLastBoot = nvm_->commitCount;

    probeArmed_ = false;
    sawBackupSinceBoot_ = false;

    switch (compiled_->scheme) {
      case Scheme::kNvp:
        return jitRestore();
      case Scheme::kRatchet:
        return rollback();
      default:
        break;
    }

    // GECKO boot protocol.
    if (nvm_->jitDisabledFlag != 0 ||
        (defense_ && !defense_->jitAllowed())) {
        // Attack mode (NVM flag or escalated controller): rollback
        // recovery and probe for the all-clear.
        probeArmed_ = true;
        commitsAtProbeArm_ = nvm_->commitCount;
        return rollback();
    }

    bool attack = false;
    bool ack_detect = false;
    bool timer_detect = false;
    if (!first_boot) {
        if (ackDetectorOn_ && !ack_changed) {
            attack = true;
            ack_detect = true;
            ++stats.ackDetections;
        }
        // Timer-based detection: a power outage recurring before one
        // region's worth of execution could complete means the wake or
        // backup signal was forged ("a power outage occurs more than
        // once in the same program region", §VI-A).
        if (timerDetectorOn_ &&
            (commits_since == 0 || prevOnCycles < minOnCycles_)) {
            attack = true;
            timer_detect = true;
            ++stats.dosDetections;
        }
    }
    if (defense_)
        defense_->noteBootEvidence(now_, ack_detect, timer_detect);
    if (attack) {
        ++stats.attackDetections;
        GECKO_TRACE_EVENT(
            trace::EventKind::kAttackDetected,
            static_cast<std::uint16_t>(
                (ack_detect ? trace::kFlagAckDetect : 0) |
                (timer_detect ? trace::kFlagTimerDetect : 0)),
            stats.attackDetections, 0);
        nvm_->jitDisabledFlag = 1;
        probeArmed_ = true;
        commitsAtProbeArm_ = nvm_->commitCount;
        return rollback();
    }
    return jitRestore();
}

void
GeckoRuntime::archiveState(campaign::Archive& ar)
{
    ar.section("gecko_runtime");
    ar.u64(stats.rollbacks);
    ar.u64(stats.jitRestores);
    ar.u64(stats.corruptedRestores);
    ar.u64(stats.attackDetections);
    ar.u64(stats.ackDetections);
    ar.u64(stats.dosDetections);
    ar.u64(stats.jitReenables);
    ar.u64(stats.recoveryBlockRuns);
    ar.u64(stats.recoveryInstrRuns);
    ar.u64(stats.crcRejects);
    ar.u64(stats.slotRepairs);
    ar.u64(stats.slotUnrecoverable);
    ar.u64(stats.ckptSaveRetries);
    ar.u64(stats.retriesExhausted);
    ar.u64(stats.integrityDegradations);
    ar.boolean(jitImageFresh_);
    ar.i32(consecutiveIntegrityFailures_);
    ar.boolean(probeArmed_);
    ar.boolean(sawBackupSinceBoot_);
    ar.u64(commitsAtProbeArm_);
    ar.f64(now_);
}

}  // namespace gecko::runtime
