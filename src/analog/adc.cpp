#include "analog/adc.hpp"

#include <algorithm>
#include <cmath>

namespace gecko::analog {

Adc::Adc(int bits, double fullScaleV)
    : bits_(bits), fullScaleV_(fullScaleV),
      maxCode_((1u << bits) - 1u)
{
}

std::uint32_t
Adc::sample(double v) const
{
    if (v <= 0.0)
        return 0;
    double code = std::floor(v / fullScaleV_ * (maxCode_ + 1u));
    if (code >= maxCode_)
        return maxCode_;
    return static_cast<std::uint32_t>(code);
}

double
Adc::toVoltage(std::uint32_t code) const
{
    code = std::min(code, maxCode_);
    return static_cast<double>(code) * fullScaleV_ /
           static_cast<double>(maxCode_ + 1u);
}

}  // namespace gecko::analog
