#ifndef GECKO_ANALOG_COMPARATOR_HPP_
#define GECKO_ANALOG_COMPARATOR_HPP_

/**
 * @file
 * Voltage comparator used by comparator-based monitors (paper §II-C,
 * Fig. 2b): a 1-bit ADC with hysteresis around the reference.
 */

namespace gecko::analog {

/**
 * Comparator with symmetric hysteresis.
 *
 * Output is high while the + input exceeds the reference; transitions
 * require crossing ref ± hysteresis/2 so noise near the threshold does
 * not chatter.
 */
class Comparator
{
  public:
    /**
     * @param referenceV  threshold at the − input
     * @param hysteresisV total hysteresis band width
     * @param initialHigh initial output state
     */
    Comparator(double referenceV, double hysteresisV, bool initialHigh);

    /** Evaluate the comparator for input voltage `v`. */
    bool evaluate(double v);

    /** Current output without re-evaluating. */
    bool output() const { return high_; }

    void reset(bool high) { high_ = high; }

    double reference() const { return referenceV_; }

    /** Half the hysteresis band (transitions need ref ± halfBand). */
    double halfBand() const { return halfBand_; }

  private:
    double referenceV_;
    double halfBand_;
    bool high_;
};

}  // namespace gecko::analog

#endif  // GECKO_ANALOG_COMPARATOR_HPP_
