#ifndef GECKO_ANALOG_VOLTAGE_MONITOR_HPP_
#define GECKO_ANALOG_VOLTAGE_MONITOR_HPP_

#include <memory>

#include "analog/adc.hpp"
#include "analog/comparator.hpp"

/**
 * @file
 * Voltage monitors — the heart (and attack surface) of the intermittent
 * system (paper §II-C).
 *
 * The monitor periodically observes what it believes to be V_CC (the
 * real capacitor voltage plus any EMI-induced component) and emits
 *  - a *backup* event on a downward crossing of V_backup (triggering the
 *    JIT checkpoint), and
 *  - a *wake* event on an upward crossing of V_on (triggering restore).
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::analog {

/** Signals emitted by a monitor at one observation. */
struct MonitorEvent {
    bool backup = false;
    bool wake = false;
};

/** Monitor kinds present on the paper's evaluation boards. */
enum class MonitorKind {
    kAdc,
    kComparator,
};

/** @return display name of a monitor kind. */
const char* monitorKindName(MonitorKind kind);

/** Abstract voltage monitor. */
class VoltageMonitor
{
  public:
    virtual ~VoltageMonitor() = default;

    /**
     * Observe the (possibly EMI-distorted) supply voltage at one sample
     * instant.  Events are edge-triggered: one backup per downward
     * V_backup crossing, one wake per upward V_on crossing.
     */
    virtual MonitorEvent observe(double seenV) = 0;

    /** Interval between observations (s). */
    virtual double sampleIntervalS() const = 0;

    /**
     * True for continuous (analog) monitors: hardware that reacts to any
     * excursion within an observation window, not just the sampled
     * instant.  The simulator then reports the window's envelope
     * (observeEnvelope) instead of point samples.
     */
    virtual bool continuous() const { return false; }

    /**
     * Observe a window during which the input covered
     * [low, high] (continuous monitors only).  Default: trough first,
     * then crest — a backup trigger on the trough re-arms on the crest.
     */
    virtual MonitorEvent observeEnvelope(double low, double high);

    /**
     * True iff any sequence of observations within [lo, hi] is provably
     * a no-op: no backup or wake event fires and every edge-detection
     * latch keeps its current value.  This is the monitor side of the
     * simulator's quantum-coalescing guard — when it holds over a whole
     * burst's voltage range, the skipped per-quantum `observe` calls
     * cannot have changed anything.  Conservative: `false` means
     * "unknown", never "unsafe is fine".
     */
    virtual bool quietRange(double lo, double hi) const
    {
        (void)lo;
        (void)hi;
        return false;
    }

    /** Re-initialise state as if the supply were at `v`. */
    virtual void reset(double v) = 0;

    /**
     * Serialize/restore the edge-detection latches (thresholds and
     * rates are construction parameters, not archived).
     */
    virtual void archiveState(campaign::Archive& ar) = 0;
};

/**
 * ADC-based monitor (Fig. 2a): samples V_CC at a modest rate through an
 * n-bit converter and compares codes against the thresholds.  The slow
 * sampling is exactly what makes it aliasing-prone under EMI.
 */
class AdcMonitor : public VoltageMonitor
{
  public:
    /**
     * @param adcBits   converter resolution
     * @param fullScaleV converter full scale
     * @param vBackup   checkpoint threshold
     * @param vWake     restore threshold (V_on)
     * @param sampleHz  conversion rate
     */
    AdcMonitor(int adcBits, double fullScaleV, double vBackup, double vWake,
               double sampleHz);

    MonitorEvent observe(double seenV) override;
    double sampleIntervalS() const override { return 1.0 / sampleHz_; }
    bool quietRange(double lo, double hi) const override;
    void reset(double v) override;
    void archiveState(campaign::Archive& ar) override;

  private:
    Adc adc_;
    std::uint32_t backupCode_;
    std::uint32_t wakeCode_;
    double sampleHz_;
    bool belowBackup_ = false;
    bool aboveWake_ = true;
};

/**
 * Comparator-based monitor (Fig. 2b): continuous analog hardware with
 * hysteresis.  It catches essentially every EMI trough — which is why
 * the paper measures minimum forward progress two orders of magnitude
 * below the ADC monitors' (Table I).
 */
class ComparatorMonitor : public VoltageMonitor
{
  public:
    /**
     * @param vBackup     checkpoint threshold
     * @param vWake       restore threshold
     * @param hysteresisV comparator hysteresis band
     * @param checkHz     equivalent evaluation rate of the simulation
     */
    ComparatorMonitor(double vBackup, double vWake, double hysteresisV,
                      double checkHz);

    MonitorEvent observe(double seenV) override;
    double sampleIntervalS() const override { return 1.0 / checkHz_; }
    bool continuous() const override { return true; }
    bool quietRange(double lo, double hi) const override;
    void reset(double v) override;
    void archiveState(campaign::Archive& ar) override;

  private:
    Comparator backupComp_;
    Comparator wakeComp_;
    double checkHz_;
};

}  // namespace gecko::analog

#endif  // GECKO_ANALOG_VOLTAGE_MONITOR_HPP_
