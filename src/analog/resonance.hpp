#ifndef GECKO_ANALOG_RESONANCE_HPP_
#define GECKO_ANALOG_RESONANCE_HPP_

#include <vector>

/**
 * @file
 * Frequency response of an EMI coupling path.
 *
 * The voltage-monitor front end couples radiated/injected RF through
 * board traces and the external capacitor wiring.  We model the path as
 * a sum of Lorentzian resonances (trace/component resonances — the
 * 27 MHz peak of the MSP430 family) on top of an optional broadband
 * floor, shaped by a second-order low-pass (the front end's parasitic RC
 * filtering, which is why nothing above ~50 MHz worked in the paper's
 * experiments, §IV-A2).
 */

namespace gecko::analog {

/** One resonant peak of a coupling path. */
struct ResonantPeak {
    /// Centre frequency (Hz).
    double freqHz = 27e6;
    /// Quality factor (peak width = freqHz / q).
    double q = 12.0;
    /// Gain at the peak centre (unitless voltage ratio).
    double gain = 1.0;
};

/** Frequency-response curve of one coupling path. */
struct ResonanceCurve {
    std::vector<ResonantPeak> peaks;
    /// Broadband coupling floor (0 disables; P2-style wide-band paths
    /// use a nonzero floor).
    double broadbandGain = 0.0;
    /// Low-pass corner of the front end (Hz).
    double lowPassHz = 40e6;

    /**
     * Voltage gain of the path at frequency `f` (Hz): Lorentzian peaks +
     * floor, all attenuated by the second-order low-pass roll-off.
     */
    double gainAt(double f) const;
};

}  // namespace gecko::analog

#endif  // GECKO_ANALOG_RESONANCE_HPP_
