#include "analog/voltage_monitor.hpp"

#include "campaign/archive.hpp"

namespace gecko::analog {

MonitorEvent
VoltageMonitor::observeEnvelope(double low, double high)
{
    MonitorEvent trough = observe(low);
    MonitorEvent crest = observe(high);
    MonitorEvent ev;
    ev.backup = trough.backup || crest.backup;
    ev.wake = trough.wake || crest.wake;
    return ev;
}

const char*
monitorKindName(MonitorKind kind)
{
    switch (kind) {
      case MonitorKind::kAdc: return "ADC";
      case MonitorKind::kComparator: return "Comp";
    }
    return "?";
}

AdcMonitor::AdcMonitor(int adcBits, double fullScaleV, double vBackup,
                       double vWake, double sampleHz)
    : adc_(adcBits, fullScaleV), backupCode_(adc_.sample(vBackup)),
      wakeCode_(adc_.sample(vWake)), sampleHz_(sampleHz)
{
}

MonitorEvent
AdcMonitor::observe(double seenV)
{
    MonitorEvent ev;
    std::uint32_t code = adc_.sample(seenV);
    bool below = code < backupCode_;
    bool above = code >= wakeCode_;
    if (below && !belowBackup_)
        ev.backup = true;
    if (above && !aboveWake_)
        ev.wake = true;
    belowBackup_ = below;
    aboveWake_ = above;
    return ev;
}

bool
AdcMonitor::quietRange(double lo, double hi) const
{
    if (lo > hi)
        return false;
    // The ADC transfer curve is monotone, so checking the range
    // endpoints bounds every code the monitor could see.  Each latch
    // must keep its value for all of them; with both latches stable no
    // edge can fire and `observe` is a pure no-op.
    const bool belowStable = belowBackup_
                                 ? adc_.sample(hi) < backupCode_
                                 : adc_.sample(lo) >= backupCode_;
    const bool aboveStable = aboveWake_ ? adc_.sample(lo) >= wakeCode_
                                        : adc_.sample(hi) < wakeCode_;
    return belowStable && aboveStable;
}

void
AdcMonitor::reset(double v)
{
    std::uint32_t code = adc_.sample(v);
    belowBackup_ = code < backupCode_;
    aboveWake_ = code >= wakeCode_;
}

ComparatorMonitor::ComparatorMonitor(double vBackup, double vWake,
                                     double hysteresisV, double checkHz)
    : backupComp_(vBackup, hysteresisV, /*initialHigh=*/true),
      wakeComp_(vWake, hysteresisV, /*initialHigh=*/true),
      checkHz_(checkHz)
{
}

MonitorEvent
ComparatorMonitor::observe(double seenV)
{
    MonitorEvent ev;
    bool backup_was = backupComp_.output();
    bool wake_was = wakeComp_.output();
    bool backup_now = backupComp_.evaluate(seenV);
    bool wake_now = wakeComp_.evaluate(seenV);
    if (backup_was && !backup_now)
        ev.backup = true;
    if (!wake_was && wake_now)
        ev.wake = true;
    return ev;
}

bool
ComparatorMonitor::quietRange(double lo, double hi) const
{
    if (lo > hi)
        return false;
    // A comparator's output only changes by crossing ref ± halfBand in
    // the direction opposite its current state; bound the input range
    // away from the active flank of each comparator.
    const auto stable = [lo, hi](const Comparator& c) {
        return c.output() ? lo >= c.reference() - c.halfBand()
                          : hi <= c.reference() + c.halfBand();
    };
    return stable(backupComp_) && stable(wakeComp_);
}

void
ComparatorMonitor::reset(double v)
{
    backupComp_.reset(v >= backupComp_.reference());
    wakeComp_.reset(v >= wakeComp_.reference());
    // Settle hysteresis state.
    backupComp_.evaluate(v);
    wakeComp_.evaluate(v);
}

void
AdcMonitor::archiveState(campaign::Archive& ar)
{
    ar.section("adc_monitor");
    ar.boolean(belowBackup_);
    ar.boolean(aboveWake_);
}

void
ComparatorMonitor::archiveState(campaign::Archive& ar)
{
    ar.section("comparator_monitor");
    bool backupHigh = backupComp_.output();
    bool wakeHigh = wakeComp_.output();
    ar.boolean(backupHigh);
    ar.boolean(wakeHigh);
    if (!ar.saving()) {
        backupComp_.reset(backupHigh);
        wakeComp_.reset(wakeHigh);
    }
}

}  // namespace gecko::analog
