#include "analog/comparator.hpp"

namespace gecko::analog {

Comparator::Comparator(double referenceV, double hysteresisV,
                       bool initialHigh)
    : referenceV_(referenceV), halfBand_(hysteresisV / 2.0),
      high_(initialHigh)
{
}

bool
Comparator::evaluate(double v)
{
    if (high_) {
        if (v < referenceV_ - halfBand_)
            high_ = false;
    } else {
        if (v > referenceV_ + halfBand_)
            high_ = true;
    }
    return high_;
}

}  // namespace gecko::analog
