#include "analog/resonance.hpp"

#include <cmath>

namespace gecko::analog {

double
ResonanceCurve::gainAt(double f) const
{
    double g = broadbandGain;
    for (const ResonantPeak& peak : peaks) {
        double detune = 2.0 * peak.q * (f - peak.freqHz) / peak.freqHz;
        g += peak.gain / (1.0 + detune * detune);
    }
    // Second-order low-pass magnitude.
    double x = f / lowPassHz;
    g /= (1.0 + x * x);
    return g;
}

}  // namespace gecko::analog
