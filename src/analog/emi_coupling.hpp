#ifndef GECKO_ANALOG_EMI_COUPLING_HPP_
#define GECKO_ANALOG_EMI_COUPLING_HPP_

#include "analog/resonance.hpp"

/**
 * @file
 * EMI propagation and coupling physics (paper §II-D, §IV).
 *
 * An attack signal of power P at frequency f induces a sinusoidal
 * voltage on the monitor's input:
 *
 *   v(t) = A sin(2π f t + φ),
 *   A    = sqrt(2 Z₀ P) · L_path · R_dev(f) · k_point,
 *
 * where L_path is 1 for direct power injection (DPI) or the free-space
 * path loss (λ / 4πd, with optional wall attenuation) for remote
 * attacks, R_dev(f) the device's coupling-path resonance curve, and
 * k_point the injection-point coupling factor.
 */

namespace gecko::analog {

/** Speed of light (m/s). */
inline constexpr double kSpeedOfLight = 299'792'458.0;

/** Reference RF system impedance (Ω). */
inline constexpr double kRfImpedance = 50.0;

/** Convert transmit power in dBm to watts. */
double dbmToWatts(double dbm);

/** Convert watts to dBm. */
double wattsToDbm(double watts);

/** Peak source amplitude (V) of a `dbm` signal into kRfImpedance. */
double sourceAmplitude(double dbm);

/**
 * Free-space amplitude path loss λ/(4πd), clamped to 1.
 * @param freqHz   carrier frequency
 * @param distanceM transmitter-victim distance (≥ 0.05 m enforced)
 */
double freeSpacePathLoss(double freqHz, double distanceM);

/** Amplitude attenuation factor for `db` decibels. */
double attenuationFromDb(double db);

/**
 * Peak induced voltage at the monitor input for a remote attack.
 *
 * @param txPowerDbm      transmitter power (paper sweeps 0..35 dBm)
 * @param freqHz          carrier frequency
 * @param curve           device coupling-path response
 * @param distanceM       attack distance (paper: 0..5 m)
 * @param wallAttenuationDb extra attenuation for walls/doors (amplitude dB)
 */
double inducedAmplitudeRemote(double txPowerDbm, double freqHz,
                              const ResonanceCurve& curve, double distanceM,
                              double wallAttenuationDb = 0.0);

/**
 * Peak induced voltage for direct power injection at an injection point
 * with coupling factor `pointCoupling` (paper Fig. 3, P1/P2).
 */
double inducedAmplitudeDpi(double txPowerDbm, double freqHz,
                           const ResonanceCurve& curve,
                           double pointCoupling);

}  // namespace gecko::analog

#endif  // GECKO_ANALOG_EMI_COUPLING_HPP_
