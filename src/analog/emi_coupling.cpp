#include "analog/emi_coupling.hpp"

#include <algorithm>
#include <cmath>

namespace gecko::analog {

double
dbmToWatts(double dbm)
{
    return std::pow(10.0, (dbm - 30.0) / 10.0);
}

double
wattsToDbm(double watts)
{
    return 10.0 * std::log10(watts) + 30.0;
}

double
sourceAmplitude(double dbm)
{
    return std::sqrt(2.0 * kRfImpedance * dbmToWatts(dbm));
}

double
freeSpacePathLoss(double freqHz, double distanceM)
{
    double d = std::max(distanceM, 0.05);
    double lambda = kSpeedOfLight / freqHz;
    return std::min(1.0, lambda / (4.0 * M_PI * d));
}

double
attenuationFromDb(double db)
{
    return std::pow(10.0, -db / 20.0);
}

double
inducedAmplitudeRemote(double txPowerDbm, double freqHz,
                       const ResonanceCurve& curve, double distanceM,
                       double wallAttenuationDb)
{
    return sourceAmplitude(txPowerDbm) *
           freeSpacePathLoss(freqHz, distanceM) * curve.gainAt(freqHz) *
           attenuationFromDb(wallAttenuationDb);
}

double
inducedAmplitudeDpi(double txPowerDbm, double freqHz,
                    const ResonanceCurve& curve, double pointCoupling)
{
    return sourceAmplitude(txPowerDbm) * curve.gainAt(freqHz) *
           pointCoupling;
}

}  // namespace gecko::analog
