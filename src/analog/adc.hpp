#ifndef GECKO_ANALOG_ADC_HPP_
#define GECKO_ANALOG_ADC_HPP_

#include <cstdint>

/**
 * @file
 * Analog-to-digital converter used by ADC-based voltage monitors
 * (paper §II-C, Fig. 2a).
 */

namespace gecko::analog {

/** Successive-approximation ADC with a fixed full-scale reference. */
class Adc
{
  public:
    /**
     * @param bits      resolution (10 or 12 on the paper's MCUs)
     * @param fullScaleV input voltage mapping to the maximum code
     */
    Adc(int bits, double fullScaleV);

    /** Convert an input voltage to a code (clamped to the range). */
    std::uint32_t sample(double v) const;

    /** Convert a code back to the voltage at the code's lower edge. */
    double toVoltage(std::uint32_t code) const;

    /** Quantize a voltage: sample then convert back. */
    double quantize(double v) const { return toVoltage(sample(v)); }

    int bits() const { return bits_; }
    double fullScale() const { return fullScaleV_; }
    std::uint32_t maxCode() const { return maxCode_; }

  private:
    int bits_;
    double fullScaleV_;
    std::uint32_t maxCode_;
};

}  // namespace gecko::analog

#endif  // GECKO_ANALOG_ADC_HPP_
