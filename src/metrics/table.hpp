#ifndef GECKO_METRICS_TABLE_HPP_
#define GECKO_METRICS_TABLE_HPP_

#include <iosfwd>
#include <string>
#include <vector>

/**
 * @file
 * Plain-text table/series printing for the benchmark harnesses, so every
 * bench binary regenerates its paper table or figure as aligned rows.
 */

namespace gecko::metrics {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    void print(std::ostream& os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format `x` with `digits` decimal places. */
std::string fmt(double x, int digits = 2);

/** Format a ratio as a percentage string ("41.3%"). */
std::string fmtPercent(double ratio, int digits = 1);

/** Format a frequency in MHz ("27 MHz"). */
std::string fmtMhz(double freqHz, int digits = 0);

}  // namespace gecko::metrics

#endif  // GECKO_METRICS_TABLE_HPP_
