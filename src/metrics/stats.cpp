#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gecko::metrics {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs)
        logsum += std::log(x);
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
minimum(const std::vector<double>& xs)
{
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::min(m, x);
    return m;
}

double
maximum(const std::vector<double>& xs)
{
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::max(m, x);
    return m;
}

std::size_t
argminY(const Series& s)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < s.y.size(); ++i)
        if (s.y[i] < s.y[best])
            best = i;
    return best;
}

std::size_t
argmaxY(const Series& s)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < s.y.size(); ++i)
        if (s.y[i] > s.y[best])
            best = i;
    return best;
}

}  // namespace gecko::metrics
