#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gecko::metrics {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto& r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::string rule;
        for (std::size_t w : widths)
            rule += std::string(w + 2, '-');
        os << rule << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
}

std::string
fmt(double x, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << x;
    return os.str();
}

std::string
fmtPercent(double ratio, int digits)
{
    return fmt(ratio * 100.0, digits) + "%";
}

std::string
fmtMhz(double freqHz, int digits)
{
    return fmt(freqHz / 1e6, digits) + " MHz";
}

}  // namespace gecko::metrics
