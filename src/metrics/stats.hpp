#ifndef GECKO_METRICS_STATS_HPP_
#define GECKO_METRICS_STATS_HPP_

#include <string>
#include <vector>

/**
 * @file
 * Small statistics helpers for the benchmark harnesses.
 */

namespace gecko::metrics {

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<double>& xs);

/** Geometric mean (0 for empty input; requires positive values). */
double geomean(const std::vector<double>& xs);

/** Minimum (+inf for empty input). */
double minimum(const std::vector<double>& xs);

/** Maximum (-inf for empty input). */
double maximum(const std::vector<double>& xs);

/** One named (x, y) series of an experiment figure. */
struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
};

/** Index of the minimal y in a series (0 if empty). */
std::size_t argminY(const Series& s);

/** Index of the maximal y in a series (0 if empty). */
std::size_t argmaxY(const Series& s);

}  // namespace gecko::metrics

#endif  // GECKO_METRICS_STATS_HPP_
