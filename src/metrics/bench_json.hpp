#ifndef GECKO_METRICS_BENCH_JSON_HPP_
#define GECKO_METRICS_BENCH_JSON_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/**
 * @file
 * Machine-readable benchmark telemetry (`BENCH_*.json`).
 *
 * Each figure/table binary can emit one JSON object describing its
 * sweep executions: wall time, task counts, thread count, and the
 * aggregate simulated machine cycles per wall second (the interpreter
 * throughput metric the perf trajectory tracks).  `bench_all`
 * aggregates the per-figure objects into `BENCH_sweeps.json` and
 * compares against a recorded serial baseline.
 *
 * The format is intentionally small and flat; the readers below only
 * promise to parse JSON *this writer produced* (no general parser).
 */

namespace gecko::metrics {

/** Telemetry of one runSweep call. */
struct SweepRecord {
    std::string label;
    /// Sweep points executed.
    std::size_t tasks = 0;
    /// Worker threads of the pool that ran the sweep.
    int threads = 1;
    /// Wall time of the whole sweep (s).
    double wallS = 0.0;
    /// Sum of per-task wall times (s); taskS / wallS ~ achieved
    /// parallelism.
    double taskS = 0.0;
};

/**
 * Wire-format version of BenchReport::toJson().  History:
 *  - 1: initial format (implicit — records without a
 *    `schema_version` key are version 1).
 *  - 2: added `schema_version` itself and the optional `trace_out`
 *    path of the event-trace file written alongside the report.
 *  - 3: added `seed` (effective GECKO_SEED, 0 = unseeded) and
 *    `defense_mode` (the run's defense configuration: "static" for the
 *    paper's fixed detectors, "adaptive" when the online controller
 *    was armed).  `threads` was already the effective pool width.
 *  - 4: added `exec_backend` (the sim::Machine execution tier the run
 *    used: "step", "fast", or "block") so throughput numbers are
 *    attributable to a dispatch strategy.
 *  - 5: added the quantum-loop telemetry `quanta`, `coalesced_quanta`
 *    and `quanta_per_s` (monitor-sample quanta simulated, the subset
 *    absorbed by the coalescing fast path — DESIGN.md §14 — and the
 *    quantum throughput) so coalescing effectiveness is recorded next
 *    to the cycle rate it improves.
 *  - 6: added the optional `figure_data` object — raw per-figure
 *    payload (e.g. the per-cell susceptibility map of fig_spatial_map)
 *    emitted verbatim by the bench that produced it.
 *  - 7: fig_adversarial's defense-vs-best-attack matrix rides in
 *    `figure_data`, and the campaign aggregate it embeds gained the
 *    per-group `commits` counter (campaign schema v5).
 * Readers must tolerate unknown keys so newer records keep
 * aggregating under older readers (the find-based extractors below
 * do this by construction).
 */
inline constexpr int kBenchSchemaVersion = 7;

/** Telemetry of one bench binary run. */
struct BenchReport {
    int schemaVersion = kBenchSchemaVersion;
    std::string figure;
    int threads = 1;
    unsigned hostCores = 1;
    /// Effective global seed of the run (GECKO_SEED / --seed=; 0 =
    /// unseeded historical sequences).
    std::uint64_t seed = 0;
    /// Defense configuration the victims ran with: "static" (paper
    /// default) or "adaptive" (online controller armed).
    std::string defenseMode = "static";
    /// Execution tier the victims' machines dispatched with ("step",
    /// "fast", or "block"; see sim::ExecBackend).
    std::string execBackend = "block";
    /// Process wall time from bench::init to report write (s).
    double wallS = 0.0;
    /// Recorded serial (1-thread) wall time for the same figure; 0
    /// when unknown.  Carried so speedup survives re-aggregation.
    double serialWallS = 0.0;
    /// Simulated machine cycles executed across every victim run.
    std::uint64_t simCycles = 0;
    /// Monitor-sample quanta simulated across every victim run, and the
    /// subset absorbed by the quantum-coalescing fast path (schema v5).
    std::uint64_t quanta = 0;
    std::uint64_t coalescedQuanta = 0;
    /// Bench verdict: "pass", "fail", or "" (bench has no pass/fail
    /// semantics — treated as pass by aggregation).
    std::string status;
    /// Checkpoint-integrity defence counters accumulated across every
    /// victim run of the bench (see runtime::RuntimeStats).
    std::uint64_t corruptedRestores = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t retriesExhausted = 0;
    /// Path of the event-trace file written for this run ("" = none).
    std::string traceOut;
    /// Raw per-figure JSON payload emitted verbatim as `figure_data`
    /// (schema v6); "" = none.  The bench owns the sub-schema.
    std::string figureData;
    std::vector<SweepRecord> sweeps;

    /** Speedup vs. the recorded serial baseline (0 = unknown). */
    double speedup() const
    {
        return (serialWallS > 0 && wallS > 0) ? serialWallS / wallS : 0.0;
    }

    /** Render as a single JSON object. */
    std::string toJson() const;
};

/** Escape a string for inclusion in a JSON literal. */
std::string jsonEscape(const std::string& s);

/**
 * Extract the first number following `"key":` in `text`.
 * Only valid for JSON produced by this module.
 */
std::optional<double> jsonNumber(const std::string& text,
                                 const std::string& key);

/** Extract the first string following `"key":` (no escape handling). */
std::optional<std::string> jsonString(const std::string& text,
                                      const std::string& key);

/**
 * Durable append-only JSONL writer (campaign manifests / result
 * streams).
 *
 * Guarantees, within POSIX semantics:
 *  - a record is staged in one buffer (line + '\n') and pushed through
 *    a single write() loop that retries short writes and EINTR with a
 *    bounded linear backoff, so this writer never *emits* a torn
 *    record — only a crash mid-write can truncate the file tail, which
 *    readers must (and do) tolerate;
 *  - fsync runs every `syncEvery` records and on demand via sync(), so
 *    the window of journal loss after a SIGKILL is bounded.
 *
 * Not thread-safe; callers serialize (the campaign engine holds a
 * journal mutex).
 */
class JsonlWriter
{
  public:
    /**
     * @param path      output file (created if missing)
     * @param append    append to an existing file vs truncate
     * @param syncEvery fsync cadence in records (0 = only explicit
     *                  sync())
     */
    JsonlWriter(const std::string& path, bool append,
                std::size_t syncEvery = 32);
    ~JsonlWriter();

    JsonlWriter(const JsonlWriter&) = delete;
    JsonlWriter& operator=(const JsonlWriter&) = delete;

    /** Open and every write so far succeeded. */
    bool ok() const { return fd_ >= 0 && !failed_; }

    /**
     * Append one record (a trailing '\n' is added; `line` must not
     * contain one).  @return false if the write ultimately failed —
     * the writer latches failed() and refuses further records.
     */
    bool append(const std::string& line);

    /** Force an fsync now. @return false on failure. */
    bool sync();

    std::uint64_t records() const { return records_; }
    /// write() calls that returned short and were retried.
    std::uint64_t shortWrites() const { return shortWrites_; }
    std::uint64_t syncs() const { return syncs_; }

  private:
    int fd_ = -1;
    bool failed_ = false;
    std::size_t syncEvery_;
    std::uint64_t records_ = 0;
    std::uint64_t sinceSync_ = 0;
    std::uint64_t shortWrites_ = 0;
    std::uint64_t syncs_ = 0;
};

}  // namespace gecko::metrics

#endif  // GECKO_METRICS_BENCH_JSON_HPP_
