#include "metrics/bench_json.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

namespace gecko::metrics {

namespace {

/** Format a double compactly ("0.123456"), locale-independent. */
std::string
num(double x)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", x);
    return buf;
}

}  // namespace

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
BenchReport::toJson() const
{
    std::ostringstream os;
    os << "{\"schema_version\":" << schemaVersion
       << ",\"figure\":\"" << jsonEscape(figure) << "\""
       << ",\"threads\":" << threads << ",\"host_cores\":" << hostCores
       << ",\"seed\":" << seed
       << ",\"defense_mode\":\"" << jsonEscape(defenseMode) << "\""
       << ",\"exec_backend\":\"" << jsonEscape(execBackend) << "\""
       << ",\"wall_s\":" << num(wallS);
    if (serialWallS > 0)
        os << ",\"serial_wall_s\":" << num(serialWallS)
           << ",\"speedup\":" << num(speedup());
    os << ",\"sim_cycles\":" << simCycles << ",\"sim_cycles_per_s\":"
       << num(wallS > 0 ? static_cast<double>(simCycles) / wallS : 0.0)
       << ",\"quanta\":" << quanta
       << ",\"coalesced_quanta\":" << coalescedQuanta
       << ",\"quanta_per_s\":"
       << num(wallS > 0 ? static_cast<double>(quanta) / wallS : 0.0);
    if (!status.empty())
        os << ",\"status\":\"" << jsonEscape(status) << "\"";
    os << ",\"corrupted_restores\":" << corruptedRestores
       << ",\"crc_rejects\":" << crcRejects
       << ",\"retries_exhausted\":" << retriesExhausted;
    if (!traceOut.empty())
        os << ",\"trace_out\":\"" << jsonEscape(traceOut) << "\"";
    if (!figureData.empty())
        os << ",\"figure_data\":" << figureData;
    os << ",\"sweeps\":[";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepRecord& s = sweeps[i];
        if (i)
            os << ",";
        os << "{\"label\":\"" << jsonEscape(s.label) << "\""
           << ",\"tasks\":" << s.tasks << ",\"threads\":" << s.threads
           << ",\"wall_s\":" << num(s.wallS)
           << ",\"task_s\":" << num(s.taskS) << "}";
    }
    os << "]}";
    return os.str();
}

std::optional<double>
jsonNumber(const std::string& text, const std::string& key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    const char* start = text.c_str() + pos + needle.size();
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start)
        return std::nullopt;
    return v;
}

std::optional<std::string>
jsonString(const std::string& text, const std::string& key)
{
    std::string needle = "\"" + key + "\":\"";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    std::size_t start = pos + needle.size();
    std::size_t end = text.find('"', start);
    if (end == std::string::npos)
        return std::nullopt;
    return text.substr(start, end - start);
}

JsonlWriter::JsonlWriter(const std::string& path, bool append,
                         std::size_t syncEvery)
    : syncEvery_(syncEvery)
{
    int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    fd_ = ::open(path.c_str(), flags, 0644);
}

JsonlWriter::~JsonlWriter()
{
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
    }
}

bool
JsonlWriter::append(const std::string& line)
{
    if (!ok())
        return false;
    // Stage the full record — payload plus terminator — in one buffer
    // so no code path can write a line without its '\n'.
    std::string record = line;
    record.push_back('\n');

    const char* p = record.data();
    std::size_t left = record.size();
    int attempt = 0;
    constexpr int kMaxAttempts = 8;
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n == static_cast<ssize_t>(left))
            break;
        if (n < 0 && errno != EINTR && errno != EAGAIN) {
            failed_ = true;
            return false;
        }
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            ++shortWrites_;
        }
        if (++attempt > kMaxAttempts) {
            failed_ = true;
            return false;
        }
        // Linear backoff: transient pressure (EINTR storms, a full
        // pipe) gets room to clear before the budget runs out.
        std::this_thread::sleep_for(std::chrono::milliseconds(attempt));
    }
    ++records_;
    if (syncEvery_ > 0 && ++sinceSync_ >= syncEvery_)
        return sync();
    return true;
}

bool
JsonlWriter::sync()
{
    if (!ok())
        return false;
    sinceSync_ = 0;
    if (::fsync(fd_) != 0) {
        failed_ = true;
        return false;
    }
    ++syncs_;
    return true;
}

}  // namespace gecko::metrics
