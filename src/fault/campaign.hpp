#ifndef GECKO_FAULT_CAMPAIGN_HPP_
#define GECKO_FAULT_CAMPAIGN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "exp/thread_pool.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace gecko::trace {
class Collector;
}  // namespace gecko::trace

/**
 * @file
 * The deterministic fault-injection campaign driver.
 *
 * A campaign fans (workload x scheme x injector x seed) cases across the
 * experiment thread pool, checks each against a golden fault-free
 * oracle (final output streams, final NVM image, exactly-once I/O),
 * auto-minimises the failing cases (bisecting the injection event and
 * the target word), and emits
 *  - a deterministic text report (per scheme x injector outcome counts
 *    and defence-counter sums), and
 *  - a replayable corpus of minimised failures keyed by the campaign
 *    seed.
 * Both artifacts are pure functions of the campaign config: the same
 * GECKO_SEED produces byte-identical bytes under GECKO_THREADS=1 and
 * GECKO_THREADS=8 (exp::parallelMap preserves input order and every
 * case owns its simulator instances).
 */

namespace gecko::fault {

/** Campaign parameters. */
struct CampaignConfig {
    /// Master seed (GECKO_SEED / --seed=); every case seed derives from
    /// it via exp::mixSeed.
    std::uint64_t seed = 1;
    /// Total cases across the whole grid.
    int cases = 5000;
    /// Machine-level victim workloads (fast kernels; sim-level cases
    /// always use sensor_loop, the paper's attack victim).
    std::vector<std::string> workloads = {"crc16", "bitcnt", "sensor_loop"};
    std::vector<compiler::Scheme> schemes = {
        compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
        compiler::Scheme::kGeckoNoPrune, compiler::Scheme::kGecko};
    /// Failing cases kept (and minimised) per (workload, scheme,
    /// injector) group; the report logs how many were dropped.
    int corpusPerGroup = 4;
    /// Sim-level cases: max simulated seconds before kTimeout.
    double simTimeBudgetS = 1.5;
    /// Machine-level livelock watchdog: run-loop iterations before a
    /// case is declared kLivelock.  0 = use GECKO_WATCHDOG from the
    /// environment, falling back to the historical 400000.
    std::uint64_t watchdogBudget = 0;
    /// Spec-file injector mix: when non-empty, replaces the built-in
    /// injector schedule in makeCampaignCases (cases cycle through this
    /// list instead).  Empty = the historical default schedule.
    std::vector<InjectorKind> injectorMix;
    /// Pool override for tests (null = the process-wide pool).
    exp::ThreadPool* pool = nullptr;
    /// Event-trace sink: when set, every case records into its own
    /// buffer labelled "workload|scheme|injector|seed" with the case
    /// ordinal as merge index (null = tracing off).  Minimisation
    /// probes are untraced — only the primary run of each case is.
    trace::Collector* collector = nullptr;
};

/** Outcome counts for one (scheme, injector) cell. */
struct GroupCounts {
    std::uint64_t cases = 0;
    std::uint64_t ok = 0;
    std::uint64_t diverged = 0;
    std::uint64_t faulted = 0;
    std::uint64_t livelock = 0;
    std::uint64_t timeout = 0;
    std::uint64_t notInjected = 0;
    /// Detected-then-survived attacks (adaptive defense).
    std::uint64_t defended = 0;

    std::uint64_t corrupted() const
    {
        return diverged + faulted + livelock;
    }
};

/** Everything a campaign produces. */
struct CampaignResult {
    std::vector<CaseResult> cases;
    /// Minimised failing cases that made it into the corpus.
    std::vector<CaseResult> corpusCases;
    /// Deterministic artifacts (see file header).
    std::string report;
    std::string corpus;
    /// counts[scheme][injector].
    std::vector<std::vector<GroupCounts>> counts;
    /// No corruption outcome in any GECKO / GECKO-noprune case under
    /// the paper's storage/sensing fault model (instruction-stream
    /// faults are a distinct threat class, tallied separately below).
    bool geckoClean = true;
    std::uint64_t geckoCorruptions = 0;
    std::uint64_t nvpCorruptions = 0;
    /// Instruction-fault containment tallies: corruptions vs cases per
    /// scheme class.  GECKO cannot *detect* a wrong architectural value
    /// (no storage guard sees it), but the skipped-checkpoint death
    /// after the glitch usually discards it — so containment is a rate,
    /// not a verdict.
    std::uint64_t instrGeckoCases = 0;
    std::uint64_t instrGeckoCorruptions = 0;
    std::uint64_t instrNvpCases = 0;
    std::uint64_t instrNvpCorruptions = 0;
    /// GECKO's instruction-fault corruption rate is no worse than
    /// NVP's (vacuously true when either class ran no cases).
    bool instrContained() const
    {
        if (instrGeckoCases == 0 || instrNvpCases == 0)
            return true;
        return static_cast<double>(instrGeckoCorruptions) *
                   static_cast<double>(instrNvpCases) <=
               static_cast<double>(instrNvpCorruptions) *
                   static_cast<double>(instrGeckoCases);
    }
    /// Aggregated defence counters across all cases.
    std::uint64_t corruptedRestores = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t slotRepairs = 0;
    std::uint64_t ckptSaveRetries = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t integrityDegradations = 0;
    /// Adaptive-defense aggregates (EMI-burst cases).
    std::uint64_t defendedCases = 0;
    std::uint64_t defenseEscalations = 0;
    std::uint64_t defenseRatchetTrips = 0;
};

/** Deterministic case list for a config (grid enumeration). */
std::vector<CaseSpec> makeCampaignCases(const CampaignConfig& config);

/**
 * Execute one case standalone (also the corpus replay entry point).
 * Pure function of the spec: compiles/looks up the victim, derives all
 * injection parameters from the case seed, runs against the golden
 * oracle.
 *
 * @param watchdogBudget machine-level livelock budget; 0 resolves from
 *        GECKO_WATCHDOG, falling back to 400000.
 * @param backend execution tier of the victim machine.  The injection
 *        schedule and the oracle are tier-independent, so any two
 *        backends must produce identical CaseResults — the three-way
 *        differential in fuzz_test holds the campaign to that.
 */
CaseResult runCase(const CaseSpec& spec, double simTimeBudgetS = 1.5,
                   std::uint64_t watchdogBudget = 0,
                   sim::ExecBackend backend = sim::defaultExecBackend());

/** Run the full campaign. */
CampaignResult runCampaign(const CampaignConfig& config);

}  // namespace gecko::fault

#endif  // GECKO_FAULT_CAMPAIGN_HPP_
