#include "fault/injectors.hpp"

#include <algorithm>

#include "sim/machine.hpp"
#include "trace/trace.hpp"

namespace gecko::fault {

const char*
injectorName(InjectorKind kind)
{
    switch (kind) {
      case InjectorKind::kBitFlip:
        return "bitflip";
      case InjectorKind::kMultiBitFlip:
        return "multibitflip";
      case InjectorKind::kTornWrite:
        return "tornwrite";
      case InjectorKind::kAckCorrupt:
        return "ackcorrupt";
      case InjectorKind::kStaleImage:
        return "staleimage";
      case InjectorKind::kMonitorStuck:
        return "monitorstuck";
      case InjectorKind::kMonitorOffset:
        return "monitoroffset";
      case InjectorKind::kBrownoutBurst:
        return "brownoutburst";
      case InjectorKind::kEmiBurst:
        return "emiburst";
      case InjectorKind::kInstrSkip:
        return "instrskip";
      case InjectorKind::kOpcodeCorrupt:
        return "opcodecorrupt";
      case InjectorKind::kOperandFlip:
        return "operandflip";
    }
    return "unknown";
}

bool
injectorFromName(const std::string& name, InjectorKind* out)
{
    for (int i = 0; i < kInjectorKinds; ++i) {
        auto kind = static_cast<InjectorKind>(i);
        if (name == injectorName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

const char*
outcomeName(CaseOutcome outcome)
{
    switch (outcome) {
      case CaseOutcome::kOk:
        return "ok";
      case CaseOutcome::kDiverged:
        return "diverged";
      case CaseOutcome::kFaulted:
        return "faulted";
      case CaseOutcome::kLivelock:
        return "livelock";
      case CaseOutcome::kTimeout:
        return "timeout";
    }
    return "unknown";
}

bool
outcomeFromName(const std::string& name, CaseOutcome* out)
{
    for (int i = 0; i <= static_cast<int>(CaseOutcome::kTimeout); ++i) {
        auto o = static_cast<CaseOutcome>(i);
        if (name == outcomeName(o)) {
            *out = o;
            return true;
        }
    }
    return false;
}

std::uint32_t
flipBits(std::uint32_t value, int nBits, exp::Rng& rng)
{
    std::uint32_t mask = 0;
    while (nBits > 0) {
        std::uint32_t bit = 1u << rng.pick(32);
        if (mask & bit)
            continue;  // distinct bits, same word
        mask |= bit;
        --nBits;
    }
    return value ^ mask;
}

int
corruptJitWord(sim::Nvm& nvm, int nBits, exp::Rng& rng,
               std::int32_t wordOverride)
{
    // Always consume the rng draw so the bit mask stays identical when a
    // minimiser overrides the word.
    int derived = static_cast<int>(
        rng.pick(static_cast<std::uint32_t>(sim::Nvm::kJitWords)));
    int w = wordOverride >= 0 ? wordOverride : derived;
    nvm.jit[static_cast<std::size_t>(w)] =
        flipBits(nvm.jit[static_cast<std::size_t>(w)], nBits, rng);
    GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                      trace::kSiteJitWord, static_cast<std::uint64_t>(w));
    return w;
}

int
corruptSlotWord(sim::Nvm& nvm, int nBits, exp::Rng& rng,
                std::int32_t wordOverride)
{
    constexpr int kWords = 16 * compiler::kMaxSlots;
    int derived = static_cast<int>(rng.pick(kWords));
    int w = wordOverride >= 0 ? wordOverride % kWords : derived;
    int reg = w / compiler::kMaxSlots;
    int slot = w % compiler::kMaxSlots;
    auto r = static_cast<std::size_t>(reg);
    auto s = static_cast<std::size_t>(slot);
    nvm.slots[r][s] = flipBits(nvm.slots[r][s], nBits, rng);
    GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                      trace::kSiteSlotWord, static_cast<std::uint64_t>(w));
    return w;
}

void
corruptAckWord(sim::Nvm& nvm, exp::Rng& rng)
{
    nvm.jit[sim::Nvm::kJitAckIndex] =
        flipBits(nvm.jit[sim::Nvm::kJitAckIndex], 1, rng);
    GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                      trace::kSiteAckWord, sim::Nvm::kJitAckIndex);
}

void
substituteJitImage(
    sim::Nvm& nvm, const std::array<std::uint32_t, sim::Nvm::kJitWords>& old)
{
    nvm.jit = old;
    GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                      trace::kSiteStaleImage,
                      old[sim::Nvm::kJitEpochIndex]);
}

void
substituteStaleSlot(sim::Nvm& nvm, int reg, int slot,
                    std::uint32_t staleValue)
{
    nvm.slots[static_cast<std::size_t>(reg)]
             [static_cast<std::size_t>(slot)] = staleValue;
    GECKO_TRACE_EVENT(
        trace::EventKind::kFaultInject, 0, trace::kSiteStaleSlot,
        static_cast<std::uint64_t>(reg * compiler::kMaxSlots + slot));
}

void
injectInstrSkip(sim::Machine& machine)
{
    std::uint32_t pc = machine.pc();
    GECKO_TRACE_EVENT(trace::EventKind::kInstrFault, 0,
                      trace::kSiteInstrSkip,
                      static_cast<std::uint64_t>(pc));
    machine.setPc(pc + 1);
}

void
injectOpcodeCorrupt(sim::Machine& machine, std::uint32_t targetPc)
{
    GECKO_TRACE_EVENT(trace::EventKind::kInstrFault, 0,
                      trace::kSiteOpcodeCorrupt,
                      static_cast<std::uint64_t>(targetPc));
    machine.setPc(targetPc);
}

int
injectOperandFlip(sim::Machine& machine, int nBits, exp::Rng& rng,
                  std::int32_t regOverride)
{
    // Draw the register before any override check so the bit mask stays
    // identical when a minimiser pins the register.
    int derived = static_cast<int>(rng.pick(16));
    int reg = regOverride >= 0 ? regOverride % 16 : derived;
    auto r = static_cast<std::size_t>(reg);
    machine.regs()[r] = flipBits(machine.regs()[r], nBits, rng);
    GECKO_TRACE_EVENT(trace::EventKind::kInstrFault, 0,
                      trace::kSiteOperandFlip,
                      static_cast<std::uint64_t>(reg));
    return reg;
}

BrownoutHarvester::BrownoutHarvester(const energy::Harvester& base,
                                     double meanPeriodS, double burstS,
                                     std::uint64_t seed, double horizonS)
    : base_(base)
{
    exp::Rng rng(seed);
    double t = meanPeriodS * (0.5 + rng.uniform());
    while (t < horizonS) {
        bursts_.emplace_back(t, t + burstS);
        t += meanPeriodS * (0.5 + rng.uniform());
    }
}

bool
BrownoutHarvester::inBurst(double t) const
{
    auto it = std::upper_bound(
        bursts_.begin(), bursts_.end(), t,
        [](double v, const std::pair<double, double>& w) {
            return v < w.first;
        });
    if (it == bursts_.begin())
        return false;
    --it;
    return t < it->second;
}

double
BrownoutHarvester::openCircuitVoltage(double t) const
{
    return inBurst(t) ? 0.0 : base_.openCircuitVoltage(t);
}

bool
BrownoutHarvester::steadyOver(double t, double dt) const
{
    if (!base_.steadyOver(t, dt))
        return false;
    // Steady only if [t, t+dt) touches no burst boundary.
    if (inBurst(t) != inBurst(t + dt))
        return false;
    for (const auto& w : bursts_)
        if (w.first > t && w.first < t + dt)
            return false;
    return true;
}

}  // namespace gecko::fault
