#include "fault/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exp/rng.hpp"
#include "fault/injectors.hpp"

namespace gecko::fault {

namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON reader.  Values keep the raw number text so
// 64-bit seeds survive without a double round-trip.
// ---------------------------------------------------------------------
struct JsonValue {
    enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = kNull;
    bool b = false;
    double num = 0.0;
    std::string raw;  ///< number lexeme as written
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> members;
};

class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue* out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the top-level value");
        return true;
    }

  private:
    bool fail(const std::string& what)
    {
        if (error_->empty()) {
            std::size_t line = 1, col = 1;
            for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                if (text_[i] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            std::ostringstream os;
            os << "spec: " << what << " (line " << line << ", column "
               << col << ")";
            *error_ = os.str();
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(const char* word, JsonValue* out, JsonValue::Type type,
                 bool b)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        out->type = type;
        out->b = b;
        return true;
    }

    bool string(std::string* out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'n': out->push_back('\n'); break;
                  case 't': out->push_back('\t'); break;
                  default:
                    return fail("unsupported escape sequence");
                }
            } else {
                out->push_back(c);
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_;  // closing quote
        return true;
    }

    bool number(JsonValue* out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        out->raw = text_.substr(start, pos_ - start);
        char* end = nullptr;
        out->num = std::strtod(out->raw.c_str(), &end);
        if (end != out->raw.c_str() + out->raw.size() || out->raw.empty())
            return fail("malformed number");
        out->type = JsonValue::kNumber;
        return true;
    }

    bool value(JsonValue* out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->type = JsonValue::kObject;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(&key))
                    return false;
                for (const auto& m : out->members)
                    if (m.first == key)
                        return fail("duplicate key \"" + key + "\"");
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after key \"" + key + "\"");
                ++pos_;
                JsonValue v;
                if (!value(&v))
                    return false;
                out->members.emplace_back(key, std::move(v));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out->type = JsonValue::kArray;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!value(&v))
                    return false;
                out->arr.push_back(std::move(v));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out->type = JsonValue::kString;
            return string(&out->str);
        }
        if (c == 't')
            return literal("true", out, JsonValue::kBool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::kBool, false);
        if (c == 'n')
            return literal("null", out, JsonValue::kNull, false);
        return number(out);
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Strict mapping: every object member must be consumed by name.
// ---------------------------------------------------------------------
bool
failAt(std::string* error, const std::string& path, const std::string& what)
{
    if (error->empty())
        *error = "spec: " + what + " at " + path;
    return false;
}

bool
asInt(const JsonValue& v, const std::string& path, int lo, int hi,
      int* out, std::string* error)
{
    if (v.type != JsonValue::kNumber ||
        v.num != std::floor(v.num))
        return failAt(error, path, "expected an integer");
    if (v.num < lo || v.num > hi)
        return failAt(error, path, "value out of range");
    *out = static_cast<int>(v.num);
    return true;
}

bool
asU64(const JsonValue& v, const std::string& path, std::uint64_t* out,
      std::string* error)
{
    if (v.type != JsonValue::kNumber ||
        v.raw.find_first_of(".eE-") != std::string::npos)
        return failAt(error, path, "expected an unsigned integer");
    char* end = nullptr;
    *out = std::strtoull(v.raw.c_str(), &end, 10);
    if (end != v.raw.c_str() + v.raw.size())
        return failAt(error, path, "expected an unsigned integer");
    return true;
}

bool
asDouble(const JsonValue& v, const std::string& path, double* out,
         std::string* error)
{
    if (v.type != JsonValue::kNumber)
        return failAt(error, path, "expected a number");
    *out = v.num;
    return true;
}

bool
asString(const JsonValue& v, const std::string& path, std::string* out,
         std::string* error)
{
    if (v.type != JsonValue::kString)
        return failAt(error, path, "expected a string");
    *out = v.str;
    return true;
}

bool
asStringList(const JsonValue& v, const std::string& path,
             std::vector<std::string>* out, std::string* error)
{
    if (v.type != JsonValue::kArray || v.arr.empty())
        return failAt(error, path, "expected a non-empty string array");
    out->clear();
    for (const JsonValue& e : v.arr) {
        if (e.type != JsonValue::kString || e.str.empty())
            return failAt(error, path,
                          "expected a non-empty string array");
        out->push_back(e.str);
    }
    return true;
}

bool
asDoubleList(const JsonValue& v, const std::string& path,
             std::vector<double>* out, std::string* error)
{
    if (v.type != JsonValue::kArray || v.arr.empty())
        return failAt(error, path, "expected a non-empty number array");
    out->clear();
    for (const JsonValue& e : v.arr) {
        if (e.type != JsonValue::kNumber)
            return failAt(error, path,
                          "expected a non-empty number array");
        out->push_back(e.num);
    }
    return true;
}

bool
schemeFromName(const std::string& name, compiler::Scheme* out)
{
    for (compiler::Scheme s :
         {compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
          compiler::Scheme::kGeckoNoPrune, compiler::Scheme::kGecko}) {
        if (name == compiler::schemeName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

bool
mapGrid(const JsonValue& v, SpecScenario* sc, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.scenario.grid", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.scenario.grid." + key;
        if (key == "rows") {
            if (!asInt(val, path, 1, 4096, &sc->gridRows, error))
                return false;
        } else if (key == "cols") {
            if (!asInt(val, path, 1, 4096, &sc->gridCols, error))
                return false;
        } else if (key == "row") {
            if (!asInt(val, path, 0, 4095, &sc->gridRow, error))
                return false;
        } else if (key == "col") {
            if (!asInt(val, path, 0, 4095, &sc->gridCol, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    if (sc->gridRows < 1 || sc->gridCols < 1)
        return failAt(error, "$.scenario.grid",
                      "rows and cols are required");
    if (sc->gridRow >= sc->gridRows || sc->gridCol >= sc->gridCols)
        return failAt(error, "$.scenario.grid",
                      "cell (row, col) outside the grid");
    return true;
}

bool
mapBurst(const JsonValue& v, SpecScenario* sc, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.scenario.burst", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.scenario.burst." + key;
        if (key == "count") {
            if (!asInt(val, path, 1, 1000, &sc->burstCount, error))
                return false;
        } else if (key == "on_s") {
            if (!asDouble(val, path, &sc->burstOnS, error))
                return false;
        } else if (key == "gap_s") {
            if (!asDouble(val, path, &sc->burstGapS, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    if (sc->burstCount < 1 || sc->burstOnS <= 0.0 || sc->burstGapS < 0.0)
        return failAt(error, "$.scenario.burst",
                      "count >= 1 and on_s > 0 are required");
    return true;
}

bool
mapDuty(const JsonValue& v, SpecScenario* sc, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.scenario.duty", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.scenario.duty." + key;
        if (key == "period_s") {
            if (!asDouble(val, path, &sc->dutyPeriodS, error))
                return false;
        } else if (key == "on_frac") {
            if (!asDouble(val, path, &sc->dutyOnFrac, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    if (sc->dutyPeriodS <= 0.0 || sc->dutyOnFrac <= 0.0 ||
        sc->dutyOnFrac > 1.0)
        return failAt(error, "$.scenario.duty",
                      "period_s > 0 and on_frac in (0, 1] are required");
    return true;
}

bool
mapOutage(const JsonValue& v, SpecScenario* sc, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.scenario.outage", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.scenario.outage." + key;
        if (key == "period_s") {
            if (!asDouble(val, path, &sc->outagePeriodS, error))
                return false;
        } else if (key == "on_frac") {
            if (!asDouble(val, path, &sc->outageOnFrac, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    if (sc->outagePeriodS <= 0.0 || sc->outageOnFrac <= 0.0 ||
        sc->outageOnFrac >= 1.0)
        return failAt(error, "$.scenario.outage",
                      "period_s > 0 and on_frac in (0, 1) are required");
    return true;
}

bool
mapScenario(const JsonValue& v, FaultSpec* spec,
            std::vector<std::string>* v2Fields, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.scenario", "expected an object");
    SpecScenario& sc = spec->scenario;
    bool hasGrid = false, hasBurst = false;
    for (const auto& [key, val] : v.members) {
        std::string path = "$.scenario." + key;
        if (key == "kind") {
            if (!asString(val, path, &sc.kind, error))
                return false;
            if (sc.kind != "clean" && sc.kind != "tone" &&
                sc.kind != "burst")
                return failAt(error, path,
                              "kind must be clean, tone or burst");
        } else if (key == "freq_hz") {
            if (!asDouble(val, path, &sc.freqHz, error))
                return false;
            if (sc.freqHz <= 0.0)
                return failAt(error, path, "value out of range");
        } else if (key == "power_dbm") {
            if (!asDouble(val, path, &sc.powerDbm, error))
                return false;
        } else if (key == "grid") {
            hasGrid = true;
            if (!mapGrid(val, &sc, error))
                return false;
        } else if (key == "burst") {
            hasBurst = true;
            if (!mapBurst(val, &sc, error))
                return false;
        } else if (key == "duty") {
            v2Fields->push_back(path);
            if (!mapDuty(val, &sc, error))
                return false;
        } else if (key == "phase_s") {
            v2Fields->push_back(path);
            if (!asDouble(val, path, &sc.phaseS, error))
                return false;
            if (sc.phaseS < 0.0)
                return failAt(error, path, "value out of range");
        } else if (key == "envelope") {
            v2Fields->push_back(path);
            if (!asDoubleList(val, path, &sc.envelopeDbm, error))
                return false;
        } else if (key == "outage") {
            v2Fields->push_back(path);
            if (!mapOutage(val, &sc, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    if (sc.kind == "clean" && (hasGrid || hasBurst))
        return failAt(error, "$.scenario",
                      "grid/burst require a tone or burst scenario");
    if (hasBurst && sc.kind != "burst")
        return failAt(error, "$.scenario",
                      "burst schedule requires kind \"burst\"");
    if (sc.kind == "clean" &&
        (sc.dutyPeriodS > 0.0 || sc.phaseS > 0.0 ||
         !sc.envelopeDbm.empty()))
        return failAt(error, "$.scenario",
                      "duty/phase_s/envelope require a tone or burst "
                      "scenario");
    spec->hasScenario = true;
    return true;
}

bool
mapCampaign(const JsonValue& v, FaultSpec* spec, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.campaign", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.campaign." + key;
        if (key == "cases") {
            if (!asInt(val, path, 1, 100000000, &spec->cases, error))
                return false;
        } else if (key == "corpus_per_group") {
            if (!asInt(val, path, 1, 100000, &spec->corpusPerGroup,
                       error))
                return false;
        } else if (key == "workloads") {
            if (!asStringList(val, path, &spec->workloads, error))
                return false;
        } else if (key == "schemes") {
            std::vector<std::string> names;
            if (!asStringList(val, path, &names, error))
                return false;
            spec->schemes.clear();
            for (const std::string& n : names) {
                compiler::Scheme s;
                if (!schemeFromName(n, &s))
                    return failAt(error, path,
                                  "unknown scheme \"" + n + "\"");
                spec->schemes.push_back(s);
            }
        } else if (key == "injectors") {
            std::vector<std::string> names;
            if (!asStringList(val, path, &names, error))
                return false;
            spec->injectors.clear();
            for (const std::string& n : names) {
                InjectorKind k;
                if (!injectorFromName(n, &k))
                    return failAt(error, path,
                                  "unknown injector \"" + n + "\"");
                spec->injectors.push_back(k);
            }
        } else if (key == "sim_budget_s") {
            if (!asDouble(val, path, &spec->simBudgetS, error))
                return false;
            if (spec->simBudgetS <= 0.0)
                return failAt(error, path, "value out of range");
        } else if (key == "watchdog") {
            if (!asU64(val, path, &spec->watchdog, error))
                return false;
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    spec->hasCampaign = true;
    return true;
}

bool
mapEngine(const JsonValue& v, FaultSpec* spec, std::string* error)
{
    if (v.type != JsonValue::kObject)
        return failAt(error, "$.engine", "expected an object");
    for (const auto& [key, val] : v.members) {
        std::string path = "$.engine." + key;
        if (key == "devices") {
            if (!asStringList(val, path, &spec->devices, error))
                return false;
        } else if (key == "seeds") {
            if (!asInt(val, path, 1, 100000, &spec->seeds, error))
                return false;
        } else if (key == "sim_s") {
            if (!asDouble(val, path, &spec->simS, error))
                return false;
            if (spec->simS <= 0.0)
                return failAt(error, path, "value out of range");
        } else if (key == "slice_s") {
            if (!asDouble(val, path, &spec->sliceS, error))
                return false;
            if (spec->sliceS < 0.0)
                return failAt(error, path, "value out of range");
        } else {
            return failAt(error, path, "unknown field \"" + key + "\"");
        }
    }
    spec->hasEngine = true;
    return true;
}

// ---------------------------------------------------------------------
// Canonical serialization.
// ---------------------------------------------------------------------

/** Shortest decimal that round-trips through strtod. */
std::string
numText(double v)
{
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
emitStringList(std::ostringstream& os, const std::vector<std::string>& v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << "\"" << v[i] << "\"";
    os << "]";
}

}  // namespace

bool
parseSpec(const std::string& text, FaultSpec* out, std::string* error)
{
    std::string err;
    *out = FaultSpec{};
    JsonValue root;
    Parser parser(text, &err);
    if (!parser.parse(&root)) {
        if (error)
            *error = err;
        return false;
    }
    auto failTop = [&](const std::string& what) {
        if (error)
            *error = err.empty() ? "spec: " + what : err;
        return false;
    };
    if (root.type != JsonValue::kObject)
        return failTop("top-level value must be an object");

    bool sawVersion = false;
    std::vector<std::string> v2Fields;
    for (const auto& [key, val] : root.members) {
        std::string path = "$." + key;
        if (key == "version") {
            sawVersion = true;
            if (!asInt(val, path, 0, 1 << 20, &out->version, &err))
                return failTop("");
            if (out->version != 1 && out->version != 2) {
                err = "spec: unsupported version " +
                      std::to_string(out->version) +
                      " (this build reads versions 1 and 2)";
                return failTop("");
            }
        } else if (key == "name") {
            if (!asString(val, path, &out->name, &err))
                return failTop("");
        } else if (key == "seed") {
            if (!asU64(val, path, &out->seed, &err))
                return failTop("");
            out->hasSeed = true;
        } else if (key == "campaign") {
            if (!mapCampaign(val, out, &err))
                return failTop("");
        } else if (key == "scenario") {
            if (!mapScenario(val, out, &v2Fields, &err))
                return failTop("");
        } else if (key == "engine") {
            if (!mapEngine(val, out, &err))
                return failTop("");
        } else {
            failAt(&err, path, "unknown field \"" + key + "\"");
            return failTop("");
        }
    }
    if (!sawVersion)
        return failTop("missing required field \"version\"");
    // Version gating happens after the walk (the version key may
    // legally follow the scenario section in the file).
    if (out->version < 2 && !v2Fields.empty()) {
        err = "spec: field " + v2Fields.front() +
              " requires version 2 (spec declares version " +
              std::to_string(out->version) + ")";
        return failTop("");
    }
    return true;
}

std::string
serializeSpec(const FaultSpec& spec)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << spec.version;
    if (!spec.name.empty())
        os << ",\n  \"name\": \"" << spec.name << "\"";
    if (spec.hasSeed)
        os << ",\n  \"seed\": " << spec.seed;
    if (spec.hasCampaign) {
        os << ",\n  \"campaign\": {";
        bool first = true;
        auto field = [&](const char* name) -> std::ostringstream& {
            os << (first ? "\n    \"" : ",\n    \"") << name << "\": ";
            first = false;
            return os;
        };
        if (spec.cases > 0)
            field("cases") << spec.cases;
        if (spec.corpusPerGroup > 0)
            field("corpus_per_group") << spec.corpusPerGroup;
        if (!spec.workloads.empty())
            emitStringList(field("workloads"), spec.workloads);
        if (!spec.schemes.empty()) {
            std::vector<std::string> names;
            for (compiler::Scheme s : spec.schemes)
                names.emplace_back(compiler::schemeName(s));
            emitStringList(field("schemes"), names);
        }
        if (!spec.injectors.empty()) {
            std::vector<std::string> names;
            for (InjectorKind k : spec.injectors)
                names.emplace_back(injectorName(k));
            emitStringList(field("injectors"), names);
        }
        if (spec.simBudgetS > 0.0)
            field("sim_budget_s") << numText(spec.simBudgetS);
        if (spec.watchdog > 0)
            field("watchdog") << spec.watchdog;
        os << "\n  }";
    }
    if (spec.hasScenario) {
        const SpecScenario& sc = spec.scenario;
        os << ",\n  \"scenario\": {";
        os << "\n    \"kind\": \"" << sc.kind << "\"";
        if (sc.kind != "clean") {
            os << ",\n    \"freq_hz\": " << numText(sc.freqHz);
            os << ",\n    \"power_dbm\": " << numText(sc.powerDbm);
            if (sc.gridRows > 0) {
                os << ",\n    \"grid\": {\"rows\": " << sc.gridRows
                   << ", \"cols\": " << sc.gridCols
                   << ", \"row\": " << sc.gridRow
                   << ", \"col\": " << sc.gridCol << "}";
            }
            if (sc.kind == "burst" && sc.burstCount > 0) {
                os << ",\n    \"burst\": {\"count\": " << sc.burstCount
                   << ", \"on_s\": " << numText(sc.burstOnS)
                   << ", \"gap_s\": " << numText(sc.burstGapS) << "}";
            }
            if (sc.dutyPeriodS > 0.0) {
                os << ",\n    \"duty\": {\"period_s\": "
                   << numText(sc.dutyPeriodS) << ", \"on_frac\": "
                   << numText(sc.dutyOnFrac) << "}";
            }
            if (sc.phaseS > 0.0)
                os << ",\n    \"phase_s\": " << numText(sc.phaseS);
            if (!sc.envelopeDbm.empty()) {
                os << ",\n    \"envelope\": [";
                for (std::size_t i = 0; i < sc.envelopeDbm.size(); ++i)
                    os << (i ? ", " : "") << numText(sc.envelopeDbm[i]);
                os << "]";
            }
        }
        if (sc.outagePeriodS > 0.0) {
            os << ",\n    \"outage\": {\"period_s\": "
               << numText(sc.outagePeriodS) << ", \"on_frac\": "
               << numText(sc.outageOnFrac) << "}";
        }
        os << "\n  }";
    }
    if (spec.hasEngine) {
        os << ",\n  \"engine\": {";
        bool first = true;
        auto field = [&](const char* name) -> std::ostringstream& {
            os << (first ? "\n    \"" : ",\n    \"") << name << "\": ";
            first = false;
            return os;
        };
        if (!spec.devices.empty())
            emitStringList(field("devices"), spec.devices);
        if (spec.seeds > 0)
            field("seeds") << spec.seeds;
        if (spec.simS > 0.0)
            field("sim_s") << numText(spec.simS);
        if (spec.sliceS > 0.0)
            field("slice_s") << numText(spec.sliceS);
        os << "\n  }";
    }
    os << "\n}\n";
    return os.str();
}

bool
loadSpecFile(const std::string& path, FaultSpec* out, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "spec: cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!parseSpec(buf.str(), out, error)) {
        if (error && !error->empty())
            *error += " [" + path + "]";
        return false;
    }
    return true;
}

std::uint64_t
resolveSeed(const FaultSpec& spec)
{
    if (spec.hasSeed)
        return spec.seed;
    std::uint64_t ambient = exp::globalSeed();
    return ambient != 0 ? ambient : 1;
}

void
applyToCampaign(const FaultSpec& spec, CampaignConfig* config)
{
    config->seed = resolveSeed(spec);
    if (spec.cases > 0)
        config->cases = spec.cases;
    if (spec.corpusPerGroup > 0)
        config->corpusPerGroup = spec.corpusPerGroup;
    if (!spec.workloads.empty())
        config->workloads = spec.workloads;
    if (!spec.schemes.empty())
        config->schemes = spec.schemes;
    if (!spec.injectors.empty())
        config->injectorMix = spec.injectors;
    if (spec.simBudgetS > 0.0)
        config->simTimeBudgetS = spec.simBudgetS;
    if (spec.watchdog > 0)
        config->watchdogBudget = spec.watchdog;
}

}  // namespace gecko::fault
