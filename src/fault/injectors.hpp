#ifndef GECKO_FAULT_INJECTORS_HPP_
#define GECKO_FAULT_INJECTORS_HPP_

#include <array>
#include <cstdint>

#include "energy/harvester.hpp"
#include "exp/rng.hpp"
#include "fault/fault.hpp"
#include "sim/nvm.hpp"

/**
 * @file
 * Seeded fault mutations and the brownout harvester decorator.
 *
 * Each helper derives every free parameter (target word, bit mask,
 * truncation offset, burst schedule) from the case's exp::Rng, so a
 * case's full behaviour is a pure function of its CaseSpec.
 */

namespace gecko::sim {
class Machine;
}

namespace gecko::fault {

/** Flip 1..3 bits inside one word. */
std::uint32_t flipBits(std::uint32_t value, int nBits, exp::Rng& rng);

/**
 * Flip `nBits` bits of one seeded word of the JIT image (any of the
 * kJitWords words, ACK/CRC/epoch included).
 * @return the word index hit.
 */
int corruptJitWord(sim::Nvm& nvm, int nBits, exp::Rng& rng,
                   std::int32_t wordOverride = -1);

/**
 * Flip `nBits` bits of one seeded primary slot word (the shadow copy is
 * untouched: multi-bit disturbance is confined to one physical word).
 * @return reg * kMaxSlots + slot of the word hit.
 */
int corruptSlotWord(sim::Nvm& nvm, int nBits, exp::Rng& rng,
                    std::int32_t wordOverride = -1);

/** Flip one seeded bit of the JIT ACK word. */
void corruptAckWord(sim::Nvm& nvm, exp::Rng& rng);

/**
 * Substitute a previously captured JIT image (all words, internally
 * consistent — epoch, CRC and ACK included) into the NVM.
 */
void substituteJitImage(
    sim::Nvm& nvm, const std::array<std::uint32_t, sim::Nvm::kJitWords>& old);

/**
 * Substitute one primary slot *value* word with a stale value (its CRC
 * word keeps the current value's CRC: a stale cell value reappearing is
 * a physical fault; rewriting value+CRC coherently is CRC forgery, out
 * of scope).
 */
void substituteStaleSlot(sim::Nvm& nvm, int reg, int slot,
                         std::uint32_t staleValue);

/**
 * Skip the instruction the machine is about to fetch: the PC advances
 * without the instruction executing (an EMFI glitch swallowed the
 * fetch).  Applied between run() quanta so every execution backend sees
 * the identical architectural mutation.
 */
void injectInstrSkip(sim::Machine& machine);

/** Corrupted fetched opcode, modelled as a wild jump to `targetPc`. */
void injectOpcodeCorrupt(sim::Machine& machine, std::uint32_t targetPc);

/**
 * Flip `nBits` bits of one seeded architectural register (an in-flight
 * operand disturbed by the glitch).
 * @return the register index hit.
 */
int injectOperandFlip(sim::Machine& machine, int nBits, exp::Rng& rng,
                      std::int32_t regOverride = -1);

/**
 * Harvester decorator: collapses the base source's open-circuit voltage
 * to zero during seeded burst windows, with mean period `meanPeriodS`
 * and burst length `burstS`.  Deterministic: the schedule is derived
 * once from the seed at construction.
 */
class BrownoutHarvester : public energy::Harvester
{
  public:
    BrownoutHarvester(const energy::Harvester& base, double meanPeriodS,
                      double burstS, std::uint64_t seed, double horizonS);

    double openCircuitVoltage(double t) const override;
    double seriesResistance(double t) const override
    {
        return base_.seriesResistance(t);
    }
    bool steadyOver(double t, double dt) const override;

  private:
    bool inBurst(double t) const;

    const energy::Harvester& base_;
    /// Sorted [start, end) burst windows.
    std::vector<std::pair<double, double>> bursts_;
};

}  // namespace gecko::fault

#endif  // GECKO_FAULT_INJECTORS_HPP_
