#include "fault/corpus.hpp"

#include <sstream>
#include <stdexcept>

namespace gecko::fault {

bool
schemeFromName(const std::string& name, compiler::Scheme* out)
{
    using compiler::Scheme;
    for (Scheme s : {Scheme::kNvp, Scheme::kRatchet, Scheme::kGeckoNoPrune,
                     Scheme::kGecko}) {
        if (name == compiler::schemeName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

std::string
formatCorpusLine(const CaseResult& result)
{
    std::ostringstream os;
    os << "case workload=" << result.spec.workload
       << " scheme=" << compiler::schemeName(result.spec.scheme)
       << " injector=" << injectorName(result.spec.injector)
       << " seed=" << result.spec.seed << " injectAt=" << result.injectAt
       << " word=" << result.word
       << " outcome=" << outcomeName(result.outcome);
    return os.str();
}

bool
parseCorpusLine(const std::string& line, CorpusEntry* out, std::string* err)
{
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag != "case") {
        *err = "line does not start with 'case'";
        return false;
    }
    CorpusEntry entry;
    std::string token;
    while (is >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos) {
            *err = "malformed token: " + token;
            return false;
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "workload") {
            entry.spec.workload = value;
        } else if (key == "scheme") {
            if (!schemeFromName(value, &entry.spec.scheme)) {
                *err = "unknown scheme: " + value;
                return false;
            }
        } else if (key == "injector") {
            if (!injectorFromName(value, &entry.spec.injector)) {
                *err = "unknown injector: " + value;
                return false;
            }
        } else if (key == "seed") {
            entry.spec.seed = std::stoull(value);
        } else if (key == "injectAt") {
            entry.spec.injectAtOverride = std::stoll(value);
        } else if (key == "word") {
            entry.spec.wordOverride =
                static_cast<std::int32_t>(std::stol(value));
        } else if (key == "outcome") {
            if (!outcomeFromName(value, &entry.outcome)) {
                *err = "unknown outcome: " + value;
                return false;
            }
        } else {
            *err = "unknown key: " + key;
            return false;
        }
    }
    if (entry.spec.workload.empty()) {
        *err = "missing workload";
        return false;
    }
    *out = entry;
    return true;
}

std::string
formatCorpus(std::uint64_t campaignSeed,
             const std::vector<CaseResult>& failures)
{
    std::ostringstream os;
    os << "# gecko-fault-corpus v1\n";
    os << "# seed " << campaignSeed << "\n";
    for (const CaseResult& r : failures)
        os << formatCorpusLine(r) << "\n";
    return os.str();
}

std::vector<CorpusEntry>
parseCorpus(const std::string& text, std::uint64_t* campaignSeed)
{
    std::vector<CorpusEntry> entries;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream hs(line);
            std::string hash, key;
            hs >> hash >> key;
            if (key == "seed" && campaignSeed) {
                std::uint64_t s = 0;
                if (hs >> s)
                    *campaignSeed = s;
            }
            continue;
        }
        CorpusEntry entry;
        std::string err;
        if (!parseCorpusLine(line, &entry, &err))
            throw std::runtime_error("corpus parse error: " + err +
                                     " in line: " + line);
        entries.push_back(entry);
    }
    return entries;
}

}  // namespace gecko::fault
