#ifndef GECKO_FAULT_CORPUS_HPP_
#define GECKO_FAULT_CORPUS_HPP_

#include <string>
#include <vector>

#include "fault/fault.hpp"

/**
 * @file
 * The replayable failure corpus.
 *
 * A corpus is a plain-text file keyed by the campaign's GECKO_SEED: a
 * header naming the seed, then one `case` line per (minimised) failing
 * case.  Every line is self-contained — `fault_campaign
 * --replay=<file>` re-runs each case standalone and checks it still
 * produces the recorded outcome.  Serialisation is fully deterministic
 * (no timestamps, no wall-clock), so the same seed yields a
 * byte-identical corpus regardless of GECKO_THREADS.
 */

namespace gecko::fault {

/** One corpus entry: a spec plus its recorded outcome. */
struct CorpusEntry {
    CaseSpec spec;
    CaseOutcome outcome = CaseOutcome::kOk;
};

/** Serialise one entry as a `case` line (no trailing newline). */
std::string formatCorpusLine(const CaseResult& result);

/**
 * Parse one `case` line.
 * @return false (with *err set) on malformed input.
 */
bool parseCorpusLine(const std::string& line, CorpusEntry* out,
                     std::string* err);

/** Serialise a whole corpus (header + one line per result). */
std::string formatCorpus(std::uint64_t campaignSeed,
                         const std::vector<CaseResult>& failures);

/**
 * Parse a corpus file's contents.
 * @throws std::runtime_error on malformed lines.
 */
std::vector<CorpusEntry> parseCorpus(const std::string& text,
                                     std::uint64_t* campaignSeed);

/** compiler::schemeName's inverse. */
bool schemeFromName(const std::string& name, compiler::Scheme* out);

}  // namespace gecko::fault

#endif  // GECKO_FAULT_CORPUS_HPP_
