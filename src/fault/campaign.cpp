#include "fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/compile_cache.hpp"
#include "device/device_db.hpp"
#include "exp/parallel.hpp"
#include "exp/rng.hpp"
#include "fault/corpus.hpp"
#include "fault/injectors.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/jit_checkpoint.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace gecko::fault {

using compiler::CompiledProgram;
using compiler::Scheme;
using runtime::GeckoRuntime;
using sim::IoHub;
using sim::JitCheckpoint;
using sim::Machine;
using sim::Nvm;
using sim::RunExit;

namespace {

/** NVM data words of every campaign victim (matches the test harnesses
 *  and the SimConfig default, so NVM oracles are comparable). */
constexpr std::size_t kMemWords = 16384;

/** Historical machine-level livelock budget (run-loop iterations). */
constexpr std::uint64_t kDefaultWatchdogBudget = 400000;

/** 0 → GECKO_WATCHDOG from the environment → the historical default. */
std::uint64_t
resolveWatchdogBudget(std::uint64_t requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("GECKO_WATCHDOG")) {
        char* end = nullptr;
        std::uint64_t v = std::strtoull(env, &end, 10);
        if (end != env && v > 0)
            return v;
    }
    return kDefaultWatchdogBudget;
}

/** The fault-free oracle of one (workload, scheme, harness level). */
struct Golden {
    compiler::CompileCache::Ptr prog;
    std::vector<std::uint32_t> out0;
    std::vector<std::uint32_t> out2;
    std::vector<std::uint32_t> memory;
    std::uint64_t cycles = 0;
};

/**
 * Golden-oracle cache.  Computed once per key under a lock; the values
 * are pure functions of (workload, scheme, level), so the cache is
 * thread-count-independent.
 */
const Golden&
goldenFor(const std::string& workload, Scheme scheme, bool simLevel)
{
    static std::mutex mutex;
    static std::map<std::string, std::unique_ptr<Golden>> cache;

    std::string key = workload + "|" + compiler::schemeName(scheme) +
                      (simLevel ? "|sim" : "|machine");
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    // The oracle run is shared lazy state: whichever case misses the
    // cache first would otherwise record the golden run's events into
    // *its* buffer, making traces depend on scheduling.  Suppress.
    trace::BufferScope untraced(nullptr);

    auto golden = std::make_unique<Golden>();
    // Sim-level victims are compiled with a tighter region budget so
    // rollback recovery makes progress within the short power-on
    // periods of the brownout-heavy energy environments used there.
    compiler::PipelineConfig pc;
    if (simLevel)
        pc.maxRegionCycles = 8000;
    golden->prog = compiler::CompileCache::global().getOrCompile(
        compiler::CompileCache::makeKey(workload, scheme,
                                        simLevel ? "fault-sim"
                                                 : "fault-machine"),
        [&] { return compiler::compile(workloads::build(workload), scheme, pc); });

    Nvm nvm(kMemWords);
    IoHub io;
    workloads::setupIo(workload, io);
    golden->cycles = sim::runToCompletion(*golden->prog, nvm, io);
    golden->out0 = io.output(0).values();
    golden->out2 = io.output(2).values();
    golden->memory = nvm.data();

    const Golden& ref = *golden;
    cache.emplace(key, std::move(golden));
    return ref;
}

/** Is `got` a consistent prefix of the golden output stream? */
bool
prefixConsistent(const std::vector<std::uint32_t>& got,
                 const std::vector<std::uint32_t>& gold)
{
    if (got.size() > gold.size())
        return false;
    return std::equal(got.begin(), got.end(), gold.begin());
}

/** Fill the divergence verdict for a run that reached completion. */
void
judgeCompletedRun(CaseResult& res, const Golden& gold, const IoHub& io,
                  const Nvm& nvm)
{
    std::uint64_t conflicts =
        io.output(0).conflicts() + io.output(2).conflicts();
    if (conflicts > 0) {
        res.outcome = CaseOutcome::kDiverged;
        res.detail = "output conflicts (non-exactly-once I/O)";
    } else if (io.output(0).values() != gold.out0) {
        res.outcome = CaseOutcome::kDiverged;
        res.detail = "out0 stream differs from golden";
    } else if (io.output(2).values() != gold.out2) {
        res.outcome = CaseOutcome::kDiverged;
        res.detail = "out2 stream differs from golden";
    } else if (nvm.data() != gold.memory) {
        res.outcome = CaseOutcome::kDiverged;
        res.detail = "final NVM image differs from golden";
    } else {
        res.outcome = CaseOutcome::kOk;
    }
}

/** Corruption evidence for a run that did NOT complete: conflicting or
 *  non-prefix outputs already prove divergence. */
bool
partialRunDiverged(const Golden& gold, const IoHub& io, std::string* why)
{
    if (io.output(0).conflicts() + io.output(2).conflicts() > 0) {
        *why = "output conflicts (non-exactly-once I/O)";
        return true;
    }
    if (!prefixConsistent(io.output(0).values(), gold.out0)) {
        *why = "out0 stream inconsistent with golden prefix";
        return true;
    }
    if (!prefixConsistent(io.output(2).values(), gold.out2)) {
        *why = "out2 stream inconsistent with golden prefix";
        return true;
    }
    return false;
}

void
collectRuntimeStats(CaseResult& res, const GeckoRuntime& runtime)
{
    res.corruptedRestores = runtime.stats.corruptedRestores;
    res.crcRejects = runtime.stats.crcRejects;
    res.slotRepairs = runtime.stats.slotRepairs;
    res.ckptSaveRetries = runtime.stats.ckptSaveRetries;
    res.retriesExhausted = runtime.stats.retriesExhausted;
    res.integrityDegradations = runtime.stats.integrityDegradations;
}

bool
hasJit(Scheme scheme)
{
    return scheme != Scheme::kRatchet;
}

// ---------------------------------------------------------------------
// Machine-level harness: budget-run execution with power failures at a
// seeded cadence, the injection applied at one seeded failure event
// (the crash_consistency_test harness plus a fault).
// ---------------------------------------------------------------------
CaseResult
runMachineCase(const CaseSpec& spec, std::uint64_t watchdogBudget,
               sim::ExecBackend backend = sim::defaultExecBackend())
{
    const Golden& gold = goldenFor(spec.workload, spec.scheme, false);
    CaseResult res;
    res.spec = spec;

    exp::Rng rng(spec.seed);
    // Fixed draw order — overrides replace derived values but never
    // skip a draw, so a minimised case replays the same mutation.
    std::uint64_t divisor = 3 + rng.pick(37);
    std::uint64_t interval =
        std::max<std::uint64_t>(43, gold.cycles / divisor);
    std::uint64_t offset = rng.pick(97);
    std::int64_t injectAtDerived = static_cast<std::int64_t>(
        rng.pick(std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(divisor / 2))));
    std::int64_t injectAt = spec.injectAtOverride >= 0
                                ? spec.injectAtOverride
                                : injectAtDerived;
    // Stale-slot coordinates (drawn for every kind to keep the
    // sequence identical across kinds' shared prefix).
    int staleReg = static_cast<int>(rng.pick(16));
    int staleSlot = static_cast<int>(
        rng.pick(static_cast<std::uint32_t>(compiler::kMaxSlots)));
    bool targetSlots = false;
    if (spec.injector == InjectorKind::kBitFlip ||
        spec.injector == InjectorKind::kMultiBitFlip) {
        bool coin = (rng.next() & 1) != 0;
        if (spec.scheme == Scheme::kNvp)
            targetSlots = false;
        else if (spec.scheme == Scheme::kRatchet)
            targetSlots = true;
        else
            targetSlots = coin;
    }
    int nBits =
        spec.injector == InjectorKind::kMultiBitFlip
            ? 2 + static_cast<int>(rng.pick(2))
            : 1;
    // Instruction-fault parameters (drawn after the shared prefix and
    // gated on the kind, so every other kind's sequence is untouched).
    // The glitch fires mid-interval — `instrDelta` cycles before the
    // next failure event — because an EMFI pulse strong enough to
    // corrupt a fetch lands while the victim is executing, not at the
    // power-failure boundary itself.
    std::uint64_t instrDelta = 0;
    int instrBits = 1;
    std::uint32_t wildTarget = 0;
    if (isInstrFault(spec.injector)) {
        instrDelta = 1 + rng.pick(static_cast<std::uint32_t>(
                             std::min<std::uint64_t>(interval - 1, 512)));
        if (spec.injector == InjectorKind::kOperandFlip)
            instrBits = 1 + static_cast<int>(rng.pick(2));
        wildTarget = rng.pick(static_cast<std::uint32_t>(
            std::max<std::size_t>(1, gold.prog->prog.size())));
    }

    Nvm nvm(kMemWords);
    IoHub io;
    workloads::setupIo(spec.workload, io);
    Machine machine(*gold.prog, nvm, io);
    machine.setExecBackend(backend);
    machine.setStagedIo(spec.scheme != Scheme::kNvp);
    machine.setFaultTolerant(true);
    GeckoRuntime runtime(*gold.prog, machine, nvm);
    runtime.onBoot();

    std::array<std::uint32_t, Nvm::kJitWords> savedImage{};
    std::uint32_t staleValue = 0;
    bool captured = false;
    bool injected = false;

    std::uint64_t executed = 0;
    std::uint64_t next_failure = interval + offset;
    std::int64_t failureIdx = 0;
    std::int64_t maxFailures = injectAt + 24;
    std::uint64_t watchdog = 0;
    const std::uint64_t cycleCap = gold.cycles * 64 + (1ull << 22);
    // Instruction-fault arming: the fault fires at an absolute cycle
    // between two failure events, and the same EMI window that glitched
    // the fetch masks the *next* backup signal, so the checkpoint that
    // would capture the corrupted state is skipped for every scheme.
    bool instrArmed = false;
    bool skipNextCkpt = false;
    std::uint64_t instrFireAt = 0;

    while (!machine.halted()) {
        std::uint64_t target = next_failure;
        if (instrArmed && instrFireAt > executed && instrFireAt < target)
            target = instrFireAt;
        std::uint64_t budget = target > executed ? target - executed : 1;
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(budget, &consumed);
        executed += consumed;
        if (consumed > 0)
            runtime.noteExecutionSinceCheckpoint();
        runtime.onProgress();
        if (exit == RunExit::kHalted)
            break;
        if (exit == RunExit::kFaulted) {
            if (injected && isInstrFault(spec.injector)) {
                // A glitched fetch trapped (bad PC/address): the MCU
                // reboots through its normal recovery path — the trap
                // is part of the fault's observable behaviour, not the
                // end of the experiment.  Bounded by the watchdog.
                machine.powerCycle();
                runtime.onBoot();
            } else {
                res.outcome = CaseOutcome::kFaulted;
                res.detail = "machine faulted (bad PC/address)";
                break;
            }
        }
        if (instrArmed && executed >= instrFireAt) {
            // Applied at a run() boundary, so every execution backend
            // sees the identical architectural mutation.
            switch (spec.injector) {
              case InjectorKind::kInstrSkip:
                injectInstrSkip(machine);
                break;
              case InjectorKind::kOpcodeCorrupt:
                injectOpcodeCorrupt(machine, wildTarget);
                break;
              case InjectorKind::kOperandFlip:
                res.word = injectOperandFlip(machine, instrBits, rng,
                                             spec.wordOverride);
                break;
              default:
                break;
            }
            instrArmed = false;
            injected = true;
            skipNextCkpt = true;
        }
        if (executed >= next_failure) {
            if (failureIdx < maxFailures) {
                bool isInject =
                    !injected && !instrArmed && failureIdx == injectAt;
                // The stale injectors (and slot-targeting flips) need a
                // *hard* failure at the injection point: no fresh
                // checkpoint, so the rollback/restore path actually
                // reads the disturbed storage.  An applied instruction
                // fault masks the next backup signal the same way
                // (skipNextCkpt): the corrupted volatile state dies
                // uncheckpointed, which is exactly what lets rollback
                // schemes contain it.
                bool skipCkpt =
                    skipNextCkpt ||
                    (isInject &&
                     (spec.injector == InjectorKind::kAckCorrupt ||
                      spec.injector == InjectorKind::kStaleImage ||
                      targetSlots));
                bool torn =
                    isInject && spec.injector == InjectorKind::kTornWrite;

                if (runtime.jitActive() && !skipCkpt) {
                    if (torn) {
                        int cutDerived = static_cast<int>(rng.pick(
                            static_cast<std::uint32_t>(Nvm::kJitWords)));
                        int cut = spec.wordOverride >= 0
                                      ? spec.wordOverride
                                      : cutDerived;
                        int n = 0;
                        GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                                          trace::kSiteTornWrite,
                                          static_cast<std::uint64_t>(cut));
                        sim::JitResult jr = JitCheckpoint::checkpoint(
                            machine, nvm, [&](int) { return n++ < cut; });
                        if (!jr.complete) {
                            GECKO_TRACE_EVENT(
                                trace::EventKind::kJitSaveTorn, 0, 0,
                                static_cast<std::uint64_t>(cut));
                        }
                        res.word = cut;
                        // Torn: the ACK never toggled; the image stays
                        // stale/partial — do not mark it fresh.
                    } else {
                        JitCheckpoint::checkpoint(
                            machine, nvm, [](int) { return true; });
                        runtime.noteJitCheckpointComplete();
                        if (!captured) {
                            savedImage = nvm.jit;
                            staleValue =
                                nvm.slots[static_cast<std::size_t>(
                                    staleReg)][static_cast<std::size_t>(
                                    staleSlot)];
                            captured = true;
                        }
                    }
                }
                if (isInject && isInstrFault(spec.injector)) {
                    instrArmed = true;
                    instrFireAt = next_failure + interval - instrDelta;
                    res.injectAt = failureIdx;
                } else if (isInject) {
                    switch (spec.injector) {
                      case InjectorKind::kBitFlip:
                      case InjectorKind::kMultiBitFlip:
                        res.word = targetSlots
                                       ? corruptSlotWord(nvm, nBits, rng,
                                                         spec.wordOverride)
                                       : corruptJitWord(nvm, nBits, rng,
                                                        spec.wordOverride);
                        break;
                      case InjectorKind::kTornWrite:
                        if (!hasJit(spec.scheme)) {
                            // No JIT image to tear on Ratchet; the hard
                            // failure itself is the fault.
                            res.word = -1;
                        }
                        break;
                      case InjectorKind::kAckCorrupt:
                        corruptAckWord(nvm, rng);
                        break;
                      case InjectorKind::kStaleImage:
                        if (hasJit(spec.scheme))
                            substituteJitImage(nvm, savedImage);
                        if (spec.scheme != Scheme::kNvp)
                            substituteStaleSlot(nvm, staleReg, staleSlot,
                                                staleValue);
                        break;
                      default:
                        break;
                    }
                    injected = true;
                    res.injectAt = failureIdx;
                }
                machine.powerCycle();
                runtime.onBoot();
                skipNextCkpt = false;
                ++failureIdx;
            }
            next_failure += interval;
        }
        if (++watchdog > watchdogBudget || executed > cycleCap) {
            res.outcome = CaseOutcome::kLivelock;
            std::ostringstream why;
            why << "no forward progress within watchdog budget ("
                << (watchdog > watchdogBudget ? "watchdog=" : "cycleCap=")
                << (watchdog > watchdogBudget ? watchdogBudget : cycleCap)
                << " pc=" << machine.pc()
                << " region=" << nvm.committedRegion
                << " commits=" << nvm.commitCount << ")";
            res.detail = why.str();
            break;
        }
    }

    collectRuntimeStats(res, runtime);
    if (!injected && res.outcome == CaseOutcome::kOk)
        res.detail = "not-injected";
    if (res.outcome == CaseOutcome::kOk) {
        judgeCompletedRun(res, gold, io, nvm);
    } else {
        // Even a faulted/livelocked run may already have proven
        // divergence through its observable outputs.
        std::string why;
        if (partialRunDiverged(gold, io, &why)) {
            res.outcome = CaseOutcome::kDiverged;
            res.detail = why;
        }
    }
    return res;
}

// ---------------------------------------------------------------------
// Sim-level harness: the full intermittent simulation under a hostile
// energy/sensing environment (monitor faults, brownout bursts).
// ---------------------------------------------------------------------
CaseResult
runSimCase(const CaseSpec& spec, double simTimeBudgetS,
           sim::ExecBackend backend = sim::defaultExecBackend())
{
    const Golden& gold = goldenFor(spec.workload, spec.scheme, true);
    CaseResult res;
    res.spec = spec;
    res.injectAt = 0;  // continuous environmental fault

    const auto& dev = device::DeviceDb::msp430fr5994();
    exp::Rng rng(spec.seed);
    // Fixed draw order (see runMachineCase).
    double onS = 0.002 + 0.003 * rng.uniform();
    double offS = 0.003 + 0.005 * rng.uniform();
    double capF = 15e-6 + 15e-6 * rng.uniform();
    // Stuck-at faults are intermittent (a flaky sensing path): the
    // monitor reads a frozen high value during recurring windows,
    // masking the V_backup crossing until the rail is nearly dead — the
    // checkpoint then starts with almost no margin and tears.
    double stuckV = dev.vOn + 0.05 + 0.3 * rng.uniform();
    double stuckPeriodS = 0.004 + 0.006 * rng.uniform();
    double stuckWidthS = 0.002 + 0.003 * rng.uniform();
    // Offsets from just inside the paper's malicious window (backup
    // fires barely above V_off: torn checkpoints) up to past it (backup
    // masked entirely: hard deaths).
    double offsetV = 0.05 + 0.5 * rng.uniform();
    double burstPeriodS = 0.004 + 0.006 * rng.uniform();
    double burstS = 0.002 + 0.002 * rng.uniform();
    double faultProb = 0.05 + 0.20 * rng.uniform();
    std::uint64_t hookSeed = rng.next();
    // EMI-burst parameters (drawn after the shared prefix, so every
    // other kind's sequence is untouched).
    double atkStart = 0.0, atkOnS = 0.0, atkGapS = 0.0, atkPower = 0.0;
    if (spec.injector == InjectorKind::kEmiBurst) {
        atkStart = 0.003 + 0.003 * rng.uniform();
        atkOnS = 0.010 + 0.010 * rng.uniform();
        atkGapS = 0.004 + 0.004 * rng.uniform();
        atkPower = 30.0 + 8.0 * rng.uniform();
    }

    sim::SimConfig cfg;
    cfg.continuous = false;
    cfg.memWords = kMemWords;
    // Small CTPL padding: most tears land in the context words, the
    // interesting half of the image.
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.monitorSeed = spec.seed;
    cfg.cap.capacitanceF = capF;
    cfg.cap.initialV = 3.3;

    IoHub io;
    workloads::setupIo(spec.workload, io);

    energy::SquareWaveHarvester wave(3.3, 5.0, onS, offS);
    energy::ConstantHarvester supply(3.3, 5.0);
    std::unique_ptr<BrownoutHarvester> brownout;
    energy::Harvester* source = &wave;
    if (spec.injector == InjectorKind::kBrownoutBurst) {
        brownout = std::make_unique<BrownoutHarvester>(
            supply, burstPeriodS, burstS, spec.seed, simTimeBudgetS + 1.0);
        source = brownout.get();
    }
    if (spec.injector == InjectorKind::kEmiBurst) {
        // The attack — not the energy environment — is the fault: a
        // steady supply, with the adaptive controller armed (a no-op
        // for the unguarded NVP/Ratchet victims).
        source = &supply;
        cfg.defense.enabled = true;
    }

    sim::IntermittentSim simulation(*gold.prog, dev, cfg, *source, io);
    simulation.machine().setExecBackend(backend);

    std::unique_ptr<attack::RemoteRig> rig;
    std::unique_ptr<attack::EmiSource> emiSource;
    std::unique_ptr<attack::AttackSchedule> atkSchedule;
    if (spec.injector == InjectorKind::kEmiBurst) {
        rig = std::make_unique<attack::RemoteRig>(
            dev, cfg.monitorKind, 0.5);
        emiSource = std::make_unique<attack::EmiSource>(*rig, 27e6,
                                                        atkPower);
        std::vector<attack::AttackWindow> windows;
        double start = atkStart;
        for (int i = 0; i < 3; ++i) {
            windows.push_back({start, start + atkOnS, 27e6, atkPower});
            start += atkOnS + atkGapS;
        }
        atkSchedule =
            std::make_unique<attack::AttackSchedule>(std::move(windows));
        simulation.setEmiSource(emiSource.get());
        simulation.setAttackSchedule(atkSchedule.get());
    }

    switch (spec.injector) {
      case InjectorKind::kMonitorStuck:
        simulation.setMonitorFault(
            [stuckV, stuckPeriodS, stuckWidthS](double v, double t) {
                double phase = std::fmod(t, stuckPeriodS);
                return phase < stuckWidthS ? stuckV : v;
            });
        break;
      case InjectorKind::kMonitorOffset:
        simulation.setMonitorFault(
            [offsetV](double v, double) { return v + offsetV; });
        break;
      case InjectorKind::kBrownoutBurst:
        // Mid-burst disturbance also makes individual checkpoint word
        // writes fail transiently — the bounded-retry path's workload.
        simulation.setJitWriteFault(
            [faultRng = exp::Rng(hookSeed), faultProb](int) mutable {
                return faultRng.uniform() < faultProb;
            });
        break;
      default:
        break;
    }

    bool completed = simulation.runUntilCompletions(1, simTimeBudgetS);
    collectRuntimeStats(res, simulation.geckoRuntime());
    if (const auto* dc = simulation.defenseController()) {
        res.defenseEscalations = dc->stats().escalations;
        res.defenseRatchetTrips = dc->stats().ratchetTrips;
    }

    if (completed) {
        judgeCompletedRun(res, gold, io, simulation.nvm());
    } else {
        std::string why;
        if (partialRunDiverged(gold, io, &why)) {
            res.outcome = CaseOutcome::kDiverged;
            res.detail = why;
        } else {
            res.outcome = CaseOutcome::kTimeout;
            res.detail = "no completion within sim-time budget";
        }
    }
    // Detected-then-survived attack: the controller escalated during the
    // run and the outputs still match the golden oracle — a pass.
    if (res.outcome == CaseOutcome::kOk && res.defenseEscalations > 0) {
        res.defended = true;
        res.detail = "defended";
    }
    return res;
}

/** Bisect toward the smallest failing value of one override knob. */
template <class Probe>
std::int64_t
bisectDown(std::int64_t hi, Probe failsAt)
{
    std::int64_t lo = 0;
    while (lo < hi) {
        std::int64_t mid = lo + (hi - lo) / 2;
        if (failsAt(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return hi;
}

/**
 * Shrink a failing machine-level case: bisect the injection event index
 * toward 0, then (torn writes) the truncation offset.  The returned
 * result re-ran with the minimised overrides and still fails; if
 * shrinking ever stops reproducing, the original result is kept.
 */
CaseResult
minimizeCase(const CaseResult& failing, std::uint64_t watchdogBudget)
{
    if (isSimLevel(failing.spec.injector) || failing.injectAt < 0)
        return failing;

    CaseSpec spec = failing.spec;
    spec.wordOverride = failing.word;
    spec.injectAtOverride = bisectDown(failing.injectAt, [&](std::int64_t a) {
        CaseSpec probe = spec;
        probe.injectAtOverride = a;
        return isCorruption(
            runMachineCase(probe, watchdogBudget).outcome);
    });
    if (failing.spec.injector == InjectorKind::kTornWrite &&
        failing.word > 0) {
        spec.wordOverride =
            static_cast<std::int32_t>(bisectDown(failing.word, [&](std::int64_t w) {
                CaseSpec probe = spec;
                probe.wordOverride = static_cast<std::int32_t>(w);
                return isCorruption(
                    runMachineCase(probe, watchdogBudget).outcome);
            }));
    }
    CaseResult minimized = runMachineCase(spec, watchdogBudget);
    if (!isCorruption(minimized.outcome))
        return failing;
    minimized.minimized = true;
    return minimized;
}

/** Injector schedule: the five discrete NVM injectors three times, one
 *  sim-level injector after each block (sim cases are ~1/7 of the
 *  grid — they cost an order of magnitude more wall time each), then
 *  the three instruction-stream injectors (machine-level, cheap). */
constexpr InjectorKind kSchedule[] = {
    InjectorKind::kBitFlip,      InjectorKind::kTornWrite,
    InjectorKind::kAckCorrupt,   InjectorKind::kStaleImage,
    InjectorKind::kMultiBitFlip, InjectorKind::kMonitorStuck,
    InjectorKind::kBitFlip,      InjectorKind::kTornWrite,
    InjectorKind::kAckCorrupt,   InjectorKind::kStaleImage,
    InjectorKind::kMultiBitFlip, InjectorKind::kMonitorOffset,
    InjectorKind::kBitFlip,      InjectorKind::kTornWrite,
    InjectorKind::kAckCorrupt,   InjectorKind::kStaleImage,
    InjectorKind::kMultiBitFlip, InjectorKind::kBrownoutBurst,
    InjectorKind::kBitFlip,      InjectorKind::kTornWrite,
    InjectorKind::kAckCorrupt,   InjectorKind::kStaleImage,
    InjectorKind::kMultiBitFlip, InjectorKind::kEmiBurst,
    InjectorKind::kInstrSkip,    InjectorKind::kOpcodeCorrupt,
    InjectorKind::kOperandFlip,
};
constexpr std::size_t kScheduleLen =
    sizeof(kSchedule) / sizeof(kSchedule[0]);

}  // namespace

std::vector<CaseSpec>
makeCampaignCases(const CampaignConfig& config)
{
    std::vector<CaseSpec> specs;
    specs.reserve(static_cast<std::size_t>(config.cases));
    const std::size_t ns = config.schemes.size();
    const std::size_t nw = config.workloads.size();
    // A spec-file injector mix replaces the built-in schedule; the
    // default (empty mix) is byte-identical to the historical campaign.
    const InjectorKind* schedule = kSchedule;
    std::size_t scheduleLen = kScheduleLen;
    if (!config.injectorMix.empty()) {
        schedule = config.injectorMix.data();
        scheduleLen = config.injectorMix.size();
    }
    for (int i = 0; i < config.cases; ++i) {
        auto u = static_cast<std::size_t>(i);
        CaseSpec spec;
        spec.scheme = config.schemes[u % ns];
        spec.injector = schedule[(u / ns) % scheduleLen];
        spec.workload = isSimLevel(spec.injector)
                            ? "sensor_loop"
                            : config.workloads[(u / (ns * scheduleLen)) % nw];
        spec.seed = exp::mixSeed(config.seed, static_cast<std::uint64_t>(i));
        specs.push_back(std::move(spec));
    }
    return specs;
}

CaseResult
runCase(const CaseSpec& spec, double simTimeBudgetS,
        std::uint64_t watchdogBudget, sim::ExecBackend backend)
{
    if (isSimLevel(spec.injector))
        return runSimCase(spec, simTimeBudgetS, backend);
    return runMachineCase(spec, resolveWatchdogBudget(watchdogBudget),
                          backend);
}

CampaignResult
runCampaign(const CampaignConfig& config)
{
    std::vector<CaseSpec> specs = makeCampaignCases(config);
    exp::ThreadPool& pool =
        config.pool ? *config.pool : exp::ThreadPool::global();
    const std::uint64_t watchdogBudget =
        resolveWatchdogBudget(config.watchdogBudget);

    CampaignResult out;
    out.cases = exp::parallelMap(pool, specs, [&](const CaseSpec& spec) {
        // parallelMap hands out references into `specs`, so the case
        // ordinal (the deterministic trace-merge index) is recoverable.
        const auto ordinal =
            static_cast<std::uint64_t>(&spec - specs.data());
        trace::CaseScope scope(
            config.collector,
            spec.workload + "|" + compiler::schemeName(spec.scheme) + "|" +
                injectorName(spec.injector) + "|" +
                std::to_string(spec.seed),
            ordinal);
        return runCase(spec, config.simTimeBudgetS, watchdogBudget);
    });

    // Aggregate per (scheme, injector).
    const std::size_t ns = config.schemes.size();
    out.counts.assign(ns, std::vector<GroupCounts>(kInjectorKinds));
    auto schemeIdx = [&](Scheme s) {
        for (std::size_t i = 0; i < ns; ++i)
            if (config.schemes[i] == s)
                return i;
        return std::size_t{0};
    };
    for (const CaseResult& r : out.cases) {
        GroupCounts& g =
            out.counts[schemeIdx(r.spec.scheme)]
                      [static_cast<std::size_t>(r.spec.injector)];
        ++g.cases;
        switch (r.outcome) {
          case CaseOutcome::kOk:
            ++g.ok;
            break;
          case CaseOutcome::kDiverged:
            ++g.diverged;
            break;
          case CaseOutcome::kFaulted:
            ++g.faulted;
            break;
          case CaseOutcome::kLivelock:
            ++g.livelock;
            break;
          case CaseOutcome::kTimeout:
            ++g.timeout;
            break;
        }
        if (r.detail == "not-injected")
            ++g.notInjected;
        if (r.defended) {
            ++g.defended;
            ++out.defendedCases;
        }
        out.defenseEscalations += r.defenseEscalations;
        out.defenseRatchetTrips += r.defenseRatchetTrips;
        bool corrupt = isCorruption(r.outcome);
        bool gecko = r.spec.scheme == Scheme::kGecko ||
                     r.spec.scheme == Scheme::kGeckoNoPrune;
        if (isInstrFault(r.spec.injector)) {
            // Instruction faults corrupt architectural state the
            // storage-integrity guards cannot see — a distinct threat
            // class, measured by containment *rate* rather than the
            // geckoClean verdict (which keeps the paper's fault model).
            if (gecko) {
                ++out.instrGeckoCases;
                if (corrupt)
                    ++out.instrGeckoCorruptions;
            }
            if (r.spec.scheme == Scheme::kNvp) {
                ++out.instrNvpCases;
                if (corrupt)
                    ++out.instrNvpCorruptions;
            }
        } else {
            if (corrupt && gecko) {
                out.geckoClean = false;
                ++out.geckoCorruptions;
            }
            if (corrupt && r.spec.scheme == Scheme::kNvp)
                ++out.nvpCorruptions;
        }
        out.corruptedRestores += r.corruptedRestores;
        out.crcRejects += r.crcRejects;
        out.slotRepairs += r.slotRepairs;
        out.ckptSaveRetries += r.ckptSaveRetries;
        out.retriesExhausted += r.retriesExhausted;
        out.integrityDegradations += r.integrityDegradations;
    }

    // Corpus selection: the first corpusPerGroup failing cases per
    // (workload, scheme, injector) in input order — deterministic under
    // any thread count — each auto-minimised.
    std::map<std::string, int> kept;
    std::uint64_t dropped = 0;
    // Minimisation probes re-run cases many times; keep them out of any
    // ambient trace buffer (only each case's primary run is recorded).
    trace::BufferScope untraced(nullptr);
    for (const CaseResult& r : out.cases) {
        if (!isCorruption(r.outcome))
            continue;
        std::string group = r.spec.workload + "|" +
                            compiler::schemeName(r.spec.scheme) + "|" +
                            injectorName(r.spec.injector);
        if (kept[group] >= config.corpusPerGroup) {
            ++dropped;
            continue;
        }
        ++kept[group];
        out.corpusCases.push_back(minimizeCase(r, watchdogBudget));
    }
    out.corpus = formatCorpus(config.seed, out.corpusCases);

    // Deterministic report.
    std::ostringstream rep;
    rep << "# gecko-fault-campaign v1\n";
    rep << "# seed=" << config.seed << " cases=" << config.cases
        << " corpusPerGroup=" << config.corpusPerGroup << "\n";
    for (std::size_t s = 0; s < ns; ++s) {
        for (int k = 0; k < kInjectorKinds; ++k) {
            const GroupCounts& g = out.counts[s][static_cast<std::size_t>(k)];
            if (g.cases == 0)
                continue;
            rep << "scheme=" << compiler::schemeName(config.schemes[s])
                << " injector="
                << injectorName(static_cast<InjectorKind>(k))
                << " cases=" << g.cases << " ok=" << g.ok
                << " diverged=" << g.diverged << " faulted=" << g.faulted
                << " livelock=" << g.livelock << " timeout=" << g.timeout
                << " notInjected=" << g.notInjected
                << " corrupted=" << g.corrupted() << "\n";
        }
    }
    rep << "corpus kept=" << out.corpusCases.size() << " dropped=" << dropped
        << "\n";
    rep << "counters corruptedRestores=" << out.corruptedRestores
        << " crcRejects=" << out.crcRejects
        << " slotRepairs=" << out.slotRepairs
        << " ckptSaveRetries=" << out.ckptSaveRetries
        << " retriesExhausted=" << out.retriesExhausted
        << " integrityDegradations=" << out.integrityDegradations << "\n";
    rep << "defense defended=" << out.defendedCases
        << " escalations=" << out.defenseEscalations
        << " ratchetTrips=" << out.defenseRatchetTrips << "\n";
    rep << "summary geckoCorruptions=" << out.geckoCorruptions
        << " nvpCorruptions=" << out.nvpCorruptions << " geckoClean="
        << (out.geckoClean ? "yes" : "no") << "\n";
    if (out.instrGeckoCases + out.instrNvpCases > 0)
        rep << "instr gecko=" << out.instrGeckoCorruptions << "/"
            << out.instrGeckoCases << " nvp=" << out.instrNvpCorruptions
            << "/" << out.instrNvpCases << " contained="
            << (out.instrContained() ? "yes" : "no") << "\n";
    out.report = rep.str();
    return out;
}

}  // namespace gecko::fault
