#ifndef GECKO_FAULT_FAULT_HPP_
#define GECKO_FAULT_FAULT_HPP_

#include <cstdint>
#include <string>

#include "compiler/pipeline.hpp"

/**
 * @file
 * Core types of the deterministic fault-injection campaign.
 *
 * A *case* is one victim run with one injected fault, fully described by
 * (workload, scheme, injector, seed): every injection parameter — where
 * the fault lands, which bit flips, when the monitor sticks — derives
 * from the case seed through exp::Rng, so a case replays bit-identically
 * from its corpus line alone.
 *
 * Fault model (DESIGN.md "Fault model"): physical disturbance of NVM
 * cells and the analog sensing path — single/multi-bit flips confined to
 * one word, torn multi-word writes, stale data reappearing, monitor
 * stuck-at/offset faults, harvester brownout bursts.  An adversary who
 * can forge CRCs or corrupt both copies of a guarded pair coherently is
 * out of scope.
 */

namespace gecko::fault {

/** The injectable fault classes. */
enum class InjectorKind {
    /// One bit flipped in checkpoint storage (JIT image word or slot).
    kBitFlip,
    /// 2-3 bits flipped, confined to one checkpoint-storage word.
    kMultiBitFlip,
    /// JIT checkpoint write truncated at a chosen word offset.
    kTornWrite,
    /// ACK word disturbed while the image is stale (defeats the plain
    /// ACK-toggle freshness signal; the CRC covers the ACK).
    kAckCorrupt,
    /// A complete, internally consistent but older image substituted at
    /// restore time (value-only for guarded slots: coherent pair forgery
    /// is out of scope).
    kStaleImage,
    /// Voltage monitor stuck at a fixed (high) reading: backup crossings
    /// are never seen, every outage is a hard death.
    kMonitorStuck,
    /// Voltage monitor reads with a constant positive offset: backup
    /// crossings detected late or not at all.
    kMonitorOffset,
    /// Harvester brownout bursts: the source collapses for short seeded
    /// windows; checkpoint saves inside a burst fail transiently
    /// (exercises the bounded-retry/backoff path).
    kBrownoutBurst,
    /// Sustained EMI tone bursts forging backup/wake signals in the
    /// monitor's view (the paper's attack).  Guarded schemes run with
    /// the adaptive defense controller enabled: a detected-then-survived
    /// attack is a pass.
    kEmiBurst,
    /// EMFI glitch skips one instruction fetch: the PC advances without
    /// the instruction executing (Moro-style fault model).  The glitch
    /// window also masks the next backup signal, so the checkpoint that
    /// would capture the corrupted state is skipped for every scheme.
    kInstrSkip,
    /// EMFI glitch corrupts the fetched opcode; modelled as a wild
    /// control transfer to a seeded in-range PC.
    kOpcodeCorrupt,
    /// EMFI glitch flips 1-2 bits of an in-flight operand: a seeded
    /// architectural register is disturbed between instructions.
    kOperandFlip,
};

inline constexpr int kInjectorKinds = 12;

const char* injectorName(InjectorKind kind);
bool injectorFromName(const std::string& name, InjectorKind* out);

/** Sim-level injectors run the full IntermittentSim; the rest use the
 *  lighter machine-level harness. */
inline bool
isSimLevel(InjectorKind kind)
{
    return kind == InjectorKind::kMonitorStuck ||
           kind == InjectorKind::kMonitorOffset ||
           kind == InjectorKind::kBrownoutBurst ||
           kind == InjectorKind::kEmiBurst;
}

/** Instruction-stream faults corrupt *architectural* state the storage
 *  integrity guards cannot see; they form a distinct threat class whose
 *  containment is measured separately from the storage/sensing model
 *  (they are excluded from the campaign's geckoClean verdict). */
inline bool
isInstrFault(InjectorKind kind)
{
    return kind == InjectorKind::kInstrSkip ||
           kind == InjectorKind::kOpcodeCorrupt ||
           kind == InjectorKind::kOperandFlip;
}

/** One campaign case, fully replayable from these fields. */
struct CaseSpec {
    std::string workload;
    compiler::Scheme scheme = compiler::Scheme::kNvp;
    InjectorKind injector = InjectorKind::kBitFlip;
    std::uint64_t seed = 0;
    /// Minimisation overrides (< 0 = derive from the seed): the failure
    /// event the injection lands on, and the target word / truncation
    /// offset.
    std::int64_t injectAtOverride = -1;
    std::int32_t wordOverride = -1;
};

/** How a case ended relative to its golden oracle. */
enum class CaseOutcome {
    kOk,        ///< outputs, NVM image and I/O all match the golden run
    kDiverged,  ///< observable state differs from the golden run
    kFaulted,   ///< the machine faulted (bad PC/address after restore)
    kLivelock,  ///< no forward progress within the watchdog budget
    kTimeout,   ///< (sim-level) did not complete within sim-time budget
};

const char* outcomeName(CaseOutcome outcome);
bool outcomeFromName(const std::string& name, CaseOutcome* out);

/** Outcomes that count as data corruption (kTimeout is a DoS, not a
 *  consistency violation). */
inline bool
isCorruption(CaseOutcome outcome)
{
    return outcome == CaseOutcome::kDiverged ||
           outcome == CaseOutcome::kFaulted ||
           outcome == CaseOutcome::kLivelock;
}

/** Result of one executed case. */
struct CaseResult {
    CaseSpec spec;
    CaseOutcome outcome = CaseOutcome::kOk;
    /// Human-readable divergence description (empty when ok).
    std::string detail;
    /// Effective injection point / target word actually used.
    std::int64_t injectAt = -1;
    std::int32_t word = -1;
    /// Defence counters observed in the victim runtime.
    std::uint64_t corruptedRestores = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t slotRepairs = 0;
    std::uint64_t ckptSaveRetries = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t integrityDegradations = 0;
    /// Adaptive-defense evidence (EMI-burst cases with the controller
    /// attached): mode escalations and ratchet trips observed.
    std::uint64_t defenseEscalations = 0;
    std::uint64_t defenseRatchetTrips = 0;
    /// The controller detected the attack online and the run still
    /// matched its golden oracle (detected-then-survived = pass).
    bool defended = false;
    /// True when injectAt/word were shrunk by the minimiser.
    bool minimized = false;
};

}  // namespace gecko::fault

#endif  // GECKO_FAULT_FAULT_HPP_
