#ifndef GECKO_FAULT_SPEC_HPP_
#define GECKO_FAULT_SPEC_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault.hpp"

/**
 * @file
 * Declarative fault-scenario specs (InjectV-style): campaigns are data,
 * not code.
 *
 * A spec is a versioned JSON file describing one scenario — the EMI
 * environment (tone/burst schedule, spatial grid location), the
 * injector mix, the job space and the seed — consumed by both campaign
 * drivers:
 *
 *  - `fault_campaign --spec=FILE` takes the `campaign` section
 *    (workloads, schemes, injector mix, cases, budgets), and
 *  - `campaign_runner --spec=FILE` takes the `engine` + `scenario`
 *    sections (job space, tone/burst schedule, grid cell).
 *
 * Parsing is *strict*: unknown fields and unsupported versions are
 * rejected with a field-path diagnostic, so a typo'd spec fails loudly
 * instead of silently running the default campaign.  serializeSpec()
 * emits a canonical form — parse → serialize → parse is byte-stable —
 * which is what the round-trip property test locks down.
 *
 * Seed precedence (resolveSeed): a seed in the spec file overrides
 * GECKO_SEED / --seed; without one the ambient seed applies, falling
 * back to 1.  A spec names a reproducible experiment, so its seed must
 * win over environment leftovers.
 */

namespace gecko::fault {

/** The EMI environment of a spec ("scenario" section). */
struct SpecScenario {
    /// "clean", "tone" or "burst".
    std::string kind = "clean";
    double freqHz = 27e6;
    double powerDbm = 35.0;
    /// Spatial grid placement (gridRows > 0 enables it): the tone is
    /// injected from cell (gridRow, gridCol) of a rows x cols map.
    int gridRows = 0;
    int gridCols = 0;
    int gridRow = 0;
    int gridCol = 0;
    /// Explicit burst schedule (burstCount > 0 overrides the seeded
    /// schedule of burst scenarios): `burstCount` windows of `burstOnS`
    /// seconds separated by `burstGapS` gaps.
    int burstCount = 0;
    double burstOnS = 0.0;
    double burstGapS = 0.0;
    // --- schema v2: attack-schedule scripting ---
    /// Duty cycling ("duty": {"period_s", "on_frac"}): the carrier is
    /// on for onFrac of every period.  period_s > 0 enables.
    double dutyPeriodS = 0.0;
    double dutyOnFrac = 0.0;
    /// Offset of the first attack window ("phase_s").
    double phaseS = 0.0;
    /// Piecewise amplitude envelope ("envelope": [dbm, ...]): per-
    /// window carrier power, cycling.  Empty = flat power_dbm.
    std::vector<double> envelopeDbm;
    /// Harvester outage environment ("outage": {"period_s",
    /// "on_frac"}): supply up for onFrac of every period, collapsed
    /// for the rest.  period_s > 0 enables; legal on any kind (it is
    /// environment, not attack).
    double outagePeriodS = 0.0;
    double outageOnFrac = 0.0;
};

/** One parsed scenario-spec file (schema version 1 or 2; the v2
 *  attack-schedule fields are rejected in v1 specs). */
struct FaultSpec {
    int version = 1;
    std::string name;
    bool hasSeed = false;
    std::uint64_t seed = 0;

    // "campaign" section (fault_campaign).
    bool hasCampaign = false;
    int cases = 0;
    int corpusPerGroup = 0;
    std::vector<std::string> workloads;
    std::vector<compiler::Scheme> schemes;
    std::vector<InjectorKind> injectors;
    double simBudgetS = 0.0;
    std::uint64_t watchdog = 0;

    // "scenario" section (EMI environment; campaign_runner jobs).
    bool hasScenario = false;
    SpecScenario scenario;

    // "engine" section (campaign_runner job space).
    bool hasEngine = false;
    std::vector<std::string> devices;
    int seeds = 0;
    double simS = 0.0;
    double sliceS = 0.0;
};

/**
 * Parse a spec from JSON text.  Strict: unknown fields, bad types, out
 * of range values and unsupported versions all fail with a diagnostic
 * naming the offending field path.
 */
bool parseSpec(const std::string& text, FaultSpec* out,
               std::string* error);

/** Canonical serialization (parse -> serialize -> parse is byte-stable). */
std::string serializeSpec(const FaultSpec& spec);

/** Read and parse a spec file. */
bool loadSpecFile(const std::string& path, FaultSpec* out,
                  std::string* error);

/**
 * The seed a spec-driven run must use: the spec's own seed when it has
 * one, else the ambient exp::globalSeed() (GECKO_SEED / --seed), else 1.
 */
std::uint64_t resolveSeed(const FaultSpec& spec);

/**
 * Apply the spec's campaign section (and resolved seed) onto a
 * CampaignConfig.  Fields the spec leaves unset keep the config's
 * current values.
 */
void applyToCampaign(const FaultSpec& spec, CampaignConfig* config);

}  // namespace gecko::fault

#endif  // GECKO_FAULT_SPEC_HPP_
