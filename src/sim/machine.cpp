#include "sim/machine.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "campaign/archive.hpp"
#include "trace/trace.hpp"

namespace gecko::sim {

using ir::Instr;
using ir::Opcode;

namespace {

/** Committed output-words total, the exactly-once I/O witness. */
[[maybe_unused]] std::uint64_t
committedOutTotal(const Nvm& nvm)
{
    std::uint64_t total = 0;
    for (int p = 0; p < kIoPorts; ++p)
        total += nvm.outCount[static_cast<std::size_t>(p)];
    return total;
}

}  // namespace

const char*
execBackendName(ExecBackend backend)
{
    switch (backend) {
      case ExecBackend::kStep:
        return "step";
      case ExecBackend::kFast:
        return "fast";
      case ExecBackend::kBlock:
        return "block";
    }
    return "unknown";
}

ExecBackend
defaultExecBackend()
{
    static const ExecBackend backend = [] {
        const char* env = std::getenv("GECKO_EXEC");
        if (env == nullptr || *env == '\0')
            return ExecBackend::kBlock;
        if (std::strcmp(env, "step") == 0 || std::strcmp(env, "slow") == 0)
            return ExecBackend::kStep;
        if (std::strcmp(env, "fast") == 0)
            return ExecBackend::kFast;
        return ExecBackend::kBlock;
    }();
    return backend;
}

Machine::Machine(const compiler::CompiledProgram& prog, Nvm& nvm, IoHub& io)
    : prog_(&prog), nvm_(&nvm), io_(&io)
{
    const ir::Program& p = prog.prog;
    targets_.resize(p.size(), 0);
    decoded_.resize(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        const Instr& ins = p.at(i);
        if (ir::isCondBranch(ins.op) || ins.op == Opcode::kJmp ||
            ins.op == Opcode::kCall) {
            targets_[i] =
                static_cast<std::uint32_t>(p.labelPos(ins.target));
        }
        Decoded& d = decoded_[i];
        d.op = ins.op;
        d.rd = ins.rd;
        d.rs1 = ins.rs1;
        d.rs2 = ins.rs2;
        d.useImm = ins.useImm;
        d.imm = static_cast<std::uint32_t>(ins.imm);
        d.target = targets_[i];
        int cost = ir::cycleCost(ins);
        // Fold the Ratchet pseudo-op surcharges (dynamic slot index
        // bookkeeping, see step()) into the static cost table.
        if (prog.scheme == compiler::Scheme::kRatchet) {
            if (ins.op == Opcode::kBoundary)
                cost += 2;
            else if (ins.op == Opcode::kCkpt)
                cost += 4;
        }
        d.cost = static_cast<std::uint16_t>(cost);
    }
    const char* bt = std::getenv("GECKO_TRACE_BLOCKS");
    blockTrace_ = bt != nullptr && *bt != '\0' && std::strcmp(bt, "0") != 0;
}

void
Machine::powerCycle()
{
    regs_.fill(0);
    pc_ = 0;
    pendingIn_.fill(0);
    pendingOut_.fill(0);
    halted_ = false;
    faulted_ = false;
}

void
Machine::restartProgram()
{
    regs_.fill(0);
    pc_ = 0;
    halted_ = false;
}

bool
Machine::fault()
{
    if (!faultTolerant_)
        throw std::runtime_error("machine fault (bad PC or address)");
    faulted_ = true;
    ++stats.faults;
    GECKO_TRACE_EVENT(trace::EventKind::kMachineFault, 0, pc_, 0);
    return false;
}

void
Machine::commitIo()
{
    for (int p = 0; p < kIoPorts; ++p) {
        nvm_->inCount[static_cast<std::size_t>(p)] +=
            pendingIn_[static_cast<std::size_t>(p)];
        nvm_->outCount[static_cast<std::size_t>(p)] +=
            pendingOut_[static_cast<std::size_t>(p)];
        pendingIn_[static_cast<std::size_t>(p)] = 0;
        pendingOut_[static_cast<std::size_t>(p)] = 0;
    }
}

bool
Machine::step(std::uint64_t* cycles)
{
    const ir::Program& p = prog_->prog;
    if (pc_ >= p.size())
        return fault();
    const Instr& ins = p.at(pc_);
    *cycles += static_cast<std::uint64_t>(ir::cycleCost(ins));
    ++stats.instrs;

    std::uint32_t next = pc_ + 1;
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMovi:
        regs_[ins.rd] = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kMov:
        regs_[ins.rd] = regs_[ins.rs1];
        break;
      case Opcode::kNot:
      case Opcode::kNeg:
        regs_[ins.rd] = ir::evalUnary(ins.op, regs_[ins.rs1]);
        break;
      case Opcode::kLoad: {
        std::uint32_t addr =
            regs_[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
        if (!nvm_->inRange(addr))
            return fault();
        regs_[ins.rd] = nvm_->load(addr);
        break;
      }
      case Opcode::kStore: {
        std::uint32_t addr =
            regs_[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
        if (!nvm_->inRange(addr))
            return fault();
        nvm_->store(addr, regs_[ins.rs2]);
        break;
      }
      case Opcode::kJmp:
        next = targets_[pc_];
        break;
      case Opcode::kCall:
        regs_[ir::kLinkReg] = pc_ + 1;
        next = targets_[pc_];
        break;
      case Opcode::kRet:
        next = regs_[ir::kLinkReg];
        if (next > p.size())
            return fault();
        break;
      case Opcode::kIn: {
        int port = ins.imm;
        if (port < 0 || port >= kIoPorts)
            return fault();
        auto pi = static_cast<std::size_t>(port);
        std::uint64_t index = nvm_->inCount[pi] + pendingIn_[pi];
        regs_[ins.rd] = io_->input(port).valueAt(index);
        if (stagedIo_)
            ++pendingIn_[pi];
        else
            ++nvm_->inCount[pi];
        break;
      }
      case Opcode::kOut: {
        int port = ins.imm;
        if (port < 0 || port >= kIoPorts)
            return fault();
        auto pi = static_cast<std::size_t>(port);
        std::uint64_t index = nvm_->outCount[pi] + pendingOut_[pi];
        io_->output(port).set(index, regs_[ins.rs1]);
        if (stagedIo_)
            ++pendingOut_[pi];
        else
            ++nvm_->outCount[pi];
        break;
      }
      case Opcode::kHalt:
        ++stats.completions;
        if (stagedIo_)
            commitIo();
        GECKO_TRACE_EVENT(trace::EventKind::kCompletion, 0,
                          stats.completions, committedOutTotal(*nvm_));
        if (continuous_) {
            restartProgram();
            return true;
        }
        halted_ = true;
        return false;
      case Opcode::kBoundary:
        // Ratchet flips its double-buffer index variable at each
        // boundary (paper §VI-D's cost model for the prior scheme).
        if (prog_->scheme == compiler::Scheme::kRatchet)
            *cycles += 2;
        // Atomic region commit: the committed-region word plus the staged
        // I/O counters (stands for a single FRAM word write; see the file
        // comment in machine.hpp for the atomicity argument).
        if (stagedIo_) {
            nvm_->committedRegion = static_cast<std::uint32_t>(ins.imm);
            ++nvm_->commitCount;
            commitIo();
            GECKO_TRACE_EVENT(trace::EventKind::kRegionCommit, 0,
                              nvm_->committedRegion, nvm_->commitCount);
        }
        ++stats.boundaryCommits;
        break;
      case Opcode::kCkpt:
        // Ratchet's per-register dynamic index costs an index load and
        // store on top of the value store ("16 CheckpointStores +
        // 16 IndexStores + 16 IndexLoads", paper §VI-D); GECKO's static
        // slot assignment is the plain store already priced by
        // cycleCost.
        if (prog_->scheme == compiler::Scheme::kRatchet)
            *cycles += 4;
        nvm_->writeSlot(ins.rs1, ins.imm, regs_[ins.rs1]);
        ++stats.ckptStores;
        break;
      default:
        if (ir::isBinaryAlu(ins.op)) {
            std::uint32_t b = ins.useImm
                                  ? static_cast<std::uint32_t>(ins.imm)
                                  : regs_[ins.rs2];
            regs_[ins.rd] = ir::evalBinary(ins.op, regs_[ins.rs1], b);
        } else if (ir::isCondBranch(ins.op)) {
            if (ir::evalBranch(ins.op, regs_[ins.rs1], regs_[ins.rs2]))
                next = targets_[pc_];
        }
        break;
    }
    pc_ = next;
    return true;
}

RunExit
Machine::run(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    if (faulted_ || (halted_ && !continuous_)) {
        // A faulted (or halted-and-idle) core just burns energy.
        stats.cycles += cycleBudget;
        if (consumed)
            *consumed = cycleBudget;
        return faulted_ ? RunExit::kFaulted : RunExit::kHalted;
    }
    switch (backend_) {
      case ExecBackend::kStep:
        return runSlow(cycleBudget, consumed);
      case ExecBackend::kFast:
        return runFast(cycleBudget, consumed);
      case ExecBackend::kBlock:
        break;
    }
    return runBlock(cycleBudget, consumed);
}

RunExit
Machine::runSlow(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    std::uint64_t cycles = 0;
    RunExit exit = RunExit::kBudget;
    while (cycles < cycleBudget) {
        if (!step(&cycles)) {
            exit = faulted_ ? RunExit::kFaulted : RunExit::kHalted;
            break;
        }
    }
    stats.cycles += cycles;
    if (consumed)
        *consumed = cycles;
    return exit;
}

RunExit
Machine::runFast(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    const Decoded* code = decoded_.data();
    const std::uint32_t size = static_cast<std::uint32_t>(decoded_.size());
    const bool staged = stagedIo_;
    Nvm& nvm = *nvm_;

    // Hot state lives in locals so the dispatch loop keeps it in
    // registers; instruction/cycle counters flush on every exit edge
    // (including exceptions) to stay bit-compatible with runSlow.
    std::uint32_t pc = pc_;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    RunExit exit = RunExit::kBudget;

    try {
        while (cycles < cycleBudget) {
            if (pc >= size) {
                pc_ = pc;
                stats.instrs += instrs;
                instrs = 0;
                fault();  // throws unless fault-tolerant
                exit = RunExit::kFaulted;
                break;
            }
            const Decoded& d = code[pc];
            cycles += d.cost;
            ++instrs;
            std::uint32_t next = pc + 1;
            switch (d.op) {
              case Opcode::kNop:
                break;
              case Opcode::kMovi:
                regs_[d.rd] = d.imm;
                break;
              case Opcode::kMov:
                regs_[d.rd] = regs_[d.rs1];
                break;
              case Opcode::kAdd:
                regs_[d.rd] =
                    regs_[d.rs1] + (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kSub:
                regs_[d.rd] =
                    regs_[d.rs1] - (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kMul:
                regs_[d.rd] =
                    regs_[d.rs1] * (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kDivu: {
                std::uint32_t b = d.useImm ? d.imm : regs_[d.rs2];
                regs_[d.rd] = b == 0 ? 0xffffffffu : regs_[d.rs1] / b;
                break;
              }
              case Opcode::kRemu: {
                std::uint32_t b = d.useImm ? d.imm : regs_[d.rs2];
                regs_[d.rd] = b == 0 ? regs_[d.rs1] : regs_[d.rs1] % b;
                break;
              }
              case Opcode::kAnd:
                regs_[d.rd] =
                    regs_[d.rs1] & (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kOr:
                regs_[d.rd] =
                    regs_[d.rs1] | (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kXor:
                regs_[d.rd] =
                    regs_[d.rs1] ^ (d.useImm ? d.imm : regs_[d.rs2]);
                break;
              case Opcode::kShl:
                regs_[d.rd] = regs_[d.rs1]
                              << ((d.useImm ? d.imm : regs_[d.rs2]) & 31u);
                break;
              case Opcode::kShr:
                regs_[d.rd] =
                    regs_[d.rs1] >>
                    ((d.useImm ? d.imm : regs_[d.rs2]) & 31u);
                break;
              case Opcode::kNot:
                regs_[d.rd] = ~regs_[d.rs1];
                break;
              case Opcode::kNeg:
                regs_[d.rd] = 0u - regs_[d.rs1];
                break;
              case Opcode::kLoad: {
                std::uint32_t addr = regs_[d.rs1] + d.imm;
                if (!nvm.inRange(addr))
                    goto fault_instr;
                regs_[d.rd] = nvm.load(addr);
                break;
              }
              case Opcode::kStore: {
                std::uint32_t addr = regs_[d.rs1] + d.imm;
                if (!nvm.inRange(addr))
                    goto fault_instr;
                nvm.store(addr, regs_[d.rs2]);
                break;
              }
              case Opcode::kBeq:
                if (regs_[d.rs1] == regs_[d.rs2])
                    next = d.target;
                break;
              case Opcode::kBne:
                if (regs_[d.rs1] != regs_[d.rs2])
                    next = d.target;
                break;
              case Opcode::kBlt:
                if (static_cast<std::int32_t>(regs_[d.rs1]) <
                    static_cast<std::int32_t>(regs_[d.rs2]))
                    next = d.target;
                break;
              case Opcode::kBge:
                if (static_cast<std::int32_t>(regs_[d.rs1]) >=
                    static_cast<std::int32_t>(regs_[d.rs2]))
                    next = d.target;
                break;
              case Opcode::kBltu:
                if (regs_[d.rs1] < regs_[d.rs2])
                    next = d.target;
                break;
              case Opcode::kBgeu:
                if (regs_[d.rs1] >= regs_[d.rs2])
                    next = d.target;
                break;
              case Opcode::kJmp:
                next = d.target;
                break;
              case Opcode::kCall:
                regs_[ir::kLinkReg] = pc + 1;
                next = d.target;
                break;
              case Opcode::kRet:
                next = regs_[ir::kLinkReg];
                if (next > size)
                    goto fault_instr;
                break;
              case Opcode::kIn: {
                int port = static_cast<std::int32_t>(d.imm);
                if (port < 0 || port >= kIoPorts)
                    goto fault_instr;
                auto pi = static_cast<std::size_t>(port);
                std::uint64_t index = nvm.inCount[pi] + pendingIn_[pi];
                regs_[d.rd] = io_->input(port).valueAt(index);
                if (staged)
                    ++pendingIn_[pi];
                else
                    ++nvm.inCount[pi];
                break;
              }
              case Opcode::kOut: {
                int port = static_cast<std::int32_t>(d.imm);
                if (port < 0 || port >= kIoPorts)
                    goto fault_instr;
                auto pi = static_cast<std::size_t>(port);
                std::uint64_t index = nvm.outCount[pi] + pendingOut_[pi];
                io_->output(port).set(index, regs_[d.rs1]);
                if (staged)
                    ++pendingOut_[pi];
                else
                    ++nvm.outCount[pi];
                break;
              }
              case Opcode::kHalt:
                ++stats.completions;
                if (staged)
                    commitIo();
                GECKO_TRACE_EVENT(trace::EventKind::kCompletion, 0,
                                  stats.completions,
                                  committedOutTotal(nvm));
                if (continuous_) {
                    restartProgram();
                    pc = 0;
                    continue;
                }
                halted_ = true;
                pc_ = pc;
                stats.instrs += instrs;
                stats.cycles += cycles;
                if (consumed)
                    *consumed = cycles;
                return RunExit::kHalted;
              case Opcode::kBoundary:
                if (staged) {
                    nvm.committedRegion = d.imm;
                    ++nvm.commitCount;
                    commitIo();
                    GECKO_TRACE_EVENT(trace::EventKind::kRegionCommit, 0,
                                      nvm.committedRegion, nvm.commitCount);
                }
                ++stats.boundaryCommits;
                break;
              case Opcode::kCkpt:
                nvm.writeSlot(d.rs1, static_cast<std::int32_t>(d.imm),
                              regs_[d.rs1]);
                ++stats.ckptStores;
                break;
            }
            pc = next;
            continue;

          fault_instr:
            // Mirror step(): the faulting instruction was counted, the
            // PC stays on it, and a non-tolerant machine throws with
            // this run's cycles uncounted (as the slow path loses them
            // when step() throws out of the loop).
            pc_ = pc;
            stats.instrs += instrs;
            instrs = 0;
            fault();
            exit = RunExit::kFaulted;
            break;
        }
    } catch (...) {
        stats.instrs += instrs;
        pc_ = pc;
        throw;
    }

    pc_ = pc;
    stats.instrs += instrs;
    stats.cycles += cycles;
    if (consumed)
        *consumed = cycles;
    return exit;
}

void
Machine::execRecoveryInstr(const Instr& ins,
                           std::array<std::uint32_t, 16>& env,
                           const Nvm& nvm)
{
    switch (ins.op) {
      case Opcode::kMovi:
        env[ins.rd] = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kMov:
        env[ins.rd] = env[ins.rs1];
        break;
      case Opcode::kNot:
      case Opcode::kNeg:
        env[ins.rd] = ir::evalUnary(ins.op, env[ins.rs1]);
        break;
      case Opcode::kLoad:
        env[ins.rd] =
            nvm.load(env[ins.rs1] + static_cast<std::uint32_t>(ins.imm));
        break;
      default:
        if (ir::isBinaryAlu(ins.op)) {
            std::uint32_t b = ins.useImm
                                  ? static_cast<std::uint32_t>(ins.imm)
                                  : env[ins.rs2];
            env[ins.rd] = ir::evalBinary(ins.op, env[ins.rs1], b);
        } else {
            throw std::runtime_error(
                "unsafe instruction in recovery block");
        }
        break;
    }
}

void
Machine::archiveState(campaign::Archive& ar)
{
    ar.section("machine");
    ar.check(prog_->prog.size(), "program size");
    ar.u32Array(regs_);
    ar.u32(pc_);
    ar.u32Array(pendingIn_);
    ar.u32Array(pendingOut_);
    ar.boolean(halted_);
    ar.boolean(faulted_);
    ar.u64(stats.instrs);
    ar.u64(stats.cycles);
    ar.u64(stats.ckptStores);
    ar.u64(stats.boundaryCommits);
    ar.u64(stats.completions);
    ar.u64(stats.faults);
    // The block cache is profile-only derived state: dropping it on
    // restore re-warms it without changing architectural behaviour.
    if (!ar.saving())
        invalidateBlockCache();
}

}  // namespace gecko::sim
