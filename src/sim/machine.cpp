#include "sim/machine.hpp"

#include <stdexcept>

namespace gecko::sim {

using ir::Instr;
using ir::Opcode;

Machine::Machine(const compiler::CompiledProgram& prog, Nvm& nvm, IoHub& io)
    : prog_(&prog), nvm_(&nvm), io_(&io)
{
    const ir::Program& p = prog.prog;
    targets_.resize(p.size(), 0);
    for (std::size_t i = 0; i < p.size(); ++i) {
        const Instr& ins = p.at(i);
        if (ir::isCondBranch(ins.op) || ins.op == Opcode::kJmp ||
            ins.op == Opcode::kCall) {
            targets_[i] =
                static_cast<std::uint32_t>(p.labelPos(ins.target));
        }
    }
}

void
Machine::powerCycle()
{
    regs_.fill(0);
    pc_ = 0;
    pendingIn_.fill(0);
    pendingOut_.fill(0);
    halted_ = false;
    faulted_ = false;
}

void
Machine::restartProgram()
{
    regs_.fill(0);
    pc_ = 0;
    halted_ = false;
}

bool
Machine::fault()
{
    if (!faultTolerant_)
        throw std::runtime_error("machine fault (bad PC or address)");
    faulted_ = true;
    ++stats.faults;
    return false;
}

void
Machine::commitIo()
{
    for (int p = 0; p < kIoPorts; ++p) {
        nvm_->inCount[static_cast<std::size_t>(p)] +=
            pendingIn_[static_cast<std::size_t>(p)];
        nvm_->outCount[static_cast<std::size_t>(p)] +=
            pendingOut_[static_cast<std::size_t>(p)];
        pendingIn_[static_cast<std::size_t>(p)] = 0;
        pendingOut_[static_cast<std::size_t>(p)] = 0;
    }
}

bool
Machine::step(std::uint64_t* cycles)
{
    const ir::Program& p = prog_->prog;
    if (pc_ >= p.size())
        return fault();
    const Instr& ins = p.at(pc_);
    *cycles += static_cast<std::uint64_t>(ir::cycleCost(ins));
    ++stats.instrs;

    std::uint32_t next = pc_ + 1;
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMovi:
        regs_[ins.rd] = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kMov:
        regs_[ins.rd] = regs_[ins.rs1];
        break;
      case Opcode::kNot:
      case Opcode::kNeg:
        regs_[ins.rd] = ir::evalUnary(ins.op, regs_[ins.rs1]);
        break;
      case Opcode::kLoad: {
        std::uint32_t addr =
            regs_[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
        if (!nvm_->inRange(addr))
            return fault();
        regs_[ins.rd] = nvm_->load(addr);
        break;
      }
      case Opcode::kStore: {
        std::uint32_t addr =
            regs_[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
        if (!nvm_->inRange(addr))
            return fault();
        nvm_->store(addr, regs_[ins.rs2]);
        break;
      }
      case Opcode::kJmp:
        next = targets_[pc_];
        break;
      case Opcode::kCall:
        regs_[ir::kLinkReg] = pc_ + 1;
        next = targets_[pc_];
        break;
      case Opcode::kRet:
        next = regs_[ir::kLinkReg];
        if (next > p.size())
            return fault();
        break;
      case Opcode::kIn: {
        int port = ins.imm;
        if (port < 0 || port >= kIoPorts)
            return fault();
        auto pi = static_cast<std::size_t>(port);
        std::uint64_t index = nvm_->inCount[pi] + pendingIn_[pi];
        regs_[ins.rd] = io_->input(port).valueAt(index);
        if (stagedIo_)
            ++pendingIn_[pi];
        else
            ++nvm_->inCount[pi];
        break;
      }
      case Opcode::kOut: {
        int port = ins.imm;
        if (port < 0 || port >= kIoPorts)
            return fault();
        auto pi = static_cast<std::size_t>(port);
        std::uint64_t index = nvm_->outCount[pi] + pendingOut_[pi];
        io_->output(port).set(index, regs_[ins.rs1]);
        if (stagedIo_)
            ++pendingOut_[pi];
        else
            ++nvm_->outCount[pi];
        break;
      }
      case Opcode::kHalt:
        ++stats.completions;
        if (stagedIo_)
            commitIo();
        if (continuous_) {
            restartProgram();
            return true;
        }
        halted_ = true;
        return false;
      case Opcode::kBoundary:
        // Ratchet flips its double-buffer index variable at each
        // boundary (paper §VI-D's cost model for the prior scheme).
        if (prog_->scheme == compiler::Scheme::kRatchet)
            *cycles += 2;
        // Atomic region commit: the committed-region word plus the staged
        // I/O counters (stands for a single FRAM word write; see the file
        // comment in machine.hpp for the atomicity argument).
        if (stagedIo_) {
            nvm_->committedRegion = static_cast<std::uint32_t>(ins.imm);
            ++nvm_->commitCount;
            commitIo();
        }
        ++stats.boundaryCommits;
        break;
      case Opcode::kCkpt:
        // Ratchet's per-register dynamic index costs an index load and
        // store on top of the value store ("16 CheckpointStores +
        // 16 IndexStores + 16 IndexLoads", paper §VI-D); GECKO's static
        // slot assignment is the plain store already priced by
        // cycleCost.
        if (prog_->scheme == compiler::Scheme::kRatchet)
            *cycles += 4;
        nvm_->slots[ins.rs1][static_cast<std::size_t>(ins.imm)] =
            regs_[ins.rs1];
        ++nvm_->slotWrites;
        ++stats.ckptStores;
        break;
      default:
        if (ir::isBinaryAlu(ins.op)) {
            std::uint32_t b = ins.useImm
                                  ? static_cast<std::uint32_t>(ins.imm)
                                  : regs_[ins.rs2];
            regs_[ins.rd] = ir::evalBinary(ins.op, regs_[ins.rs1], b);
        } else if (ir::isCondBranch(ins.op)) {
            if (ir::evalBranch(ins.op, regs_[ins.rs1], regs_[ins.rs2]))
                next = targets_[pc_];
        }
        break;
    }
    pc_ = next;
    return true;
}

RunExit
Machine::run(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    std::uint64_t cycles = 0;
    if (faulted_ || (halted_ && !continuous_)) {
        // A faulted (or halted-and-idle) core just burns energy.
        cycles = cycleBudget;
        stats.cycles += cycles;
        if (consumed)
            *consumed = cycles;
        return faulted_ ? RunExit::kFaulted : RunExit::kHalted;
    }
    RunExit exit = RunExit::kBudget;
    while (cycles < cycleBudget) {
        if (!step(&cycles)) {
            exit = faulted_ ? RunExit::kFaulted : RunExit::kHalted;
            break;
        }
    }
    stats.cycles += cycles;
    if (consumed)
        *consumed = cycles;
    return exit;
}

void
Machine::execRecoveryInstr(const Instr& ins,
                           std::array<std::uint32_t, 16>& env,
                           const Nvm& nvm)
{
    switch (ins.op) {
      case Opcode::kMovi:
        env[ins.rd] = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kMov:
        env[ins.rd] = env[ins.rs1];
        break;
      case Opcode::kNot:
      case Opcode::kNeg:
        env[ins.rd] = ir::evalUnary(ins.op, env[ins.rs1]);
        break;
      case Opcode::kLoad:
        env[ins.rd] =
            nvm.load(env[ins.rs1] + static_cast<std::uint32_t>(ins.imm));
        break;
      default:
        if (ir::isBinaryAlu(ins.op)) {
            std::uint32_t b = ins.useImm
                                  ? static_cast<std::uint32_t>(ins.imm)
                                  : env[ins.rs2];
            env[ins.rd] = ir::evalBinary(ins.op, env[ins.rs1], b);
        } else {
            throw std::runtime_error(
                "unsafe instruction in recovery block");
        }
        break;
    }
}

}  // namespace gecko::sim
