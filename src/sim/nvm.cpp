#include "sim/nvm.hpp"

#include "campaign/archive.hpp"

namespace gecko::sim {

namespace {

/** Table for the reflected CRC-32 polynomial 0xEDB88320. */
struct Crc32Table {
    std::uint32_t entries[256];

    constexpr Crc32Table() : entries{}
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

constexpr Crc32Table kCrcTable;

}  // namespace

std::uint32_t
crc32Words(const std::uint32_t* words, std::size_t n, std::uint32_t crc)
{
    // Zero init / no final xor: all-zero input hashes to 0, so a virgin
    // NVM area validates against its zeroed check word (see header).
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t w = words[i];
        for (int b = 0; b < 4; ++b) {
            crc = kCrcTable.entries[(crc ^ (w & 0xffu)) & 0xffu] ^
                  (crc >> 8);
            w >>= 8;
        }
    }
    return crc;
}

void
Nvm::archiveState(campaign::Archive& ar)
{
    ar.section("nvm");
    ar.u32FixedVector(data_, "nvm data");
    ar.u32Array(jit);
    ar.u32(jitEpoch);
    ar.u64(jitAreaWrites);
    ar.u64(slotWrites);
    for (auto& row : slots)
        ar.u32Array(row);
    for (auto& row : slotCrc)
        ar.u32Array(row);
    for (auto& row : slotShadow)
        ar.u32Array(row);
    for (auto& row : slotShadowCrc)
        ar.u32Array(row);
    ar.u32(committedRegion);
    ar.u32(commitCount);
    ar.u32(bootCount);
    ar.u32(lastBootAck);
    ar.u32(commitsAtLastBoot);
    ar.u32(jitDisabledFlag);
    ar.u32Array(inCount);
    ar.u32Array(outCount);
}

}  // namespace gecko::sim
