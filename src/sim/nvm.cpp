#include "sim/nvm.hpp"

#include "campaign/archive.hpp"

namespace gecko::sim {


void
Nvm::archiveState(campaign::Archive& ar)
{
    ar.section("nvm");
    ar.u32FixedVector(data_, "nvm data");
    ar.u32Array(jit);
    ar.u32(jitEpoch);
    ar.u64(jitAreaWrites);
    ar.u64(slotWrites);
    for (auto& row : slots)
        ar.u32Array(row);
    for (auto& row : slotCrc)
        ar.u32Array(row);
    for (auto& row : slotShadow)
        ar.u32Array(row);
    for (auto& row : slotShadowCrc)
        ar.u32Array(row);
    ar.u32(committedRegion);
    ar.u32(commitCount);
    ar.u32(bootCount);
    ar.u32(lastBootAck);
    ar.u32(commitsAtLastBoot);
    ar.u32(jitDisabledFlag);
    ar.u32Array(inCount);
    ar.u32Array(outCount);
}

}  // namespace gecko::sim
