#include "sim/nvm.hpp"

// Nvm is header-only state; this translation unit anchors the build
// target.
