#include "sim/io_devices.hpp"

#include "campaign/archive.hpp"

namespace gecko::sim {

IoHub::IoHub()
{
    for (auto& in : inputs_)
        in = std::make_shared<VectorInput>(std::vector<std::uint32_t>{0});
}

void
IoHub::setInput(int port, std::shared_ptr<InputDevice> dev)
{
    inputs_.at(static_cast<std::size_t>(port)) = std::move(dev);
}

InputDevice&
IoHub::input(int port)
{
    return *inputs_.at(static_cast<std::size_t>(port));
}

void
IoHub::clearOutputs()
{
    for (auto& out : outputs_)
        out.clear();
}

void
OutputSink::archiveState(campaign::Archive& ar)
{
    ar.section("output_sink");
    std::uint64_t n = values_.size();
    ar.u64(n);
    if (ar.saving()) {
        for (const auto& [index, value] : values_) {
            std::uint64_t k = index;
            std::uint32_t v = value;
            ar.u64(k);
            ar.u32(v);
        }
    } else {
        values_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t k = 0;
            std::uint32_t v = 0;
            ar.u64(k);
            ar.u32(v);
            values_.emplace(k, v);
        }
    }
    ar.u64(conflicts_);
}

void
IoHub::archiveState(campaign::Archive& ar)
{
    ar.section("io_hub");
    for (auto& out : outputs_)
        out.archiveState(ar);
}

}  // namespace gecko::sim
