#include "sim/io_devices.hpp"

namespace gecko::sim {

IoHub::IoHub()
{
    for (auto& in : inputs_)
        in = std::make_shared<VectorInput>(std::vector<std::uint32_t>{0});
}

void
IoHub::setInput(int port, std::shared_ptr<InputDevice> dev)
{
    inputs_.at(static_cast<std::size_t>(port)) = std::move(dev);
}

InputDevice&
IoHub::input(int port)
{
    return *inputs_.at(static_cast<std::size_t>(port));
}

void
IoHub::clearOutputs()
{
    for (auto& out : outputs_)
        out.clear();
}

}  // namespace gecko::sim
