#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "compiler/block_metadata.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"

/**
 * @file
 * The block-compiled execution tier (ExecBackend::kBlock).
 *
 * Three ideas, stacked:
 *
 *  1. *Superblocks.*  The predecoded program is partitioned into
 *     straight-line blocks at compiler::superblockLeaders boundaries
 *     (CFG leaders + region entry sequences).  Block entries are
 *     profiled in the dispatch loop; at kHotThreshold entries a block
 *     is compiled into a micro-op stream.
 *
 *  2. *Threaded superinstructions.*  Compiled blocks execute as
 *     threaded code — each micro-op ends in an indirect `goto` to the
 *     next handler — with operand forms (imm/reg), I/O staging mode and
 *     shift masks specialized at compile time, and common pairs (loop
 *     latches, the masked-window address pattern) fused into single
 *     handlers.  Cycle/instruction accounting happens once per block,
 *     not per op; each micro-op carries its cost prefix so the fault
 *     path can reconstruct exact per-instruction counts.
 *
 *  3. *Precise deoptimization.*  A block runs threaded only when its
 *     whole worst-case cost fits the remaining cycle budget
 *     (`cycles + cost <= budget`).  Since the budget is the energy- and
 *     clock-bounded quantum computed by the intermittent simulator
 *     (Capacitor::affordableCycles), this entry guard is exactly the
 *     conservative block-entry energy check: a superblock can never run
 *     past the point where the capacitor could cross an armed
 *     threshold.  Budget tails, cold blocks, and mid-block entry PCs
 *     (JIT-checkpoint image restores land anywhere) fall back to an
 *     inline per-instruction interpreter (a clone of runFast's switch)
 *     that re-enters block dispatch after every instruction — so a
 *     quantum that stopped mid-block realigns to the next leader within
 *     a few instructions instead of losing the whole following quantum.
 *     Every architectural event — faults, halts, commits, trace events
 *     — happens at the same instruction with the same counters as the
 *     step/fast tiers.  machine_test and fuzz_test assert this
 *     three-way equivalence.
 */

// Threaded dispatch needs GNU computed goto.  Elsewhere the block tier
// degrades to the fast tier — identical semantics, lower throughput.
#if defined(__GNUC__) || defined(__clang__)
#define GECKO_COMPUTED_GOTO 1
#else
#define GECKO_COMPUTED_GOTO 0
#endif

namespace gecko::sim {

using ir::Opcode;



namespace {

/** Committed output-words total, the exactly-once I/O witness. */
[[maybe_unused]] std::uint64_t
committedOutTotal(const Nvm& nvm)
{
    std::uint64_t total = 0;
    for (int p = 0; p < kIoPorts; ++p)
        total += nvm.outCount[static_cast<std::size_t>(p)];
    return total;
}

/** Binary-ALU micro-op kind (relies on matching enum layouts). */
UopKind
aluKind(Opcode op, bool useImm)
{
    const int base =
        static_cast<int>(useImm ? UopKind::kAddRI : UopKind::kAddRR);
    return static_cast<UopKind>(base + (static_cast<int>(op) -
                                        static_cast<int>(Opcode::kAdd)));
}

/** Conditional-branch terminator kind. */
UopKind
branchKind(Opcode op)
{
    return static_cast<UopKind>(static_cast<int>(UopKind::kBeq) +
                                (static_cast<int>(op) -
                                 static_cast<int>(Opcode::kBeq)));
}

/** Fused latch kind for `add/sub rd,rs,#imm ; b<cc> rd,rb,target`. */
UopKind
latchKind(Opcode alu, Opcode branch)
{
    const int base = static_cast<int>(
        alu == Opcode::kAdd ? UopKind::kAddiBeq : UopKind::kSubiBeq);
    return static_cast<UopKind>(base + (static_cast<int>(branch) -
                                        static_cast<int>(Opcode::kBeq)));
}

bool
isTerminatorKind(UopKind kind)
{
    return kind >= UopKind::kBeq;
}

}  // namespace

void
Machine::ensureBlocks()
{
    if (blocksBuilt_)
        return;
    blocksBuilt_ = true;
    const std::uint32_t size = static_cast<std::uint32_t>(decoded_.size());
    if (size == 0)
        return;
    std::vector<std::uint32_t> leaders = compiler::superblockLeaders(*prog_);
    blocks_.clear();
    blocks_.reserve(leaders.size());
    blockAt_.assign(size, 0);
    for (std::size_t i = 0; i < leaders.size(); ++i) {
        SuperBlock b;
        b.start = leaders[i];
        const std::uint32_t end =
            i + 1 < leaders.size() ? leaders[i + 1] : size;
        b.len = end - b.start;
        for (std::uint32_t pc = b.start; pc < end; ++pc) {
            b.cost += decoded_[pc].cost;
            blockAt_[pc] = static_cast<std::uint32_t>(blocks_.size());
        }
        blocks_.push_back(std::move(b));
    }
}

void
Machine::invalidateBlockCache()
{
    for (SuperBlock& b : blocks_) {
        b.compiled = false;
        b.threaded = false;
        b.execCount = 0;
        b.uopStart = 0;
        b.uopCount = 0;
    }
    uopPool_.clear();
    uopPool_.shrink_to_fit();
}

void
Machine::compileBlock(SuperBlock& b)
{
    const Decoded* code = decoded_.data();
    const bool staged = stagedIo_;
    std::vector<Uop>& uops = uopScratch_;
    uops.clear();
    uops.reserve(b.len + 1);
    std::uint32_t prefix = 0;
    std::uint32_t i = 0;
    while (i < b.len) {
        const Decoded& d = code[b.start + i];
        Uop u;
        u.rd = d.rd;
        u.rs1 = d.rs1;
        u.rs2 = d.rs2;
        u.imm = d.imm;
        u.aux = i;  // default: own index, for exact fault accounting
        prefix += d.cost;
        u.costPrefix = prefix;
        switch (d.op) {
          case Opcode::kNop:
            u.kind = UopKind::kNop;
            break;
          case Opcode::kMovi:
            u.kind = UopKind::kMovi;
            break;
          case Opcode::kMov:
            u.kind = UopKind::kMov;
            break;
          case Opcode::kNot:
            u.kind = UopKind::kNot;
            break;
          case Opcode::kNeg:
            u.kind = UopKind::kNeg;
            break;
          case Opcode::kLoad:
            u.kind = UopKind::kLoad;
            break;
          case Opcode::kStore:
            u.kind = UopKind::kStore;
            break;
          case Opcode::kIn:
          case Opcode::kOut: {
            // Ports are immediates: validate once here instead of per
            // execution (kBadIo faults exactly like the other tiers).
            const int port = static_cast<std::int32_t>(d.imm);
            if (port < 0 || port >= kIoPorts)
                u.kind = UopKind::kBadIo;
            else if (d.op == Opcode::kIn)
                u.kind = staged ? UopKind::kInStaged : UopKind::kInDirect;
            else
                u.kind = staged ? UopKind::kOutStaged : UopKind::kOutDirect;
            break;
          }
          case Opcode::kBoundary:
            u.kind =
                staged ? UopKind::kBoundaryStaged : UopKind::kBoundaryPlain;
            break;
          case Opcode::kCkpt:
            u.kind = UopKind::kCkpt;
            break;
          case Opcode::kJmp:
            u.kind = UopKind::kJmp;
            u.aux = d.target;
            break;
          case Opcode::kCall:
            u.kind = UopKind::kCall;
            u.aux = d.target;
            u.imm = b.start + i + 1;  // link value
            break;
          case Opcode::kRet:
            u.kind = UopKind::kRet;
            break;
          case Opcode::kHalt:
            u.kind = UopKind::kHalt;
            break;
          default:
            if (ir::isCondBranch(d.op)) {
                u.kind = branchKind(d.op);
                u.aux = d.target;
                break;
            }
            // Binary ALU.  Latch fusion: an immediate add/sub feeding
            // the block's own conditional terminator becomes one
            // superinstruction (the inner-loop back edge).
            if ((d.op == Opcode::kAdd || d.op == Opcode::kSub) &&
                d.useImm && i + 2 == b.len) {
                const Decoded& t = code[b.start + i + 1];
                if (ir::isCondBranch(t.op) && t.rs1 == d.rd) {
                    prefix += t.cost;
                    u.kind = latchKind(d.op, t.op);
                    u.rs2 = t.rs2;
                    u.aux = t.target;
                    u.costPrefix = prefix;
                    uops.push_back(u);
                    i += 2;
                    continue;
                }
            }
            // Window-address fusion: `and rT,rS,#m ; add rD,rT,#b`
            // (the bounded load/store index idiom).
            if (d.op == Opcode::kAnd && d.useImm && i + 1 < b.len) {
                const Decoded& n = code[b.start + i + 1];
                if (n.op == Opcode::kAdd && n.useImm && n.rs1 == d.rd) {
                    prefix += n.cost;
                    u.kind = UopKind::kAndiAddi;
                    u.rs2 = d.rd;
                    u.rd = n.rd;
                    u.aux = n.imm;
                    u.costPrefix = prefix;
                    uops.push_back(u);
                    i += 2;
                    continue;
                }
            }
            u.kind = aluKind(d.op, d.useImm);
            // Shift amounts are masked to 5 bits by the ISA; bake the
            // mask into the immediate form.
            if (d.useImm &&
                (d.op == Opcode::kShl || d.op == Opcode::kShr))
                u.imm = d.imm & 31u;
            break;
        }
        uops.push_back(u);
        ++i;
    }
    // A block that ends at a leader (not at a terminator) falls through.
    if (uops.empty() || !isTerminatorKind(uops.back().kind)) {
        Uop u;
        u.kind = UopKind::kFallThrough;
        u.aux = b.start + b.len;
        u.costPrefix = prefix;
        uops.push_back(u);
    }
    // Corpus-selected superinstruction fusion (see superblock.hpp): one
    // greedy peephole pass merging chained ALU pairs and ALU+latch
    // triples.  A fused uop takes the second op's cost prefix, and
    // fusion never renumbers instructions, so the fault path's exact
    // per-instruction reconstruction is unchanged for every later uop.
    if (uops.size() >= 2) {
        std::vector<Uop> fused;
        fused.reserve(uops.size());
        std::size_t k = 0;
        while (k < uops.size()) {
            const Uop& a = uops[k];
            if (k + 1 < uops.size()) {
                const Uop& n = uops[k + 1];
                UopKind fk = UopKind::kNumUopKinds_;
                bool srcSwap = false;
                const bool leadsRI = a.kind == UopKind::kMulRI ||
                                     a.kind == UopKind::kAndRI ||
                                     a.kind == UopKind::kShrRI ||
                                     a.kind == UopKind::kMovi;
                if (leadsRI && n.rs1 == a.rd) {
                    if (a.kind == UopKind::kMulRI &&
                        n.kind == UopKind::kAddRI)
                        fk = UopKind::kMulRIAddRI;
                    else if (a.kind == UopKind::kShrRI &&
                             n.kind == UopKind::kXorRR)
                        fk = UopKind::kShrRIXorRR;
                    else if (a.kind == UopKind::kAndRI &&
                             n.kind == UopKind::kShrRI)
                        fk = UopKind::kAndRIShrRI;
                    else if (a.kind == UopKind::kAndRI &&
                             n.kind == UopKind::kAddRR)
                        fk = UopKind::kAndRIAddRR;
                    else if (a.kind == UopKind::kMulRI &&
                             n.kind == UopKind::kAddRR)
                        fk = UopKind::kMulRIAddRR;
                    else if (a.kind == UopKind::kAndRI &&
                             n.kind == UopKind::kXorRR)
                        fk = UopKind::kAndRIXorRR;
                    else if (a.kind == UopKind::kMovi &&
                             n.kind == UopKind::kAddRR)
                        fk = UopKind::kMoviAddRR;
                } else if (leadsRI && n.rs2 == a.rd) {
                    // xor/add are commutative, so a pair whose second op
                    // consumes the fused value through rs2 folds the
                    // same way with its sources swapped.
                    if (a.kind == UopKind::kShrRI &&
                        n.kind == UopKind::kXorRR) {
                        fk = UopKind::kShrRIXorRR;
                        srcSwap = true;
                    } else if (a.kind == UopKind::kAndRI &&
                               n.kind == UopKind::kAddRR) {
                        fk = UopKind::kAndRIAddRR;
                        srcSwap = true;
                    } else if (a.kind == UopKind::kMulRI &&
                               n.kind == UopKind::kAddRR) {
                        fk = UopKind::kMulRIAddRR;
                        srcSwap = true;
                    } else if (a.kind == UopKind::kAndRI &&
                               n.kind == UopKind::kXorRR) {
                        fk = UopKind::kAndRIXorRR;
                        srcSwap = true;
                    } else if (a.kind == UopKind::kMovi &&
                               n.kind == UopKind::kAddRR) {
                        fk = UopKind::kMoviAddRR;
                        srcSwap = true;
                    }
                }
                if (fk == UopKind::kNumUopKinds_) {
                    if (a.kind == UopKind::kAddRR &&
                        n.kind == UopKind::kLoad && n.rs1 == a.rd)
                        fk = UopKind::kAddRRLoad;
                    else if (a.kind == UopKind::kMovi &&
                             n.kind == UopKind::kFallThrough)
                        fk = UopKind::kMoviFall;
                    else if (a.kind == UopKind::kAddRI &&
                             n.kind == UopKind::kJmp)
                        fk = UopKind::kAddRIJmp;
                }
                if (n.kind == UopKind::kAddiBlt && n.rd == n.rs1) {
                    if (a.kind == UopKind::kAddRR)
                        fk = UopKind::kAddRRAddiBlt;
                    else if (a.kind == UopKind::kShrRI)
                        fk = UopKind::kShrRIAddiBlt;
                }
                if (fk != UopKind::kNumUopKinds_) {
                    Uop f = a;
                    f.kind = fk;
                    f.rd2 = n.rd;
                    f.rx = srcSwap ? n.rs1 : n.rs2;
                    f.imm2 = n.imm;
                    f.aux = n.aux;
                    f.costPrefix = n.costPrefix;
                    fused.push_back(f);
                    k += 2;
                    continue;
                }
            }
            fused.push_back(a);
            ++k;
        }
        uops.swap(fused);
    }
    // Second combine pass over the fused stream: the base-plus-index
    // address pairs formed above feed the window-array loads/stores of
    // the pointer-chasing workloads, and checkpoint stores cluster at
    // region entries (every live register in one run) — both fold into
    // one more dispatch saving.  `rx != rd` keeps the index source
    // readable after the address register is written.
    if (uops.size() >= 2) {
        std::vector<Uop> fused;
        fused.reserve(uops.size());
        std::size_t k = 0;
        while (k < uops.size()) {
            const Uop& a = uops[k];
            if (k + 1 < uops.size()) {
                const Uop& n = uops[k + 1];
                UopKind fk = UopKind::kNumUopKinds_;
                if (a.kind == UopKind::kMoviAddRR && a.rd == a.rd2 &&
                    a.rx != a.rd && n.rs1 == a.rd &&
                    (n.kind == UopKind::kLoad || n.kind == UopKind::kStore))
                    fk = n.kind == UopKind::kLoad ? UopKind::kMoviAddLoad
                                                  : UopKind::kMoviAddStore;
                else if (a.kind == UopKind::kCkpt &&
                         n.kind == UopKind::kCkpt)
                    fk = UopKind::kCkptCkpt;
                if (fk != UopKind::kNumUopKinds_) {
                    Uop f = a;
                    f.kind = fk;
                    if (fk == UopKind::kMoviAddLoad)
                        f.rd2 = n.rd;
                    else if (fk == UopKind::kMoviAddStore)
                        f.rs2 = n.rs2;
                    else
                        f.rd2 = n.rs1;
                    f.imm2 = n.imm;
                    f.aux = n.aux;
                    f.costPrefix = n.costPrefix;
                    fused.push_back(f);
                    k += 2;
                    continue;
                }
            }
            fused.push_back(a);
            ++k;
        }
        uops.swap(fused);
    }
    // Loop superinstructions (DESIGN.md §12): a hot self-loop whose body
    // is pure ALU and whose exit is counted collapses into one micro-op
    // that iterates natively, bounded by the remaining cycle budget.
    // All written registers must be pairwise distinct and the read-only
    // bound registers must not alias them, so the native loop's final
    // register image matches per-uop execution exactly.
    const auto distinct = [](std::initializer_list<std::uint8_t> rs) {
        std::uint32_t seen = 0;
        for (std::uint8_t r : rs) {
            if (seen & (1u << r))
                return false;
            seen |= 1u << r;
        }
        return true;
    };
    if (uops.size() == 3 && uops[0].kind == UopKind::kMulRIAddRI &&
        uops[1].kind == UopKind::kShrRIXorRR &&
        uops[2].kind == UopKind::kAddRRAddiBlt) {
        const Uop& m = uops[0];
        const Uop& x = uops[1];
        const Uop& l = uops[2];
        const std::uint8_t s = m.rd;
        if (m.rs1 == s && m.rd2 == s && x.rs1 == s && x.rd2 == s &&
            x.rx == s && l.rs2 == s && l.rd == l.rs1 && l.imm2 == 1 &&
            l.aux == b.start &&
            distinct({s, x.rd, l.rd, l.rd2, l.rx})) {
            Uop f;
            f.kind = UopKind::kLcgAccLoop;
            f.rd = s;         // hash state
            f.rs1 = x.rd;     // shifted temporary
            f.rs2 = l.rd;     // accumulator
            f.rd2 = l.rd2;    // loop counter
            f.rx = l.rx;      // loop bound (read-only)
            f.imm = m.imm;    // multiplier
            f.imm2 = m.imm2;  // increment
            f.aux = x.imm;    // shift amount
            f.costPrefix = b.cost;
            uops.assign(1, f);
        }
    }
    if (b.len == 3 && b.start + 6 <= static_cast<std::uint32_t>(decoded_.size())) {
        const Decoded* d = code + b.start;
        if (d[0].op == Opcode::kAnd && d[0].useImm && d[0].imm == 1 &&
            d[1].op == Opcode::kShr && d[1].useImm &&
            (d[1].imm & 31u) == 1 && d[1].rd == d[1].rs1 &&
            d[1].rs1 == d[0].rs1 && d[2].op == Opcode::kBeq &&
            d[2].rs1 == d[0].rd && d[2].target == b.start + 4 &&
            d[3].op == Opcode::kXor && d[3].useImm &&
            d[3].rd == d[0].rs1 && d[3].rs1 == d[0].rs1 &&
            d[4].op == Opcode::kSub && d[4].useImm && d[4].imm == 1 &&
            d[4].rd == d[4].rs1 && d[5].op == Opcode::kBne &&
            d[5].rs1 == d[4].rd && d[5].target == b.start &&
            distinct({d[0].rd, d[0].rs1, d[4].rd}) &&
            distinct({d[2].rs2, d[0].rd, d[0].rs1, d[4].rd}) &&
            distinct({d[5].rs2, d[0].rd, d[0].rs1, d[4].rd})) {
            const std::uint32_t cTak =
                d[0].cost + d[1].cost + d[2].cost + d[4].cost + d[5].cost;
            Uop f;
            f.kind = UopKind::kCrcBitLoop;
            f.rd = d[0].rd;    // bit register
            f.rs1 = d[0].rs1;  // shift register
            f.rs2 = d[4].rd;   // bit counter
            f.rd2 = d[2].rs2;  // beq compare register (read-only)
            f.rx = d[5].rs2;   // bne compare register (read-only)
            f.imm = d[3].imm;  // polynomial
            f.imm2 = cTak;     // taken-path cycles per iteration
            f.aux = cTak + d[3].cost;  // not-taken-path cycles
            f.costPrefix = b.cost;
            uops.assign(1, f);
            // Worst-case single iteration: the block-entry budget guard
            // must cover a whole not-taken pass.
            b.cost = f.aux;
        }
    }
    if (uops.size() == 6 && uops[0].kind == UopKind::kSubRR &&
        uops[1].kind == UopKind::kAndRI &&
        uops[2].kind == UopKind::kMoviAddLoad &&
        uops[3].kind == UopKind::kMoviAddLoad &&
        uops[4].kind == UopKind::kMulRR &&
        uops[5].kind == UopKind::kAddRRAddiBlt) {
        const Uop& su = uops[0];  // sub rI,rS,rT
        const Uop& an = uops[1];  // and rI,rI,#m
        const Uop& l0 = uops[2];  // rA = ring + rI ; load rX,[rA+0]
        const Uop& l1 = uops[3];  // rA = taps + rT ; load rY,[rA+0]
        const Uop& mu = uops[4];  // mul rX,rX,rY
        const Uop& lt = uops[5];  // add rAcc,rAcc,rX ; rT+=1 ; blt
        if (an.rs1 == su.rd && an.rd == su.rd && (an.imm >> 8) == 0 &&
            l0.rx == su.rd && l0.imm2 == 0 && l1.rd == l0.rd &&
            l1.rx == su.rs2 && l1.imm2 == 0 && mu.rd == l0.rd2 &&
            mu.rs1 == l0.rd2 && mu.rs2 == l1.rd2 && lt.rd == lt.rs1 &&
            lt.rs2 == mu.rd && lt.rd2 == su.rs2 && lt.imm2 == 1 &&
            lt.aux == b.start &&
            distinct({su.rd, l0.rd, l0.rd2, l1.rd2, lt.rd, lt.rd2}) &&
            distinct({su.rs1, lt.rx, su.rd, l0.rd, l0.rd2, l1.rd2, lt.rd,
                      lt.rd2})) {
            Uop f;
            f.kind = UopKind::kFirMacLoop;
            f.rd = lt.rd;          // accumulator
            f.rs1 = su.rs1;        // sample index (read-only)
            f.rs2 = su.rd;         // masked ring index
            f.rd2 = lt.rd2;        // loop counter
            f.rx = lt.rx;          // loop bound (read-only)
            f.imm = l0.imm;        // ring base
            f.aux = l1.imm;        // taps base
            f.imm2 = static_cast<std::uint32_t>(l0.rd) |
                     (static_cast<std::uint32_t>(l0.rd2) << 8) |
                     (static_cast<std::uint32_t>(l1.rd2) << 16) |
                     (an.imm << 24);
            f.costPrefix = b.cost;
            uops.assign(1, f);
        }
    }
    if (std::getenv("GECKO_DUMP_BLOCKS")) {
        std::fprintf(stderr, "block@%u len=%u cost=%u uops=%zu:", b.start,
                     b.len, b.cost, uops.size());
        for (const Uop& du : uops)
            std::fprintf(stderr, " %d(rd%u rs%u,%u rx%u rd2:%u i%u i2:%u a%u)",
                         static_cast<int>(du.kind), du.rd, du.rs1, du.rs2,
                         du.rx, du.rd2, du.imm, du.imm2, du.aux);
        std::fprintf(stderr, "\n");
    }
    b.uopStart = static_cast<std::uint32_t>(uopPool_.size());
    b.uopCount = static_cast<std::uint32_t>(uops.size());
    uopPool_.insert(uopPool_.end(), uops.begin(), uops.end());
    b.compiled = true;
    b.threaded = false;
}


Machine::StepExit
Machine::stepDecoded(std::uint32_t& pc, std::uint64_t& cycles,
                     std::uint64_t& instrs)
{
    // One instruction of runFast's dispatch body, verbatim: the block
    // backend's precise fallback for budget tails, cold blocks and
    // mid-block entry pcs.  The caller re-enters block dispatch after
    // every instruction, so execution realigns with the next leader.
    const Decoded& d = decoded_[pc];
    const std::uint32_t size = static_cast<std::uint32_t>(decoded_.size());
    const bool staged = stagedIo_;
    Nvm& nvm = *nvm_;
    std::uint32_t* const regs = regs_.data();
    cycles += d.cost;
    ++instrs;
    std::uint32_t next = pc + 1;
    switch (d.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMovi:
        regs[d.rd] = d.imm;
        break;
      case Opcode::kMov:
        regs[d.rd] = regs[d.rs1];
        break;
      case Opcode::kAdd:
        regs[d.rd] = regs[d.rs1] + (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kSub:
        regs[d.rd] = regs[d.rs1] - (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kMul:
        regs[d.rd] = regs[d.rs1] * (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kDivu: {
        const std::uint32_t v = d.useImm ? d.imm : regs[d.rs2];
        regs[d.rd] = v == 0 ? 0xffffffffu : regs[d.rs1] / v;
        break;
      }
      case Opcode::kRemu: {
        const std::uint32_t v = d.useImm ? d.imm : regs[d.rs2];
        regs[d.rd] = v == 0 ? regs[d.rs1] : regs[d.rs1] % v;
        break;
      }
      case Opcode::kAnd:
        regs[d.rd] = regs[d.rs1] & (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kOr:
        regs[d.rd] = regs[d.rs1] | (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kXor:
        regs[d.rd] = regs[d.rs1] ^ (d.useImm ? d.imm : regs[d.rs2]);
        break;
      case Opcode::kShl:
        regs[d.rd] = regs[d.rs1] << ((d.useImm ? d.imm : regs[d.rs2]) & 31u);
        break;
      case Opcode::kShr:
        regs[d.rd] = regs[d.rs1] >> ((d.useImm ? d.imm : regs[d.rs2]) & 31u);
        break;
      case Opcode::kNot:
        regs[d.rd] = ~regs[d.rs1];
        break;
      case Opcode::kNeg:
        regs[d.rd] = 0u - regs[d.rs1];
        break;
      case Opcode::kLoad: {
        const std::uint32_t addr = regs[d.rs1] + d.imm;
        if (!nvm.inRange(addr))
            return StepExit::kFaulted;
        regs[d.rd] = nvm.load(addr);
        break;
      }
      case Opcode::kStore: {
        const std::uint32_t addr = regs[d.rs1] + d.imm;
        if (!nvm.inRange(addr))
            return StepExit::kFaulted;
        nvm.store(addr, regs[d.rs2]);
        break;
      }
      case Opcode::kBeq:
        if (regs[d.rs1] == regs[d.rs2])
            next = d.target;
        break;
      case Opcode::kBne:
        if (regs[d.rs1] != regs[d.rs2])
            next = d.target;
        break;
      case Opcode::kBlt:
        if (static_cast<std::int32_t>(regs[d.rs1]) <
            static_cast<std::int32_t>(regs[d.rs2]))
            next = d.target;
        break;
      case Opcode::kBge:
        if (static_cast<std::int32_t>(regs[d.rs1]) >=
            static_cast<std::int32_t>(regs[d.rs2]))
            next = d.target;
        break;
      case Opcode::kBltu:
        if (regs[d.rs1] < regs[d.rs2])
            next = d.target;
        break;
      case Opcode::kBgeu:
        if (regs[d.rs1] >= regs[d.rs2])
            next = d.target;
        break;
      case Opcode::kJmp:
        next = d.target;
        break;
      case Opcode::kCall:
        regs[ir::kLinkReg] = pc + 1;
        next = d.target;
        break;
      case Opcode::kRet:
        next = regs[ir::kLinkReg];
        if (next > size)
            return StepExit::kFaulted;
        break;
      case Opcode::kIn: {
        const int port = static_cast<std::int32_t>(d.imm);
        if (port < 0 || port >= kIoPorts)
            return StepExit::kFaulted;
        const auto pi = static_cast<std::size_t>(port);
        const std::uint64_t index = nvm.inCount[pi] + pendingIn_[pi];
        regs[d.rd] = io_->input(port).valueAt(index);
        if (staged)
            ++pendingIn_[pi];
        else
            ++nvm.inCount[pi];
        break;
      }
      case Opcode::kOut: {
        const int port = static_cast<std::int32_t>(d.imm);
        if (port < 0 || port >= kIoPorts)
            return StepExit::kFaulted;
        const auto pi = static_cast<std::size_t>(port);
        const std::uint64_t index = nvm.outCount[pi] + pendingOut_[pi];
        io_->output(port).set(index, regs[d.rs1]);
        if (staged)
            ++pendingOut_[pi];
        else
            ++nvm.outCount[pi];
        break;
      }
      case Opcode::kHalt:
        ++stats.completions;
        if (staged)
            commitIo();
        GECKO_TRACE_EVENT(trace::EventKind::kCompletion, 0,
                          stats.completions, committedOutTotal(nvm));
        if (continuous_) {
            restartProgram();
            pc = 0;
            return StepExit::kContinue;
        }
        halted_ = true;
        return StepExit::kHalted;  // pc stays on the halt instruction
      case Opcode::kBoundary:
        if (staged) {
            nvm.committedRegion = d.imm;
            ++nvm.commitCount;
            commitIo();
            GECKO_TRACE_EVENT(trace::EventKind::kRegionCommit, 0,
                              nvm.committedRegion, nvm.commitCount);
        }
        ++stats.boundaryCommits;
        break;
      case Opcode::kCkpt:
        nvm.writeSlot(d.rs1, static_cast<std::int32_t>(d.imm), regs[d.rs1]);
        ++stats.ckptStores;
        break;
    }
    pc = next;
    return StepExit::kContinue;
}

#if GECKO_COMPUTED_GOTO

RunExit
Machine::runBlock(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    // Handler table indexed by UopKind (same order; see superblock.hpp).
    static void* const kKindTable[] = {
        &&u_nop, &&u_movi, &&u_mov, &&u_not, &&u_neg,
        // clang-format off
        &&u_add_rr, &&u_sub_rr, &&u_mul_rr, &&u_divu_rr, &&u_remu_rr,
        &&u_and_rr, &&u_or_rr, &&u_xor_rr, &&u_shl_rr, &&u_shr_rr,
        &&u_add_ri, &&u_sub_ri, &&u_mul_ri, &&u_divu_ri, &&u_remu_ri,
        &&u_and_ri, &&u_or_ri, &&u_xor_ri, &&u_shl_ri, &&u_shr_ri,
        &&u_load, &&u_store,
        &&u_in_staged, &&u_in_direct, &&u_out_staged, &&u_out_direct,
        &&u_boundary_staged, &&u_boundary_plain, &&u_ckpt, &&u_bad_io,
        &&u_andi_addi,
        &&u_mulri_addri, &&u_shrri_xorrr, &&u_andri_shrri, &&u_andri_addrr,
        &&u_mulri_addrr, &&u_andri_xorrr, &&u_movi_addrr, &&u_addrr_load,
        &&u_movi_add_load, &&u_movi_add_store, &&u_ckpt_ckpt,
        &&u_beq, &&u_bne, &&u_blt, &&u_bge, &&u_bltu, &&u_bgeu,
        &&u_jmp, &&u_call, &&u_ret, &&u_halt, &&u_fall,
        &&u_addi_beq, &&u_addi_bne, &&u_addi_blt, &&u_addi_bge,
        &&u_addi_bltu, &&u_addi_bgeu,
        &&u_subi_beq, &&u_subi_bne, &&u_subi_blt, &&u_subi_bge,
        &&u_subi_bltu, &&u_subi_bgeu,
        &&u_addrr_addi_blt, &&u_shrri_addi_blt,
        &&u_movi_fall, &&u_addri_jmp,
        &&u_lcg_loop, &&u_crc_loop, &&u_fir_loop,
        // clang-format on
    };
    static_assert(sizeof(kKindTable) / sizeof(kKindTable[0]) ==
                  static_cast<std::size_t>(kNumUopKinds));

    ensureBlocks();

    SuperBlock* const blocks = blocks_.data();
    Uop* pool = uopPool_.data();
    const std::uint32_t* const blockAt = blockAt_.data();
    const std::uint32_t size = static_cast<std::uint32_t>(decoded_.size());
    Nvm& nvm = *nvm_;
    std::uint32_t* const regs = regs_.data();
    const bool btrace = blockTrace_;

    // Hot state in locals (mirrors runFast); counters flush on every
    // exit edge.  `instrs`/`cycles` advance at block granularity — the
    // fault path reconstructs mid-block counts from Uop::costPrefix.
    std::uint32_t pc = pc_;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    SuperBlock* b = nullptr;
    const Uop* u = nullptr;
    [[maybe_unused]] std::uint16_t deoptReason = 0;

// One micro-op ends, the next begins: single indirect jump.
#define GECKO_NEXT                                                          \
    do {                                                                    \
        ++u;                                                                \
        goto* u->handler;                                                   \
    } while (0)

// Straight ALU micro-ops.
#define GECKO_ALU(label, expr)                                              \
    label:                                                                  \
    regs[u->rd] = (expr);                                                   \
    GECKO_NEXT;

// Conditional-branch terminator: account the block, then either chain
// straight back into this block's micro-ops (hot self-loop) or re-enter
// the dispatch preamble.
#define GECKO_BRANCH_TERM(label, cond)                                      \
    label: {                                                                \
        cycles += b->cost;                                                  \
        instrs += b->len;                                                   \
        const std::uint32_t nx = (cond) ? u->aux : b->start + b->len;       \
        if (nx == b->start && cycles + b->cost <= cycleBudget) {            \
            u = pool + b->uopStart;                                             \
            goto* u->handler;                                               \
        }                                                                   \
        pc = nx;                                                            \
        goto chain;                                                         \
    }

// Fused loop latch: immediate add/sub, then branch on the result.
#define GECKO_LATCH_TERM(label, op, cond)                                   \
    label: {                                                                \
        const std::uint32_t v = regs[u->rs1] op u->imm;                     \
        regs[u->rd] = v;                                                    \
        cycles += b->cost;                                                  \
        instrs += b->len;                                                   \
        const std::uint32_t nx = (cond) ? u->aux : b->start + b->len;       \
        if (nx == b->start && cycles + b->cost <= cycleBudget) {            \
            u = pool + b->uopStart;                                             \
            goto* u->handler;                                               \
        }                                                                   \
        pc = nx;                                                            \
        goto chain;                                                         \
    }

    try {
      enter:
        if (cycles >= cycleBudget)
            goto budget_out;
        if (pc >= size)
            goto fault_common;
        b = &blocks[blockAt[pc]];
        if (pc != b->start) {
            // Mid-block entry: a budget tail stopped inside a block, or
            // a JIT-checkpoint image restore resumed there.  Step until
            // execution realigns with a leader.
            deoptReason = trace::kFlagDeoptUnaligned;
            goto deopt;
        }
        if (!b->compiled) {
            if (++b->execCount < kHotThreshold) {
                deoptReason = trace::kFlagDeoptCold;
                goto deopt;
            }
            compileBlock(*b);
            pool = uopPool_.data();
            if (btrace)
                GECKO_TRACE_EVENT(trace::EventKind::kBlockCompile, 0,
                                  b->start, b->len);
        }
        if (!b->threaded) {
            for (std::uint32_t oi = 0; oi < b->uopCount; ++oi) {
                Uop& op = pool[b->uopStart + oi];
                op.handler = kKindTable[static_cast<int>(op.kind)];
            }
            b->threaded = true;
        }
        if (cycles + b->cost > cycleBudget) {
            // Budget tail: the whole block no longer fits the quantum's
            // energy/clock bound — the conservative block-entry guard.
            deoptReason = trace::kFlagDeoptBudget;
            goto deopt;
        }
        if (btrace)
            GECKO_TRACE_EVENT(trace::EventKind::kBlockEnter, 0, b->start,
                              cycles);
        u = pool + b->uopStart;
        goto* u->handler;

        // Fast block-to-block dispatch: terminators land here with the
        // next pc.  A hot, aligned target whose whole cost fits the
        // remaining budget starts threading with one compare chain —
        // the full preamble only runs for cold/unaligned/tail cases
        // (and whenever block tracing wants its kBlockEnter events).
      chain:
        if (!btrace && pc < size) {
            SuperBlock* const nb = &blocks[blockAt[pc]];
            if (nb->threaded && pc == nb->start &&
                cycles + nb->cost <= cycleBudget) {
                b = nb;
                u = pool + nb->uopStart;
                goto* u->handler;
            }
        }
        goto enter;

        // ---- Per-instruction fallback -----------------------------
        // stepDecoded executes exactly one instruction (a clone of
        // runFast's dispatch body), then control re-enters block
        // dispatch: deopts are instruction-precise and threaded
        // execution resumes at the very next leader.
      deopt:
        if (btrace)
            GECKO_TRACE_EVENT(trace::EventKind::kBlockDeopt, deoptReason,
                              pc, cycles);
        switch (stepDecoded(pc, cycles, instrs)) {
          case StepExit::kContinue:
            goto enter;
          case StepExit::kHalted:
            pc_ = pc;
            stats.instrs += instrs;
            stats.cycles += cycles;
            if (consumed)
                *consumed = cycles;
            return RunExit::kHalted;
          case StepExit::kFaulted:
            break;
        }

      fault_common:
        // Mirror runFast's fault_instr: the faulting instruction is
        // counted, the PC stays on it, and a non-tolerant machine throws
        // with this run's cycles uncounted.
        pc_ = pc;
        stats.instrs += instrs;
        instrs = 0;
        fault();  // throws unless fault-tolerant
        stats.cycles += cycles;
        if (consumed)
            *consumed = cycles;
        return RunExit::kFaulted;

        // ---- Straight-line micro-ops ------------------------------
      u_nop:
        GECKO_NEXT;
        GECKO_ALU(u_movi, u->imm)
        GECKO_ALU(u_mov, regs[u->rs1])
        GECKO_ALU(u_not, ~regs[u->rs1])
        GECKO_ALU(u_neg, 0u - regs[u->rs1])
        GECKO_ALU(u_add_rr, regs[u->rs1] + regs[u->rs2])
        GECKO_ALU(u_sub_rr, regs[u->rs1] - regs[u->rs2])
        GECKO_ALU(u_mul_rr, regs[u->rs1] * regs[u->rs2])
      u_divu_rr: {
        const std::uint32_t v = regs[u->rs2];
        regs[u->rd] = v == 0 ? 0xffffffffu : regs[u->rs1] / v;
        GECKO_NEXT;
      }
      u_remu_rr: {
        const std::uint32_t v = regs[u->rs2];
        regs[u->rd] = v == 0 ? regs[u->rs1] : regs[u->rs1] % v;
        GECKO_NEXT;
      }
        GECKO_ALU(u_and_rr, regs[u->rs1] & regs[u->rs2])
        GECKO_ALU(u_or_rr, regs[u->rs1] | regs[u->rs2])
        GECKO_ALU(u_xor_rr, regs[u->rs1] ^ regs[u->rs2])
        GECKO_ALU(u_shl_rr, regs[u->rs1] << (regs[u->rs2] & 31u))
        GECKO_ALU(u_shr_rr, regs[u->rs1] >> (regs[u->rs2] & 31u))
        GECKO_ALU(u_add_ri, regs[u->rs1] + u->imm)
        GECKO_ALU(u_sub_ri, regs[u->rs1] - u->imm)
        GECKO_ALU(u_mul_ri, regs[u->rs1] * u->imm)
      u_divu_ri:
        regs[u->rd] = u->imm == 0 ? 0xffffffffu : regs[u->rs1] / u->imm;
        GECKO_NEXT;
      u_remu_ri:
        regs[u->rd] = u->imm == 0 ? regs[u->rs1] : regs[u->rs1] % u->imm;
        GECKO_NEXT;
        GECKO_ALU(u_and_ri, regs[u->rs1] & u->imm)
        GECKO_ALU(u_or_ri, regs[u->rs1] | u->imm)
        GECKO_ALU(u_xor_ri, regs[u->rs1] ^ u->imm)
        GECKO_ALU(u_shl_ri, regs[u->rs1] << u->imm)  // pre-masked
        GECKO_ALU(u_shr_ri, regs[u->rs1] >> u->imm)  // pre-masked
      u_load: {
        const std::uint32_t addr = regs[u->rs1] + u->imm;
        if (!nvm.inRange(addr))
            goto uop_fault;
        regs[u->rd] = nvm.load(addr);
        GECKO_NEXT;
      }
      u_store: {
        const std::uint32_t addr = regs[u->rs1] + u->imm;
        if (!nvm.inRange(addr))
            goto uop_fault;
        nvm.store(addr, regs[u->rs2]);
        GECKO_NEXT;
      }
      u_andi_addi: {
        const std::uint32_t t = regs[u->rs1] & u->imm;
        regs[u->rs2] = t;
        regs[u->rd] = t + u->aux;
        GECKO_NEXT;
      }
      u_mulri_addri: {
        const std::uint32_t t = regs[u->rs1] * u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t + u->imm2;
        GECKO_NEXT;
      }
      u_shrri_xorrr: {
        const std::uint32_t t = regs[u->rs1] >> u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t ^ regs[u->rx];
        GECKO_NEXT;
      }
      u_andri_shrri: {
        const std::uint32_t t = regs[u->rs1] & u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t >> u->imm2;  // pre-masked
        GECKO_NEXT;
      }
      u_andri_addrr: {
        const std::uint32_t t = regs[u->rs1] & u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t + regs[u->rx];
        GECKO_NEXT;
      }

      u_mulri_addrr: {
        const std::uint32_t t = regs[u->rs1] * u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t + regs[u->rx];
        GECKO_NEXT;
      }

      u_andri_xorrr: {
        const std::uint32_t t = regs[u->rs1] & u->imm;
        regs[u->rd] = t;
        regs[u->rd2] = t ^ regs[u->rx];
        GECKO_NEXT;
      }

      u_movi_addrr: {
        regs[u->rd] = u->imm;
        regs[u->rd2] = regs[u->rd] + regs[u->rx];
        GECKO_NEXT;
      }

      u_addrr_load: {
        const std::uint32_t t = regs[u->rs1] + regs[u->rs2];
        regs[u->rd] = t;
        const std::uint32_t addr = t + u->imm2;
        if (!nvm.inRange(addr))
            goto uop_fault;
        regs[u->rd2] = nvm.load(addr);
        GECKO_NEXT;
      }
      u_movi_add_load: {
        const std::uint32_t t = u->imm + regs[u->rx];
        regs[u->rd] = t;
        const std::uint32_t addr = t + u->imm2;
        if (!nvm.inRange(addr))
            goto uop_fault;
        regs[u->rd2] = nvm.load(addr);
        GECKO_NEXT;
      }
      u_movi_add_store: {
        const std::uint32_t t = u->imm + regs[u->rx];
        regs[u->rd] = t;
        const std::uint32_t addr = t + u->imm2;
        if (!nvm.inRange(addr))
            goto uop_fault;
        nvm.store(addr, regs[u->rs2]);
        GECKO_NEXT;
      }
      u_ckpt_ckpt:
        nvm.writeSlot(u->rs1, static_cast<std::int32_t>(u->imm),
                      regs[u->rs1]);
        nvm.writeSlot(u->rd2, static_cast<std::int32_t>(u->imm2),
                      regs[u->rd2]);
        stats.ckptStores += 2;
        GECKO_NEXT;
      u_in_staged: {
        const auto pi = static_cast<std::size_t>(u->imm);
        const std::uint64_t index = nvm.inCount[pi] + pendingIn_[pi];
        regs[u->rd] =
            io_->input(static_cast<int>(u->imm)).valueAt(index);
        ++pendingIn_[pi];
        GECKO_NEXT;
      }
      u_in_direct: {
        const auto pi = static_cast<std::size_t>(u->imm);
        const std::uint64_t index = nvm.inCount[pi] + pendingIn_[pi];
        regs[u->rd] =
            io_->input(static_cast<int>(u->imm)).valueAt(index);
        ++nvm.inCount[pi];
        GECKO_NEXT;
      }
      u_out_staged: {
        const auto pi = static_cast<std::size_t>(u->imm);
        const std::uint64_t index = nvm.outCount[pi] + pendingOut_[pi];
        io_->output(static_cast<int>(u->imm)).set(index, regs[u->rs1]);
        ++pendingOut_[pi];
        GECKO_NEXT;
      }
      u_out_direct: {
        const auto pi = static_cast<std::size_t>(u->imm);
        const std::uint64_t index = nvm.outCount[pi] + pendingOut_[pi];
        io_->output(static_cast<int>(u->imm)).set(index, regs[u->rs1]);
        ++nvm.outCount[pi];
        GECKO_NEXT;
      }
      u_boundary_staged:
        nvm.committedRegion = u->imm;
        ++nvm.commitCount;
        commitIo();
        GECKO_TRACE_EVENT(trace::EventKind::kRegionCommit, 0,
                          nvm.committedRegion, nvm.commitCount);
        ++stats.boundaryCommits;
        GECKO_NEXT;
      u_boundary_plain:
        ++stats.boundaryCommits;
        GECKO_NEXT;
      u_ckpt:
        nvm.writeSlot(u->rs1, static_cast<std::int32_t>(u->imm),
                      regs[u->rs1]);
        ++stats.ckptStores;
        GECKO_NEXT;
      u_bad_io:
        goto uop_fault;

        // ---- Terminators ------------------------------------------
        GECKO_BRANCH_TERM(u_beq, regs[u->rs1] == regs[u->rs2])
        GECKO_BRANCH_TERM(u_bne, regs[u->rs1] != regs[u->rs2])
        GECKO_BRANCH_TERM(u_blt,
                          static_cast<std::int32_t>(regs[u->rs1]) <
                              static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_BRANCH_TERM(u_bge,
                          static_cast<std::int32_t>(regs[u->rs1]) >=
                              static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_BRANCH_TERM(u_bltu, regs[u->rs1] < regs[u->rs2])
        GECKO_BRANCH_TERM(u_bgeu, regs[u->rs1] >= regs[u->rs2])
      u_jmp: {
        cycles += b->cost;
        instrs += b->len;
        const std::uint32_t nx = u->aux;
        if (nx == b->start && cycles + b->cost <= cycleBudget) {
            u = pool + b->uopStart;
            goto* u->handler;
        }
        pc = nx;
        goto chain;
      }
      u_call:
        regs[ir::kLinkReg] = u->imm;
        cycles += b->cost;
        instrs += b->len;
        pc = u->aux;
        goto chain;
      u_ret: {
        const std::uint32_t nx = regs[ir::kLinkReg];
        if (nx > size)
            goto uop_fault;
        cycles += b->cost;
        instrs += b->len;
        pc = nx;
        goto chain;
      }
      u_halt:
        cycles += b->cost;
        instrs += b->len;
        ++stats.completions;
        if (stagedIo_)
            commitIo();
        GECKO_TRACE_EVENT(trace::EventKind::kCompletion, 0,
                          stats.completions, committedOutTotal(nvm));
        if (continuous_) {
            restartProgram();
            pc = 0;
            goto enter;
        }
        halted_ = true;
        pc_ = b->start + b->len - 1;
        if (btrace)
            GECKO_TRACE_EVENT(trace::EventKind::kBlockExit, 0, pc_, cycles);
        stats.instrs += instrs;
        stats.cycles += cycles;
        if (consumed)
            *consumed = cycles;
        return RunExit::kHalted;
      u_fall:
        cycles += b->cost;
        instrs += b->len;
        pc = u->aux;
        goto chain;

        // ---- Fused loop latches -----------------------------------
        // clang-format off
        GECKO_LATCH_TERM(u_addi_beq, +, v == regs[u->rs2])
        GECKO_LATCH_TERM(u_addi_bne, +, v != regs[u->rs2])
        GECKO_LATCH_TERM(u_addi_blt, +,
                         static_cast<std::int32_t>(v) <
                             static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_LATCH_TERM(u_addi_bge, +,
                         static_cast<std::int32_t>(v) >=
                             static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_LATCH_TERM(u_addi_bltu, +, v < regs[u->rs2])
        GECKO_LATCH_TERM(u_addi_bgeu, +, v >= regs[u->rs2])
        GECKO_LATCH_TERM(u_subi_beq, -, v == regs[u->rs2])
        GECKO_LATCH_TERM(u_subi_bne, -, v != regs[u->rs2])
        GECKO_LATCH_TERM(u_subi_blt, -,
                         static_cast<std::int32_t>(v) <
                             static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_LATCH_TERM(u_subi_bge, -,
                         static_cast<std::int32_t>(v) >=
                             static_cast<std::int32_t>(regs[u->rs2]))
        GECKO_LATCH_TERM(u_subi_bltu, -, v < regs[u->rs2])
        GECKO_LATCH_TERM(u_subi_bgeu, -, v >= regs[u->rs2])
        // clang-format on

        // ---- Latch triples (leading ALU op + self-counted latch) ----
      u_addrr_addi_blt: {
        regs[u->rd] = regs[u->rs1] + regs[u->rs2];
        const std::uint32_t v = regs[u->rd2] + u->imm2;
        regs[u->rd2] = v;
        cycles += b->cost;
        instrs += b->len;
        const std::uint32_t nx = static_cast<std::int32_t>(v) <
                                         static_cast<std::int32_t>(regs[u->rx])
                                     ? u->aux
                                     : b->start + b->len;
        if (nx == b->start && cycles + b->cost <= cycleBudget) {
            u = pool + b->uopStart;
            goto* u->handler;
        }
        pc = nx;
        goto chain;
      }
      u_shrri_addi_blt: {
        regs[u->rd] = regs[u->rs1] >> u->imm;
        const std::uint32_t v = regs[u->rd2] + u->imm2;
        regs[u->rd2] = v;
        cycles += b->cost;
        instrs += b->len;
        const std::uint32_t nx = static_cast<std::int32_t>(v) <
                                         static_cast<std::int32_t>(regs[u->rx])
                                     ? u->aux
                                     : b->start + b->len;
        if (nx == b->start && cycles + b->cost <= cycleBudget) {
            u = pool + b->uopStart;
            goto* u->handler;
        }
        pc = nx;
        goto chain;
      }

      u_movi_fall: {
        regs[u->rd] = u->imm;
        cycles += b->cost;
        instrs += b->len;
        pc = u->aux;
        goto chain;
      }

      u_addri_jmp: {
        regs[u->rd] = regs[u->rs1] + u->imm;
        cycles += b->cost;
        instrs += b->len;
        pc = u->aux;
        goto chain;
      }

      u_lcg_loop: {
        // Native counted loop (see compileBlock's matcher): pure ALU
        // body + counter-only exit, so k whole iterations — bounded by
        // the remaining budget and the latch's own exit count — leave
        // registers, cycles and instruction counts exactly as k threaded
        // passes would.
        const std::uint64_t kmax = (cycleBudget - cycles) / b->cost;
        const std::int64_t cnt0 =
            static_cast<std::int32_t>(regs[u->rd2]);
        const std::int64_t bnd = static_cast<std::int32_t>(regs[u->rx]);
        const std::uint64_t kexit =
            bnd > cnt0 ? static_cast<std::uint64_t>(bnd - cnt0) : 1;
        const std::uint64_t k = kmax < kexit ? kmax : kexit;
        std::uint32_t s = regs[u->rd];
        std::uint32_t t = regs[u->rs1];
        std::uint32_t acc = regs[u->rs2];
        const std::uint32_t mulK = u->imm;
        const std::uint32_t addC = u->imm2;
        const std::uint32_t sh = u->aux;
        for (std::uint64_t j = 0; j < k; ++j) {
            s = s * mulK + addC;
            t = s >> sh;
            s ^= t;
            acc += s;
        }
        regs[u->rd] = s;
        regs[u->rs1] = t;
        regs[u->rs2] = acc;
        regs[u->rd2] = static_cast<std::uint32_t>(
            cnt0 + static_cast<std::int64_t>(k));
        cycles += k * b->cost;
        instrs += k * b->len;
        pc = k == kexit ? b->start + b->len : b->start;
        goto chain;
      }

      u_fir_loop: {
        // Native FIR multiply-accumulate loop (see compileBlock's
        // matcher).  Fixed per-iteration cost, counted exit; the two
        // loads are bounds-checked every iteration, and a failing check
        // commits only the completed iterations and replays the
        // faulting one through the per-instruction fallback — the
        // fault fires at the exact instruction with exact state.
        const std::uint64_t kmax = (cycleBudget - cycles) / b->cost;
        const std::int64_t cnt0 =
            static_cast<std::int32_t>(regs[u->rd2]);
        const std::int64_t bnd = static_cast<std::int32_t>(regs[u->rx]);
        const std::uint64_t kexit =
            bnd > cnt0 ? static_cast<std::uint64_t>(bnd - cnt0) : 1;
        const std::uint64_t kIter = kmax < kexit ? kmax : kexit;
        const std::uint8_t rA = u->imm2 & 0xffu;
        const std::uint8_t rX = (u->imm2 >> 8) & 0xffu;
        const std::uint8_t rY = (u->imm2 >> 16) & 0xffu;
        const std::uint32_t mask = u->imm2 >> 24;
        const std::uint32_t ringBase = u->imm;
        const std::uint32_t tapsBase = u->aux;
        const std::uint32_t src = regs[u->rs1];
        std::uint32_t t = regs[u->rd2];
        std::uint32_t acc = regs[u->rd];
        std::uint32_t vI = regs[u->rs2];
        std::uint32_t vA = regs[rA];
        std::uint32_t vX = regs[rX];
        std::uint32_t vY = regs[rY];
        std::uint64_t j = 0;
        for (; j < kIter; ++j) {
            const std::uint32_t idx = (src - t) & mask;
            const std::uint32_t a0 = ringBase + idx;
            if (!nvm.inRange(a0))
                break;
            const std::uint32_t x = nvm.load(a0);
            const std::uint32_t a1 = tapsBase + t;
            if (!nvm.inRange(a1))
                break;
            const std::uint32_t y = nvm.load(a1);
            const std::uint32_t p = x * y;
            acc += p;
            t += 1;
            vI = idx;
            vA = a1;
            vX = p;
            vY = y;
        }
        regs[u->rs2] = vI;
        regs[rA] = vA;
        regs[rX] = vX;
        regs[rY] = vY;
        regs[u->rd] = acc;
        regs[u->rd2] = t;
        cycles += j * b->cost;
        instrs += j * b->len;
        if (j < kIter) {
            // Bounds failure: rewind to the iteration start and let the
            // per-instruction fallback reach the faulting load.
            pc = b->start;
            deoptReason = trace::kFlagDeoptUnaligned;
            goto deopt;
        }
        pc = j == kexit ? b->start + b->len : b->start;
        goto chain;
      }

      u_crc_loop: {
        // Native CRC bit loop spanning the three-block cycle rooted at
        // this block (see compileBlock's matcher).  Per-iteration cycle
        // cost is path-dependent (the xor is skipped on a zero bit), so
        // the budget check reserves a worst-case iteration; a mid-loop
        // budget stop resumes at the block start with exact state.
        std::uint32_t s = regs[u->rs1];
        std::uint32_t cnt = regs[u->rs2];
        std::uint32_t bit = regs[u->rd];
        const std::uint32_t z1 = regs[u->rd2];
        const std::uint32_t z2 = regs[u->rx];
        const std::uint32_t poly = u->imm;
        const std::uint64_t cTak = u->imm2;
        const std::uint64_t cNot = u->aux;
        std::uint32_t nx = b->start;
        for (;;) {
            bit = s & 1u;
            s >>= 1;
            if (bit == z1) {
                cycles += cTak;
                instrs += 5;
            } else {
                s ^= poly;
                cycles += cNot;
                instrs += 6;
            }
            --cnt;
            if (cnt == z2) {
                nx = b->start + 6;
                break;
            }
            if (cycles + cNot > cycleBudget)
                break;
        }
        regs[u->rd] = bit;
        regs[u->rs1] = s;
        regs[u->rs2] = cnt;
        pc = nx;
        goto chain;
      }

      uop_fault:
        // Reconstruct exact per-instruction counts for the partially
        // executed block: Uop::aux holds the faulting instruction's
        // block-relative index, Uop::costPrefix the block cost up to
        // and including it.
        instrs += u->aux + 1;
        cycles += u->costPrefix;
        pc = b->start + u->aux;
        goto fault_common;

      budget_out:
        pc_ = pc;
        if (btrace)
            GECKO_TRACE_EVENT(trace::EventKind::kBlockExit, 0, pc, cycles);
        stats.instrs += instrs;
        stats.cycles += cycles;
        if (consumed)
            *consumed = cycles;
        return RunExit::kBudget;
    } catch (...) {
        stats.instrs += instrs;
        pc_ = pc;
        throw;
    }

#undef GECKO_NEXT
#undef GECKO_ALU
#undef GECKO_BRANCH_TERM
#undef GECKO_LATCH_TERM
}

#else  // !GECKO_COMPUTED_GOTO

RunExit
Machine::runBlock(std::uint64_t cycleBudget, std::uint64_t* consumed)
{
    return runFast(cycleBudget, consumed);
}

#endif  // GECKO_COMPUTED_GOTO

}  // namespace gecko::sim

