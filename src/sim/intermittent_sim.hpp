#ifndef GECKO_SIM_INTERMITTENT_SIM_HPP_
#define GECKO_SIM_INTERMITTENT_SIM_HPP_

#include <functional>
#include <memory>

#include "analog/voltage_monitor.hpp"
#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "compiler/pipeline.hpp"
#include "defense/controller.hpp"
#include "device/device_profile.hpp"
#include "energy/capacitor.hpp"
#include "energy/harvester.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/machine.hpp"

/**
 * @file
 * The full intermittent-system simulation (paper Fig. 1): harvester →
 * capacitor → MCU, with a voltage monitor watching V_CC — and an
 * optional EMI source superimposing an attack tone on what the monitor
 * sees.
 *
 * Time advances in monitor-sample quanta.  While running, the machine
 * executes the cycles each quantum affords (energy-limited), the
 * capacitor discharges/charges, and the monitor observes
 * V_CC + v_EMI(t).  A backup event triggers the word-by-word JIT
 * checkpoint (when armed); a hard brown-out (monitor never fired — e.g.
 * EMI masking the window) loses the volatile state.  While sleeping the
 * capacitor recharges until a wake event boots the scheme's runtime.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::sim {

/** Simulation parameters beyond the device profile. */
struct SimConfig {
    analog::MonitorKind monitorKind = analog::MonitorKind::kAdc;
    energy::CapacitorConfig cap;
    /// NVM data size in words.
    std::size_t memWords = 16384;
    /// CTPL SRAM/peripheral snapshot size included in every JIT
    /// checkpoint/restore (cost-only words; makes the checkpoint-churn
    /// DoS expensive, as on real boards — the FR5994 has 8 KiB SRAM).
    int jitRamWords = 4096;
    /// Brown-out lockout hysteresis: the PMU releases reset only once
    /// V_CC exceeds V_off by this margin (V).
    double bootLockoutV = 0.02;
    /// Monitor sample-timing jitter (s).  ADC conversions are triggered
    /// from the DCO (an RC oscillator with %-level cycle jitter), so
    /// successive samples land at effectively random phases of an RF
    /// carrier.
    double sampleJitterS = 100e-9;
    /// Words at the start of the JIT checkpoint routine during which a
    /// wake signal still vetoes/aborts it (CTPL re-checks the wake
    /// condition before committing to the powerdown path).
    int jitAbortWindowWords = 48;
    /// Fixed cold-boot overhead on every wake (clock/DCO settling,
    /// peripheral re-initialisation — milliseconds-scale on real
    /// MSP430 boards), independent of the recovery scheme.
    std::uint64_t bootOverheadCycles = 16000;
    /// Restart the program on completion (continuous sensing loop).
    bool continuous = true;
    /// Threshold overrides; NaN means "use the device profile's value".
    double vOnOverride = -1.0;
    double vBackupOverride = -1.0;
    /// Stride multiplier applied to the monitor sampling interval while
    /// no attack tone is active (pure speed knob; crossings detect a few
    /// µs late, which the V_backup→V_off energy margin absorbs).
    int quietStride = 64;
    /// Component seed for the monitor's DCO sample jitter, combined with
    /// the global GECKO_SEED (exp::applyGlobalSeed).  The default 0 with
    /// no global seed preserves the historical jitter sequence.
    std::uint64_t monitorSeed = 0;
    /// Quantum-coalescing fast path (DESIGN.md §14): maximum number of
    /// monitor-sample quanta fused into one machine run when the guard
    /// proves the burst indistinguishable from per-quantum stepping.
    /// -1 = resolve from GECKO_COALESCE (default 64); 0 or 1 = off.
    int coalesceQuanta = -1;
    /// Bounded retry on a transiently failing checkpoint save (injected
    /// write fault): how many re-attempts before giving up.
    int jitSaveRetryLimit = 2;
    /// Backoff between checkpoint-save retries, in cycles, multiplied by
    /// the attempt number (linear backoff lets a short disturbance burst
    /// pass).
    int jitRetryBackoffCycles = 256;
    /// Adaptive defense controller (DESIGN.md §11).  Off by default:
    /// the static-paper configurations and their byte-exact outputs are
    /// untouched.  Takes effect only for the guarded GECKO schemes.
    defense::DefenseConfig defense;
};

/** Simulation-level counters. */
struct SimStats {
    double simTimeS = 0.0;
    std::uint64_t reboots = 0;
    std::uint64_t hardDeaths = 0;
    std::uint64_t backupSignals = 0;
    std::uint64_t wakeSignals = 0;
    std::uint64_t ignoredBackups = 0;
    std::uint64_t jitCheckpointAttempts = 0;
    std::uint64_t jitCheckpointsComplete = 0;
    std::uint64_t jitCheckpointsTorn = 0;
    /// Checkpoints vetoed by a (possibly forged) wake signal inside the
    /// abort window — they leave the previous image in place unflagged.
    std::uint64_t jitCheckpointsAborted = 0;
    /// Hard deaths with the JIT protocol armed but no checkpoint taken
    /// in that power cycle (EMI masked the backup window).
    std::uint64_t missedCheckpoints = 0;
    std::uint64_t bootCycles = 0;
    // ------------------------------------------------------------------
    // Pure diagnostics (never archived): quantum-loop telemetry for the
    // bench drivers and the perf regression guard.  Excluded from
    // snapshots on purpose so campaign aggregates stay bit-identical
    // whether or not the coalescing fast path engaged.
    // ------------------------------------------------------------------
    /// Monitor-sample quanta simulated while running (slow + coalesced).
    std::uint64_t quanta = 0;
    /// Quanta absorbed by the coalescing fast path.
    std::uint64_t coalescedQuanta = 0;
    /// Number of coalesced bursts (each fuses ≥ 2 quanta).
    std::uint64_t coalescedBursts = 0;
};

/** Harvester + capacitor + monitor + MCU + (optional) attacker. */
class IntermittentSim
{
  public:
    /**
     * @param compiled  program + region metadata (not owned)
     * @param device    board profile supplying thresholds and monitors
     * @param config    simulation knobs
     * @param harvester energy source (not owned)
     * @param io        peripherals (not owned)
     */
    IntermittentSim(const compiler::CompiledProgram& compiled,
                    const device::DeviceProfile& device,
                    const SimConfig& config, energy::Harvester& harvester,
                    IoHub& io);

    /** Attach the attacker's signal source (nullptr = no attack). */
    void setEmiSource(attack::EmiSource* source) { emi_ = source; }

    // ------------------------------------------------------------------
    // Fault-injection hooks (src/fault campaign; see DESIGN.md).
    // ------------------------------------------------------------------
    /**
     * Monitor fault: maps the voltage the monitor would see (rail + EMI)
     * to the voltage it actually reports, at simulated time `t`.  Models
     * stuck-at and offset faults in the sensing path.  Applied to every
     * observation, including the checkpoint-veto read.
     */
    void setMonitorFault(std::function<double(double v, double t)> f)
    {
        monitorFault_ = std::move(f);
    }

    /**
     * JIT write fault: called once per checkpoint word with its index
     * (0-based across the SRAM-padding and context words); returning
     * true makes that word's write fail transiently, abandoning the
     * attempt.  The simulator retries with backoff up to
     * SimConfig::jitSaveRetryLimit, then reports exhaustion to the
     * runtime.
     */
    void setJitWriteFault(std::function<bool(int word)> f)
    {
        jitWriteFault_ = std::move(f);
    }

    /**
     * Drive the source from a schedule (tone windows over time).  The
     * source must also be set.
     */
    void setAttackSchedule(const attack::AttackSchedule* schedule)
    {
        schedule_ = schedule;
    }

    /** Advance the simulation by `simSeconds` of simulated time. */
    void run(double simSeconds);

    /**
     * Run until the program completed `target` times or `maxSimSeconds`
     * elapsed.
     * @return true if the target was reached.
     */
    bool runUntilCompletions(std::uint64_t target, double maxSimSeconds);

    double now() const { return now_; }
    Machine& machine() { return machine_; }
    const Machine& machine() const { return machine_; }
    runtime::GeckoRuntime& geckoRuntime() { return runtime_; }
    Nvm& nvm() { return nvm_; }
    energy::Capacitor& capacitor() { return cap_; }
    /** Adaptive controller, or null when SimConfig::defense is off. */
    defense::DefenseController* defenseController()
    {
        return defense_.get();
    }

    /** Checkpoint failure rate F = N_fail / N_checkpoints (§IV-B2). */
    double checkpointFailureRate() const;

    /**
     * Serialize/restore the full simulation state: a configuration
     * fingerprint (guard — restoring into a differently configured
     * instance throws campaign::SnapshotError), the simulator's own
     * clock/latches/stats, and every owned component (NVM, machine,
     * runtime, capacitor, monitors, defense controller) plus the
     * attached EMI source.  The caller archives the IoHub separately
     * (the simulator does not own it); the fault hooks and schedule
     * are reconstructed from the job spec, never serialized.  Only
     * call at a `run()` boundary — mid-quantum state lives on the
     * stack.
     */
    void archiveState(campaign::Archive& ar);

    SimStats stats;

  private:
    bool attackActive() const;
    void updateAttack();
    double emiAt(double t);
    analog::MonitorEvent observeMonitor();
    /// Shared driver behind run()/runUntilCompletions(): advance until
    /// `end` or until the program completed `targetCompletions` times
    /// (kNoCompletionTarget = unbounded).  The target is polled on the
    /// historical 0.01 s cadence inside this one loop — no per-slice
    /// run() re-entry — so bounded runs keep their settle tail.
    void runLoop(double end, std::uint64_t targetCompletions);
    void stepRunning(double end, bool allowCoalesce);
    /// Quantum-coalescing fast path (DESIGN.md §14).  Called with the
    /// cheap preconditions already established; proves a burst of up to
    /// coalesceLimit_ quanta inert (steady source, no attack window, no
    /// monitor edge reachable, no brown-out or V_backup approach) and
    /// replays it with per-quantum energy bookkeeping but one fused
    /// machine run.  @return true if it advanced the simulation.
    bool coalescedRun(int stride, double dt, double end);
    void stepSleeping();
    void doJitCheckpoint();
    void hardDeath();
    void boot();
    void enterSleep();
    void feedDefense(double vLo, double vHi,
                     const analog::MonitorEvent& primary);

    enum class State { kRunning, kSleeping };

    const device::DeviceProfile& device_;
    SimConfig config_;
    energy::Harvester& harvester_;
    Nvm nvm_;
    Machine machine_;
    runtime::GeckoRuntime runtime_;
    energy::Capacitor cap_;
    std::unique_ptr<analog::VoltageMonitor> monitor_;
    /// Redundant monitor of the opposite kind, feeding the defense
    /// controller's cross-validation (null when defense is off).
    std::unique_ptr<analog::VoltageMonitor> shadowMonitor_;
    std::unique_ptr<defense::DefenseController> defense_;
    attack::EmiSource* emi_ = nullptr;
    const attack::AttackSchedule* schedule_ = nullptr;
    std::function<double(double v, double t)> monitorFault_;
    std::function<bool(int word)> jitWriteFault_;

    State state_ = State::kSleeping;
    // First-divergence latch so a monitor fault is traced once per case,
    // not once per sample.
    bool monitorFaultTraced_ = false;
    double now_ = 0.0;
    double cycleCarry_ = 0.0;
    /// Cycle ledger: machine cycles executed minus cycles paid for
    /// (discharged).  The capacitor is debited the *planned* clock
    /// budget every quantum — making its trajectory independent of
    /// where instruction boundaries land — while the machine's one-
    /// instruction budget overshoot is carried here and netted off the
    /// next quantum's budget.  Settled (paid down) on brown-out.
    std::int64_t debt_ = 0;
    std::uint64_t cyclesAtBoot_ = 0;
    std::uint32_t sampleSeq_ = 0;
    double vOn_;
    double vBackup_;
    double vOff_;
    double energyAtVoff_;
    double epc_;  // energy per cycle
    double spc_;  // seconds per cycle
    /// Resolved coalescing burst limit (config/GECKO_COALESCE); < 2
    /// disables the fast path.
    int coalesceLimit_ = 0;
};

/**
 * Convenience: execute `compiled` start-to-halt on a fresh machine with
 * no power failures.
 * @return total cycles (the scheme's failure-free execution time).
 */
std::uint64_t runToCompletion(const compiler::CompiledProgram& compiled,
                              Nvm& nvm, IoHub& io);

}  // namespace gecko::sim

#endif  // GECKO_SIM_INTERMITTENT_SIM_HPP_
