#ifndef GECKO_SIM_MACHINE_HPP_
#define GECKO_SIM_MACHINE_HPP_

#include <array>
#include <cstdint>

#include "compiler/pipeline.hpp"
#include "sim/io_devices.hpp"
#include "sim/nvm.hpp"
#include "sim/superblock.hpp"

/**
 * @file
 * The MCU core: a cycle-counting interpreter for the mini-ISA with
 * volatile registers/PC, NVM main memory, and replay-consistent I/O.
 *
 * I/O staging: in rollback schemes the per-port progress counters commit
 * at region boundaries.  kIn reads `inCount + pendingIn` so re-executing
 * a rolled-back region replays identical inputs; kOut writes its sink at
 * `outCount + pendingOut`, making re-executed outputs idempotent keyed
 * overwrites.  The kBoundary commit (a single logical step, standing for
 * a one-word FRAM write) folds the pending counters into NVM.  In
 * roll-forward schemes (NVP) the counters commit immediately and the
 * pending values are part of the JIT checkpoint, mirroring CTPL's
 * peripheral checkpointing.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::sim {

/**
 * Execution tier used by Machine::run.  All three are architecturally
 * bit-identical — machine_test/fuzz_test assert equal ExecStats, NVM
 * images, I/O and trace streams on every workload×scheme — and differ
 * only in throughput.
 */
enum class ExecBackend {
    kStep,   ///< re-reads the encoded program each step (reference tier)
    kFast,   ///< predecoded switch dispatch (PR-1 tier)
    kBlock,  ///< block-compiled superinstructions as threaded code
};

/** Stable lowercase backend name ("step", "fast", "block"). */
const char* execBackendName(ExecBackend backend);

/**
 * Process-wide default tier for newly constructed machines: the
 * GECKO_EXEC environment variable ("step"|"fast"|"block"), read once;
 * kBlock when unset or unrecognized.
 */
ExecBackend defaultExecBackend();

/** Why Machine::run returned. */
enum class RunExit {
    kBudget,   ///< cycle budget exhausted
    kHalted,   ///< program halted (stop-on-halt mode only)
    kFaulted,  ///< machine fault (bad PC/address while fault-tolerant)
};

/** Execution counters. */
struct ExecStats {
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    std::uint64_t ckptStores = 0;
    std::uint64_t boundaryCommits = 0;
    std::uint64_t completions = 0;
    std::uint64_t faults = 0;

    bool operator==(const ExecStats&) const = default;
};

/** The simulated MCU core. */
class Machine
{
  public:
    /**
     * @param prog compiled program to execute (must outlive the machine)
     * @param nvm  persistent memory (not owned)
     * @param io   peripherals (not owned)
     */
    Machine(const compiler::CompiledProgram& prog, Nvm& nvm, IoHub& io);

    /** Enable boundary-committed I/O staging (rollback schemes). */
    void setStagedIo(bool staged)
    {
        // Block micro-ops specialize on the staging mode (see
        // UopKind::kInStaged etc.), so flipping it invalidates them.
        if (staged != stagedIo_)
            invalidateBlockCache();
        stagedIo_ = staged;
    }

    /**
     * Keep running after kHalt by restarting the program (continuous
     * sensing loop).  Completions are counted either way.
     */
    void setContinuous(bool continuous) { continuous_ = continuous; }

    /**
     * Convert bad PCs / out-of-range addresses into a machine fault
     * instead of throwing (used when simulating corrupted NVP restores).
     */
    void setFaultTolerant(bool tolerant) { faultTolerant_ = tolerant; }

    /**
     * Select the execution tier (default: defaultExecBackend(), i.e.
     * GECKO_EXEC or the block compiler).  kFast interprets a predecoded
     * instruction array (resolved branch targets, cycle costs folded
     * with the scheme's pseudo-op surcharges, inlined ALU evaluation);
     * kStep re-reads the encoded program each step; kBlock additionally
     * compiles hot straight-line blocks into threaded superinstructions
     * with precise deoptimization to the fast tier (see exec_block.cpp).
     */
    void setExecBackend(ExecBackend backend) { backend_ = backend; }
    ExecBackend execBackend() const { return backend_; }

    /** Legacy two-tier selector: true → kFast, false → kStep. */
    void setFastDispatch(bool fast)
    {
        backend_ = fast ? ExecBackend::kFast : ExecBackend::kStep;
    }

    /**
     * Drop all compiled superblocks and profile counts.  The program is
     * immutable and a JIT-checkpoint image restore only rewrites *data*
     * state (registers/PC/NVM), so nothing calls this automatically
     * except setStagedIo(), whose mode is baked into the micro-ops.
     * Public for tests and for embedders that reuse a Machine across
     * semantically different configurations.
     */
    void invalidateBlockCache();

    /**
     * Execute until ~`cycleBudget` cycles are consumed (may overshoot by
     * one instruction).  A faulted machine spins, consuming the budget
     * without progress.
     * @param consumed out: cycles actually consumed.
     */
    RunExit run(std::uint64_t cycleBudget, std::uint64_t* consumed);

    /**
     * Serialize/restore the core's volatile data state (registers, PC,
     * staging, halt/fault latches, ExecStats).  Configuration flags and
     * the predecode/block caches are *not* archived: the program is
     * immutable, so restore just invalidates the block cache and lets
     * it re-warm — all tiers are architecturally bit-identical, so a
     * cold cache cannot change observable state.
     */
    void archiveState(campaign::Archive& ar);

    /** Cold boot: zero registers/PC, clear staging, clear fault/halt. */
    void powerCycle();

    /** Restart the program after a completion (PC=0, registers zeroed). */
    void restartProgram();

    bool halted() const { return halted_; }
    bool faulted() const { return faulted_; }

    std::array<std::uint32_t, 16>& regs() { return regs_; }
    const std::array<std::uint32_t, 16>& regs() const { return regs_; }
    std::uint32_t pc() const { return pc_; }
    void setPc(std::uint32_t pc) { pc_ = pc; }
    void clearHalt() { halted_ = false; }
    void clearFault() { faulted_ = false; }

    std::array<std::uint32_t, kIoPorts>& pendingIn() { return pendingIn_; }
    std::array<std::uint32_t, kIoPorts>& pendingOut() { return pendingOut_; }
    const std::array<std::uint32_t, kIoPorts>& pendingIn() const
    {
        return pendingIn_;
    }
    const std::array<std::uint32_t, kIoPorts>& pendingOut() const
    {
        return pendingOut_;
    }

    const compiler::CompiledProgram& program() const { return *prog_; }
    Nvm& nvm() { return *nvm_; }

    /**
     * Execute one recovery-block instruction against an explicit register
     * environment (used by the GECKO runtime; supports the safe subset:
     * ALU, moves, read-only loads).
     */
    static void execRecoveryInstr(const ir::Instr& ins,
                                  std::array<std::uint32_t, 16>& env,
                                  const Nvm& nvm);

    ExecStats stats;

  private:
    /**
     * One predecoded instruction: operand fields widened, the branch
     * target resolved to an instruction index, and the cycle cost
     * (including the scheme-dependent kBoundary/kCkpt surcharges)
     * precomputed, so the dispatch loop never re-derives encoded
     * fields.
     */
    struct Decoded {
        ir::Opcode op = ir::Opcode::kNop;
        ir::Reg rd = 0;
        ir::Reg rs1 = 0;
        ir::Reg rs2 = 0;
        bool useImm = false;
        std::uint16_t cost = 1;
        std::uint32_t imm = 0;
        std::uint32_t target = 0;
    };

    void commitIo();
    bool step(std::uint64_t* cycles);
    RunExit runSlow(std::uint64_t cycleBudget, std::uint64_t* cycles);
    RunExit runFast(std::uint64_t cycleBudget, std::uint64_t* cycles);
    RunExit runBlock(std::uint64_t cycleBudget, std::uint64_t* cycles);
    void ensureBlocks();
    void compileBlock(SuperBlock& block);
    /// How one precisely-stepped instruction left the machine (the
    /// block backend's deopt fallback; see exec_block.cpp).
    enum class StepExit : std::uint8_t { kContinue, kHalted, kFaulted };
    StepExit stepDecoded(std::uint32_t& pc, std::uint64_t& cycles,
                         std::uint64_t& instrs);
    bool fault();

    const compiler::CompiledProgram* prog_;
    Nvm* nvm_;
    IoHub* io_;
    // Branch targets resolved to instruction indices at load time.
    std::vector<std::uint32_t> targets_;
    // Predecoded program for the fast dispatch path.
    std::vector<Decoded> decoded_;
    // Superblock partition for the block backend (built lazily on the
    // first runBlock; blocks compile individually once hot).
    std::vector<SuperBlock> blocks_;
    // Instruction index -> index into blocks_ (valid once built).
    std::vector<std::uint32_t> blockAt_;
    // Flattened micro-op arena: every compiled block's stream lives in
    // this one contiguous pool (SuperBlock::uopStart/uopCount slices).
    // compileBlock stages into the scratch vector — the pool may
    // reallocate on append, so slices are index-based and the executor
    // reloads its base pointer after every compile.
    std::vector<Uop> uopPool_;
    std::vector<Uop> uopScratch_;
    bool blocksBuilt_ = false;

    std::array<std::uint32_t, 16> regs_{};
    std::uint32_t pc_ = 0;
    std::array<std::uint32_t, kIoPorts> pendingIn_{};
    std::array<std::uint32_t, kIoPorts> pendingOut_{};
    bool halted_ = false;
    bool faulted_ = false;
    bool stagedIo_ = false;
    bool continuous_ = false;
    bool faultTolerant_ = false;
    // Opt-in block-backend observability (GECKO_TRACE_BLOCKS=1); off by
    // default so golden traces stay byte-identical across backends.
    bool blockTrace_ = false;
    ExecBackend backend_ = defaultExecBackend();
};

}  // namespace gecko::sim

#endif  // GECKO_SIM_MACHINE_HPP_
