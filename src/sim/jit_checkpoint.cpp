#include "sim/jit_checkpoint.hpp"

#include "trace/trace.hpp"

namespace gecko::sim {

namespace {

/** CRC over the context+epoch words plus the ACK value. */
std::uint32_t
imageCrc(const std::uint32_t* words, std::uint32_t ack)
{
    std::uint32_t crc = crc32Words(words, Nvm::kJitCrcIndex);
    return crc32Words(&ack, 1, crc);
}

}  // namespace

JitResult
JitCheckpoint::checkpoint(const Machine& machine, Nvm& nvm,
                          const std::function<bool(int cycles)>& spendCycles,
                          int ramPaddingWords)
{
    JitResult result;

    // One start per call: the intermittent simulator calls once per
    // retry attempt, so retries show as start/retry pairs in the trace.
    GECKO_TRACE_EVENT(trace::EventKind::kJitSaveStart, 0,
                      nvm.jitEpoch + 1,
                      static_cast<std::uint64_t>(ramPaddingWords));

    // SRAM/peripheral snapshot first (cost only; see header).
    for (int i = 0; i < ramPaddingWords; ++i) {
        if (!spendCycles(kJitStoreCycles))
            return result;
        ++nvm.jitAreaWrites;
        ++result.wordsWritten;
        result.cycles += kJitStoreCycles;
    }

    // Assemble the image in write order: regs, pc, staged-I/O, epoch,
    // CRC, ACK last.
    std::array<std::uint32_t, Nvm::kJitWords> image{};
    std::size_t w = 0;
    for (int r = 0; r < 16; ++r)
        image[w++] = machine.regs()[static_cast<std::size_t>(r)];
    image[w++] = machine.pc();
    for (int p = 0; p < kIoPorts; ++p)
        image[w++] = machine.pendingIn()[static_cast<std::size_t>(p)];
    for (int p = 0; p < kIoPorts; ++p)
        image[w++] = machine.pendingOut()[static_cast<std::size_t>(p)];
    image[Nvm::kJitEpochIndex] = nvm.jitEpoch + 1;
    image[Nvm::kJitAckIndex] = nvm.jit[Nvm::kJitAckIndex] ^ 1u;
    image[Nvm::kJitCrcIndex] =
        imageCrc(image.data(), image[Nvm::kJitAckIndex]);

    for (std::size_t i = 0; i < Nvm::kJitWords; ++i) {
        if (!spendCycles(kJitStoreCycles))
            return result;  // torn: ACK not yet toggled
        nvm.jit[i] = image[i];
        ++nvm.jitAreaWrites;
        ++result.wordsWritten;
        result.cycles += kJitStoreCycles;
    }
    // Advance the consume-once counter to match the committed image.
    // (One more FRAM word write; a tear between the ACK and this write
    // only costs the roll-forward, never consistency.)
    nvm.jitEpoch = image[Nvm::kJitEpochIndex];
    ++nvm.jitAreaWrites;
    result.cycles += kJitStoreCycles;
    result.complete = true;
    GECKO_TRACE_EVENT(trace::EventKind::kJitSaveCommit, 0, nvm.jitEpoch,
                      static_cast<std::uint64_t>(result.wordsWritten));
    return result;
}

std::uint64_t
JitCheckpoint::restore(Machine& machine, const Nvm& nvm,
                       int ramPaddingWords)
{
    std::size_t w = 0;
    for (int r = 0; r < 16; ++r)
        machine.regs()[static_cast<std::size_t>(r)] = nvm.jit[w++];
    machine.setPc(nvm.jit[w++]);
    for (int p = 0; p < kIoPorts; ++p)
        machine.pendingIn()[static_cast<std::size_t>(p)] = nvm.jit[w++];
    for (int p = 0; p < kIoPorts; ++p)
        machine.pendingOut()[static_cast<std::size_t>(p)] = nvm.jit[w++];
    machine.clearHalt();
    machine.clearFault();
    return (static_cast<std::uint64_t>(Nvm::kJitWords) +
            static_cast<std::uint64_t>(ramPaddingWords)) *
               2 +
           kJitRestoreOverheadCycles;
}

bool
JitCheckpoint::imageValid(const Nvm& nvm)
{
    if (nvm.jit[Nvm::kJitEpochIndex] != nvm.jitEpoch)
        return false;
    return imageCrc(nvm.jit.data(), nvm.jit[Nvm::kJitAckIndex]) ==
           nvm.jit[Nvm::kJitCrcIndex];
}

void
JitCheckpoint::consumeImage(Nvm& nvm)
{
    nvm.jitEpoch = nvm.jit[Nvm::kJitEpochIndex] + 1;
    ++nvm.jitAreaWrites;
}

}  // namespace gecko::sim
