#include "sim/jit_checkpoint.hpp"

namespace gecko::sim {

JitResult
JitCheckpoint::checkpoint(const Machine& machine, Nvm& nvm,
                          const std::function<bool(int cycles)>& spendCycles,
                          int ramPaddingWords)
{
    JitResult result;

    // SRAM/peripheral snapshot first (cost only; see header).
    for (int i = 0; i < ramPaddingWords; ++i) {
        if (!spendCycles(kJitStoreCycles))
            return result;
        ++nvm.jitAreaWrites;
        ++result.wordsWritten;
        result.cycles += kJitStoreCycles;
    }

    // Assemble the image in write order: regs, pc, staged-I/O, ACK last.
    std::array<std::uint32_t, Nvm::kJitWords> image{};
    std::size_t w = 0;
    for (int r = 0; r < 16; ++r)
        image[w++] = machine.regs()[static_cast<std::size_t>(r)];
    image[w++] = machine.pc();
    for (int p = 0; p < kIoPorts; ++p)
        image[w++] = machine.pendingIn()[static_cast<std::size_t>(p)];
    for (int p = 0; p < kIoPorts; ++p)
        image[w++] = machine.pendingOut()[static_cast<std::size_t>(p)];
    image[Nvm::kJitAckIndex] = nvm.jit[Nvm::kJitAckIndex] ^ 1u;

    for (std::size_t i = 0; i < Nvm::kJitWords; ++i) {
        if (!spendCycles(kJitStoreCycles))
            return result;  // torn: ACK not yet toggled
        nvm.jit[i] = image[i];
        ++nvm.jitAreaWrites;
        ++result.wordsWritten;
        result.cycles += kJitStoreCycles;
    }
    result.complete = true;
    return result;
}

std::uint64_t
JitCheckpoint::restore(Machine& machine, const Nvm& nvm,
                       int ramPaddingWords)
{
    std::size_t w = 0;
    for (int r = 0; r < 16; ++r)
        machine.regs()[static_cast<std::size_t>(r)] = nvm.jit[w++];
    machine.setPc(nvm.jit[w++]);
    for (int p = 0; p < kIoPorts; ++p)
        machine.pendingIn()[static_cast<std::size_t>(p)] = nvm.jit[w++];
    for (int p = 0; p < kIoPorts; ++p)
        machine.pendingOut()[static_cast<std::size_t>(p)] = nvm.jit[w++];
    machine.clearHalt();
    machine.clearFault();
    return (static_cast<std::uint64_t>(Nvm::kJitWords) +
            static_cast<std::uint64_t>(ramPaddingWords)) *
               2 +
           kJitRestoreOverheadCycles;
}

}  // namespace gecko::sim
