#ifndef GECKO_SIM_SUPERBLOCK_HPP_
#define GECKO_SIM_SUPERBLOCK_HPP_

#include <cstdint>

/**
 * @file
 * Data structures of the block-compiled execution tier.
 *
 * The block backend partitions the predecoded program into straight-line
 * superblocks (leaders supplied by compiler::superblockLeaders, so a
 * block never spans a region commit point), profiles block entries in
 * the dispatch loop, and promotes hot blocks into micro-op (`Uop`)
 * streams executed as threaded code — one indirect jump per micro-op,
 * with cycle/instruction accounting hoisted to block granularity and
 * adjacent instruction pairs fused into superinstructions (loop latches,
 * the masked-window address pattern).  See sim/exec_block.cpp for the
 * executor and DESIGN.md §12 for the equivalence argument.
 */

namespace gecko::sim {

/**
 * Micro-op kinds.  Specialized by operand form (register/immediate) and
 * by I/O staging mode so the executor never re-tests `useImm` or the
 * staging flag per op; the staging specialization is why setStagedIo()
 * invalidates compiled blocks.  Order matters: the RR/RI ALU groups and
 * the branch groups mirror the contiguous ir::Opcode enums, and the
 * executor's handler table is indexed by this enum.
 */
enum class UopKind : std::uint8_t {
    kNop,
    kMovi,
    kMov,
    kNot,
    kNeg,
    // Binary ALU, register form (order = ir::Opcode kAdd..kShr).
    kAddRR,
    kSubRR,
    kMulRR,
    kDivuRR,
    kRemuRR,
    kAndRR,
    kOrRR,
    kXorRR,
    kShlRR,
    kShrRR,
    // Binary ALU, immediate form (shift immediates pre-masked).
    kAddRI,
    kSubRI,
    kMulRI,
    kDivuRI,
    kRemuRI,
    kAndRI,
    kOrRI,
    kXorRI,
    kShlRI,
    kShrRI,
    kLoad,   ///< aux = instr index in block (fault accounting)
    kStore,  ///< aux = instr index in block
    // I/O, specialized on the staging mode active at compile time.
    kInStaged,
    kInDirect,
    kOutStaged,
    kOutDirect,
    kBoundaryStaged,  ///< imm = region id
    kBoundaryPlain,
    kCkpt,   ///< rs1 = register, imm = slot colour
    kBadIo,  ///< statically invalid port: always faults (aux = idx)
    /**
     * Fused window-address pattern `and rT,rS,#m ; add rD,rT,#b`:
     * rs1 = rS, imm = m, rs2 = rT, rd = rD, aux = b.
     */
    kAndiAddi,
    /**
     * Corpus-selected ALU pairs: the second op consumes the first's
     * destination (`op1 rT,rS,x ; op2 rD,rT,y`).  Both destinations are
     * written, so dataflow is exactly the sequential execution's.
     * Fields: rd/rs1/imm = op1; rd2 = op2 dest, rx/imm2 = op2 source.
     * Selected by profiling the benchmark corpus (see DESIGN.md §12);
     * these four cover the hot loop bodies of the workload suite.
     */
    kMulRIAddRI,  ///< mul rT,rS,#a ; add rD,rT,#b
    kShrRIXorRR,  ///< shr rT,rS,#a ; xor rD,rT,rX
    kAndRIShrRI,  ///< and rT,rS,#a ; shr rD,rT,#b (b pre-masked)
    kAndRIAddRR,  ///< and rT,rS,#a ; add rD,rT,rX
    kMulRIAddRR,  ///< mul rT,rS,#a ; add rD,rT,rX
    kAndRIXorRR,  ///< and rT,rS,#a ; xor rD,rT,rX
    kMoviAddRR,   ///< movi rT,#a ; add rD,rT,rX
    /**
     * Fused address-generation load `add rT,rA,rB ; load rD,[rT+#o]`:
     * rd/rs1/rs2 = the add, rd2 = load dest, imm2 = o.  Faultable: aux
     * and costPrefix are the load's, and the add's destination is
     * written before the bounds check, so a fault leaves exactly the
     * per-instruction architectural state.
     */
    kAddRRLoad,
    /**
     * Second-level address-materialization fusions: the kMoviAddRR pair
     * (one register carrying both the movi and the add, the common
     * base-plus-index idiom) feeding an offset-0-style access.  Fields:
     * rd = address register, rx = index source, imm = base, imm2 =
     * access offset; kMoviAddLoad: rd2 = load dest; kMoviAddStore:
     * rs2 = stored register.  Faultable like kAddRRLoad: aux and
     * costPrefix are the access's, and the address register is written
     * before the bounds check.
     */
    kMoviAddLoad,
    kMoviAddStore,
    /**
     * Two adjacent checkpoint slot stores (region entries checkpoint
     * every live register in one run): rs1/imm = first reg/slot,
     * rd2/imm2 = second reg/slot.  Never faults.
     */
    kCkptCkpt,
    // ---- Terminators: always the last uop of a compiled block. ----
    // Conditional branches (order = ir::Opcode kBeq..kBgeu);
    // aux = taken-target pc, fall-through = block start + len.
    kBeq,
    kBne,
    kBlt,
    kBge,
    kBltu,
    kBgeu,
    kJmp,          ///< aux = target pc
    kCall,         ///< aux = target pc, imm = link value (call pc + 1)
    kRet,          ///< aux = instr index in block (fault accounting)
    kHalt,
    kFallThrough,  ///< synthetic: block ends at a leader; aux = next pc
    /**
     * Fused loop latches `add/sub rD,rS,#i ; b<cc> rD,rB,target`:
     * rd = rD, rs1 = rS, imm = i, rs2 = rB, aux = taken-target pc.
     */
    kAddiBeq,
    kAddiBne,
    kAddiBlt,
    kAddiBge,
    kAddiBltu,
    kAddiBgeu,
    kSubiBeq,
    kSubiBne,
    kSubiBlt,
    kSubiBge,
    kSubiBltu,
    kSubiBgeu,
    /**
     * Latch triples: one ALU op feeding a self-updating counted latch
     * (`op rD,...; add rC,rC,#i ; blt rC,rB,target`).  Only formed when
     * the latch increments its own counter (rC = rC + i), which is what
     * the workload builders emit.  Fields: rd/rs1/rs2/imm = leading op;
     * rd2 = rC, imm2 = i, rx = rB, aux = taken-target pc.
     */
    kAddRRAddiBlt,
    kShrRIAddiBlt,
    kMoviFall,   ///< movi rD,#a then fall through (aux = next pc)
    kAddRIJmp,   ///< add rD,rS,#a then jmp (aux = target pc)
    /**
     * Loop superinstructions: a whole hot self-loop collapsed into one
     * micro-op that runs natively for as many iterations as the cycle
     * budget (and the loop's own counted exit) allow.  Only formed for
     * pure-ALU bodies — no loads/stores/IO/trace/fault sites — so a
     * batch of k iterations is observationally identical to k threaded
     * passes; the budget bound keeps quantum stop points exact.
     *
     * kLcgAccLoop: `s = s*K + C ; t = s>>sh ; s ^= t ; acc += s` under
     * an addi/blt counted latch.  Fields: rd = s, rs1 = t, rs2 = acc,
     * rd2 = counter, rx = bound, imm = K, imm2 = C, aux = sh.
     *
     * kCrcBitLoop: the three-block cycle `and rA,rS,#1 ; shr rS,rS,#1 ;
     * beq rA,rZ,+2 ; xor rS,rS,#P ; sub rC,rC,#1 ; bne rC,rZ2,start`
     * (the CRC16/CRC32 bit loop).  Fields: rd = rA, rs1 = rS, rs2 = rC,
     * rd2 = rZ, rx = rZ2, imm = P, imm2/aux = taken/not-taken cycles
     * per iteration.
     */
    kLcgAccLoop,
    kCrcBitLoop,
    /**
     * kFirMacLoop: the FIR multiply-accumulate inner loop
     * `i = (s - t) & m ; x = ring[i] ; y = taps[t] ; acc += x*y` under
     * an addi/blt counted latch — the hot body of the I/O benchmark.
     * Unlike the pure-ALU loop superinstructions it contains two loads,
     * so each iteration bounds-checks both addresses; a failing check
     * commits only the completed iterations and re-runs the faulting
     * one through the per-instruction fallback, which faults at the
     * exact instruction with exact architectural state.  Fields:
     * rd = acc, rs1 = s (read-only sample index), rs2 = i, rd2 = t
     * (loop counter), rx = bound (read-only), imm = ring base,
     * aux = taps base, imm2 = addr-reg | x-reg<<8 | y-reg<<16 |
     * mask<<24 (mask must fit 8 bits).
     */
    kFirMacLoop,
    kNumUopKinds_,
};

inline constexpr int kNumUopKinds = static_cast<int>(UopKind::kNumUopKinds_);

/** One micro-op of a compiled superblock (see UopKind for field use). */
struct Uop {
    /// Threaded-code dispatch target; patched lazily inside the
    /// executor (label addresses are only visible there).
    const void* handler = nullptr;
    std::uint32_t imm = 0;
    std::uint32_t aux = 0;
    /// Block cycles up to and including this micro-op's instruction(s):
    /// exact per-instruction accounting on the fault path without
    /// per-op counter updates on the hot path.
    std::uint32_t costPrefix = 0;
    /// Second immediate of a fused ALU pair / latch triple.
    std::uint32_t imm2 = 0;
    UopKind kind = UopKind::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    /// Fused second-op destination and extra source register.
    std::uint8_t rd2 = 0;
    std::uint8_t rx = 0;
};

/**
 * One straight-line superblock of the predecoded program.  Compiled
 * micro-ops live in the machine's flattened arena (one contiguous pool
 * for every block), addressed by the [uopStart, uopStart + uopCount)
 * slice — block-to-block chaining walks a single allocation instead of
 * hopping between per-block heap vectors.
 */
struct SuperBlock {
    std::uint32_t start = 0;      ///< first instruction index
    std::uint32_t len = 0;        ///< instructions covered (≥ 1)
    std::uint32_t cost = 0;       ///< total architectural cycles
    std::uint32_t execCount = 0;  ///< profile counter (pre-promotion)
    std::uint32_t uopStart = 0;   ///< first micro-op in the arena pool
    std::uint32_t uopCount = 0;   ///< micro-ops in this block's slice
    bool compiled = false;        ///< arena slice valid
    bool threaded = false;        ///< handler pointers patched
};

/** Block entries observed before promotion to compiled micro-ops. */
inline constexpr std::uint32_t kHotThreshold = 4;

}  // namespace gecko::sim

#endif  // GECKO_SIM_SUPERBLOCK_HPP_
