#ifndef GECKO_SIM_IO_DEVICES_HPP_
#define GECKO_SIM_IO_DEVICES_HPP_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/nvm.hpp"

/**
 * @file
 * Peripheral models with replay-consistent semantics.
 *
 * Rollback recovery re-executes code, so peripherals are indexed by a
 * persistent sequence number: the n-th kIn on a port always returns the
 * same value, and the n-th kOut on a port is an idempotent keyed write.
 * Re-execution therefore reproduces inputs exactly and outputs are
 * observed exactly once — while a corrupted roll-forward (NVP under
 * attack) shows up as conflicting writes to the same output index.
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::sim {

/** A deterministic input stream (sensor). */
class InputDevice
{
  public:
    virtual ~InputDevice() = default;

    /** Value of the `index`-th read on this port. */
    virtual std::uint32_t valueAt(std::uint64_t index) = 0;
};

/** Input backed by a repeating sample vector. */
class VectorInput : public InputDevice
{
  public:
    explicit VectorInput(std::vector<std::uint32_t> samples)
        : samples_(std::move(samples))
    {
        if (samples_.empty())
            samples_.push_back(0);
    }

    std::uint32_t valueAt(std::uint64_t index) override
    {
        return samples_[index % samples_.size()];
    }

  private:
    std::vector<std::uint32_t> samples_;
};

/** Input backed by a pure function of the index. */
class FunctionInput : public InputDevice
{
  public:
    explicit FunctionInput(std::function<std::uint32_t(std::uint64_t)> fn)
        : fn_(std::move(fn)) {}

    std::uint32_t valueAt(std::uint64_t index) override
    {
        return fn_(index);
    }

  private:
    std::function<std::uint32_t(std::uint64_t)> fn_;
};

/** Keyed, idempotent output sink. */
class OutputSink
{
  public:
    /** Record the value written at output `index`. */
    void set(std::uint64_t index, std::uint32_t value)
    {
        auto [it, inserted] = values_.emplace(index, value);
        if (!inserted && it->second != value) {
            ++conflicts_;
            it->second = value;
        }
    }

    /** Values in index order. */
    std::vector<std::uint32_t> values() const
    {
        std::vector<std::uint32_t> out;
        out.reserve(values_.size());
        for (const auto& [idx, v] : values_)
            out.push_back(v);
        return out;
    }

    std::size_t count() const { return values_.size(); }

    /**
     * Writes that re-targeted an index with a *different* value — never
     * happens under correct recovery; a nonzero count is evidence of
     * data corruption.
     */
    std::uint64_t conflicts() const { return conflicts_; }

    void clear()
    {
        values_.clear();
        conflicts_ = 0;
    }

    /** Serialize/restore the keyed values and the conflict counter. */
    void archiveState(campaign::Archive& ar);

  private:
    std::map<std::uint64_t, std::uint32_t> values_;
    std::uint64_t conflicts_ = 0;
};

/** The machine's set of peripherals. */
class IoHub
{
  public:
    IoHub();

    /** Install an input device on `port`. */
    void setInput(int port, std::shared_ptr<InputDevice> dev);

    InputDevice& input(int port);
    OutputSink& output(int port)
    {
        return outputs_.at(static_cast<std::size_t>(port));
    }
    const OutputSink& output(int port) const
    {
        return outputs_.at(static_cast<std::size_t>(port));
    }

    /** Clear all output sinks. */
    void clearOutputs();

    /**
     * Serialize/restore every output sink.  Inputs are pure functions
     * of the replay index and are reconstructed by workload setup, not
     * archived.
     */
    void archiveState(campaign::Archive& ar);

  private:
    std::array<std::shared_ptr<InputDevice>, kIoPorts> inputs_;
    std::array<OutputSink, kIoPorts> outputs_;
};

}  // namespace gecko::sim

#endif  // GECKO_SIM_IO_DEVICES_HPP_
