#ifndef GECKO_SIM_JIT_CHECKPOINT_HPP_
#define GECKO_SIM_JIT_CHECKPOINT_HPP_

#include <cstdint>
#include <functional>

#include "sim/machine.hpp"
#include "sim/nvm.hpp"

/**
 * @file
 * The JIT (just-in-time) checkpoint protocol — TI's CTPL in miniature
 * (paper §II-B/C).
 *
 * On a backup signal the protocol saves the volatile state (registers,
 * PC, staged-I/O counters) word by word into the NVM's JIT area, using
 * the energy still buffered in the capacitor, and finally toggles the
 * ACK word.  The word-by-word structure is the attack surface: if the
 * buffer runs dry mid-way the ACK is never toggled and the area holds a
 * torn image.
 *
 * Integrity hardening: the image additionally carries an epoch word
 * (consume-once freshness, see Nvm::jitEpoch) and a CRC word covering
 * the context words, the epoch, and the ACK value.  imageValid() is the
 * guarded-restore predicate GECKO's runtime checks before rolling
 * forward; NVP restores blindly, which is exactly the paper's
 * vulnerability.
 */

namespace gecko::sim {

/** Outcome of one checkpoint attempt. */
struct JitResult {
    /// All words written and the ACK toggled.
    bool complete = false;
    int wordsWritten = 0;
    std::uint64_t cycles = 0;
};

/** Cycles to write one word of the JIT area (FRAM store + bookkeeping). */
inline constexpr int kJitStoreCycles = 4;

/** Fixed cycles of the wake-up/restore path. */
inline constexpr int kJitRestoreOverheadCycles = 60;

/** The roll-forward checkpoint protocol. */
class JitCheckpoint
{
  public:
    /**
     * Checkpoint `machine`'s volatile state into `nvm`.
     *
     * @param spendCycles called once per word with the word's cycle
     *        cost; returns false when the energy buffer died (the
     *        checkpoint is then abandoned, torn).
     * @param ramPaddingWords extra cost-only words modelling CTPL's
     *        SRAM/peripheral snapshot (our machine keeps data in NVM, so
     *        these words carry cost and tear semantics but no content).
     *        They are written *before* the context words so most tears
     *        leave the previous image intact.
     */
    static JitResult checkpoint(
        const Machine& machine, Nvm& nvm,
        const std::function<bool(int cycles)>& spendCycles,
        int ramPaddingWords = 0);

    /**
     * Restore volatile state from the JIT area (used on wake-up
     * regardless of image integrity — exactly what makes a torn image a
     * data-corruption vector for NVP).
     * @return cycles consumed.
     */
    static std::uint64_t restore(Machine& machine, const Nvm& nvm,
                                 int ramPaddingWords = 0);

    /**
     * Guarded-restore predicate: the image's CRC matches its contents
     * (incl. the ACK word, so torn writes and ACK corruption fail) and
     * its epoch equals the NVM's consume-once counter (so stale-image
     * substitution fails).  A virgin all-zero area validates.
     */
    static bool imageValid(const Nvm& nvm);

    /**
     * Mark the current image consumed (call after a successful guarded
     * restore): advances the epoch counter past the image's epoch so the
     * same image cannot be rolled forward into twice.
     */
    static void consumeImage(Nvm& nvm);
};

}  // namespace gecko::sim

#endif  // GECKO_SIM_JIT_CHECKPOINT_HPP_
