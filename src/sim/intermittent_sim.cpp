#include "sim/intermittent_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "campaign/archive.hpp"
#include "exp/rng.hpp"
#include "trace/trace.hpp"

namespace gecko::sim {

using compiler::Scheme;

namespace {

constexpr std::uint64_t kNoCompletionTarget = ~std::uint64_t{0};
/// Cadence at which a bounded run polls its completion target — the
/// stop granularity of the historical sliced driver, kept so bounded
/// runs settle identically.
constexpr double kCompletionPollS = 0.01;

/** Voltage in integer millivolt for trace payloads (clamped at 0). */
[[maybe_unused]] std::uint64_t
traceMv(double v)
{
    return v > 0 ? static_cast<std::uint64_t>(std::llround(v * 1000.0)) : 0;
}

/**
 * Resolve the coalescing burst limit: explicit config wins, then
 * GECKO_COALESCE (0 or 1 = off), default 64 quanta — one coarse
 * quiet-stride burst.
 */
int
resolveCoalesceLimit(int configured)
{
    int limit = configured;
    if (limit < 0) {
        limit = 64;
        if (const char* env = std::getenv("GECKO_COALESCE"))
            limit = std::atoi(env);
    }
    return std::clamp(limit, 0, 1 << 16);
}

}  // namespace

IntermittentSim::IntermittentSim(const compiler::CompiledProgram& compiled,
                                 const device::DeviceProfile& device,
                                 const SimConfig& config,
                                 energy::Harvester& harvester, IoHub& io)
    : device_(device), config_(config), harvester_(harvester),
      nvm_(config.memWords), machine_(compiled, nvm_, io),
      runtime_(compiled, machine_, nvm_), cap_(config.cap)
{
    vOn_ = config.vOnOverride > 0 ? config.vOnOverride : device.vOn;
    vBackup_ =
        config.vBackupOverride > 0 ? config.vBackupOverride : device.vBackup;
    vOff_ = device.vOff;
    energyAtVoff_ = 0.5 * cap_.capacitance() * vOff_ * vOff_;
    epc_ = device.power.energyPerCycleJ;
    spc_ = device.power.secondsPerCycle();

    monitor_ = device.makeMonitor(config.monitorKind);
    // Thresholds may be overridden (capacitor-size sweep); rebuild the
    // monitor if so.
    if (config.vOnOverride > 0 || config.vBackupOverride > 0) {
        if (config.monitorKind == analog::MonitorKind::kAdc) {
            monitor_ = std::make_unique<analog::AdcMonitor>(
                device.adcBits, device.vccNominal, vBackup_, vOn_,
                device.adcSampleHz);
        } else {
            monitor_ = std::make_unique<analog::ComparatorMonitor>(
                vBackup_, vOn_, device.compHysteresisV, device.compCheckHz);
        }
    }
    monitor_->reset(cap_.voltage());

    coalesceLimit_ = resolveCoalesceLimit(config.coalesceQuanta);

    bool staged = compiled.scheme != Scheme::kNvp;
    machine_.setStagedIo(staged);
    machine_.setContinuous(config.continuous);
    machine_.setFaultTolerant(true);
    runtime_.setJitRamWords(config.jitRamWords);

    // DCO sample jitter is centrally seeded: with no GECKO_SEED and the
    // default monitorSeed this stays 0, preserving the historical
    // sample sequence bit-for-bit.
    sampleSeq_ =
        static_cast<std::uint32_t>(exp::applyGlobalSeed(config.monitorSeed));

    // Adaptive defense (DESIGN.md §11): guarded schemes only — NVP and
    // Ratchet stay exactly as the paper evaluates them.
    if (config.defense.enabled &&
        (compiled.scheme == Scheme::kGecko ||
         compiled.scheme == Scheme::kGeckoNoPrune)) {
        if (config.monitorKind == analog::MonitorKind::kAdc) {
            shadowMonitor_ = std::make_unique<analog::ComparatorMonitor>(
                vBackup_, vOn_, device.compHysteresisV, device.compCheckHz);
        } else {
            shadowMonitor_ = std::make_unique<analog::AdcMonitor>(
                device.adcBits, device.vccNominal, vBackup_, vOn_,
                device.adcSampleHz);
        }
        shadowMonitor_->reset(cap_.voltage());

        defense::PlantModel plant;
        plant.clockHz = device.power.clockHz;
        plant.energyPerCycleJ = device.power.energyPerCycleJ;
        plant.sleepPowerW = device.power.sleepPowerW;
        plant.capacitanceF = cap_.capacitance();
        plant.sourceResistance =
            std::max(harvester.seriesResistance(0.0), 1e-3);
        plant.maxV = device.vccNominal;
        plant.vOn = vOn_;
        plant.vOff = vOff_;
        plant.bootEnergyJ =
            static_cast<double>(config.bootOverheadCycles) *
            device.power.energyPerCycleJ;
        defense_ =
            std::make_unique<defense::DefenseController>(config.defense,
                                                         plant);
        runtime_.setDefense(defense_.get());
    }

#if GECKO_TRACE
    // Arm trace emission of threshold crossings and outage edges; inert
    // unless a trace buffer is installed for the running case.
    cap_.watchThresholds(vOff_, vBackup_, vOn_);
#endif
}

bool
IntermittentSim::attackActive() const
{
    return emi_ != nullptr && emi_->enabled() && emi_->amplitude() > 1e-4;
}

void
IntermittentSim::updateAttack()
{
    if (!schedule_ || !emi_)
        return;
    auto window = schedule_->activeAt(now_);
    if (window) {
        if (!emi_->enabled() || emi_->freqHz() != window->freqHz ||
            emi_->powerDbm() != window->powerDbm)
            emi_->setTone(window->freqHz, window->powerDbm);
        emi_->setEnabled(true);
    } else {
        emi_->setEnabled(false);
    }
}

double
IntermittentSim::emiAt(double t)
{
    if (!emi_)
        return 0.0;
    // DCO-clocked sampling: the conversion trigger jitters by tens of
    // nanoseconds, decorrelating the carrier phase between samples.
    // A full avalanche hash keeps successive jitters independent while
    // runs stay reproducible.
    std::uint32_t h = ++sampleSeq_;
    h ^= h >> 16;
    h *= 0x45d9f3bu;
    h ^= h >> 16;
    h *= 0x45d9f3bu;
    h ^= h >> 16;
    double jitter = (h >> 8) * (config_.sampleJitterS / double(1u << 24));
    return emi_->voltageAt(t + jitter);
}

analog::MonitorEvent
IntermittentSim::observeMonitor()
{
    GECKO_TRACE_TIME(now_);
    // maybe_unused: referenced only from trace-macro arguments, which
    // a GECKO_TRACE=0 build compiles away.
    [[maybe_unused]] const auto tripFlags =
        [this](const analog::MonitorEvent& ev) {
        std::uint16_t flags = 0;
        if (ev.backup)
            flags |= trace::kFlagBackup;
        if (ev.wake)
            flags |= trace::kFlagWake;
        if (attackActive())
            flags |= trace::kFlagAttack;
        if (monitorFault_)
            flags |= trace::kFlagMonitorFault;
        return flags;
    };
    double v = cap_.voltage();
    // Continuous (comparator) monitors react to every excursion inside
    // the window: feed them the window's envelope under attack.
    if (monitor_->continuous() && attackActive()) {
        const double wLo = v - emi_->amplitude();
        const double wHi = v + emi_->amplitude();
        double lo = wLo;
        double hi = wHi;
        if (monitorFault_) {
            double flo = monitorFault_(lo, now_);
            double fhi = monitorFault_(hi, now_);
            if (!monitorFaultTraced_ && (flo != lo || fhi != hi)) {
                monitorFaultTraced_ = true;
                GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                                  trace::kSiteMonitorFault, traceMv(fhi));
            }
            lo = flo;
            hi = fhi;
            if (lo > hi)
                std::swap(lo, hi);
        }
        analog::MonitorEvent ev = monitor_->observeEnvelope(lo, hi);
        if (ev.backup || ev.wake)
            GECKO_TRACE_EVENT(trace::EventKind::kMonitorTrip, tripFlags(ev),
                              traceMv(v), traceMv(hi));
        if (defense_)
            feedDefense(wLo, wHi, ev);
        return ev;
    }
    double seen = v + emiAt(now_);
    if (monitorFault_) {
        double faulted = monitorFault_(seen, now_);
        if (!monitorFaultTraced_ && faulted != seen) {
            monitorFaultTraced_ = true;
            GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                              trace::kSiteMonitorFault, traceMv(faulted));
        }
        seen = faulted;
    }
    analog::MonitorEvent ev = monitor_->observe(seen);
    if (ev.backup || ev.wake)
        GECKO_TRACE_EVENT(trace::EventKind::kMonitorTrip, tripFlags(ev),
                          traceMv(v), traceMv(seen));
    if (defense_) {
        // The analog reality the redundant sensing path is exposed to:
        // the full tone envelope under attack, the point reading
        // otherwise.
        if (attackActive())
            feedDefense(v - emi_->amplitude(), v + emi_->amplitude(), ev);
        else
            feedDefense(seen, seen, ev);
    }
    return ev;
}

void
IntermittentSim::feedDefense(double vLo, double vHi,
                             const analog::MonitorEvent& primary)
{
    analog::MonitorEvent shadow;
    if (shadowMonitor_->continuous() && vHi > vLo)
        shadow = shadowMonitor_->observeEnvelope(vLo, vHi);
    else
        shadow = shadowMonitor_->observe(0.5 * (vLo + vHi));
    defense_->observeSample(now_, vLo, vHi, primary, shadow);
}

void
IntermittentSim::doJitCheckpoint()
{
    // One full attempt costs this much energy at most; a retry is only
    // worthwhile while the buffer can still afford a complete image.
    const double attemptEnergy =
        static_cast<double>(config_.jitRamWords + Nvm::kJitWords) *
        kJitStoreCycles * epc_;

    for (int attempt = 0;; ++attempt) {
        ++stats.jitCheckpointAttempts;
        // CTPL re-checks the wake condition during the first part of the
        // powerdown routine; a (possibly forged) wake signal there vetoes
        // the checkpoint and resumes execution — leaving the *previous*
        // image in place with the ACK untouched.
        int words = 0;
        bool aborted = false;
        bool faulted = false;
        bool veto_done = false;
        auto spend = [&](int cycles) {
            if (jitWriteFault_ && jitWriteFault_(words)) {
                // Transient write failure (injected mid-burst
                // disturbance): the routine detects it and bails out so
                // the boot path never trusts the partial image.
                faulted = true;
                GECKO_TRACE_EVENT(trace::EventKind::kFaultInject, 0,
                                  trace::kSiteJitWriteFault,
                                  static_cast<std::uint64_t>(words));
                return false;
            }
            double e = cycles * epc_;
            if (cap_.energy() - e <= energyAtVoff_)
                return false;  // buffer dead: checkpoint torn
            cap_.discharge(e);
            now_ += cycles * spc_;
            GECKO_TRACE_TIME(now_);
            ++words;
            // The harvester keeps feeding the buffer during the routine.
            if ((words & 63) == 0)
                cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                                harvester_.seriesResistance(now_),
                                64 * cycles * spc_);
            if (!veto_done && words >= config_.jitAbortWindowWords) {
                veto_done = true;
                // The veto is one extra monitor read (a single ADC
                // conversion / one comparator-output read) — a point
                // sample of the EMI-distorted rail, never the envelope.
                double seen = cap_.voltage() + emiAt(now_);
                if (monitorFault_)
                    seen = monitorFault_(seen, now_);
                if (monitor_->observe(seen).wake) {
                    aborted = true;
                    return false;
                }
            }
            return true;
        };
        JitResult result = JitCheckpoint::checkpoint(machine_, nvm_, spend,
                                                     config_.jitRamWords);
        if (result.complete) {
            ++stats.jitCheckpointsComplete;
            runtime_.noteJitCheckpointComplete();
            enterSleep();
            GECKO_TRACE_EVENT(trace::EventKind::kSleepEnter,
                              trace::kFlagJitArmed, 0, 0);
            return;
        }
        if (aborted) {
            ++stats.jitCheckpointsAborted;
            GECKO_TRACE_EVENT(trace::EventKind::kJitSaveAbort, 0,
                              static_cast<std::uint64_t>(attempt),
                              static_cast<std::uint64_t>(words));
            // The wake ISR cancels the powerdown: keep running with the
            // volatile state intact.
            state_ = State::kRunning;
            return;
        }
        if (faulted && attempt < config_.jitSaveRetryLimit &&
            cap_.energy() - energyAtVoff_ > attemptEnergy) {
            // Bounded retry with linear backoff: idle a short while so a
            // transient disturbance burst can pass, then try again.
            runtime_.noteCkptSaveRetry();
            GECKO_TRACE_EVENT(trace::EventKind::kJitSaveRetry, 0,
                              static_cast<std::uint64_t>(attempt),
                              static_cast<std::uint64_t>(words));
            // The adaptive controller owns the backoff policy when
            // attached (linear in kNominal, exponential-with-cap once
            // escalated); the static linear schedule otherwise.
            double backoff =
                defense_
                    ? static_cast<double>(defense_->backoffCycles(attempt))
                    : static_cast<double>(config_.jitRetryBackoffCycles) *
                          (attempt + 1);
            cap_.discharge(backoff * epc_);
            cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                            harvester_.seriesResistance(now_),
                            backoff * spc_);
            now_ += backoff * spc_;
            GECKO_TRACE_TIME(now_);
            continue;
        }
        GECKO_TRACE_EVENT(trace::EventKind::kJitSaveTorn, 0,
                          static_cast<std::uint64_t>(attempt),
                          faulted ? 1u : 0u);
        if (faulted) {
            GECKO_TRACE_EVENT(trace::EventKind::kJitRetriesExhausted, 0,
                              static_cast<std::uint64_t>(attempt), 0);
            runtime_.setNow(now_);
            runtime_.noteCkptRetriesExhausted();
        }
        ++stats.jitCheckpointsTorn;
        enterSleep();
        GECKO_TRACE_EVENT(trace::EventKind::kSleepEnter,
                          trace::kFlagJitArmed, 0, 0);
        return;
    }
}

void
IntermittentSim::hardDeath()
{
    ++stats.hardDeaths;
    GECKO_TRACE_TIME(now_);
    GECKO_TRACE_EVENT(trace::EventKind::kPowerLoss,
                      runtime_.jitActive() ? trace::kFlagJitArmed : 0,
                      stats.hardDeaths, 0);
    if (runtime_.jitActive())
        ++stats.missedCheckpoints;
    enterSleep();
}

void
IntermittentSim::enterSleep()
{
    state_ = State::kSleeping;
    if (defense_) {
        // Physics estimate of the full recharge; in kDegraded this arms
        // the dwell that gates forgeable monitor wakes.
        defense_->noteSleepEnter(
            now_, cap_.timeToReach(vOn_,
                                   harvester_.openCircuitVoltage(now_),
                                   harvester_.seriesResistance(now_)));
    }
}

void
IntermittentSim::boot()
{
    ++stats.reboots;
    machine_.powerCycle();
    // Timer evidence for the boot protocol: how long did the previous
    // power-on period actually run?
    std::uint64_t prev_on = machine_.stats.cycles - cyclesAtBoot_;
    GECKO_TRACE_TIME(now_);
    GECKO_TRACE_EVENT(trace::EventKind::kBoot, 0, stats.reboots,
                      stats.reboots == 1 ? 0 : prev_on);
    runtime_.setNow(now_);
    std::uint64_t cycles = config_.bootOverheadCycles +
                           runtime_.onBoot(stats.reboots == 1
                                               ? ~std::uint64_t{0}
                                               : prev_on);
    cyclesAtBoot_ = machine_.stats.cycles;
    cap_.discharge(cycles * epc_);
    cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                    harvester_.seriesResistance(now_),
                    cycles * spc_);
    now_ += cycles * spc_;
    stats.bootCycles += cycles;
    if (defense_)
        defense_->noteEnergyCost(now_, static_cast<double>(cycles) * epc_);
    state_ = State::kRunning;
}

void
IntermittentSim::stepRunning(double end, bool allowCoalesce)
{
    bool attacked = attackActive();
    int stride = attacked ? 1 : config_.quietStride;
    // Near the backup threshold, sample at full rate even when quiet so
    // the crossing is caught with fine granularity.
    if (stride > 1) {
        double e_backup = 0.5 * cap_.capacitance() * vBackup_ * vBackup_;
        double quantum = monitor_->sampleIntervalS() * stride *
                         device_.power.clockHz * epc_;
        if (cap_.nearThresholdE(e_backup, 4.0 * quantum))
            stride = 1;
    }
    double dt = monitor_->sampleIntervalS() * stride;

    // Quantum-coalescing fast path (DESIGN.md §14).  Cheap side
    // conditions here; coalescedRun performs the physics proof.  Every
    // skipped per-quantum hook is provably inert under these guards:
    // updateAttack (source disabled, no window in the horizon),
    // onProgress (no defense, probe disarmed), trace macros (no buffer
    // installed), monitor observation (quietRange latch stability).
    if (allowCoalesce && coalesceLimit_ >= 2 && !attacked &&
        !monitorFault_ && defense_ == nullptr && !runtime_.probeArmed() &&
        (emi_ == nullptr || !emi_->enabled()) &&
        trace::current() == nullptr && coalescedRun(stride, dt, end))
        return;

    ++stats.quanta;

    // Cycles this quantum affords at the clock rate.  The capacitor is
    // debited this *planned* budget (not the machine's consumption) so
    // the energy trajectory is independent of instruction boundaries;
    // the interpreter's one-instruction budget overshoot (an I/O
    // transaction is hundreds of cycles) rides in the debt ledger and
    // is netted off the next quantum's machine budget, so the long-run
    // rate matches the clock exactly.
    cycleCarry_ += dt * device_.power.clockHz;
    std::uint64_t planned =
        cycleCarry_ > 0 ? static_cast<std::uint64_t>(cycleCarry_) : 0;
    cycleCarry_ -= static_cast<double>(planned);

    // Crossing-safe energy bound: a discharge capped here can never
    // cross the V_off floor mid-quantum, which is what lets the
    // machine's block backend execute whole superblocks between
    // discharge batches.
    std::uint64_t can_run = cap_.affordableCycles(epc_, energyAtVoff_);

    if (planned > can_run) {
        // The buffer cannot pay for the whole quantum: V_CC crosses
        // V_off mid-step and the brown-out detector resets the MCU (it
        // cannot throttle through an undervoltage).  Let the core run
        // what the remaining energy covers, settle the cycle ledger,
        // and die.
        std::int64_t b = static_cast<std::int64_t>(can_run) - debt_;
        std::uint64_t consumed = 0;
        if (b > 0) {
            machine_.run(static_cast<std::uint64_t>(b), &consumed);
            if (consumed > 0)
                runtime_.noteExecutionSinceCheckpoint();
            runtime_.onProgress();
        }
        std::int64_t owed = debt_ + static_cast<std::int64_t>(consumed);
        cap_.dischargeCycles(
            owed > 0 ? static_cast<std::uint64_t>(owed) : 0, epc_);
        debt_ = 0;
        cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                        harvester_.seriesResistance(now_), dt);
        now_ += dt;
        hardDeath();
        return;
    }

    std::int64_t b = static_cast<std::int64_t>(planned) - debt_;
    std::uint64_t consumed = 0;
    if (b > 0) {
        machine_.run(static_cast<std::uint64_t>(b), &consumed);
        if (consumed > 0)
            runtime_.noteExecutionSinceCheckpoint();
        runtime_.onProgress();
    }
    debt_ += static_cast<std::int64_t>(consumed) -
             static_cast<std::int64_t>(planned);
    cap_.dischargeCycles(planned, epc_);
    cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                    harvester_.seriesResistance(now_), dt);
    now_ += dt;

    analog::MonitorEvent ev = observeMonitor();
    if (ev.backup) {
        ++stats.backupSignals;
        GECKO_TRACE_EVENT(trace::EventKind::kBackupSignal,
                          runtime_.jitActive() ? 0 : trace::kFlagIgnored,
                          stats.backupSignals, 0);
        runtime_.onBackupSignal();
        if (runtime_.jitActive())
            doJitCheckpoint();
        else
            ++stats.ignoredBackups;
    }
    if (ev.wake) {
        ++stats.wakeSignals;
        GECKO_TRACE_EVENT(trace::EventKind::kWakeSignal, 0,
                          stats.wakeSignals, 0);
    }
}


bool
IntermittentSim::coalescedRun(int stride, double dt, double end)
{
    // ------------------------------------------------------------------
    // Burst-length selection.  Start from the configured limit and
    // halve until the harvester is *provably* constant over the horizon
    // and no attack window can switch the tone on inside it.  The +1
    // quantum of margin keeps the checks conservative against the
    // burst's own floating-point time accumulation.
    // ------------------------------------------------------------------
    const double voc = harvester_.openCircuitVoltage(now_);
    const double rs = harvester_.seriesResistance(now_);
    int m = coalesceLimit_;
    for (; m >= 2; m >>= 1) {
        const double horizon = now_ + dt * static_cast<double>(m + 1);
        if (!harvester_.constantOver(now_, dt * static_cast<double>(m + 1)))
            continue;
        if (schedule_ && emi_ && schedule_->overlapsRange(now_, horizon))
            continue;
        break;
    }
    if (m < 2)
        return false;

    // ------------------------------------------------------------------
    // Trajectory proof.  With the source proven constant, the burst's
    // evolution is fully determined; replay the exact per-quantum
    // arithmetic (cycle carry → planned budget, quietStepEnergy) on
    // local copies and check, quantum by quantum, that the slow path
    // would (a) make the same stride choice — a coarse burst must stay
    // outside the V_backup proximity margin, a fine burst must stay
    // inside it, and (b) afford the whole clock budget — no brown-out.
    // Exactness matters: a pessimistic march that ignores recharge
    // rejects the charge/run duty cycles that dominate the figures.
    // The end-of-quantum voltages feed the monitor proof; when that
    // fails (a declining tail approaching the V_backup crossing), halve
    // the burst — the shorter prefix spans a tighter voltage band.
    // ------------------------------------------------------------------
    const auto plan = cap_.planCharge(voc, rs, dt);
    const double cf = cap_.capacitance();
    const double maxV = cap_.maxVoltage();
    const double eBackup = 0.5 * cf * vBackup_ * vBackup_;
    // The proximity margin of the slow path's stride decision, always
    // in coarse-quantum units (stepRunning's exact expression).
    const double quantumE = monitor_->sampleIntervalS() *
                            config_.quietStride * device_.power.clockHz *
                            epc_;
    const bool fineBurst = stride == 1;
    int k = 0;
    double vLo = 0.0;
    double vHi = 0.0;
    for (int mTry = m;;) {
        k = 0;
        double e = cap_.energy();
        double carry = cycleCarry_;
        while (k < mTry) {
            // Stride re-check at the top of every quantum after the
            // first (stepRunning decided it for the current one).
            if (k > 0 && config_.quietStride > 1 &&
                (e - eBackup < 4.0 * quantumE) != fineBurst)
                break;
            carry += dt * device_.power.clockHz;
            const std::uint64_t planned =
                carry > 0 ? static_cast<std::uint64_t>(carry) : 0;
            carry -= static_cast<double>(planned);
            const double avail = e - energyAtVoff_;
            const std::uint64_t can =
                avail > 0 ? static_cast<std::uint64_t>(avail / epc_) : 0;
            if (planned > can)
                break;  // this quantum browns out: the slow path must die
            e = energy::Capacitor::quietStepEnergy(e, planned, epc_, plan,
                                                   cf, maxV);
            const double v = std::sqrt(2.0 * e / cf);
            vLo = k == 0 ? v : std::min(vLo, v);
            vHi = k == 0 ? v : std::max(vHi, v);
            ++k;
        }
        if (k < 2)
            return false;
        // Monitor proof.  Every skipped observation samples an
        // end-of-quantum voltage, all confined to [vLo, vHi] by the
        // exact march above (EMI contributes exactly 0.0 with the
        // source disabled).  quietRange certifies that no backup/wake
        // edge can fire and no latch can move anywhere in that band —
        // the skipped observations are pure no-ops.
        if (monitor_->quietRange(vLo, vHi))
            break;
        if (mTry == 2)
            return false;
        mTry = std::max(2, k >> 1);
    }
    m = k;

    // ------------------------------------------------------------------
    // Commit: per-quantum energy/clock bookkeeping (bit-identical to
    // the slow path under the proven-constant source), one fused
    // machine run.  noteSource settles the outage latch exactly as the
    // m skipped chargeFrom calls would.
    // ------------------------------------------------------------------
    cap_.noteSource(voc);
    std::uint64_t fusedPlanned = 0;
    int q = 0;
    for (; q < m; ++q) {
        if (q > 0 && now_ >= end)
            break;
        cycleCarry_ += dt * device_.power.clockHz;
        std::uint64_t planned =
            cycleCarry_ > 0 ? static_cast<std::uint64_t>(cycleCarry_) : 0;
        cycleCarry_ -= static_cast<double>(planned);
        fusedPlanned += planned;
        cap_.quietStep(planned, epc_, plan);
        now_ += dt;
    }
    if (emi_) {
        // The skipped point observations would each have drawn one DCO
        // jitter sample; keep the sequence aligned.
        sampleSeq_ += static_cast<std::uint32_t>(q);
    }
    stats.quanta += static_cast<std::uint64_t>(q);
    stats.coalescedQuanta += static_cast<std::uint64_t>(q);
    ++stats.coalescedBursts;

    // One fused run.  Sequential quanta stop the machine at cumulative
    // instruction boundaries ≥ Σplanned − debt₀, which is exactly where
    // a single budget of that size stops it; a halt or latched fault
    // that exits early is topped up with burn-budget runs, as the
    // skipped quanta would have done one by one.
    std::int64_t b = static_cast<std::int64_t>(fusedPlanned) - debt_;
    std::uint64_t consumedTotal = 0;
    if (b > 0) {
        const std::uint64_t target = static_cast<std::uint64_t>(b);
        for (int i = 0; i < 4 && consumedTotal < target; ++i) {
            std::uint64_t c = 0;
            machine_.run(target - consumedTotal, &c);
            consumedTotal += c;
            if (c == 0)
                break;
        }
        if (consumedTotal > 0)
            runtime_.noteExecutionSinceCheckpoint();
        runtime_.onProgress();
    }
    debt_ += static_cast<std::int64_t>(consumedTotal) -
             static_cast<std::int64_t>(fusedPlanned);
    return true;
}

void
IntermittentSim::stepSleeping()
{
    // Fast path: no tone now or during the whole charge, steady source —
    // jump straight to the wake threshold.  A faulted monitor must keep
    // sampling: its (wrong) readings decide the wake, not the rail.
    if (!attackActive() && !monitorFault_) {
        double voc = harvester_.openCircuitVoltage(now_);
        double rs = harvester_.seriesResistance(now_);
        double t_wake = cap_.timeToReach(vOn_, voc, rs);
        bool tone_later = false;
        if (schedule_ && emi_) {
            double horizon = t_wake >= 0 ? now_ + t_wake : now_ + 1.0;
            tone_later = schedule_->overlapsRange(now_, horizon);
        }
        if (!tone_later && t_wake >= 0 &&
            harvester_.steadyOver(now_, t_wake) &&
            (defense_ == nullptr ||
             defense_->wakeAllowed(now_ + t_wake))) {
            cap_.chargeFrom(voc, rs, t_wake);
            now_ += t_wake + monitor_->sampleIntervalS();
            monitor_->reset(cap_.voltage());
            if (shadowMonitor_)
                shadowMonitor_->reset(cap_.voltage());
            ++stats.wakeSignals;
            GECKO_TRACE_TIME(now_);
            GECKO_TRACE_EVENT(trace::EventKind::kWakeSignal, 0,
                              stats.wakeSignals, 0);
            boot();
            return;
        }
    }

    bool attacked = attackActive();
    double dt = monitor_->sampleIntervalS() *
                (attacked ? 1 : config_.quietStride);
    cap_.discharge(device_.power.sleepPowerW * dt);
    cap_.chargeFrom(harvester_.openCircuitVoltage(now_),
                    harvester_.seriesResistance(now_), dt);
    now_ += dt;

    analog::MonitorEvent ev = observeMonitor();
    if (ev.wake) {
        ++stats.wakeSignals;
        // Brown-out lockout: the PMU holds reset until V_CC clears
        // V_off plus hysteresis.  A fake wake can only boot the system
        // inside the paper's malicious window V_off < V_fail < V_backup
        // (or legitimately above).
        const bool clear = cap_.voltage() > vOff_ + config_.bootLockoutV;
        // In kDegraded the controller distrusts the forgeable monitor
        // wake and defers the boot until the physics-timed recharge
        // dwell has elapsed (forward-progress ratchet, DESIGN.md §11).
        const bool allowed =
            defense_ == nullptr || defense_->wakeAllowed(now_);
        GECKO_TRACE_EVENT(trace::EventKind::kWakeSignal,
                          static_cast<std::uint16_t>(
                              (clear ? 0 : trace::kFlagLockout) |
                              (allowed ? 0 : trace::kFlagIgnored)),
                          stats.wakeSignals, 0);
        if (clear && allowed)
            boot();
    }
}

void
IntermittentSim::runLoop(double end, std::uint64_t targetCompletions)
{
    const bool bounded = targetCompletions != kNoCompletionTarget;
    if (bounded && machine_.stats.completions >= targetCompletions)
        return;
    GECKO_TRACE_TIME(now_);
    // Initial power-up.
    if (nvm_.bootCount == 0 && cap_.voltage() >= vOn_ &&
        state_ == State::kSleeping) {
        ++stats.wakeSignals;
        GECKO_TRACE_EVENT(trace::EventKind::kWakeSignal, 0,
                          stats.wakeSignals, 0);
        boot();
    }
    // A finite completion target is polled on the historical 0.01 s
    // cadence — inside this one loop, without the old driver's per-slice
    // run() re-entry — so a bounded run settles up to one poll slice
    // past the landing quantum, exactly as it always has (the fault
    // campaign's post-completion evidence depends on that tail).
    // Coalesced bursts are capped at the poll horizon, so the poll sees
    // every completion a burst could have produced.
    double pollEnd = bounded ? std::min(now_ + kCompletionPollS, end) : end;
    while (now_ < end) {
        if (bounded && now_ >= pollEnd) {
            if (machine_.stats.completions >= targetCompletions)
                break;
            pollEnd = std::min(now_ + kCompletionPollS, end);
        }
        GECKO_TRACE_TIME(now_);
        updateAttack();
        if (state_ == State::kRunning)
            stepRunning(pollEnd, true);
        else
            stepSleeping();
    }
    stats.simTimeS = now_;
}

void
IntermittentSim::run(double simSeconds)
{
    runLoop(now_ + simSeconds, kNoCompletionTarget);
}

bool
IntermittentSim::runUntilCompletions(std::uint64_t target,
                                     double maxSimSeconds)
{
    runLoop(now_ + maxSimSeconds, target);
    return machine_.stats.completions >= target;
}

double
IntermittentSim::checkpointFailureRate() const
{
    std::uint64_t fails = stats.jitCheckpointsTorn +
                          stats.jitCheckpointsAborted +
                          stats.missedCheckpoints;
    std::uint64_t total = stats.jitCheckpointAttempts + stats.missedCheckpoints;
    if (total == 0)
        return 0.0;
    return static_cast<double>(fails) / static_cast<double>(total);
}

std::uint64_t
runToCompletion(const compiler::CompiledProgram& compiled, Nvm& nvm,
                IoHub& io)
{
    Machine machine(compiled, nvm, io);
    machine.setStagedIo(compiled.scheme != Scheme::kNvp);
    machine.setContinuous(false);
    std::uint64_t total = 0;
    while (!machine.halted()) {
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(1u << 20, &consumed);
        total += consumed;
        if (exit == RunExit::kFaulted)
            throw std::runtime_error("program faulted in golden run");
        if (total > (1ull << 36))
            throw std::runtime_error("golden run did not terminate");
    }
    return total;
}

void
IntermittentSim::archiveState(campaign::Archive& ar)
{
    ar.section("intermittent_sim");
    // Configuration fingerprint: the snapshot only makes sense inside
    // an identically reconstructed simulator.  These are guards, not
    // restored values.
    ar.check(config_.memWords, "mem words");
    ar.check(static_cast<std::uint64_t>(
                 machine_.program().scheme),
             "scheme");
    ar.check(static_cast<std::uint64_t>(config_.monitorKind),
             "monitor kind");
    ar.check(config_.continuous ? 1 : 0, "continuous flag");
    ar.check(static_cast<std::uint64_t>(config_.jitRamWords),
             "jit ram words");
    ar.check(config_.defense.enabled ? 1 : 0, "defense enabled");
    ar.check(emi_ != nullptr ? 1 : 0, "emi source attached");
    ar.check(schedule_ != nullptr ? 1 : 0, "attack schedule attached");
    ar.check(shadowMonitor_ != nullptr ? 1 : 0, "shadow monitor");

    std::uint8_t state = static_cast<std::uint8_t>(state_);
    ar.u8(state);
    if (!ar.saving()) {
        if (state > static_cast<std::uint8_t>(State::kSleeping))
            throw campaign::SnapshotError("sim: bad state encoding");
        state_ = static_cast<State>(state);
    }
    ar.boolean(monitorFaultTraced_);
    ar.f64(now_);
    ar.f64(cycleCarry_);
    ar.i64(debt_);
    ar.u64(cyclesAtBoot_);
    ar.u32(sampleSeq_);

    ar.f64(stats.simTimeS);
    ar.u64(stats.reboots);
    ar.u64(stats.hardDeaths);
    ar.u64(stats.backupSignals);
    ar.u64(stats.wakeSignals);
    ar.u64(stats.ignoredBackups);
    ar.u64(stats.jitCheckpointAttempts);
    ar.u64(stats.jitCheckpointsComplete);
    ar.u64(stats.jitCheckpointsTorn);
    ar.u64(stats.jitCheckpointsAborted);
    ar.u64(stats.missedCheckpoints);
    ar.u64(stats.bootCycles);

    nvm_.archiveState(ar);
    machine_.archiveState(ar);
    runtime_.archiveState(ar);
    cap_.archiveState(ar);
    monitor_->archiveState(ar);
    if (shadowMonitor_)
        shadowMonitor_->archiveState(ar);
    if (defense_)
        defense_->archiveState(ar);
    if (emi_)
        emi_->archiveState(ar);
}

}  // namespace gecko::sim
