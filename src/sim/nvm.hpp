#ifndef GECKO_SIM_NVM_HPP_
#define GECKO_SIM_NVM_HPP_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "compiler/slot_coloring.hpp"

/**
 * @file
 * Non-volatile memory of the intermittent system.
 *
 * Intermittent platforms use FRAM as their main memory (paper §II-B), so
 * program data lives here and survives power failures.  Besides the data
 * array the NVM holds the persistent control state of the two recovery
 * protocols:
 *  - the JIT checkpoint area (registers, PC, staged-I/O counters, ACK),
 *  - the compiler checkpoint slots (kMaxSlots double-buffer copies per
 *    register), the committed-region word, and the detection counters
 *    GECKO reads at boot.
 *
 * Word writes are atomic (FRAM semantics); multi-word sequences such as
 * the JIT checkpoint can be interrupted between words.
 *
 * Integrity hardening (fault-campaign defence): the JIT image carries
 * an epoch and a CRC word, and every compiler checkpoint slot is
 * stored as a guarded pair (value + CRC) with a shadow copy, so that
 * single-word NVM corruption — bit flips, torn writes, stale-copy
 * substitution — is detected at restore and repaired or rejected.
 * The threat model is physical disturbance of memory cells; an
 * adversary who can forge CRCs is out of scope (DESIGN.md §fault
 * model).
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::sim {

/** Number of architectural I/O ports. */
inline constexpr int kIoPorts = 4;

namespace detail {

/** Table for the reflected CRC-32 polynomial 0xEDB88320. */
struct Crc32Table {
    std::uint32_t entries[256];

    constexpr Crc32Table() : entries{}
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

inline constexpr Crc32Table kCrcTable;

}  // namespace detail

/**
 * CRC-32 (reflected 0xEDB88320 polynomial) over a span of words, with
 * zero init and no final xor so that all-zero data yields 0 — a virgin
 * (zeroed) NVM image therefore validates against its zeroed CRC word.
 * Inline: every compiler-checkpoint slot store (a hot micro-op in the
 * region-dense workloads) computes a guarded-pair check word.
 */
inline std::uint32_t
crc32Words(const std::uint32_t* words, std::size_t n, std::uint32_t crc = 0)
{
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t w = words[i];
        for (int b = 0; b < 4; ++b) {
            crc = detail::kCrcTable.entries[(crc ^ (w & 0xffu)) & 0xffu] ^
                  (crc >> 8);
            w >>= 8;
        }
    }
    return crc;
}

/** CRC-32 of a single word (guarded-slot check word). */
inline std::uint32_t
crc32Word(std::uint32_t value)
{
    return crc32Words(&value, 1);
}

/** Outcome of a guarded slot read. */
struct SlotRead {
    std::uint32_t value = 0;
    /// Primary copy failed its CRC; the shadow copy supplied the value.
    bool repaired = false;
    /// Both copies failed their CRCs; `value` is the (suspect) primary.
    bool unrecoverable = false;
};

/** Persistent memory and protocol state. */
class Nvm
{
  public:
    /// Words in the JIT checkpoint area, in write order: 16 regs, pc,
    /// in/out staging, epoch, CRC, and the ACK (written last).
    static constexpr std::size_t kJitWords = 16 + 1 + 2 * kIoPorts + 3;
    static constexpr std::size_t kJitAckIndex = kJitWords - 1;
    static constexpr std::size_t kJitCrcIndex = kJitWords - 2;
    static constexpr std::size_t kJitEpochIndex = kJitWords - 3;

    explicit Nvm(std::size_t dataWords) : data_(dataWords, 0) {}

    std::size_t dataWords() const { return data_.size(); }

    /** Load a data word. @throws std::out_of_range on bad addresses. */
    std::uint32_t load(std::uint32_t addr) const
    {
        if (addr >= data_.size())
            throw std::out_of_range("NVM load out of range");
        return data_[addr];
    }

    /** Store a data word. @throws std::out_of_range on bad addresses. */
    void store(std::uint32_t addr, std::uint32_t value)
    {
        if (addr >= data_.size())
            throw std::out_of_range("NVM store out of range");
        data_[addr] = value;
    }

    /** True if `addr` is a valid data address. */
    bool inRange(std::uint32_t addr) const { return addr < data_.size(); }

    /**
     * Serialize/restore the whole persistent image: data words, the JIT
     * area, checkpoint slots (+CRC/shadow copies), protocol counters,
     * and the endurance accounting.  The data size is a configuration
     * guard — a snapshot of a differently-sized NVM is rejected.
     */
    void archiveState(campaign::Archive& ar);

    /** Raw data access for workload setup / golden comparisons. */
    const std::vector<std::uint32_t>& data() const { return data_; }
    std::vector<std::uint32_t>& data() { return data_; }

    // ------------------------------------------------------------------
    // JIT checkpoint area (roll-forward protocol).
    // ------------------------------------------------------------------
    std::array<std::uint32_t, kJitWords> jit{};
    /**
     * Consume-once freshness counter for the JIT image.  A completing
     * checkpoint stamps the image with `jitEpoch + 1` and then advances
     * this counter to match; a guarded restore additionally advances it
     * past the image's epoch, so an image can be rolled forward into at
     * most once.  Stale-image substitution (re-presenting an older,
     * internally consistent image) then fails the epoch comparison.
     */
    std::uint32_t jitEpoch = 0;

    // ------------------------------------------------------------------
    // Endurance accounting (related work [19], Cronin et al.: frequent
    // checkpoints wear out the NV checkpoint storage; a checkpoint-churn
    // EMI attack is also a wear-out attack).  Writers bump these.
    // ------------------------------------------------------------------
    /// Word-writes into the JIT checkpoint area (incl. SRAM-snapshot
    /// padding words).
    std::uint64_t jitAreaWrites = 0;
    /// Word-writes into the compiler checkpoint slots.
    std::uint64_t slotWrites = 0;

    // ------------------------------------------------------------------
    // Compiler checkpoint storage (rollback protocol).
    // ------------------------------------------------------------------
    /// Double-buffered register slots: slots[reg][colour].
    std::array<std::array<std::uint32_t, compiler::kMaxSlots>, 16> slots{};
    /// CRC-32 check word of each primary slot value.
    std::array<std::array<std::uint32_t, compiler::kMaxSlots>, 16> slotCrc{};
    /// Shadow copy of each slot value (guarded-slot redundancy).
    std::array<std::array<std::uint32_t, compiler::kMaxSlots>, 16>
        slotShadow{};
    /// CRC-32 check word of each shadow slot value.
    std::array<std::array<std::uint32_t, compiler::kMaxSlots>, 16>
        slotShadowCrc{};

    /**
     * Guarded slot store: writes the value with its CRC check word plus
     * a shadow pair.  Modelled as two wide FRAM line writes (the cycle
     * cost of kCkpt is unchanged; the endurance counter records both
     * lines).
     */
    void writeSlot(int reg, int slot, std::uint32_t value)
    {
        auto r = static_cast<std::size_t>(reg);
        auto s = static_cast<std::size_t>(slot);
        std::uint32_t crc = crc32Word(value);
        slots[r][s] = value;
        slotCrc[r][s] = crc;
        slotShadow[r][s] = value;
        slotShadowCrc[r][s] = crc;
        slotWrites += 2;
    }

    /**
     * Guarded slot load: validates the primary (value, CRC) pair and
     * falls back to the shadow pair when the primary is corrupt.  A
     * virgin (all-zero) slot validates, since crc32Word(0) == 0.
     *
     * Multi-word hits on the same slot pair recover through the cross
     * checks: the four stored words (two values, two check words) carry
     * enough redundancy that any intact value word still validates
     * against either intact check word, and when both check words are
     * hit the two independently stored value words vouch for each other
     * by agreement.  Only disturbances that corrupt a value word *and*
     * every witness for it remain unrecoverable — and are reported as
     * such rather than silently consumed.
     */
    SlotRead readSlotGuarded(int reg, int slot) const
    {
        auto r = static_cast<std::size_t>(reg);
        auto s = static_cast<std::size_t>(slot);
        SlotRead out;
        out.value = slots[r][s];
        if (crc32Word(slots[r][s]) == slotCrc[r][s])
            return out;
        if (crc32Word(slotShadow[r][s]) == slotShadowCrc[r][s]) {
            out.value = slotShadow[r][s];
            out.repaired = true;
            return out;
        }
        // Cross-pair recovery: a value word whose own check word was
        // hit can still be vouched for by the sibling pair's check word.
        if (crc32Word(slots[r][s]) == slotShadowCrc[r][s]) {
            out.repaired = true;
            return out;
        }
        if (crc32Word(slotShadow[r][s]) == slotCrc[r][s]) {
            out.value = slotShadow[r][s];
            out.repaired = true;
            return out;
        }
        // Both check words corrupt but the two value words — written to
        // distinct FRAM lines — agree: accept the agreed value.
        if (slots[r][s] == slotShadow[r][s]) {
            out.repaired = true;
            return out;
        }
        out.unrecoverable = true;
        return out;
    }

    /**
     * Scrub a repaired slot: rewrite all four words of the pair
     * coherently so a surviving latent corruption cannot combine with a
     * later disturbance of the other copy.  Same cost model as
     * writeSlot (two wide FRAM line writes).
     */
    void scrubSlot(int reg, int slot, std::uint32_t value)
    {
        writeSlot(reg, slot, value);
    }
    /// Id of the last committed region (written atomically by kBoundary).
    std::uint32_t committedRegion = 0;
    /// Total boundary commits (region-completion detector input).
    std::uint32_t commitCount = 0;

    // ------------------------------------------------------------------
    // Boot-protocol state (GECKO detection, §VI-A).
    // ------------------------------------------------------------------
    std::uint32_t bootCount = 0;
    std::uint32_t lastBootAck = 0;
    std::uint32_t commitsAtLastBoot = 0;
    /// GECKO runtime: 1 while the JIT protocol is disabled.
    std::uint32_t jitDisabledFlag = 0;

    // ------------------------------------------------------------------
    // Committed I/O progress counters (exactly-once I/O, see Machine).
    // ------------------------------------------------------------------
    std::array<std::uint32_t, kIoPorts> inCount{};
    std::array<std::uint32_t, kIoPorts> outCount{};

  private:
    std::vector<std::uint32_t> data_;
};

}  // namespace gecko::sim

#endif  // GECKO_SIM_NVM_HPP_
