#ifndef GECKO_SIM_NVM_HPP_
#define GECKO_SIM_NVM_HPP_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "compiler/slot_coloring.hpp"

/**
 * @file
 * Non-volatile memory of the intermittent system.
 *
 * Intermittent platforms use FRAM as their main memory (paper §II-B), so
 * program data lives here and survives power failures.  Besides the data
 * array the NVM holds the persistent control state of the two recovery
 * protocols:
 *  - the JIT checkpoint area (registers, PC, staged-I/O counters, ACK),
 *  - the compiler checkpoint slots (kMaxSlots double-buffer copies per
 *    register), the committed-region word, and the detection counters
 *    GECKO reads at boot.
 *
 * Word writes are atomic (FRAM semantics); multi-word sequences such as
 * the JIT checkpoint can be interrupted between words.
 */

namespace gecko::sim {

/** Number of architectural I/O ports. */
inline constexpr int kIoPorts = 4;

/** Persistent memory and protocol state. */
class Nvm
{
  public:
    /// Words in the JIT checkpoint area: 16 regs + pc + in/out staging +
    /// ACK (written last).
    static constexpr std::size_t kJitWords = 16 + 1 + 2 * kIoPorts + 1;
    static constexpr std::size_t kJitAckIndex = kJitWords - 1;

    explicit Nvm(std::size_t dataWords) : data_(dataWords, 0) {}

    std::size_t dataWords() const { return data_.size(); }

    /** Load a data word. @throws std::out_of_range on bad addresses. */
    std::uint32_t load(std::uint32_t addr) const
    {
        if (addr >= data_.size())
            throw std::out_of_range("NVM load out of range");
        return data_[addr];
    }

    /** Store a data word. @throws std::out_of_range on bad addresses. */
    void store(std::uint32_t addr, std::uint32_t value)
    {
        if (addr >= data_.size())
            throw std::out_of_range("NVM store out of range");
        data_[addr] = value;
    }

    /** True if `addr` is a valid data address. */
    bool inRange(std::uint32_t addr) const { return addr < data_.size(); }

    /** Raw data access for workload setup / golden comparisons. */
    const std::vector<std::uint32_t>& data() const { return data_; }
    std::vector<std::uint32_t>& data() { return data_; }

    // ------------------------------------------------------------------
    // JIT checkpoint area (roll-forward protocol).
    // ------------------------------------------------------------------
    std::array<std::uint32_t, kJitWords> jit{};

    // ------------------------------------------------------------------
    // Endurance accounting (related work [19], Cronin et al.: frequent
    // checkpoints wear out the NV checkpoint storage; a checkpoint-churn
    // EMI attack is also a wear-out attack).  Writers bump these.
    // ------------------------------------------------------------------
    /// Word-writes into the JIT checkpoint area (incl. SRAM-snapshot
    /// padding words).
    std::uint64_t jitAreaWrites = 0;
    /// Word-writes into the compiler checkpoint slots.
    std::uint64_t slotWrites = 0;

    // ------------------------------------------------------------------
    // Compiler checkpoint storage (rollback protocol).
    // ------------------------------------------------------------------
    /// Double-buffered register slots: slots[reg][colour].
    std::array<std::array<std::uint32_t, compiler::kMaxSlots>, 16> slots{};
    /// Id of the last committed region (written atomically by kBoundary).
    std::uint32_t committedRegion = 0;
    /// Total boundary commits (region-completion detector input).
    std::uint32_t commitCount = 0;

    // ------------------------------------------------------------------
    // Boot-protocol state (GECKO detection, §VI-A).
    // ------------------------------------------------------------------
    std::uint32_t bootCount = 0;
    std::uint32_t lastBootAck = 0;
    std::uint32_t commitsAtLastBoot = 0;
    /// GECKO runtime: 1 while the JIT protocol is disabled.
    std::uint32_t jitDisabledFlag = 0;

    // ------------------------------------------------------------------
    // Committed I/O progress counters (exactly-once I/O, see Machine).
    // ------------------------------------------------------------------
    std::array<std::uint32_t, kIoPorts> inCount{};
    std::array<std::uint32_t, kIoPorts> outCount{};

  private:
    std::vector<std::uint32_t> data_;
};

}  // namespace gecko::sim

#endif  // GECKO_SIM_NVM_HPP_
