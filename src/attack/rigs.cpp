#include "attack/rigs.hpp"

#include "analog/emi_coupling.hpp"

namespace gecko::attack {

DpiRig::DpiRig(const device::DeviceProfile& dev, DpiPoint point)
    : dev_(dev), point_(point)
{
}

double
DpiRig::amplitude(double freqHz, double powerDbm) const
{
    const analog::ResonanceCurve& curve =
        (point_ == DpiPoint::kP1) ? dev_.dpiP1 : dev_.dpiP2;
    double coupling = (point_ == DpiPoint::kP1) ? dev_.dpiCouplingP1
                                                : dev_.dpiCouplingP2;
    return analog::inducedAmplitudeDpi(powerDbm, freqHz, curve, coupling);
}

RemoteRig::RemoteRig(const device::DeviceProfile& dev,
                     analog::MonitorKind path, double distanceM,
                     double wallAttenuationDb)
    : dev_(dev), path_(path), distanceM_(distanceM),
      wallDb_(wallAttenuationDb)
{
}

double
RemoteRig::amplitude(double freqHz, double powerDbm) const
{
    return analog::inducedAmplitudeRemote(powerDbm, freqHz,
                                          dev_.remoteCurve(path_),
                                          distanceM_, wallDb_);
}

}  // namespace gecko::attack
