#ifndef GECKO_ATTACK_SPATIAL_HPP_
#define GECKO_ATTACK_SPATIAL_HPP_

#include <cstdint>
#include <vector>

#include "attack/rigs.hpp"

/**
 * @file
 * Spatial EMFI coupling: a 2D grid of injection positions over the
 * victim board (EMMap-style near-field scan).
 *
 * The rig models (DPI points, remote antenna) treat the injection
 * position as fixed; real EMFI probes couple very differently depending
 * on where they sit over the die/board.  SpatialGrid models that as a
 * per-cell amplitude factor composed of
 *
 *  - distance falloff from the board's coupling hotspot (the monitor
 *    front end's trace area), and
 *  - a per-cell local trace resonance (centre frequency + Q drawn
 *    deterministically from the grid seed), so the susceptibility map
 *    is frequency-dependent the way near-field scans are.
 *
 * Everything is a pure function of (rows, cols, seed, cell, freq):
 * the same grid replays bit-identically in benches, campaign jobs and
 * golden traces.
 */

namespace gecko::attack {

/** Deterministic per-cell coupling map over the victim board. */
class SpatialGrid
{
  public:
    SpatialGrid(int rows, int cols, std::uint64_t seed = kDefaultSeed);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int cells() const { return rows_ * cols_; }
    std::uint64_t seed() const { return seed_; }

    /** Flat cell index used as the trace payload (row-major). */
    int cellIndex(int row, int col) const { return row * cols_ + col; }

    /** Positional coupling gain in dB (≤ 0; falloff from the hotspot
     *  plus per-cell routing jitter), frequency-independent part. */
    double couplingDb(int row, int col) const;

    /** Centre frequency (Hz) of the cell's local trace resonance. */
    double resonanceHz(int row, int col) const;

    /** Quality factor of the cell's local resonance. */
    double resonanceQ(int row, int col) const;

    /**
     * Full amplitude factor of injecting a tone at `freqHz` from cell
     * (row, col): positional attenuation times the local Lorentzian
     * resonance response (floor + peak).
     */
    double couplingScale(int row, int col, double freqHz) const;

    static constexpr std::uint64_t kDefaultSeed = 0x5ca77e12ull;

  private:
    int rows_;
    int cols_;
    std::uint64_t seed_;
    /// Hotspot position in normalized board coordinates [0, 1]^2.
    double hotRow_;
    double hotCol_;
};

/**
 * Injection rig decorator: the base rig's induced amplitude scaled by
 * one grid cell's coupling factor.  Composes over DpiRig/RemoteRig so
 * the existing propagation physics is reused unchanged.
 */
class GridRig : public InjectionRig
{
  public:
    GridRig(const InjectionRig& base, const SpatialGrid& grid, int row,
            int col);

    double amplitude(double freqHz, double powerDbm) const override;

    /** Flat cell index (the kSpatialHit trace payload `a`). */
    std::uint64_t cell() const;

    /** Coupling scale at `freqHz` in milli-units (trace payload `b`). */
    std::uint64_t couplingMilli(double freqHz) const;

  private:
    const InjectionRig& base_;
    const SpatialGrid& grid_;
    int row_;
    int col_;
};

}  // namespace gecko::attack

#endif  // GECKO_ATTACK_SPATIAL_HPP_
