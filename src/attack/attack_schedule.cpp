#include "attack/attack_schedule.hpp"

#include <stdexcept>

namespace gecko::attack {

std::optional<AttackWindow>
AttackSchedule::activeAt(double t) const
{
    for (const AttackWindow& w : windows_)
        if (t >= w.startS && t < w.endS)
            return w;
    return std::nullopt;
}

namespace {

const std::vector<double>&
scenarioMinutes(char scenario)
{
    static const std::vector<double> a{};
    static const std::vector<double> b{40};
    static const std::vector<double> c{30};
    static const std::vector<double> d{20, 40};
    static const std::vector<double> e{15, 30, 35};
    static const std::vector<double> f{10, 25, 40};
    switch (scenario) {
      case 'a': return a;
      case 'b': return b;
      case 'c': return c;
      case 'd': return d;
      case 'e': return e;
      case 'f': return f;
      default:
        throw std::invalid_argument("unknown attack scenario");
    }
}

}  // namespace

AttackSchedule
AttackSchedule::scenario(char scenario, double minuteS,
                         double attackMinutes, double freqHz,
                         double powerDbm)
{
    AttackSchedule sched;
    for (double m : scenarioMinutes(scenario)) {
        AttackWindow w;
        w.startS = m * minuteS;
        w.endS = (m + attackMinutes) * minuteS;
        w.freqHz = freqHz;
        w.powerDbm = powerDbm;
        sched.add(w);
    }
    return sched;
}

std::string
AttackSchedule::scenarioDescription(char scenario)
{
    const auto& minutes = scenarioMinutes(scenario);
    if (minutes.empty())
        return "no attack";
    std::string out = "attacks at ";
    for (std::size_t i = 0; i < minutes.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(static_cast<int>(minutes[i]));
    }
    out += " min";
    return out;
}

}  // namespace gecko::attack
