#include "attack/attack_schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace gecko::attack {

std::optional<AttackWindow>
AttackSchedule::activeAt(double t) const
{
    // Insertion-order scan on purpose: with overlapping windows the
    // first-added one wins, and callers (updateAttack) depend on that
    // tie-break.  The list is a handful of entries; the per-quantum
    // cost lives in overlapsRange, not here.
    for (const AttackWindow& w : windows_)
        if (t >= w.startS && t < w.endS)
            return w;
    return std::nullopt;
}

void
AttackSchedule::rebuildIndex()
{
    byStart_.resize(windows_.size());
    for (std::uint32_t i = 0; i < windows_.size(); ++i)
        byStart_[i] = i;
    std::stable_sort(byStart_.begin(), byStart_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return windows_[a].startS < windows_[b].startS;
                     });
    prefixMaxEndS_.resize(windows_.size());
    double maxEnd = -1e300;
    for (std::size_t i = 0; i < byStart_.size(); ++i) {
        maxEnd = std::max(maxEnd, windows_[byStart_[i]].endS);
        prefixMaxEndS_[i] = maxEnd;
    }
}

bool
AttackSchedule::overlapsRange(double t0, double t1) const
{
    // A window w overlaps [t0, t1) iff w.startS < t1 && w.endS > t0.
    // Candidates are exactly the sorted prefix with startS < t1; the
    // running max-end decides whether any of them reaches past t0.
    auto it = std::lower_bound(byStart_.begin(), byStart_.end(), t1,
                               [this](std::uint32_t idx, double t) {
                                   return windows_[idx].startS < t;
                               });
    const std::size_t k =
        static_cast<std::size_t>(it - byStart_.begin());
    return k > 0 && prefixMaxEndS_[k - 1] > t0;
}

namespace {

const std::vector<double>&
scenarioMinutes(char scenario)
{
    static const std::vector<double> a{};
    static const std::vector<double> b{40};
    static const std::vector<double> c{30};
    static const std::vector<double> d{20, 40};
    static const std::vector<double> e{15, 30, 35};
    static const std::vector<double> f{10, 25, 40};
    switch (scenario) {
      case 'a': return a;
      case 'b': return b;
      case 'c': return c;
      case 'd': return d;
      case 'e': return e;
      case 'f': return f;
      default:
        throw std::invalid_argument("unknown attack scenario");
    }
}

}  // namespace

AttackSchedule
AttackSchedule::scenario(char scenario, double minuteS,
                         double attackMinutes, double freqHz,
                         double powerDbm)
{
    AttackSchedule sched;
    for (double m : scenarioMinutes(scenario)) {
        AttackWindow w;
        w.startS = m * minuteS;
        w.endS = (m + attackMinutes) * minuteS;
        w.freqHz = freqHz;
        w.powerDbm = powerDbm;
        sched.add(w);
    }
    return sched;
}

std::string
AttackSchedule::scenarioDescription(char scenario)
{
    const auto& minutes = scenarioMinutes(scenario);
    if (minutes.empty())
        return "no attack";
    std::string out = "attacks at ";
    for (std::size_t i = 0; i < minutes.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(static_cast<int>(minutes[i]));
    }
    out += " min";
    return out;
}

}  // namespace gecko::attack
