#include "attack/emi_source.hpp"

#include <cmath>

#include "campaign/archive.hpp"
#include "trace/trace.hpp"

namespace gecko::attack {

namespace {

/** Offset-encoded milli-dBm (+200 dBm bias keeps the payload unsigned). */
[[maybe_unused]] std::uint64_t
traceMilliDbm(double powerDbm)
{
    const double biased = (powerDbm + 200.0) * 1000.0;
    return biased > 0 ? static_cast<std::uint64_t>(std::llround(biased)) : 0;
}

}  // namespace

EmiSource::EmiSource(const InjectionRig& rig, double freqHz,
                     double powerDbm, double clockSkewPpm)
    : rig_(rig), freqHz_(freqHz), powerDbm_(powerDbm),
      amplitude_(rig.amplitude(freqHz, powerDbm)), skewPpm_(clockSkewPpm)
{
}

void
EmiSource::setEnabled(bool enabled)
{
    if (enabled == enabled_)
        return;
    enabled_ = enabled;
    if (enabled) {
        GECKO_TRACE_EVENT(trace::EventKind::kEmiOn, 0,
                          static_cast<std::uint64_t>(freqHz_),
                          traceMilliDbm(powerDbm_));
        if (hasGridTag_) {
            GECKO_TRACE_EVENT(trace::EventKind::kSpatialHit, 0, gridCell_,
                              gridCouplingMilli_);
        }
    } else {
        GECKO_TRACE_EVENT(trace::EventKind::kEmiOff, 0,
                          static_cast<std::uint64_t>(freqHz_),
                          traceMilliDbm(powerDbm_));
    }
}

void
EmiSource::setGridTag(std::uint64_t cell, std::uint64_t couplingMilli)
{
    hasGridTag_ = true;
    gridCell_ = cell;
    gridCouplingMilli_ = couplingMilli;
}

void
EmiSource::setTone(double freqHz, double powerDbm)
{
    freqHz_ = freqHz;
    powerDbm_ = powerDbm;
    amplitude_ = rig_.amplitude(freqHz, powerDbm);
}

double
EmiSource::voltageAt(double t) const
{
    if (!enabled_)
        return 0.0;
    double f = freqHz_ * (1.0 + skewPpm_ * 1e-6);
    return amplitude_ * std::sin(2.0 * M_PI * f * t);
}

void
EmiSource::archiveState(campaign::Archive& ar)
{
    ar.section("emi_source");
    // Fields restored directly: setEnabled/setTone trace edges, and a
    // restore is not an edge.
    ar.f64(freqHz_);
    ar.f64(powerDbm_);
    ar.f64(amplitude_);
    ar.boolean(enabled_);
    ar.boolean(hasGridTag_);
    ar.u64(gridCell_);
    ar.u64(gridCouplingMilli_);
}

}  // namespace gecko::attack
