#include "attack/emi_source.hpp"

#include <cmath>

namespace gecko::attack {

EmiSource::EmiSource(const InjectionRig& rig, double freqHz,
                     double powerDbm, double clockSkewPpm)
    : rig_(rig), freqHz_(freqHz), powerDbm_(powerDbm),
      amplitude_(rig.amplitude(freqHz, powerDbm)), skewPpm_(clockSkewPpm)
{
}

void
EmiSource::setTone(double freqHz, double powerDbm)
{
    freqHz_ = freqHz;
    powerDbm_ = powerDbm;
    amplitude_ = rig_.amplitude(freqHz, powerDbm);
}

double
EmiSource::voltageAt(double t) const
{
    if (!enabled_)
        return 0.0;
    double f = freqHz_ * (1.0 + skewPpm_ * 1e-6);
    return amplitude_ * std::sin(2.0 * M_PI * f * t);
}

}  // namespace gecko::attack
