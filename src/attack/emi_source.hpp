#ifndef GECKO_ATTACK_EMI_SOURCE_HPP_
#define GECKO_ATTACK_EMI_SOURCE_HPP_

#include <cstdint>

#include "attack/rigs.hpp"

/**
 * @file
 * The attacker's signal generator (paper §III: an RF generator with an
 * antenna, ≤ 35 dBm, single-tone sine).
 */

namespace gecko::campaign {
class Archive;
}

namespace gecko::attack {

/**
 * Single-tone EMI source bound to an injection rig.
 *
 * Produces the induced voltage seen at the victim monitor's input at any
 * simulation time.  The amplitude is cached and refreshed whenever the
 * tone changes.
 */
class EmiSource
{
  public:
    /**
     * @param rig how the signal reaches the victim (not owned; must
     *        outlive the source)
     * @param clockSkewPpm frequency offset between the attacker's
     *        generator and the victim's sampling clock.  Independent
     *        oscillators are never phase-locked; without this the
     *        simulated carrier can alias onto a constant phase of the
     *        monitor's sample grid, which no physical setup exhibits.
     */
    EmiSource(const InjectionRig& rig, double freqHz, double powerDbm,
              double clockSkewPpm = 30.0);

    /** Retune the generator. */
    void setTone(double freqHz, double powerDbm);

    /** Key the carrier on or off (traced as injection on/off edges). */
    void setEnabled(bool enabled);
    bool enabled() const { return enabled_; }

    /**
     * Tag the source with a spatial-grid position: every carrier-on
     * edge then also emits a kSpatialHit event (a=cell, b=coupling in
     * milli-units), so traces record *where* the injection coupled.
     */
    void setGridTag(std::uint64_t cell, std::uint64_t couplingMilli);
    bool hasGridTag() const { return hasGridTag_; }

    double freqHz() const { return freqHz_; }
    double powerDbm() const { return powerDbm_; }

    /** Peak induced amplitude at the victim (V). */
    double amplitude() const { return enabled_ ? amplitude_ : 0.0; }

    /** Induced voltage at simulation time `t` (s). */
    double voltageAt(double t) const;

    /**
     * Serialize/restore the tone state *directly* — setEnabled/setTone
     * emit kEmiOn/kEmiOff edge events, and a restore must not (a
     * resumed run would otherwise diverge from the uninterrupted
     * trace).
     */
    void archiveState(campaign::Archive& ar);

  private:
    const InjectionRig& rig_;
    double freqHz_;
    double powerDbm_;
    double amplitude_;
    double skewPpm_;
    bool enabled_ = true;
    bool hasGridTag_ = false;
    std::uint64_t gridCell_ = 0;
    std::uint64_t gridCouplingMilli_ = 0;
};

}  // namespace gecko::attack

#endif  // GECKO_ATTACK_EMI_SOURCE_HPP_
