#include "attack/spatial.hpp"

#include <cmath>

#include "analog/emi_coupling.hpp"
#include "exp/rng.hpp"

namespace gecko::attack {

namespace {

/** Worst-case positional falloff across the board diagonal (dB). */
constexpr double kFalloffDb = 26.0;

/** Per-cell routing jitter on top of the falloff (± dB). */
constexpr double kJitterDb = 2.0;

/** Broadband floor of the local resonance response. */
constexpr double kResonanceFloor = 0.25;

exp::Rng
cellRng(std::uint64_t seed, int cell)
{
    return exp::Rng(
        exp::mixSeed(seed, static_cast<std::uint64_t>(cell) + 1));
}

}  // namespace

SpatialGrid::SpatialGrid(int rows, int cols, std::uint64_t seed)
    : rows_(rows), cols_(cols), seed_(seed)
{
    // The hotspot (monitor front-end trace area) sits somewhere in the
    // middle half of the board, picked once per grid seed.
    exp::Rng rng(exp::mixSeed(seed, 0x407ull));
    hotRow_ = 0.25 + 0.5 * rng.uniform();
    hotCol_ = 0.25 + 0.5 * rng.uniform();
}

double
SpatialGrid::couplingDb(int row, int col) const
{
    double y = (row + 0.5) / rows_;
    double x = (col + 0.5) / cols_;
    // Normalize by the board diagonal so kFalloffDb is the worst case
    // regardless of aspect ratio.
    double dist = std::hypot(y - hotRow_, x - hotCol_) / std::sqrt(2.0);
    exp::Rng rng = cellRng(seed_, cellIndex(row, col));
    double jitter = kJitterDb * (2.0 * rng.uniform() - 1.0);
    double db = -kFalloffDb * dist + jitter;
    return db < 0.0 ? db : 0.0;
}

double
SpatialGrid::resonanceHz(int row, int col) const
{
    exp::Rng rng = cellRng(seed_, cellIndex(row, col));
    rng.uniform();  // skip the jitter draw (shared per-cell stream)
    // Local trace resonances live in the band the paper found
    // exploitable: ~18-45 MHz.
    return 18e6 + 27e6 * rng.uniform();
}

double
SpatialGrid::resonanceQ(int row, int col) const
{
    exp::Rng rng = cellRng(seed_, cellIndex(row, col));
    rng.uniform();
    rng.uniform();
    return 6.0 + 14.0 * rng.uniform();
}

double
SpatialGrid::couplingScale(int row, int col, double freqHz) const
{
    analog::ResonantPeak peak;
    peak.freqHz = resonanceHz(row, col);
    peak.q = resonanceQ(row, col);
    peak.gain = 1.0;
    // Lorentzian response of the local trace on top of a broadband
    // floor: at the cell's resonance the full positional coupling is
    // available; off-resonance only the floor couples.
    double detune = 2.0 * peak.q * (freqHz - peak.freqHz) / peak.freqHz;
    double lorentz = peak.gain / (1.0 + detune * detune);
    double response = kResonanceFloor + (1.0 - kResonanceFloor) * lorentz;
    return analog::attenuationFromDb(-couplingDb(row, col)) * response;
}

GridRig::GridRig(const InjectionRig& base, const SpatialGrid& grid,
                 int row, int col)
    : base_(base), grid_(grid), row_(row), col_(col)
{
}

double
GridRig::amplitude(double freqHz, double powerDbm) const
{
    return base_.amplitude(freqHz, powerDbm) *
           grid_.couplingScale(row_, col_, freqHz);
}

std::uint64_t
GridRig::cell() const
{
    return static_cast<std::uint64_t>(grid_.cellIndex(row_, col_));
}

std::uint64_t
GridRig::couplingMilli(double freqHz) const
{
    double scale = grid_.couplingScale(row_, col_, freqHz);
    double milli = scale * 1000.0;
    return milli > 0 ? static_cast<std::uint64_t>(std::llround(milli)) : 0;
}

}  // namespace gecko::attack
