#ifndef GECKO_ATTACK_ATTACK_SCHEDULE_HPP_
#define GECKO_ATTACK_ATTACK_SCHEDULE_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/**
 * @file
 * Time-windowed attack scenarios (paper Fig. 9 and Fig. 13).
 */

namespace gecko::attack {

/** One attack window. */
struct AttackWindow {
    double startS = 0.0;
    double endS = 0.0;
    double freqHz = 27e6;
    double powerDbm = 35.0;
};

/** A sequence of attack windows applied to an EmiSource over time. */
class AttackSchedule
{
  public:
    AttackSchedule() = default;
    explicit AttackSchedule(std::vector<AttackWindow> windows)
        : windows_(std::move(windows))
    {
        rebuildIndex();
    }

    void add(const AttackWindow& w)
    {
        windows_.push_back(w);
        rebuildIndex();
    }

    /** The window active at time `t`, if any. */
    std::optional<AttackWindow> activeAt(double t) const;

    /**
     * True iff any window intersects the half-open span [t0, t1) — the
     * simulator's horizon query.  The sleeping-state analytic wake jump
     * and the running-state quantum-coalescing guard both ask this once
     * per horizon instead of scanning the window list per quantum;
     * answered in O(log n) from a start-sorted index with a running
     * max-end, so overlapping or out-of-order window sets stay exact.
     */
    bool overlapsRange(double t0, double t1) const;

    /**
     * Fig. 13 scenarios (a)–(f).  The paper schedules attacks at minute
     * granularity over a 50-minute run; `minuteS` scales one paper-minute
     * to simulated seconds so the experiment stays tractable.
     *
     * @param scenario 'a' (none) .. 'f' (attacks at 10, 25 and 40 min)
     * @param minuteS  simulated seconds per paper-minute
     * @param attackMinutes duration of each attack burst in minutes
     * @param freqHz/powerDbm the tone used in every burst
     */
    static AttackSchedule scenario(char scenario, double minuteS,
                                   double attackMinutes = 5.0,
                                   double freqHz = 27e6,
                                   double powerDbm = 35.0);

    /** Human-readable description of scenario `s` ("attacks at 20, 40 min"). */
    static std::string scenarioDescription(char scenario);

    const std::vector<AttackWindow>& windows() const { return windows_; }

  private:
    void rebuildIndex();

    std::vector<AttackWindow> windows_;
    /// Window indices ordered by startS, and the running maximum of
    /// endS over that order (prefixMaxEndS_[i] = max endS among the
    /// first i+1 sorted windows).  Rebuilt on mutation: schedules are
    /// tiny and frozen before the simulation starts, while the overlap
    /// query runs on the per-horizon hot path.
    std::vector<std::uint32_t> byStart_;
    std::vector<double> prefixMaxEndS_;
};

}  // namespace gecko::attack

#endif  // GECKO_ATTACK_ATTACK_SCHEDULE_HPP_
