#ifndef GECKO_ATTACK_RIGS_HPP_
#define GECKO_ATTACK_RIGS_HPP_

#include "device/device_profile.hpp"

/**
 * @file
 * Injection rigs: how the attacker's signal reaches the victim's voltage
 * monitor (paper §IV).
 *
 * DpiRig models direct power injection through points P1 (power line) or
 * P2 (capacitor node) of Fig. 3 — no path loss, precise power control.
 * RemoteRig models a radiating antenna at a distance, optionally through
 * a wall (Fig. 6/8).
 */

namespace gecko::attack {

/** Common interface: peak induced amplitude at the monitor input. */
class InjectionRig
{
  public:
    virtual ~InjectionRig() = default;

    /** Induced amplitude (V) for a tone at `freqHz` with `powerDbm`. */
    virtual double amplitude(double freqHz, double powerDbm) const = 0;
};

/** DPI injection points of Fig. 3. */
enum class DpiPoint {
    kP1,  ///< power line between harvester and capacitor
    kP2,  ///< capacitor node feeding the voltage monitor
};

/** Direct power injection rig. */
class DpiRig : public InjectionRig
{
  public:
    DpiRig(const device::DeviceProfile& dev, DpiPoint point);

    double amplitude(double freqHz, double powerDbm) const override;

  private:
    const device::DeviceProfile& dev_;
    DpiPoint point_;
};

/** Remote (radiated) attack rig. */
class RemoteRig : public InjectionRig
{
  public:
    /**
     * @param path monitor path being attacked (ADC or comparator input)
     * @param distanceM antenna-to-victim distance
     * @param wallAttenuationDb extra attenuation for walls/doors
     */
    RemoteRig(const device::DeviceProfile& dev, analog::MonitorKind path,
              double distanceM, double wallAttenuationDb = 0.0);

    double amplitude(double freqHz, double powerDbm) const override;

    void setDistance(double distanceM) { distanceM_ = distanceM; }
    double distance() const { return distanceM_; }

  private:
    const device::DeviceProfile& dev_;
    analog::MonitorKind path_;
    double distanceM_;
    double wallDb_;
};

}  // namespace gecko::attack

#endif  // GECKO_ATTACK_RIGS_HPP_
