#include <cstdlib>
#include <iostream>
#include <string>

#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Attack lab: point a simulated signal generator at any board in the
 * device database and sweep frequency or power from the command line.
 *
 * Usage:
 *   attack_lab [device] [powerDbm] [distanceM]
 *   attack_lab MSP430FR5994 35 0.5
 *
 * Prints the forward-progress rate across the frequency sweep and
 * highlights the most effective attack tone — the workflow the paper's
 * attacker uses to find a victim's resonance (§III "prior testing").
 */

int
main(int argc, char** argv)
{
    using namespace gecko;

    std::string device_name = argc > 1 ? argv[1] : "MSP430FR5994";
    double power = argc > 2 ? std::atof(argv[2]) : 35.0;
    double distance = argc > 3 ? std::atof(argv[3]) : 0.5;

    const auto& dev = device::DeviceDb::byName(device_name);
    std::cout << "=== Attack lab: " << dev.name << " @ " << power
              << " dBm from " << distance << " m ===\n\n";

    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      compiler::Scheme::kNvp);

    auto run_once = [&](attack::EmiSource* src) {
        sim::IoHub io;
        workloads::setupIo("sensor_loop", io);
        energy::ConstantHarvester supply(3.3, 5.0);
        sim::SimConfig config;
        sim::IntermittentSim simulation(compiled, dev, config, supply, io);
        if (src)
            simulation.setEmiSource(src);
        simulation.run(0.05);
        return simulation.machine().stats.cycles;
    };

    std::uint64_t clean = run_once(nullptr);
    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, distance);

    metrics::TextTable table;
    table.header({"freq", "induced ampl", "progress rate", "verdict"});
    double best_rate = 1.0, best_freq = 0.0;
    for (double f = 5e6; f <= 60e6; f += 1e6) {
        attack::EmiSource src(rig, f, power);
        double rate = static_cast<double>(run_once(&src)) /
                      static_cast<double>(clean);
        rate = std::min(rate, 1.0);
        if (rate < best_rate) {
            best_rate = rate;
            best_freq = f;
        }
        const char* verdict = rate > 0.9   ? ""
                              : rate > 0.5 ? "degraded"
                              : rate > 0.1 ? "severe"
                                           : "DoS";
        table.row({metrics::fmtMhz(f),
                   metrics::fmt(rig.amplitude(f, power), 2) + " V",
                   metrics::fmtPercent(rate, 1), verdict});
    }
    table.print(std::cout);

    if (best_rate < 0.5) {
        std::cout << "\nBest attack tone: " << metrics::fmtMhz(best_freq)
                  << " (forward progress "
                  << metrics::fmtPercent(best_rate, 1) << ")\n";
    } else {
        std::cout << "\nNo effective tone at this power/distance — move "
                     "closer or raise power.\n";
    }
    return 0;
}
