#include <iostream>

#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Scenario: a batteryless continuous glucose monitor (the paper's §III
 * motivating application) worn by a patient, harvesting body energy,
 * with an attacker's EMI transmitter hidden in the next room.
 *
 * The demo runs the sensing application on an MSP430FR5994-class
 * device through three phases — quiet, under attack with the stock JIT
 * firmware (NVP), and under attack with GECKO — and reports alarms
 * delivered, checkpoint failures, and detection behaviour.
 */

namespace {

struct PhaseResult {
    std::uint64_t completions;
    std::uint64_t alarms;
    double failureRate;
    std::uint64_t detections;
};

PhaseResult
runPhase(gecko::compiler::Scheme scheme, bool attacked)
{
    using namespace gecko;
    const auto& dev = device::DeviceDb::msp430fr5994();

    auto compiled =
        compiler::compile(workloads::build("sensor_loop"), scheme);
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    // Body-heat / motion harvesting: intermittent, ~1 Hz outages.
    energy::SquareWaveHarvester harvest(3.3, 5.0, 0.5, 0.5);
    sim::SimConfig config;
    config.cap.capacitanceF = 1e-3;

    sim::IntermittentSim simulation(compiled, dev, config, harvest, io);
    // Attacker: next room, through a wall, tuned to the 27 MHz
    // resonance.
    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 3.0, 6.0);
    attack::EmiSource source(rig, 27e6, 35.0);
    if (attacked)
        simulation.setEmiSource(&source);

    simulation.run(5.0);

    PhaseResult r;
    r.completions = simulation.machine().stats.completions;
    r.alarms = io.output(2).count();
    r.failureRate = simulation.checkpointFailureRate();
    r.detections = simulation.geckoRuntime().stats.attackDetections;
    return r;
}

}  // namespace

int
main()
{
    using namespace gecko;

    std::cout << "=== Wearable glucose monitor under EMI attack ===\n\n"
              << "Device: MSP430FR5994, 1 mF buffer, body-energy "
                 "harvesting (1 Hz outages).\n"
              << "Attacker: 35 dBm @ 27 MHz, 3 m away, through a wall.\n\n";

    metrics::TextTable table;
    table.header({"firmware", "attack", "readings", "alarms",
                  "ckpt failure rate", "attack detections"});

    PhaseResult quiet = runPhase(compiler::Scheme::kNvp, false);
    table.row({"NVP (stock JIT)", "no", std::to_string(quiet.completions),
               std::to_string(quiet.alarms),
               metrics::fmtPercent(quiet.failureRate, 1), "-"});

    PhaseResult nvp = runPhase(compiler::Scheme::kNvp, true);
    table.row({"NVP (stock JIT)", "YES", std::to_string(nvp.completions),
               std::to_string(nvp.alarms),
               metrics::fmtPercent(nvp.failureRate, 1), "-"});

    PhaseResult gecko = runPhase(compiler::Scheme::kGecko, true);
    table.row({"GECKO", "YES", std::to_string(gecko.completions),
               std::to_string(gecko.alarms),
               metrics::fmtPercent(gecko.failureRate, 1),
               std::to_string(gecko.detections)});
    table.print(std::cout);

    std::cout << "\nWhile the attacker keys the carrier, the stock "
                 "firmware drops a substantial share of its readings "
                 "(and with them, hypoglycemia alarms) and roughly half "
                 "of its power-down checkpoints fail — silent data "
                 "corruption.  GECKO detects the interference, closes "
                 "the JIT attack surface, and keeps reporting with zero "
                 "failed checkpoints.\n";
    return 0;
}
