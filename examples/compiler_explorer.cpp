#include <iostream>
#include <string>

#include "compiler/pipeline.hpp"
#include "ir/disassembler.hpp"
#include "metrics/table.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Compiler explorer: show what the GECKO pipeline does to a workload —
 * region boundaries, checkpoint stores and their slot colours, the
 * recovery blocks built by pruning, and the per-region WCET budget.
 *
 * Usage: compiler_explorer [workload] [scheme]
 *        compiler_explorer dijkstra gecko|ratchet|noprune
 */

int
main(int argc, char** argv)
{
    using namespace gecko;

    std::string name = argc > 1 ? argv[1] : "dijkstra";
    std::string scheme_arg = argc > 2 ? argv[2] : "gecko";
    compiler::Scheme scheme = compiler::Scheme::kGecko;
    if (scheme_arg == "ratchet")
        scheme = compiler::Scheme::kRatchet;
    else if (scheme_arg == "noprune")
        scheme = compiler::Scheme::kGeckoNoPrune;

    ir::Program prog = workloads::build(name);
    auto compiled = compiler::compile(prog, scheme);

    std::cout << "=== " << name << " compiled for "
              << compiler::schemeName(scheme) << " ===\n\n"
              << ir::disassemble(compiled.prog) << "\n";

    metrics::TextTable regions;
    regions.header({"region", "entry", "WCET [cyc]", "live-in ckpts",
                    "recovery blocks", "parent"});
    for (const auto& r : compiled.regions) {
        regions.row({std::to_string(r.id), std::to_string(r.entryIdx),
                     r.wcetCycles >= 0 ? std::to_string(r.wcetCycles)
                                       : "unbounded",
                     std::to_string(r.ckpts.size()),
                     std::to_string(r.recovery.size()),
                     r.parentId >= 0 ? std::to_string(r.parentId) : "-"});
    }
    regions.print(std::cout);

    std::cout << "\nRecovery blocks:\n";
    for (const auto& r : compiled.regions) {
        for (const auto& spec : r.recovery) {
            std::cout << "  region " << r.id << ", r"
                      << static_cast<int>(spec.reg) << ":\n";
            for (const auto& ins : spec.code)
                std::cout << "      "
                          << ir::formatInstr(compiled.prog, ins) << "\n";
        }
    }

    const auto& st = compiled.stats;
    std::cout << "\nstats: " << st.numRegions << " regions, "
              << st.ckptsBeforePruning << " -> " << st.ckptsAfterPruning
              << " checkpoint stores (" << st.recoveryBlocks
              << " recovery blocks, " << st.cleanEliminated
              << " clean-eliminated), code size +"
              << metrics::fmtPercent(st.codeSizeOverhead(), 1)
              << ", lookup table " << st.lookupTableWords << " words\n";
    return 0;
}
