#include <iostream>

#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Scenario: a batteryless wireless sensor node on an RF harvesting
 * field (Powercast-style), comparing the three firmware options across
 * increasingly hostile energy conditions — no attack involved, pure
 * intermittency.  Shows where Ratchet's long regions stop making
 * progress while GECKO tracks NVP.
 */

int
main()
{
    using namespace gecko;

    std::cout << "=== Batteryless sensor node on RF harvesting ===\n\n";
    const auto& dev = device::DeviceDb::msp430fr5994();

    struct Condition {
        const char* label;
        double onFraction;
        double outageHz;
    };
    const Condition conditions[] = {
        {"strong field (90% duty)", 0.9, 1.0},
        {"typical field (55% duty)", 0.55, 1.0},
        {"weak field (30% duty, 2 Hz)", 0.3, 2.0},
    };

    metrics::TextTable table;
    table.header({"energy condition", "NVP", "Ratchet", "GECKO",
                  "GECKO ckpt stores"});

    for (const Condition& cond : conditions) {
        std::uint64_t done[3] = {};
        std::uint64_t gecko_stores = 0;
        int i = 0;
        for (auto scheme :
             {compiler::Scheme::kNvp, compiler::Scheme::kRatchet,
              compiler::Scheme::kGecko}) {
            auto compiled = compiler::compile(
                workloads::build("sensor_app"), scheme);
            sim::IoHub io;
            workloads::setupIo("sensor_app", io);
            energy::TraceHarvester field = energy::makeRfTrace(
                3.3, 5.0, cond.outageHz, cond.onFraction, 6.0, 11);
            sim::SimConfig config;
            config.cap.capacitanceF = 1e-3;
            sim::IntermittentSim simulation(compiled, dev, config, field,
                                            io);
            simulation.run(6.0);
            done[i++] = simulation.machine().stats.completions;
            if (scheme == compiler::Scheme::kGecko)
                gecko_stores = simulation.machine().stats.ckptStores;
        }
        table.row({cond.label, std::to_string(done[0]),
                   std::to_string(done[1]), std::to_string(done[2]),
                   std::to_string(gecko_stores)});
    }
    table.print(std::cout);

    std::cout << "\nCompletions of the sensing application over 6 s of "
                 "simulated harvesting.  GECKO's WCET-bounded regions "
                 "keep it within a few percent of the JIT baseline in "
                 "every condition.\n";
    return 0;
}
