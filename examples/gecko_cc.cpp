#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compiler/pipeline.hpp"
#include "ir/assembler.hpp"
#include "ir/disassembler.hpp"
#include "metrics/table.hpp"
#include "sim/intermittent_sim.hpp"

/**
 * @file
 * gecko_cc: a tiny command-line compiler driver.
 *
 * Reads a mini-ISA assembly file, compiles it for a recovery scheme,
 * prints the instrumented program with region/checkpoint metadata, and
 * (optionally) executes it.
 *
 * Usage:
 *   gecko_cc <file.s> [nvp|ratchet|noprune|gecko] [--run] [--budget N]
 *
 * Exit status: 0 on success, 1 on assembly/compile errors.
 */

int
main(int argc, char** argv)
{
    using namespace gecko;

    if (argc < 2) {
        std::cerr << "usage: gecko_cc <file.s> "
                     "[nvp|ratchet|noprune|gecko] [--run] [--budget N]\n";
        return 1;
    }

    std::string path = argv[1];
    compiler::Scheme scheme = compiler::Scheme::kGecko;
    bool run = false;
    compiler::PipelineConfig config;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "nvp")
            scheme = compiler::Scheme::kNvp;
        else if (arg == "ratchet")
            scheme = compiler::Scheme::kRatchet;
        else if (arg == "noprune")
            scheme = compiler::Scheme::kGeckoNoPrune;
        else if (arg == "gecko")
            scheme = compiler::Scheme::kGecko;
        else if (arg == "--run")
            run = true;
        else if (arg == "--budget" && i + 1 < argc)
            config.maxRegionCycles = std::atol(argv[++i]);
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "gecko_cc: cannot open " << path << "\n";
        return 1;
    }
    std::stringstream source;
    source << in.rdbuf();

    try {
        ir::Program prog = ir::Assembler::assemble(path, source.str());
        auto compiled = compiler::compile(prog, scheme, config);

        std::cout << "; " << path << " compiled for "
                  << compiler::schemeName(scheme) << "\n"
                  << ir::disassemble(compiled.prog);

        const auto& st = compiled.stats;
        std::cout << "\n; regions: " << st.numRegions
                  << ", checkpoint stores: " << st.ckptsAfterPruning
                  << " (pruned from " << st.ckptsBeforePruning << ")"
                  << ", recovery blocks: " << st.recoveryBlocks
                  << ", code size: +"
                  << metrics::fmtPercent(st.codeSizeOverhead(), 1) << "\n";

        if (run) {
            sim::Nvm nvm(16384);
            sim::IoHub io;
            std::uint64_t cycles =
                sim::runToCompletion(compiled, nvm, io);
            std::cout << "; executed in " << cycles << " cycles\n";
            for (int port = 0; port < sim::kIoPorts; ++port) {
                auto values = io.output(port).values();
                if (values.empty())
                    continue;
                std::cout << "; out" << port << ":";
                for (std::uint32_t v : values)
                    std::cout << " " << v;
                std::cout << "\n";
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "gecko_cc: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
