#include <iostream>

#include "compiler/pipeline.hpp"
#include "ir/assembler.hpp"
#include "ir/disassembler.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"

/**
 * @file
 * Quickstart: write a tiny program, compile it with GECKO, run it to
 * completion, then re-run it with power failures injected every few
 * thousand cycles and verify the output is identical — the crash-
 * consistency guarantee in ~80 lines.
 *
 * Build & run:  ./examples/quickstart
 */

int
main()
{
    using namespace gecko;

    // 1. A program in the mini-ISA: sum of the first 100 integers,
    //    written via the text assembler.
    ir::Program prog = ir::Assembler::assemble("sum", R"(
        movi r1, 0      ; accumulator
        movi r2, 1      ; i
        movi r3, 1001   ; bound
loop:
        add  r1, r1, r2
        add  r2, r2, #1
        blt  r2, r3, loop
        out  0, r1      ; emit 500500
        halt
)");

    // 2. Compile for GECKO: idempotent regions + pruned checkpoints.
    //    The region budget is the worst-case power-on period; keep it
    //    tiny here so even this 600-cycle program gets several regions.
    compiler::PipelineConfig config;
    config.maxRegionCycles = 600;
    auto compiled = compiler::compile(prog, compiler::Scheme::kGecko,
                                      config);
    std::cout << "--- GECKO-instrumented program ---\n"
              << ir::disassemble(compiled.prog)
              << "\nregions: " << compiled.regions.size()
              << ", checkpoint stores: "
              << compiled.stats.ckptsAfterPruning
              << ", recovery blocks: " << compiled.stats.recoveryBlocks
              << "\n\n";

    // 3. Failure-free run.
    sim::Nvm golden_nvm(4096);
    sim::IoHub golden_io;
    std::uint64_t cycles =
        sim::runToCompletion(compiled, golden_nvm, golden_io);
    std::cout << "failure-free run: " << cycles << " cycles, output = "
              << golden_io.output(0).values().at(0) << "\n";

    // 4. The same program with a hard power failure every 1001 cycles
    //    (longer than any region, so progress is guaranteed).
    sim::Nvm nvm(4096);
    sim::IoHub io;
    sim::Machine machine(compiled, nvm, io);
    machine.setStagedIo(true);
    runtime::GeckoRuntime runtime(compiled, machine, nvm);
    runtime.onBoot();
    while (!machine.halted()) {
        std::uint64_t consumed = 0;
        if (machine.run(1001, &consumed) == sim::RunExit::kHalted)
            break;
        machine.powerCycle();   // lights out: registers and PC are gone
        runtime.onBoot();       // rollback recovery at reboot
    }
    std::cout << "with " << runtime.stats.rollbacks
              << " rollback recoveries: output = "
              << io.output(0).values().at(0) << "\n";

    bool ok = io.output(0).values() == golden_io.output(0).values();
    std::cout << (ok ? "crash consistency holds.\n"
                     : "MISMATCH — this is a bug!\n");
    return ok ? 0 : 1;
}
